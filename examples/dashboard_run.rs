//! Live training dashboard: run the threaded engine with the metrics hub
//! attached and render per-worker throughput, staleness quantiles, and
//! utilization bars in place while it trains.
//!
//! ```text
//! cargo run --release --example dashboard_run
//! ```
//!
//! Environment:
//!
//! - `HETERO_SCALE` / `HETERO_BUDGET` — dataset scale and wall-clock
//!   seconds (same conventions as the other examples), so CI can run this
//!   in well under a second.
//! - `HETERO_DASH_HEADLESS=1` — no ANSI cursor control; print a handful of
//!   plain-text frames instead of refreshing in place (for CI logs).
//! - `HETERO_SCRAPE_ADDR=127.0.0.1:9184` — additionally serve the
//!   OpenMetrics exposition over HTTP for a Prometheus scrape (omit to
//!   skip the listener).
//!
//! On exit, writes the final exposition to `results/openmetrics.txt` and
//! validates it against the strict line-format checker.

use std::sync::Arc;
use std::time::{Duration, Instant};

use hetero_sgd::metrics::{render, render_dashboard, validate_openmetrics};
use hetero_sgd::prelude::*;
use hetero_sgd::trace::TraceSink;

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let scale = env_f64("HETERO_SCALE", 0.002);
    let budget = env_f64("HETERO_BUDGET", 3.0);
    let headless = std::env::var("HETERO_DASH_HEADLESS").is_ok_and(|v| v != "0");
    let dataset = Arc::new(PaperDataset::Covtype.generate(scale.max(1000.0 / 581_012.0), 42));
    let spec = MlpSpec {
        input_dim: dataset.features(),
        hidden: vec![48; 2],
        classes: dataset.num_classes(),
        activation: Activation::Sigmoid,
        loss: LossKind::SoftmaxCrossEntropy,
    };
    let gpu_max = 8192.min(dataset.len().max(64));
    let train = TrainConfig {
        algorithm: AlgorithmKind::AdaptiveHogbatch,
        time_budget: budget,
        rayon_threads: 0,
        measured_beta: true,
        eval_interval: (budget / 10.0).max(0.05),
        eval_subsample: 1024,
        adaptive: AdaptiveParams {
            gpu_min_batch: (gpu_max / 16).max(16),
            gpu_max_batch: gpu_max,
            ..AdaptiveParams::default()
        },
        ..TrainConfig::default()
    };
    println!(
        "dashboard_run: covtype ({} examples), adaptive Hogbatch, {budget}s wall budget",
        dataset.len()
    );

    let sink = TraceSink::wall(1 << 16);
    let hub = MetricsHub::new();

    // Optional Prometheus scrape endpoint; renders a fresh exposition per
    // request from the same sink + hub the dashboard reads.
    let _server = std::env::var("HETERO_SCRAPE_ADDR").ok().map(|addr| {
        let (s, h) = (sink.clone(), hub.clone());
        let server = ScrapeServer::bind(&addr, Arc::new(move || render(&s, &h)))
            .expect("bind scrape endpoint");
        println!(
            "serving OpenMetrics on http://{}/metrics",
            server.local_addr()
        );
        server
    });

    let engine = ThreadedEngine::new(ThreadedEngineConfig {
        spec,
        train,
        cpu_threads: std::thread::available_parallelism()
            .map(|n| n.get().saturating_sub(2).max(2))
            .unwrap_or(4),
        gpu_perf: GpuModel::v100(),
        gpu_workers: 1,
        fault_plan: FaultPlan::none(),
    })
    .expect("valid engine config");

    // Train on a helper thread; the main thread owns the terminal.
    let run = {
        let (sink, hub, dataset) = (sink.clone(), hub.clone(), Arc::clone(&dataset));
        std::thread::spawn(move || engine.run_observed(dataset, &sink, &hub))
    };

    if !headless {
        // Clear once; every frame then homes the cursor and overdraws.
        print!("\x1b[2J");
    }
    let t0 = Instant::now();
    let mut prev: Option<DashboardFrame> = None;
    let refresh = Duration::from_millis(250);
    while !run.is_finished() {
        std::thread::sleep(refresh);
        let frame = DashboardFrame::collect(&sink, &hub, t0.elapsed().as_secs_f64());
        if headless {
            // A few spaced plain-text frames are enough for a CI log.
            if frame.elapsed < 1.0 || run.is_finished() {
                println!("{}", render_dashboard(&frame, prev.as_ref(), false));
            }
        } else {
            print!("{}", render_dashboard(&frame, prev.as_ref(), true));
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
        prev = Some(frame);
    }
    let result = run.join().expect("training thread panicked");

    // Final frame + run summary on a clean line.
    let frame = DashboardFrame::collect(&sink, &hub, t0.elapsed().as_secs_f64());
    println!("{}", render_dashboard(&frame, prev.as_ref(), false));
    println!(
        "final loss {:.4} after {:.2} epochs; measured β = {:?}",
        result.final_loss(),
        result.epochs,
        result.measured_beta
    );
    if let Some(s) = &result.staleness {
        println!(
            "staleness: p50 {} p90 {} p99 {} max {} over {} updates",
            s.p50, s.p90, s.p99, s.max, s.count
        );
    }

    // Export + validate the final OpenMetrics exposition.
    let text = render(&sink, &hub);
    validate_openmetrics(&text).expect("exposition failed strict validation");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/openmetrics.txt", &text).expect("write exposition");
    println!(
        "wrote results/openmetrics.txt ({} lines, strict-validated)",
        text.lines().count()
    );
    assert!(
        result.final_loss().is_finite(),
        "training diverged: {:?}",
        result.loss_curve.last()
    );
}
