//! Sparse-input training on the real-sim stand-in — quantifying the
//! paper's decision to "process all the datasets in dense format" (§VII-A).
//!
//! real-sim is 20,958-dimensional at ~0.25% density; the first MLP layer
//! dominates its step cost and is exactly where CSR kernels help. This
//! example trains the same network twice — dense and sparse input paths —
//! verifies the losses agree step for step, and reports the wall-clock
//! difference.
//!
//! ```text
//! cargo run --release --example sparse_realsim
//! ```

use std::time::Instant;

use hetero_sgd::nn::{loss_and_gradient, loss_and_gradient_sparse};
use hetero_sgd::prelude::*;

fn main() {
    let dataset = PaperDataset::RealSim.generate(0.01, 7);
    let csr = dataset.to_csr();
    println!(
        "real-sim stand-in: {} × {} at {:.2}% density ({} nnz)",
        dataset.len(),
        dataset.features(),
        100.0 * csr.density(),
        csr.nnz()
    );

    let spec = MlpSpec {
        input_dim: dataset.features(),
        hidden: vec![128, 128],
        classes: 2,
        activation: Activation::Sigmoid,
        loss: LossKind::SoftmaxCrossEntropy,
    };
    let model0 = Model::new(spec, InitScheme::XavierSigmoid, 3);
    let steps = 20;
    let batch = 256.min(dataset.len());
    let (x_dense, labels) = dataset.batch(0, batch);
    let x_sparse = csr.slice_rows(0, batch);

    // Dense path.
    let mut dense_model = model0.clone();
    let t0 = Instant::now();
    let mut dense_losses = Vec::new();
    for _ in 0..steps {
        let (l, g) = loss_and_gradient(&dense_model, &x_dense, labels.as_targets(), true);
        dense_model.apply_gradient(&g, 0.1);
        dense_losses.push(l);
    }
    let dense_time = t0.elapsed();

    // Sparse path.
    let mut sparse_model = model0.clone();
    let t0 = Instant::now();
    let mut sparse_losses = Vec::new();
    for _ in 0..steps {
        let (l, g) = loss_and_gradient_sparse(&sparse_model, &x_sparse, labels.as_targets(), true);
        sparse_model.apply_gradient(&g, 0.1);
        sparse_losses.push(l);
    }
    let sparse_time = t0.elapsed();

    // The two paths compute the same math.
    let max_diff = dense_losses
        .iter()
        .zip(&sparse_losses)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!(
        "loss {:.4} -> dense {:.4} / sparse {:.4} (max per-step diff {:.2e})",
        dense_losses[0],
        dense_losses[steps - 1],
        sparse_losses[steps - 1],
        max_diff
    );
    assert!(max_diff < 1e-3, "paths diverged");

    println!(
        "{steps} steps of batch {batch}: dense {:.1} ms/step, sparse {:.1} ms/step ({:.1}x)",
        dense_time.as_secs_f64() * 1e3 / steps as f64,
        sparse_time.as_secs_f64() * 1e3 / steps as f64,
        dense_time.as_secs_f64() / sparse_time.as_secs_f64().max(1e-12)
    );
    println!(
        "(the win grows with 1/density — at the paper's full 20,958 features\n\
         and 0.25% density the sparse path dominates; at covtype-like density\n\
         the dense blocked GEMM wins, which is why the paper ran dense)"
    );
}
