//! Quickstart: train a paper-style MLP with Adaptive Hogbatch on the
//! simulated CPU+GPU machine and watch the loss fall.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hetero_sgd::prelude::*;

fn main() {
    // 1. Data: a scaled-down covtype stand-in (Table II shape, ~1.2k rows).
    let dataset = PaperDataset::Covtype.generate(0.002, 42);
    println!(
        "dataset {:10}  examples={}  features={}  classes={}",
        dataset.name,
        dataset.len(),
        dataset.features(),
        dataset.num_classes()
    );

    // 2. Network: fully-connected sigmoid MLP (small variant of §VII-A).
    let spec = MlpSpec {
        input_dim: dataset.features(),
        hidden: vec![64, 64],
        classes: dataset.num_classes(),
        activation: Activation::Sigmoid,
        loss: LossKind::SoftmaxCrossEntropy,
    };
    println!(
        "network  layers={}  params={}  flops/example={}",
        spec.num_layers(),
        spec.num_params(),
        spec.train_flops_per_example()
    );

    // 3. Train with Adaptive Hogbatch (Algorithm 2) on the paper's
    //    hardware models: 2×Xeon + V100, virtual time.
    let train = TrainConfig {
        algorithm: AlgorithmKind::AdaptiveHogbatch,
        lr: 0.01,
        lr_scaling: LrScaling::Sqrt {
            ref_batch: 1,
            max_lr: 0.5,
        },
        time_budget: 0.25, // virtual seconds — several epochs on this scale
        rayon_threads: 0,
        eval_interval: 0.025,
        eval_subsample: 1024,
        adaptive: AdaptiveParams {
            gpu_min_batch: 64,
            gpu_max_batch: 1024,
            ..AdaptiveParams::default()
        },
        ..TrainConfig::default()
    };
    let engine = SimEngine::new(SimEngineConfig::paper_hardware(spec, train)).unwrap();
    let result = engine.run(&dataset);

    // 4. Report.
    println!("\n  time(s)   epochs     loss");
    for p in &result.loss_curve {
        println!("  {:7.3}  {:7.2}  {:8.5}", p.time, p.epochs, p.loss);
    }
    println!(
        "\nloss {:.4} -> {:.4} over {:.1} epochs",
        result.initial_loss(),
        result.final_loss(),
        result.epochs
    );
    for w in result.workers.iter().filter(|w| w.batches > 0) {
        println!(
            "{:?} worker: {} batches, {:.0} updates, final batch {}",
            w.kind, w.batches, w.updates, w.final_batch
        );
    }
    println!(
        "CPU share of model updates: {:.1}% (Adaptive balances this, Fig. 8)",
        100.0 * result.cpu_update_fraction()
    );
    assert!(result.final_loss() < result.initial_loss());
}
