//! The framework as a testbed (§V "a generic testbed to evaluate existing
//! SGD algorithms and develop new ones"): the classic optimizer family on
//! one problem, plus SVRG — the variance-reduction idea the paper cites as
//! the theory behind mixing accurate GPU and noisy CPU updates (§II).
//!
//! ```text
//! cargo run --release --example optimizer_svrg_tour
//! ```

use hetero_sgd::core::svrg::{direction_variance, train_sgd_baseline, train_svrg, SvrgConfig};
use hetero_sgd::nn::{loss_and_gradient, Optimizer, OptimizerKind};
use hetero_sgd::prelude::*;

fn main() {
    let mut synth = SynthConfig::small(400, 10, 3, 23);
    synth.separability = 2.5;
    let mut dataset = synth.generate();
    dataset.standardize();
    let spec = MlpSpec {
        input_dim: 10,
        hidden: vec![24, 24],
        classes: 3,
        activation: Activation::Sigmoid,
        loss: LossKind::SoftmaxCrossEntropy,
    };

    // --- 1. Optimizer zoo on full-batch gradients.
    println!("optimizer comparison (120 full-batch steps):");
    let (x, labels) = dataset.batch(0, dataset.len());
    for (name, kind, eta) in [
        ("sgd", OptimizerKind::Sgd, 0.5),
        ("momentum", OptimizerKind::momentum(), 0.1),
        ("nesterov", OptimizerKind::nesterov(), 0.1),
        ("adagrad", OptimizerKind::adagrad(), 0.5),
        ("adam", OptimizerKind::adam(), 0.05),
    ] {
        let mut model = Model::new(spec.clone(), InitScheme::Xavier, 7);
        let mut opt = Optimizer::new(kind, model.num_params());
        let (first, _) = loss_and_gradient(&model, &x, labels.as_targets(), true);
        let mut last = first;
        for _ in 0..120 {
            let (l, g) = loss_and_gradient(&model, &x, labels.as_targets(), true);
            opt.step(&mut model, &g, eta);
            last = l;
        }
        println!("  {name:9} loss {first:.4} -> {last:.4}");
    }

    // --- 2. SVRG vs SGD at the same stochastic budget.
    println!("\nSVRG vs mini-batch SGD (batch 8, same sampling):");
    let cfg = SvrgConfig {
        eta: 0.2,
        inner_steps: 100,
        batch: 8,
        outer_iters: 5,
        seed: 3,
    };
    let base = Model::new(spec.clone(), InitScheme::Xavier, 7);
    let mut m_svrg = base.clone();
    let mut m_sgd = base.clone();
    let svrg_curve = train_svrg(&mut m_svrg, &dataset, &cfg);
    let sgd_curve = train_sgd_baseline(&mut m_sgd, &dataset, &cfg);
    println!("  outer-iteration losses:");
    println!("    svrg: {svrg_curve:.4?}");
    println!("    sgd : {sgd_curve:.4?}");

    // --- 3. Why it works: direction variance at the anchor.
    let (var_sgd, var_svrg) = direction_variance(&base, &base, &dataset, 8, 32, 5);
    println!("\ngradient-direction variance at the anchor: sgd {var_sgd:.3e}, svrg {var_svrg:.3e}");
    println!(
        "(the paper's Hogbatch intuition: GPU large-batch gradients play the\n\
         anchor 'compass' role concurrently, CPU Hogwild steps are the noisy walk)"
    );
}
