//! The real-thread engine: actual Hogwild threads racing on a shared
//! atomic model while a software-GPU worker trains deep-copy replicas —
//! the paper's implementation architecture (§V) on your machine's cores,
//! wall-clock time.
//!
//! ```text
//! cargo run --release --example real_concurrency [seconds]
//! ```

use std::sync::Arc;

use hetero_sgd::prelude::*;

fn main() {
    let secs: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);

    let mut synth = SynthConfig::small(4000, 20, 4, 11);
    synth.separability = 3.0;
    let mut dataset = synth.generate();
    dataset.standardize();
    dataset.name = "synthetic-4class".into();
    let dataset = Arc::new(dataset);

    let spec = MlpSpec {
        input_dim: 20,
        hidden: vec![32, 32],
        classes: 4,
        activation: Activation::Sigmoid,
        loss: LossKind::SoftmaxCrossEntropy,
    };

    let threads = std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(2).max(2))
        .unwrap_or(4);
    println!("running CPU+GPU Hogbatch for {secs}s with {threads} Hogwild threads + 1 software-GPU worker");

    for algo in [
        AlgorithmKind::HogwildCpu,
        AlgorithmKind::MiniBatchGpu,
        AlgorithmKind::CpuGpuHogbatch,
        AlgorithmKind::AdaptiveHogbatch,
    ] {
        let cfg = ThreadedEngineConfig {
            spec: spec.clone(),
            train: TrainConfig {
                algorithm: algo,
                lr: 0.05,
                lr_scaling: LrScaling::Sqrt {
                    ref_batch: 1,
                    max_lr: 0.5,
                },
                cpu_batch_per_thread: 1,
                gpu_batch: 512,
                adaptive: AdaptiveParams {
                    cpu_min_batch: threads,
                    cpu_max_batch: threads * 64,
                    gpu_min_batch: 64,
                    gpu_max_batch: 512,
                    ..AdaptiveParams::default()
                },
                time_budget: secs,
                rayon_threads: 0,
                eval_interval: secs / 8.0,
                eval_subsample: 1000,
                ..TrainConfig::default()
            },
            cpu_threads: threads,
            gpu_perf: GpuModel::v100(),
            gpu_workers: 1,
            fault_plan: FaultPlan::none(),
        };
        let engine = ThreadedEngine::new(cfg).unwrap();
        let r = engine.run(Arc::clone(&dataset));
        println!(
            "\n== {} ==\n   loss {:.4} -> {:.4} | {:.2} epochs in {:.2}s wall",
            r.algorithm,
            r.initial_loss(),
            r.final_loss(),
            r.epochs,
            r.duration
        );
        for w in r.workers.iter().filter(|w| w.batches > 0) {
            println!(
                "   {:?}: {} batches / {} examples / {:.0} updates (final batch {})",
                w.kind, w.batches, w.examples, w.updates, w.final_batch
            );
        }
        if r.total_updates() > 0.0 {
            println!(
                "   CPU update share: {:.1}%",
                100.0 * r.cpu_update_fraction()
            );
        }
    }
}
