//! Tour of the software GPU substrate: tracked memory with real OOM,
//! asynchronous streams with events, kernels, explicit transfers, and a
//! device-resident MLP replica — the pieces §V's GPU worker is made of.
//!
//! ```text
//! cargo run --release --example gpu_device_tour
//! ```

use hetero_sgd::gpu::{GpuDevice, GpuMlp, Stream};
use hetero_sgd::prelude::*;

fn main() {
    // --- 1. Device with V100-like capacity and performance model.
    let device = GpuDevice::v100();
    println!(
        "device: {}  global memory {} GB  peak {:.1} TFLOP/s",
        device.perf().name,
        device.mem().capacity() >> 30,
        device.perf().peak_flops / 1e12
    );

    // --- 2. Memory: allocation is tracked; overcommit fails like cudaMalloc.
    let a = device.mem().alloc(1 << 20).unwrap();
    println!(
        "allocated 4 MiB -> used {} B, peak {} B",
        device.mem().used_bytes(),
        device.mem().peak_bytes()
    );
    let oversize = (device.mem().capacity() / 4) as usize; // would exceed capacity
    match device.mem().alloc(oversize) {
        Err(e) => println!("overcommit correctly rejected: {e}"),
        Ok(_) => unreachable!("allocation should have failed"),
    }
    device.mem().free(a).unwrap();

    // --- 3. Streams: ordered async execution + events (CUDA model).
    let stream = Stream::new("tour");
    let ev_mem = device.h2d(&[1.0f32, 2.0, 3.0, 4.0]).unwrap();
    println!(
        "h2d of 16 B accounted {:.2} µs virtual",
        device.virtual_time() * 1e6
    );
    stream.launch(|| println!("kernel 1 runs first"));
    stream.launch(|| println!("kernel 2 runs second"));
    let event = stream.record_event();
    stream.launch(|| println!("kernel 3 runs third"));
    event.wait();
    println!("event observed after kernels 1-2 (query={})", event.query());
    stream.synchronize();
    device.mem().free(ev_mem).unwrap();

    // --- 4. A deep-copy MLP replica trained fully on-device.
    let spec = MlpSpec {
        input_dim: 16,
        hidden: vec![64, 64],
        classes: 3,
        activation: Activation::Sigmoid,
        loss: LossKind::SoftmaxCrossEntropy,
    };
    let host_model = Model::new(spec.clone(), InitScheme::Xavier, 7);
    let mut replica = GpuMlp::upload(&device, &host_model).unwrap();
    println!(
        "\nuploaded model replica: {} params, device now holds {} B in {} buffers",
        spec.num_params(),
        device.mem().used_bytes(),
        device.mem().live_buffers()
    );

    // Synthetic batch.
    let x = Matrix::from_fn(128, 16, |i, j| ((i * 16 + j) as f32 * 0.13).sin());
    let labels: Vec<u32> = (0..128).map(|i| (i % 3) as u32).collect();
    let mut losses = Vec::new();
    for step in 0..30 {
        let l = replica
            .train_step(&x, Targets::Classes(&labels), 0.5)
            .unwrap();
        if step % 10 == 0 {
            losses.push(l);
        }
    }
    println!("on-device training losses every 10 steps: {losses:.3?}");

    // Merge back: download the replica (the delta would go to the global
    // model in the full framework).
    let trained = replica.download();
    println!(
        "downloaded replica; parameter L2 moved {:.4}",
        (0..1)
            .map(|_| {
                let a = trained.flatten();
                let b = host_model.flatten();
                a.iter()
                    .zip(&b)
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum::<f32>()
                    .sqrt()
            })
            .next()
            .unwrap()
    );
    let stats = device.transfer_stats();
    println!(
        "transfer totals: {} H2D ({} B), {} D2H ({} B); virtual busy {:.3} ms",
        stats.h2d_count,
        stats.h2d_bytes,
        stats.d2h_count,
        stats.d2h_bytes,
        device.virtual_time() * 1e3
    );
    replica.destroy();
    assert_eq!(device.mem().used_bytes(), 0, "all device memory returned");
    println!("device memory fully reclaimed");
}
