//! End-to-end LIBSVM workflow: write a LIBSVM file, parse it back,
//! densify, and train — the path you would use with the paper's real
//! datasets (covtype/w8a/delicious/real-sim from the LIBSVM repository).
//!
//! ```text
//! cargo run --release --example libsvm_training [path/to/file.libsvm]
//! ```
//! Without an argument a synthetic file is generated under the system
//! temp directory first, so the example is self-contained.

use hetero_sgd::data::libsvm;
use hetero_sgd::prelude::*;

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            // Self-contained mode: synthesize w8a-shaped data and write it
            // in LIBSVM format.
            let dir = std::env::temp_dir().join("hetero-sgd-example");
            std::fs::create_dir_all(&dir).expect("temp dir");
            let path = dir.join("w8a-stand-in.libsvm");
            let dataset = PaperDataset::W8a.generate(0.01, 7);
            let mut file = std::fs::File::create(&path).expect("create file");
            libsvm::write(&dataset, &mut file).expect("write libsvm");
            println!("generated {} ({} examples)", path.display(), dataset.len());
            path
        }
    };

    // Parse + densify.
    let examples = libsvm::parse_file(&path).unwrap_or_else(|e| {
        eprintln!("parse failed: {e}");
        std::process::exit(1);
    });
    let mut dataset = libsvm::densify("libsvm-input", &examples, false, 0);
    dataset.standardize();
    dataset.shuffle(13);
    let (train_set, test_set) = dataset.split(0.2);
    println!(
        "parsed {} examples × {} features, {} classes ({} train / {} test)",
        dataset.len(),
        dataset.features(),
        dataset.num_classes(),
        train_set.len(),
        test_set.len()
    );

    // Train with CPU+GPU Hogbatch on the simulated paper hardware.
    let spec = MlpSpec {
        input_dim: train_set.features(),
        hidden: vec![64, 64],
        classes: train_set.num_classes().max(2),
        activation: Activation::Sigmoid,
        loss: LossKind::SoftmaxCrossEntropy,
    };
    let train = TrainConfig {
        algorithm: AlgorithmKind::CpuGpuHogbatch,
        lr: 0.01,
        lr_scaling: LrScaling::Sqrt {
            ref_batch: 1,
            max_lr: 0.5,
        },
        gpu_batch: 256,
        time_budget: 0.2,
        rayon_threads: 0,
        eval_interval: 0.02,
        eval_subsample: 1024,
        ..TrainConfig::default()
    };
    let engine = SimEngine::new(SimEngineConfig::paper_hardware(spec.clone(), train)).unwrap();
    let result = engine.run(&train_set);
    println!(
        "training loss {:.4} -> {:.4} in {:.2} epochs",
        result.initial_loss(),
        result.final_loss(),
        result.epochs
    );

    // Held-out evaluation with a freshly trained model (the DES engine
    // reports loss; for accuracy we retrain a quick host-side model).
    let mut model = Model::new(spec, InitScheme::Xavier, 1);
    for _ in 0..40 {
        let (x, labels) = train_set.batch(0, train_set.len().min(512));
        let (_, g) = hetero_sgd::nn::loss_and_gradient(&model, &x, labels.as_targets(), true);
        model.apply_gradient(&g, 0.5);
    }
    let (tx, tl) = test_set.batch(0, test_set.len());
    let probs = hetero_sgd::nn::predict_probs(&model, &tx, true);
    let acc = hetero_sgd::nn::accuracy(&probs, tl.as_targets());
    println!(
        "held-out accuracy of a 40-step reference model: {:.1}%",
        acc * 100.0
    );
}
