//! Run all five SGD algorithms of the paper on one dataset and compare
//! their convergence — a miniature of the paper's Figure 5 experiment.
//!
//! ```text
//! cargo run --release --example algorithm_comparison [dataset] [scale]
//! ```
//! `dataset` ∈ {covtype, w8a, delicious, real-sim} (default covtype),
//! `scale` shrinks the synthetic stand-in (default 0.002).

use hetero_sgd::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("covtype");
    let scale: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.002);
    let paper = PaperDataset::from_name(name).unwrap_or_else(|| {
        eprintln!("unknown dataset '{name}', expected covtype|w8a|delicious|real-sim");
        std::process::exit(1);
    });
    let dataset = paper.generate(scale, 42);
    let loss_kind = if paper.stats().multilabel {
        LossKind::MultiLabelBce
    } else {
        LossKind::SoftmaxCrossEntropy
    };
    let spec = MlpSpec {
        input_dim: dataset.features(),
        hidden: vec![64; 3],
        classes: dataset.num_classes(),
        activation: Activation::Sigmoid,
        loss: loss_kind,
    };
    println!(
        "{}: {} examples × {} features, {} classes — {} hidden layers in the paper",
        dataset.name,
        dataset.len(),
        dataset.features(),
        dataset.num_classes(),
        paper.hidden_layers()
    );

    let budget = 0.3;
    let mut results: Vec<TrainResult> = Vec::new();
    for algo in AlgorithmKind::all() {
        let train = TrainConfig {
            algorithm: algo,
            lr: 0.01,
            lr_scaling: LrScaling::Sqrt {
                ref_batch: 1,
                max_lr: 0.5,
            },
            gpu_batch: 1024,
            adaptive: AdaptiveParams {
                gpu_min_batch: 64,
                gpu_max_batch: 1024,
                ..AdaptiveParams::default()
            },
            time_budget: budget,
            rayon_threads: 0,
            eval_interval: budget / 12.0,
            eval_subsample: 1024,
            ..TrainConfig::default()
        };
        let engine = SimEngine::new(SimEngineConfig::paper_hardware(spec.clone(), train)).unwrap();
        let r = engine.run(&dataset);
        println!(
            "{:22}  epochs {:8.2}  final loss {:.5}  min loss {:.5}",
            r.algorithm,
            r.epochs,
            r.final_loss(),
            r.min_loss()
        );
        results.push(r);
    }

    // Normalize to the best observed loss (the paper's methodology).
    let basis = results
        .iter()
        .map(|r| r.min_loss())
        .fold(f32::INFINITY, f32::min);
    println!("\nnormalized final loss (basis = best min loss {basis:.5}):");
    for r in &results {
        let time_to = r
            .time_to_loss(basis * 1.1)
            .map(|t| format!("{t:.3}s"))
            .unwrap_or_else(|| "never".into());
        println!(
            "{:22}  final/basis {:6.3}  reaches 1.1×basis at {}",
            r.algorithm,
            r.final_loss() / basis,
            time_to
        );
    }
}
