//! Train the paper's adaptive Hogbatch with event tracing attached and
//! export the run as a Chrome `trace_event` file.
//!
//! ```text
//! cargo run --release --example trace_run
//! ```
//!
//! Writes `results/trace_run.json` (load it at <https://ui.perfetto.dev>
//! — one flame track per worker, instant markers for batch resizes, and
//! counter tracks for queue depth and loss) plus `results/trace_run.jsonl`
//! for line-oriented tooling. Honors `HETERO_SCALE` and `HETERO_BUDGET`
//! so CI can run it in milliseconds.

use hetero_sgd::prelude::*;
use hetero_sgd::trace::{export, EventKind, TraceSink, DEFAULT_RING_CAPACITY};

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let scale = env_f64("HETERO_SCALE", 0.002);
    let budget = env_f64("HETERO_BUDGET", 0.2);
    let dataset = PaperDataset::Covtype.generate(scale.max(1000.0 / 581_012.0), 42);
    let spec = MlpSpec {
        input_dim: dataset.features(),
        hidden: vec![48; 2],
        classes: dataset.num_classes(),
        activation: Activation::Sigmoid,
        loss: LossKind::SoftmaxCrossEntropy,
    };
    let gpu_max = 8192.min(dataset.len().max(64));
    let train = TrainConfig {
        algorithm: AlgorithmKind::AdaptiveHogbatch,
        time_budget: budget,
        rayon_threads: 0,
        eval_interval: budget / 10.0,
        eval_subsample: 1024,
        adaptive: AdaptiveParams {
            gpu_min_batch: (gpu_max / 16).max(16),
            gpu_max_batch: gpu_max,
            ..AdaptiveParams::default()
        },
        ..TrainConfig::default()
    };
    println!(
        "trace_run: covtype ({} examples), adaptive Hogbatch, {budget}s virtual budget",
        dataset.len()
    );

    // Virtual-time sink: the simulated engine publishes its clock, so every
    // event is stamped in the same time domain the paper's figures use.
    let sink = TraceSink::virtual_time(DEFAULT_RING_CAPACITY);
    let engine = SimEngine::new(SimEngineConfig::paper_hardware(spec, train)).unwrap();
    let mut result = engine.run_traced(&dataset, &sink);
    let trace = sink.drain();

    let resizes = trace
        .events_sorted()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::BatchResized { .. }))
        .count();
    assert!(
        !trace.is_empty(),
        "traced run produced no events — sink not attached?"
    );
    assert!(
        resizes >= 1,
        "adaptive run emitted no BatchResized events — adaptation never fired"
    );

    std::fs::create_dir_all("results").expect("create results/");
    let chrome = "results/trace_run.json";
    let jsonl = "results/trace_run.jsonl";
    export::write_chrome(&trace, chrome).expect("write Chrome trace");
    export::write_jsonl(&trace, jsonl).expect("write JSONL trace");
    result.trace_path = Some(chrome.to_string());

    println!(
        "  {} events across {} threads ({} dropped), {} batch resizes",
        trace.len(),
        trace.shards.len(),
        trace.total_dropped(),
        resizes
    );
    for u in hetero_sgd::trace::utilization::utilization(&trace) {
        println!(
            "  worker {:>2}: {:5.1}% busy, {:>5} batches, {:>8} examples",
            u.worker,
            100.0 * u.busy_fraction,
            u.batches,
            u.examples
        );
    }
    for (name, value) in &trace.counters {
        println!("  counter {name} = {value:.3}");
    }
    println!(
        "  final loss {:.4} after {:.2} epochs",
        result.final_loss(),
        result.epochs
    );
    println!("wrote {chrome} (open in https://ui.perfetto.dev) and {jsonl}");
    println!("trace_path = {:?}", result.trace_path);
}
