//! Cross-crate integration tests: dataset generation → network → engines →
//! metrics, exercising the workspace exactly the way the examples and the
//! benchmark harness do.

use std::sync::Arc;

use hetero_sgd::prelude::*;

fn small_hardware() -> (CpuModel, GpuModel) {
    let cpu = CpuModel {
        name: "test-cpu".into(),
        threads: 4,
        hw_threads: 4,
        flops_small: 1e9,
        flops_large: 8e9,
        batch_half: 8.0,
        dispatch_overhead: 20e-6,
        memory: 1 << 30,
    };
    let gpu = GpuModel {
        name: "test-gpu".into(),
        peak_flops: 1e12,
        occupancy_half_batch: 64.0,
        launch_overhead: 20e-6,
        transfer_latency: 5e-6,
        transfer_bandwidth: 12e9,
        memory: 1 << 30,
    };
    (cpu, gpu)
}

fn sim_config(
    algo: AlgorithmKind,
    spec: MlpSpec,
    budget: f64,
) -> hetero_sgd::core::SimEngineConfig {
    let (cpu, gpu) = small_hardware();
    hetero_sgd::core::SimEngineConfig {
        spec,
        train: TrainConfig {
            init: hetero_nn::InitScheme::Xavier,
            algorithm: algo,
            lr: 0.02,
            lr_scaling: LrScaling::Sqrt {
                ref_batch: 1,
                max_lr: 0.4,
            },
            cpu_batch_per_thread: 1,
            gpu_batch: 128,
            adaptive: AdaptiveParams {
                alpha: 2.0,
                beta: 1.0,
                cpu_min_batch: 4,
                cpu_max_batch: 128,
                gpu_min_batch: 16,
                gpu_max_batch: 128,
            },
            time_budget: budget,
            max_epochs: None,
            grad_clip: None,
            weight_decay: 0.0,
            staleness_discount: 0.0,
            rayon_threads: 0,
            measured_beta: false,
            eval_interval: budget / 8.0,
            eval_subsample: 512,
            ckpt_interval: None,
            ckpt_retain: 2,
            seed: 5,
        },
        cpu,
        gpus: vec![gpu],
        tf_op_overhead: 20e-6,
        tf_multilabel_penalty: 3.0,
        fault_plan: FaultPlan::none(),
    }
}

#[test]
fn paper_dataset_to_convergence_pipeline() {
    // The full paper pipeline: catalog dataset → paper-depth network →
    // adaptive training → loss drops.
    let dataset = PaperDataset::W8a.generate(0.002, 9);
    let spec = MlpSpec {
        input_dim: dataset.features(),
        hidden: vec![24, 24],
        classes: dataset.num_classes(),
        activation: Activation::Sigmoid,
        loss: LossKind::SoftmaxCrossEntropy,
    };
    let engine = SimEngine::new(sim_config(AlgorithmKind::AdaptiveHogbatch, spec, 0.1)).unwrap();
    let r = engine.run(&dataset);
    assert!(
        r.final_loss() < r.initial_loss() * 0.9,
        "no convergence: {} -> {}",
        r.initial_loss(),
        r.final_loss()
    );
}

#[test]
fn heterogeneous_beats_single_device_in_time_to_loss() {
    // The paper's headline claim (Figure 5): the heterogeneous algorithms
    // reach a given loss at least as fast as the best single-device one.
    let dataset = PaperDataset::Covtype.generate(0.0005, 11);
    let mk_spec = |d: &DenseDataset| MlpSpec {
        input_dim: d.features(),
        hidden: vec![24, 24],
        classes: d.num_classes(),
        activation: Activation::Sigmoid,
        loss: LossKind::SoftmaxCrossEntropy,
    };
    let budget = 0.1;
    let run = |algo| {
        SimEngine::new(sim_config(algo, mk_spec(&dataset), budget))
            .unwrap()
            .run(&dataset)
    };
    let gpu = run(AlgorithmKind::MiniBatchGpu);
    let het = run(AlgorithmKind::CpuGpuHogbatch);
    let adp = run(AlgorithmKind::AdaptiveHogbatch);

    // Normalized target: 1.2× the best loss any of them achieved.
    let basis = gpu.min_loss().min(het.min_loss()).min(adp.min_loss());
    let target = basis * 1.2;
    let t_gpu = gpu.time_to_loss(target).unwrap_or(f64::INFINITY);
    let t_het = het.time_to_loss(target).unwrap_or(f64::INFINITY);
    let t_adp = adp.time_to_loss(target).unwrap_or(f64::INFINITY);
    let t_best_het = t_het.min(t_adp);
    assert!(
        t_best_het <= t_gpu * 1.2,
        "heterogeneous ({t_best_het:.4}s) should not trail GPU-only ({t_gpu:.4}s)"
    );
}

#[test]
fn both_engines_agree_on_update_accounting() {
    // Same algorithm on both engines: structural invariants (worker kinds,
    // nonzero updates, curve monotonicity in time) must agree.
    let mut synth = SynthConfig::small(300, 6, 2, 3);
    synth.separability = 3.0;
    let mut d = synth.generate();
    d.standardize();
    let spec = MlpSpec::tiny(6, 2);

    let sim = SimEngine::new(sim_config(
        AlgorithmKind::CpuGpuHogbatch,
        spec.clone(),
        0.05,
    ))
    .unwrap()
    .run(&d);

    let threaded = ThreadedEngine::new(ThreadedEngineConfig {
        spec,
        train: TrainConfig {
            init: hetero_nn::InitScheme::Xavier,
            algorithm: AlgorithmKind::CpuGpuHogbatch,
            lr: 0.02,
            gpu_batch: 64,
            time_budget: 0.3,
            rayon_threads: 0,
            eval_interval: 0.1,
            eval_subsample: 300,
            ..TrainConfig::default()
        },
        cpu_threads: 2,
        gpu_perf: GpuModel::v100(),
        gpu_workers: 1,
        fault_plan: FaultPlan::none(),
    })
    .unwrap()
    .run(Arc::new(d));

    for r in [&sim, &threaded] {
        assert!(r.total_updates() > 0.0);
        let frac = r.cpu_update_fraction();
        assert!(frac > 0.0 && frac < 1.0, "{}: frac {frac}", r.algorithm);
        for pair in r.loss_curve.windows(2) {
            assert!(pair[1].time >= pair[0].time);
        }
    }
}

#[test]
fn multilabel_delicious_pipeline() {
    let dataset = PaperDataset::Delicious.generate(0.02, 4);
    assert!(matches!(dataset.labels, Labels::MultiHot(_)));
    let spec = MlpSpec {
        input_dim: dataset.features(),
        hidden: vec![32],
        classes: dataset.num_classes(),
        activation: Activation::Sigmoid,
        loss: LossKind::MultiLabelBce,
    };
    let engine = SimEngine::new(sim_config(AlgorithmKind::CpuGpuHogbatch, spec, 0.05)).unwrap();
    let r = engine.run(&dataset);
    assert!(r.final_loss().is_finite());
    assert!(r.final_loss() < r.initial_loss());
}

#[test]
fn tf_baseline_tracks_gpu_except_multilabel() {
    // §VII-B: TF ≈ Hogbatch GPU on single-label data, clearly slower on
    // multi-label. Compare epochs completed in the same budget.
    let single = PaperDataset::W8a.generate(0.002, 2);
    let spec_s = MlpSpec {
        input_dim: single.features(),
        hidden: vec![16, 16],
        classes: 2,
        activation: Activation::Sigmoid,
        loss: LossKind::SoftmaxCrossEntropy,
    };
    let gpu_s = SimEngine::new(sim_config(
        AlgorithmKind::MiniBatchGpu,
        spec_s.clone(),
        0.05,
    ))
    .unwrap()
    .run(&single);
    let tf_s = SimEngine::new(sim_config(AlgorithmKind::TensorFlow, spec_s, 0.05))
        .unwrap()
        .run(&single);
    // Single-label: TF runs slower than plain GPU mini-batch (dispatch
    // overhead) but still converges. At toy network sizes the fixed per-op
    // overhead looms much larger than at paper scale, so assert the
    // direction, not a constant factor.
    assert!(tf_s.epochs > 0.0 && tf_s.epochs <= gpu_s.epochs);
    assert!(tf_s.final_loss() < tf_s.initial_loss());
    let single_label_gap = gpu_s.epochs / tf_s.epochs.max(1e-9);

    let multi = PaperDataset::Delicious.generate(0.02, 2);
    let spec_m = MlpSpec {
        input_dim: multi.features(),
        hidden: vec![16, 16],
        classes: multi.num_classes(),
        activation: Activation::Sigmoid,
        loss: LossKind::MultiLabelBce,
    };
    let gpu_m = SimEngine::new(sim_config(
        AlgorithmKind::MiniBatchGpu,
        spec_m.clone(),
        0.05,
    ))
    .unwrap()
    .run(&multi);
    let tf_m = SimEngine::new(sim_config(AlgorithmKind::TensorFlow, spec_m, 0.05))
        .unwrap()
        .run(&multi);
    // Multi-label: the TF gap must widen beyond its single-label gap —
    // the delicious effect of §VII-B.
    let multi_label_gap = gpu_m.epochs / tf_m.epochs.max(1e-9);
    assert!(
        multi_label_gap > single_label_gap * 1.5,
        "multi-label gap {multi_label_gap:.2} should exceed single-label gap {single_label_gap:.2}"
    );
}

#[test]
fn shared_model_concurrent_cpu_gpu_workers_raw() {
    // Direct use of the public API the engines are built on: Hogwild
    // threads + a software-GPU replica racing on one SharedModel.
    let spec = MlpSpec::tiny(6, 2);
    let init = Model::new(spec.clone(), InitScheme::Xavier, 1);
    let shared = Arc::new(SharedModel::new(&init));
    let mut synth = SynthConfig::small(200, 6, 2, 8);
    synth.separability = 3.0;
    let data = Arc::new(synth.generate());

    let mut handles = Vec::new();
    // Two Hogwild CPU lanes.
    for lane in 0..2 {
        let shared = Arc::clone(&shared);
        let data = Arc::clone(&data);
        handles.push(std::thread::spawn(move || {
            for i in 0..50 {
                let start = (lane * 37 + i * 13) % (data.len() - 8);
                let local = shared.snapshot();
                let (x, labels) = data.batch(start, start + 8);
                let (_, g) =
                    hetero_sgd::nn::loss_and_gradient(&local, &x, labels.as_targets(), false);
                shared.apply_gradient_racy(&g, 0.05);
            }
        }));
    }
    // One GPU worker with deep-copy replicas.
    {
        let shared = Arc::clone(&shared);
        let data = Arc::clone(&data);
        handles.push(std::thread::spawn(move || {
            let device = hetero_sgd::gpu::GpuDevice::v100();
            let base = shared.snapshot();
            let mut mlp = hetero_sgd::gpu::GpuMlp::upload(&device, &base).unwrap();
            for i in 0..20 {
                let snapshot = shared.snapshot();
                mlp.refresh(&snapshot);
                let start = (i * 29) % (data.len() - 64);
                let (x, labels) = data.batch(start, start + 64);
                mlp.train_step(&x, labels.as_targets(), 0.1).unwrap();
                let replica = mlp.download();
                shared.merge_delta(&snapshot, &replica);
            }
            mlp.destroy();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(shared.update_count(), 2 * 50 + 20);
    let final_model = shared.snapshot();
    assert!(
        final_model.all_finite(),
        "races must never corrupt the model"
    );
    // Training actually helped.
    let (x, labels) = data.batch(0, data.len());
    let before = {
        let pass = hetero_sgd::nn::forward(&init, &x, true);
        hetero_sgd::nn::loss(pass.probs(), labels.as_targets(), spec.loss)
    };
    let after = {
        let pass = hetero_sgd::nn::forward(&final_model, &x, true);
        hetero_sgd::nn::loss(pass.probs(), labels.as_targets(), spec.loss)
    };
    assert!(after < before, "loss {before} -> {after}");
}
