//! Workspace-level property tests on the framework's core invariants.

use hetero_sgd::core::adaptive::{AdaptiveController, WorkerBatchState};
use hetero_sgd::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invariant (Algorithm 2): whatever the update-report sequence, every
    /// granted batch size stays within its worker's thresholds.
    #[test]
    fn adaptive_batches_respect_thresholds(
        reports in prop::collection::vec((0usize..3, 0.0f64..100.0), 1..200),
        alpha in 1.1f64..8.0,
    ) {
        let mut c = AdaptiveController::new(
            alpha,
            true,
            vec![
                WorkerBatchState::new(8, 8, 512),
                WorkerBatchState::new(512, 64, 512),
                WorkerBatchState::new(64, 16, 1024),
            ],
        );
        for (w, delta) in reports {
            c.report_updates(w, delta);
            let b = c.on_request(w);
            let (lo, hi) = match w {
                0 => (8, 512),
                1 => (64, 512),
                _ => (16, 1024),
            };
            prop_assert!((lo..=hi).contains(&b), "worker {w} got batch {b}");
        }
    }

    /// The batch scheduler partitions each epoch exactly: served example
    /// counts per epoch equal the dataset size, regardless of the request
    /// size sequence.
    #[test]
    fn scheduler_serves_each_epoch_exactly_once(
        n in 1usize..500,
        sizes in prop::collection::vec(1usize..100, 1..50),
    ) {
        let mut s = BatchScheduler::new(n, Some(1));
        let mut seen = vec![false; n];
        let mut i = 0;
        while let Some(range) = s.next_batch(sizes[i % sizes.len()]) {
            for (r, s) in seen.iter_mut().enumerate().take(range.end).skip(range.start) {
                prop_assert!(!*s, "example {r} served twice");
                *s = true;
            }
            i += 1;
        }
        prop_assert!(seen.iter().all(|&v| v), "epoch incomplete");
    }

    /// SGD on the shared model: interleaving racy and atomic updates from
    /// one thread gives exactly the sequential result.
    #[test]
    fn shared_model_sequential_updates_exact(
        etas in prop::collection::vec(0.0001f32..0.1, 1..20),
    ) {
        let spec = MlpSpec::tiny(4, 2);
        let mut reference = Model::new(spec.clone(), InitScheme::Xavier, 3);
        let shared = SharedModel::new(&reference);
        let mut grad = Model::zeros_like(&spec);
        grad.layers_mut()[0].w.set(0, 0, 1.0);
        grad.layers_mut()[1].b[0] = -0.5;
        for (i, &eta) in etas.iter().enumerate() {
            if i % 2 == 0 {
                shared.apply_gradient_racy(&grad, eta);
            } else {
                shared.apply_gradient_atomic(&grad, eta);
            }
            reference.apply_gradient(&grad, eta);
        }
        let got = shared.snapshot().flatten();
        let want = reference.flatten();
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-5, "{g} vs {w}");
        }
    }

    /// Loss normalization is scale-invariant in the basis.
    #[test]
    fn normalized_curves_scale(basis in 0.01f32..10.0) {
        let r = TrainResult {
            algorithm: "t".into(),
            dataset: "d".into(),
            loss_curve: vec![
                LossPoint { time: 0.0, epochs: 0.0, loss: basis * 3.0, accuracy: 0.0 },
                LossPoint { time: 1.0, epochs: 1.0, loss: basis, accuracy: 0.0 },
            ],
            workers: vec![],
            duration: 1.0,
            epochs: 1.0,
            trace_path: None,
            requeued_batches: 0,
            aborted: None,
            measured_beta: None,
            staleness: None,
            health: None,
        };
        let n = r.normalized_curve(basis);
        prop_assert!((n[0].loss - 3.0).abs() < 1e-3);
        prop_assert!((n[1].loss - 1.0).abs() < 1e-4);
    }

    /// Synthetic generation is a pure function of its config.
    #[test]
    fn synth_pure_function(seed in any::<u64>()) {
        let cfg = SynthConfig::small(30, 5, 2, seed);
        prop_assert_eq!(cfg.generate().x, cfg.generate().x);
    }
}
