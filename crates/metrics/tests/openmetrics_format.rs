//! Strict line-format conformance of the OpenMetrics exporter, checked
//! against a *live* hub populated the way the engines populate it (every
//! metric kind, several workers, counters and gauges from the trace sink)
//! — plus tamper tests proving the validator actually rejects each class
//! of malformation it claims to (a validator that accepts everything
//! would pass the happy-path test too).

use hetero_metrics::{render, validate_openmetrics, Metric, MetricsHub, GLOBAL_WORKER};
use hetero_trace::{TraceSink, DEFAULT_RING_CAPACITY};

/// A sink + hub shaped like a real threaded-engine run: 2 CPU workers and
/// a GPU worker with every metric family populated.
fn live_exposition() -> String {
    let sink = TraceSink::wall(DEFAULT_RING_CAPACITY);
    sink.counter("engine.requeues").add(3);
    sink.counter("worker.0.faults").add(1);
    sink.gauge("engine.loss").set(0.625);
    sink.gauge("engine.beta_measured").set(0.9998);
    sink.gauge("worker.0.updates").set(1234.0);

    let hub = MetricsHub::new();
    for worker in 0..2 {
        let lat = hub.histogram(Metric::BatchLatency, worker);
        let wait = hub.histogram(Metric::QueueWait, worker);
        let stale = hub.histogram(Metric::Staleness, worker);
        for i in 0..200u64 {
            lat.record(50_000 + i * 731);
            wait.record(i * 97);
            stale.record(i % 7);
        }
    }
    let gpu = 2u32;
    for (m, scale) in [
        (Metric::H2d, 11_000u64),
        (Metric::D2h, 7_000),
        (Metric::MergeWait, 23_000),
        (Metric::MergeRetries, 1),
    ] {
        let h = hub.histogram(m, gpu);
        for i in 0..64u64 {
            h.record(i * scale);
        }
    }
    hub.histogram(Metric::Staleness, GLOBAL_WORKER).record(2);
    render(&sink, &hub)
}

#[test]
fn live_exposition_is_strictly_valid() {
    let text = live_exposition();
    validate_openmetrics(&text).expect("live exposition must validate");

    // Every populated family is present with the right type and units.
    for family in [
        "# TYPE hetero_batch_latency_seconds histogram",
        "# TYPE hetero_queue_wait_seconds histogram",
        "# TYPE hetero_h2d_transfer_seconds histogram",
        "# TYPE hetero_d2h_transfer_seconds histogram",
        "# TYPE hetero_merge_wait_seconds histogram",
        "# TYPE hetero_merge_retries histogram",
        "# TYPE hetero_staleness histogram",
    ] {
        assert!(text.contains(family), "missing {family:?}");
    }
    // Counters end in _total, gauges are bare.
    assert!(text.contains("hetero_engine_requeues_total 3"));
    assert!(text.contains("hetero_engine_loss 0.625"));
    // Worker labels survive the trip.
    assert!(text.contains("worker=\"0\""));
    assert!(text.contains("worker=\"1\""));
    assert!(text.contains("le=\"+Inf\""));
    assert!(text.ends_with("# EOF\n"));
}

#[test]
fn every_line_matches_the_grammar() {
    // Belt-and-braces line scan independent of the validator's own
    // bookkeeping: each line is a comment (`# HELP|TYPE|EOF ...`) or a
    // `name{labels} value` sample with a parseable finite value.
    let text = live_exposition();
    for line in text.lines() {
        assert!(!line.is_empty(), "blank line in exposition");
        if let Some(rest) = line.strip_prefix("# ") {
            assert!(
                rest == "EOF" || rest.starts_with("HELP ") || rest.starts_with("TYPE "),
                "unknown comment form: {line:?}"
            );
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample needs a value");
        let name = series.split('{').next().unwrap();
        assert!(
            name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                && name.starts_with(|c: char| c.is_ascii_alphabetic() || c == '_'),
            "bad metric name in {line:?}"
        );
        let v: f64 = value.parse().expect("unparseable sample value");
        assert!(v.is_finite(), "non-finite value in {line:?}");
    }
}

/// Each tamper must flip the live exposition from valid to rejected.
#[test]
fn validator_rejects_each_malformation_class() {
    let text = live_exposition();
    validate_openmetrics(&text).expect("baseline must validate");

    let tampered: Vec<(&str, String)> = vec![
        ("missing EOF", text.replace("# EOF\n", "")),
        (
            "no trailing newline",
            text.trim_end_matches('\n').to_string(),
        ),
        (
            "counter sample without _total",
            text.replace("hetero_engine_requeues_total 3", "hetero_engine_requeues 3"),
        ),
        (
            "non-finite value",
            text.replace("hetero_engine_loss 0.625", "hetero_engine_loss NaN"),
        ),
        (
            "negative counter",
            text.replace(
                "hetero_engine_requeues_total 3",
                "hetero_engine_requeues_total -3",
            ),
        ),
        ("TYPE after samples (family split)", {
            // Duplicate a whole family block at the end, re-opening a
            // closed family.
            let block: String = text
                .lines()
                .filter(|l| l.contains("hetero_engine_loss"))
                .map(|l| format!("{l}\n"))
                .collect();
            text.replace("# EOF\n", &format!("{block}# EOF\n"))
        }),
        (
            "le ladder not ending at +Inf",
            text.replace("le=\"+Inf\"", "le=\"9999999\""),
        ),
        (
            "bad label quoting",
            text.replacen("worker=\"0\"", "worker=0", 1),
        ),
        (
            "garbage line",
            text.replace("# EOF\n", "!!! not a metric\n# EOF\n"),
        ),
    ];
    for (what, bad) in tampered {
        assert_ne!(bad, text, "tamper {what:?} did not change the text");
        assert!(
            validate_openmetrics(&bad).is_err(),
            "validator accepted exposition with {what}"
        );
    }
}

#[test]
fn exposition_is_stable_across_renders_of_a_quiet_hub() {
    // Export order is deterministic (sorted by metric, then worker), so
    // two renders of an idle hub are byte-identical — scrapes see stable
    // series identities.
    let hub = MetricsHub::new();
    let sink = TraceSink::wall(DEFAULT_RING_CAPACITY);
    sink.counter("engine.requeues").add(1);
    for w in [3u32, 1, 2] {
        hub.histogram(Metric::BatchLatency, w)
            .record(1000 * (w as u64 + 1));
    }
    let a = render(&sink, &hub);
    let b = render(&sink, &hub);
    assert_eq!(a, b);
    // Worker label order is sorted regardless of registration order.
    let pos = |needle: &str| a.find(needle).expect(needle);
    assert!(pos("worker=\"1\"") < pos("worker=\"2\""));
    assert!(pos("worker=\"2\"") < pos("worker=\"3\""));
}
