//! Property tests for the log-bucketed histogram: merging is a faithful,
//! associative concatenation of recordings, and quantiles stay within the
//! advertised one-bucket error bound of the exact order statistics.

use hetero_metrics::{bucket_index, LogHistogram, SUB_BITS};
use proptest::prelude::*;

/// Exact `q`-quantile of `values` under the histogram's rank convention:
/// the ⌈q·n⌉-th smallest observation (1-indexed, rank floored at 1).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

/// A value drawn log-uniformly across the whole `u64` range, so the cases
/// exercise the exact sub-linear buckets and many different octaves rather
/// than clustering in the top few (uniform `u64` would almost always land
/// in the last octave).
fn log_uniform() -> impl Strategy<Value = u64> {
    (0u32..64, any::<u64>()).prop_map(|(bits, raw)| if bits == 0 { 0 } else { raw >> (64 - bits) })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging two histograms is indistinguishable from recording both
    /// value streams into one histogram.
    #[test]
    fn merge_equals_concatenated_recording(
        a in prop::collection::vec(log_uniform(), 0..300),
        b in prop::collection::vec(log_uniform(), 0..300),
    ) {
        let (ha, hb, hall) = (LogHistogram::new(), LogHistogram::new(), LogHistogram::new());
        for &v in &a {
            ha.record(v);
            hall.record(v);
        }
        for &v in &b {
            hb.record(v);
            hall.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.snapshot(), hall.snapshot());
    }

    /// Snapshot merge is associative and commutative, with `empty()` as
    /// the identity — per-worker series can be aggregated in any order.
    #[test]
    fn snapshot_merge_is_associative_and_commutative(
        a in prop::collection::vec(log_uniform(), 0..200),
        b in prop::collection::vec(log_uniform(), 0..200),
        c in prop::collection::vec(log_uniform(), 0..200),
    ) {
        let snap = |vals: &[u64]| {
            let h = LogHistogram::new();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let (sa, sb, sc) = (snap(&a), snap(&b), snap(&c));

        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a ⊕ (b ⊕ c)
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // b ⊕ a == a ⊕ b
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);

        // identity
        let mut with_empty = sa.clone();
        with_empty.merge(&hetero_metrics::HistogramSnapshot::empty());
        prop_assert_eq!(&with_empty, &sa);
    }

    /// Every reported quantile is within one bucket width of the exact
    /// order statistic computed by sorting: `|est - exact| ≤ max(1,
    /// exact·2^-SUB_BITS)` — the "~1% relative error" contract.
    #[test]
    fn quantile_within_one_bucket_of_exact_sort(
        mut values in prop::collection::vec(log_uniform(), 1..500),
        qs in prop::collection::vec(0.0f64..=1.0, 1..8),
    ) {
        let h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let snap = h.snapshot();
        for q in qs {
            let exact = exact_quantile(&values, q);
            let est = snap.quantile(q);
            // Same-bucket check is the sharp form of the bound…
            prop_assert_eq!(
                bucket_index(est.min(snap.max())),
                bucket_index(exact),
                "q={} est={} exact={}", q, est, exact
            );
            // …and the advertised numeric bound follows from it.
            let bound = 1.max(exact >> SUB_BITS);
            prop_assert!(
                est.abs_diff(exact) <= bound,
                "q={}: |{} - {}| > {}", q, est, exact, bound
            );
        }
    }

    /// count/sum/max of a snapshot match the recorded stream exactly.
    #[test]
    fn snapshot_totals_are_exact(values in prop::collection::vec(log_uniform(), 0..400)) {
        let h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count(), values.len() as u64);
        prop_assert_eq!(snap.sum(), values.iter().copied().fold(0u64, u64::wrapping_add));
        prop_assert_eq!(snap.max(), values.iter().copied().max().unwrap_or(0));
    }
}
