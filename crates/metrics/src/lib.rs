//! `hetero-scope` (`hetero-metrics`): aggregated live metrics for the
//! heterogeneous CPU+GPU training stack.
//!
//! PR 1's `hetero-trace` records raw events; this crate adds the
//! *aggregation* layer the paper actually reasons about:
//!
//! - [`LogHistogram`]: lock-free, allocation-free-on-record, mergeable
//!   log-bucketed histograms (≤1% relative quantile error);
//! - [`MetricsHub`]: per-worker histogram registry the engines tick with
//!   batch latency, queue wait, H2D/D2H transfer time, merge contention,
//!   and per-update gradient staleness;
//! - [`openmetrics`]: an OpenMetrics text exporter over the trace
//!   counters/gauges plus the hub's histograms, with a strict format
//!   validator and an optional `std::net::TcpListener` scrape endpoint
//!   ([`ScrapeServer`]) — no async runtime;
//! - [`render_dashboard`]: a live TTY dashboard frame (per-worker
//!   updates/s, batch sizes, staleness quantiles, utilization bars)
//!   driven by `examples/dashboard_run.rs`.
//!
//! ```
//! use hetero_metrics::{Metric, MetricsHub};
//!
//! let hub = MetricsHub::new();
//! let latency = hub.histogram(Metric::BatchLatency, 0);
//! latency.record_secs(0.0015); // stored as nanoseconds
//! let summary = hub.summary(Metric::BatchLatency).unwrap();
//! assert_eq!(summary.count, 1);
//! ```

#![warn(missing_docs)]

mod dashboard;
mod histogram;
mod hub;

pub mod openmetrics;
pub mod server;

pub use dashboard::{render_dashboard, DashboardFrame, WorkerRow};
pub use histogram::{
    bucket_index, bucket_lower, bucket_mid, bucket_width, HistogramSnapshot, LogHistogram, Summary,
    NUM_BUCKETS, SUB_BITS,
};
pub use hub::{HistHandle, HistogramSeries, HubSnapshot, Metric, MetricsHub, GLOBAL_WORKER};
pub use openmetrics::{render, validate_openmetrics};
pub use server::ScrapeServer;
