//! Minimal OpenMetrics scrape endpoint over `std::net::TcpListener`.
//!
//! No async runtime, no HTTP library: one background thread accepts
//! connections, reads the request head (best-effort), and answers every
//! request with a freshly rendered exposition from the caller-supplied
//! closure. Good enough for a Prometheus scraper or a one-shot `curl`
//! during a training run; not a general web server.
//!
//! Shutdown is cooperative: [`ScrapeServer`]'s `Drop` sets a flag and
//! connects to its own listener to unblock `accept`, then joins the
//! thread — no detached threads survive the server.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Produces the exposition body for each scrape.
pub type RenderFn = Arc<dyn Fn() -> String + Send + Sync>;

/// A running scrape endpoint. Dropping it shuts the listener down and
/// joins the serving thread.
pub struct ScrapeServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ScrapeServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serve
    /// `render()` to every request.
    pub fn bind(addr: &str, render: RenderFn) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name("hetero-scrape".into())
            .spawn(move || serve(listener, flag, render))?;
        Ok(ScrapeServer {
            addr: local,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        // Relaxed store + a wake-up connection: the serving thread re-reads
        // the flag after every accept, and the join below is the real
        // synchronization point; the flag itself publishes no other memory.
        self.shutdown.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn serve(listener: TcpListener, shutdown: Arc<AtomicBool>, render: RenderFn) {
    for stream in listener.incoming() {
        // Relaxed load: see the justification at the store in `drop`.
        if shutdown.load(Ordering::Relaxed) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
        // Drain the request head so well-behaved clients see a clean
        // exchange; ignore errors — we answer regardless.
        let mut buf = [0u8; 4096];
        let mut head = Vec::new();
        loop {
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    head.extend_from_slice(&buf[..n]);
                    if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 16 * 1024 {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        let body = render();
        let response = format!(
            "HTTP/1.0 200 OK\r\n\
             Content-Type: application/openmetrics-text; version=1.0.0; charset=utf-8\r\n\
             Content-Length: {}\r\n\
             Connection: close\r\n\r\n{}",
            body.len(),
            body
        );
        let _ = write_fully(&mut stream, response.as_bytes());
        let _ = stream.flush();
    }
}

/// Write the whole buffer, retrying short and interrupted writes.
///
/// `Write::write_all` gives up on the first `WouldBlock`/`TimedOut`, which
/// a socket carrying a large exposition can hit mid-body once the kernel
/// buffer fills faster than a slow scraper drains it. Retry those (bounded,
/// so a dead peer cannot wedge the serving thread) and keep going from
/// wherever the short write stopped.
fn write_fully(stream: &mut TcpStream, mut buf: &[u8]) -> std::io::Result<()> {
    use std::io::ErrorKind;
    let mut stalls = 0u32;
    while !buf.is_empty() {
        match stream.write(buf) {
            Ok(0) => return Err(std::io::Error::new(ErrorKind::WriteZero, "peer closed")),
            Ok(n) => {
                buf = &buf[n..];
                stalls = 0;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e)
                if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
                    && stalls < 20 =>
            {
                stalls += 1;
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape(addr: SocketAddr) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_rendered_body_and_shuts_down() {
        let server = ScrapeServer::bind(
            "127.0.0.1:0",
            Arc::new(|| "# HELP hetero_x x\n# TYPE hetero_x gauge\nhetero_x 1\n# EOF\n".into()),
        )
        .unwrap();
        let addr = server.local_addr();
        let response = scrape(addr);
        assert!(response.starts_with("HTTP/1.0 200 OK"));
        assert!(response.contains("application/openmetrics-text"));
        assert!(response.ends_with("# EOF\n"));
        // A second scrape re-renders.
        assert!(scrape(addr).contains("hetero_x 1"));
        drop(server);
        // After drop the port no longer serves.
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err()
                || TcpStream::connect(addr)
                    .and_then(|mut s| {
                        let mut b = String::new();
                        s.read_to_string(&mut b).map(|_| b.is_empty())
                    })
                    .unwrap_or(true)
        );
    }

    #[test]
    fn serves_multi_megabyte_body_intact() {
        // A body far larger than any kernel socket buffer, so the serving
        // thread is forced through short writes that `write_fully` must
        // stitch back together.
        let line = "hetero_big{series=\"0123456789abcdef\"} 1\n";
        let big = line.repeat(120_000);
        let expected_len = big.len() + "# EOF\n".len();
        assert!(expected_len > 4 << 20);
        let server =
            ScrapeServer::bind("127.0.0.1:0", Arc::new(move || format!("{big}# EOF\n"))).unwrap();
        let response = scrape(server.local_addr());
        let body = response
            .split("\r\n\r\n")
            .nth(1)
            .expect("header/body split");
        assert_eq!(body.len(), expected_len, "body truncated by a short write");
        assert!(body.ends_with("# EOF\n"));
        assert!(response.contains(&format!("Content-Length: {expected_len}")));
    }
}
