//! The [`MetricsHub`]: per-worker histogram registry the engines tick.
//!
//! Mirrors the `hetero-trace` sink design: a hub is either *disabled* (the
//! default — every operation is a no-op and handles are empty so the hot
//! path costs one branch) or *enabled*, in which case
//! [`MetricsHub::histogram`] lazily registers a [`LogHistogram`] per
//! `(metric, worker)` pair and returns a pre-resolved [`HistHandle`]. The
//! registry lock is only taken at handle-resolution time (engine startup);
//! the record path touches nothing but the histogram's own atomics.

use crate::histogram::{HistogramSnapshot, LogHistogram, Summary};
use parking_lot::RwLock;
use std::sync::Arc;

/// Worker id used for hub series that are not attributable to a single
/// worker (e.g. merge contention sampled inside `SharedModel`).
pub const GLOBAL_WORKER: u32 = u32::MAX;

/// The distributional quantities the engines aggregate (DESIGN.md §4g).
///
/// Durations are recorded in **nanoseconds**; `Staleness` and
/// `MergeRetries` are raw counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Wall/virtual time a worker spent computing one batch (ns).
    BatchLatency,
    /// Time a worker waited on its work queue between batches (ns).
    QueueWait,
    /// Host-to-device transfer time per upload (ns).
    H2d,
    /// Device-to-host transfer time per download (ns).
    D2h,
    /// Time spent inside `SharedModel::merge_delta_scaled` per merge (ns).
    MergeWait,
    /// CAS retries incurred merging one delta (count; contention measure).
    MergeRetries,
    /// Gradient staleness per applied update: shared-model version at merge
    /// minus version at read (count of interleaved foreign updates).
    Staleness,
    /// Wall time spent publishing one crash-consistency checkpoint:
    /// serialize + write + fsync + atomic rename (ns).
    CkptWrite,
}

impl Metric {
    /// Every metric, in export order.
    pub const ALL: [Metric; 8] = [
        Metric::BatchLatency,
        Metric::QueueWait,
        Metric::H2d,
        Metric::D2h,
        Metric::MergeWait,
        Metric::MergeRetries,
        Metric::Staleness,
        Metric::CkptWrite,
    ];

    /// Stable snake_case name (without unit suffix).
    pub fn name(&self) -> &'static str {
        match self {
            Metric::BatchLatency => "batch_latency",
            Metric::QueueWait => "queue_wait",
            Metric::H2d => "h2d_transfer",
            Metric::D2h => "d2h_transfer",
            Metric::MergeWait => "merge_wait",
            Metric::MergeRetries => "merge_retries",
            Metric::Staleness => "staleness",
            Metric::CkptWrite => "ckpt_write",
        }
    }

    /// One-line help text for the OpenMetrics exporter.
    pub fn help(&self) -> &'static str {
        match self {
            Metric::BatchLatency => "Per-batch compute latency per worker",
            Metric::QueueWait => "Time workers spent blocked on their work queue",
            Metric::H2d => "Host-to-device transfer time per upload",
            Metric::D2h => "Device-to-host transfer time per download",
            Metric::MergeWait => "Time spent merging a delta into the shared model",
            Metric::MergeRetries => "CAS retries per shared-model merge (contention)",
            Metric::Staleness => "Foreign updates between gradient read and merge",
            Metric::CkptWrite => "Wall time publishing one crash-consistency checkpoint",
        }
    }

    /// Whether recorded values are nanoseconds (exported as seconds) or
    /// plain counts.
    pub fn is_duration(&self) -> bool {
        !matches!(self, Metric::MergeRetries | Metric::Staleness)
    }
}

/// Registered series, keyed by (metric, worker).
type SeriesTable = Vec<((Metric, u32), Arc<LogHistogram>)>;

struct HubInner {
    // Linear scan keyed by (metric, worker): resolved once per worker at
    // engine startup, so O(n) lookup under a short write lock is fine.
    series: RwLock<SeriesTable>,
}

/// Engine-facing histogram registry. Cheap to clone (an `Arc` — or nothing
/// at all when disabled); share one per run.
#[derive(Clone)]
pub struct MetricsHub {
    inner: Option<Arc<HubInner>>,
}

impl MetricsHub {
    /// A no-op hub: handle resolution returns empty handles, recording is
    /// a single branch, snapshots are empty.
    pub fn disabled() -> Self {
        MetricsHub { inner: None }
    }

    /// A live hub.
    pub fn new() -> Self {
        MetricsHub {
            inner: Some(Arc::new(HubInner {
                series: RwLock::new(Vec::new()),
            })),
        }
    }

    /// Whether this hub records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Resolve (registering on first use) the histogram for `metric` on
    /// `worker`. Call once per worker outside the hot loop and keep the
    /// returned handle; recording through it is lock-free.
    pub fn histogram(&self, metric: Metric, worker: u32) -> HistHandle {
        let Some(inner) = &self.inner else {
            return HistHandle { hist: None };
        };
        {
            let series = inner.series.read();
            if let Some((_, h)) = series.iter().find(|(k, _)| *k == (metric, worker)) {
                return HistHandle {
                    hist: Some(Arc::clone(h)),
                };
            }
        }
        let mut series = inner.series.write();
        if let Some((_, h)) = series.iter().find(|(k, _)| *k == (metric, worker)) {
            return HistHandle {
                hist: Some(Arc::clone(h)),
            };
        }
        let h = Arc::new(LogHistogram::new());
        series.push(((metric, worker), Arc::clone(&h)));
        HistHandle { hist: Some(h) }
    }

    /// Point-in-time copy of every registered series, sorted by
    /// (export order, worker) for deterministic rendering.
    pub fn snapshot(&self) -> HubSnapshot {
        let mut series: Vec<HistogramSeries> = match &self.inner {
            None => Vec::new(),
            Some(inner) => inner
                .series
                .read()
                .iter()
                .map(|((metric, worker), h)| HistogramSeries {
                    metric: *metric,
                    worker: *worker,
                    snapshot: h.snapshot(),
                })
                .collect(),
        };
        series.sort_by_key(|s| {
            let order = Metric::ALL.iter().position(|m| *m == s.metric).unwrap_or(0);
            (order, s.worker)
        });
        HubSnapshot { series }
    }

    /// Cross-worker summary of one metric, or `None` when the hub is
    /// disabled or the metric has no observations.
    pub fn summary(&self, metric: Metric) -> Option<Summary> {
        let merged = self.snapshot().merged(metric)?;
        if merged.count() == 0 {
            return None;
        }
        Some(merged.summary())
    }
}

impl Default for MetricsHub {
    fn default() -> Self {
        Self::disabled()
    }
}

impl std::fmt::Debug for MetricsHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsHub")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// Pre-resolved recording handle for one `(metric, worker)` series.
/// Cloneable and `Sync`: rayon lanes inside one worker may share it.
#[derive(Clone)]
pub struct HistHandle {
    hist: Option<Arc<LogHistogram>>,
}

impl HistHandle {
    /// A handle that records nowhere (what a disabled hub hands out).
    pub fn disabled() -> Self {
        HistHandle { hist: None }
    }

    /// Whether recording through this handle is a no-op.
    pub fn is_disabled(&self) -> bool {
        self.hist.is_none()
    }

    /// Record one observation (no-op when disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.hist {
            h.record(v);
        }
    }

    /// Record a duration in seconds, stored as whole nanoseconds.
    #[inline]
    pub fn record_secs(&self, secs: f64) {
        if self.hist.is_some() && secs >= 0.0 {
            self.record((secs * 1e9) as u64);
        }
    }
}

impl std::fmt::Debug for HistHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistHandle")
            .field("enabled", &self.hist.is_some())
            .finish()
    }
}

/// One `(metric, worker)` series in a [`HubSnapshot`].
#[derive(Debug, Clone)]
pub struct HistogramSeries {
    /// Which quantity.
    pub metric: Metric,
    /// Which worker recorded it ([`GLOBAL_WORKER`] for unattributed series).
    pub worker: u32,
    /// The data.
    pub snapshot: HistogramSnapshot,
}

/// Point-in-time copy of an entire hub.
#[derive(Debug, Clone, Default)]
pub struct HubSnapshot {
    /// Every registered series, deterministically ordered.
    pub series: Vec<HistogramSeries>,
}

impl HubSnapshot {
    /// Merge every worker's series for `metric` into one aggregate
    /// snapshot; `None` if no worker registered it.
    pub fn merged(&self, metric: Metric) -> Option<HistogramSnapshot> {
        let mut out: Option<HistogramSnapshot> = None;
        for s in self.series.iter().filter(|s| s.metric == metric) {
            out.get_or_insert_with(HistogramSnapshot::empty)
                .merge(&s.snapshot);
        }
        out
    }

    /// The per-worker series for `(metric, worker)`, if registered.
    pub fn series_for(&self, metric: Metric, worker: u32) -> Option<&HistogramSnapshot> {
        self.series
            .iter()
            .find(|s| s.metric == metric && s.worker == worker)
            .map(|s| &s.snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hub_is_a_noop() {
        let hub = MetricsHub::disabled();
        assert!(!hub.is_enabled());
        let h = hub.histogram(Metric::BatchLatency, 0);
        assert!(h.is_disabled());
        h.record(42);
        h.record_secs(0.5);
        assert!(hub.snapshot().series.is_empty());
        assert!(hub.summary(Metric::BatchLatency).is_none());
    }

    #[test]
    fn handles_resolve_to_the_same_series() {
        let hub = MetricsHub::new();
        let a = hub.histogram(Metric::Staleness, 3);
        let b = hub.histogram(Metric::Staleness, 3);
        a.record(10);
        b.record(20);
        let snap = hub.snapshot();
        assert_eq!(snap.series.len(), 1);
        assert_eq!(snap.series_for(Metric::Staleness, 3).unwrap().count(), 2);
    }

    #[test]
    fn merged_aggregates_across_workers() {
        let hub = MetricsHub::new();
        hub.histogram(Metric::QueueWait, 0).record(100);
        hub.histogram(Metric::QueueWait, 1).record(300);
        hub.histogram(Metric::BatchLatency, 0).record(7);
        let merged = hub.snapshot().merged(Metric::QueueWait).unwrap();
        assert_eq!(merged.count(), 2);
        assert_eq!(merged.sum(), 400);
        let s = hub.summary(Metric::QueueWait).unwrap();
        assert_eq!(s.count, 2);
        assert!(hub.summary(Metric::D2h).is_none());
    }

    #[test]
    fn record_secs_converts_to_nanoseconds() {
        let hub = MetricsHub::new();
        let h = hub.histogram(Metric::H2d, 0);
        h.record_secs(1.5e-6);
        let snap = hub.snapshot();
        let s = snap.series_for(Metric::H2d, 0).unwrap();
        assert_eq!(s.count(), 1);
        assert_eq!(s.sum(), 1500);
    }
}
