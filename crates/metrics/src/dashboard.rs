//! Live TTY dashboard: per-worker throughput, batch sizes, staleness
//! quantiles, and utilization bars, rendered as an in-place-refreshing
//! text frame.
//!
//! The engines publish per-worker live gauges under the naming contract
//! documented on [`DashboardFrame::collect`]; the dashboard is a pure
//! reader — it snapshots the sink's gauge registry and the hub's
//! histograms, derives rates by diffing against the previous frame, and
//! renders a string. `examples/dashboard_run.rs` drives it on a timer.

use crate::hub::{HubSnapshot, Metric, MetricsHub};
use hetero_trace::TraceSink;
use std::fmt::Write as _;

/// One worker's row in a frame.
#[derive(Debug, Clone)]
pub struct WorkerRow {
    /// Worker index (CPU socket first, then GPUs — engine order).
    pub worker: u32,
    /// `"cpu"` or `"gpu"` (from the `worker.<w>.kind` gauge; 0 = CPU).
    pub kind: &'static str,
    /// Credited updates so far (`t·β` for CPU batches).
    pub updates: f64,
    /// Current batch size (shows Algorithm 2's doubling/halving live).
    pub batch: usize,
    /// Examples processed so far.
    pub examples: f64,
    /// Cumulative busy seconds (drives the utilization bar).
    pub busy_secs: f64,
    /// Median gradient staleness (foreign updates between read and merge).
    pub staleness_p50: f64,
    /// 99th-percentile gradient staleness.
    pub staleness_p99: f64,
}

/// Everything one dashboard refresh shows.
#[derive(Debug, Clone, Default)]
pub struct DashboardFrame {
    /// Seconds since the run started (caller's clock).
    pub elapsed: f64,
    /// Latest evaluated loss (`engine.loss` gauge; NaN until first eval).
    pub loss: f64,
    /// Fractional epochs completed (`engine.epochs` gauge).
    pub epochs: f64,
    /// Measured surviving-update fraction β̂ (`engine.beta_measured`
    /// gauge), if the run measures it.
    pub measured_beta: Option<f64>,
    /// Per-worker rows, sorted by worker index.
    pub rows: Vec<WorkerRow>,
}

impl DashboardFrame {
    /// Snapshot the sink's gauges and the hub's histograms into a frame.
    ///
    /// Gauge naming contract (what the engines publish when a sink is
    /// attached): `worker.<w>.kind` (0 = CPU, 1 = GPU), `worker.<w>.updates`,
    /// `worker.<w>.batch`, `worker.<w>.examples`, `worker.<w>.busy_secs`,
    /// plus run-level `engine.loss`, `engine.epochs`, and (measured-β runs)
    /// `engine.beta_measured`. Staleness quantiles come from the hub's
    /// [`Metric::Staleness`] series.
    pub fn collect(sink: &TraceSink, hub: &MetricsHub, elapsed: f64) -> DashboardFrame {
        let typed = sink.snapshot_typed();
        let hub_snap = hub.snapshot();
        let mut frame = DashboardFrame {
            elapsed,
            loss: f64::NAN,
            epochs: 0.0,
            measured_beta: None,
            rows: Vec::new(),
        };
        let row = |frame: &mut DashboardFrame, w: u32| -> usize {
            match frame.rows.iter().position(|r| r.worker == w) {
                Some(i) => i,
                None => {
                    frame.rows.push(WorkerRow {
                        worker: w,
                        kind: "cpu",
                        updates: 0.0,
                        batch: 0,
                        examples: 0.0,
                        busy_secs: 0.0,
                        staleness_p50: 0.0,
                        staleness_p99: 0.0,
                    });
                    frame.rows.len() - 1
                }
            }
        };
        for (name, value) in &typed.gauges {
            let parts: Vec<&str> = name.split('.').collect();
            match parts.as_slice() {
                ["engine", "loss"] => frame.loss = *value,
                ["engine", "epochs"] => frame.epochs = *value,
                ["engine", "beta_measured"] => frame.measured_beta = Some(*value),
                ["worker", w, field] => {
                    let Ok(w) = w.parse::<u32>() else { continue };
                    let i = row(&mut frame, w);
                    match *field {
                        "kind" => frame.rows[i].kind = if *value >= 1.0 { "gpu" } else { "cpu" },
                        "updates" => frame.rows[i].updates = *value,
                        "batch" => frame.rows[i].batch = *value as usize,
                        "examples" => frame.rows[i].examples = *value,
                        "busy_secs" => frame.rows[i].busy_secs = *value,
                        _ => {}
                    }
                }
                _ => {}
            }
        }
        frame.attach_staleness(&hub_snap);
        frame.rows.sort_by_key(|r| r.worker);
        frame
    }

    fn attach_staleness(&mut self, hub: &HubSnapshot) {
        for r in &mut self.rows {
            if let Some(s) = hub.series_for(Metric::Staleness, r.worker) {
                if s.count() > 0 {
                    r.staleness_p50 = s.quantile(0.5) as f64;
                    r.staleness_p99 = s.quantile(0.99) as f64;
                }
            }
        }
    }
}

fn bar(frac: f64, width: usize) -> String {
    let frac = if frac.is_finite() {
        frac.clamp(0.0, 1.0)
    } else {
        0.0
    };
    let filled = (frac * width as f64).round() as usize;
    let mut s = String::with_capacity(width * 3);
    for i in 0..width {
        s.push(if i < filled { '█' } else { '·' });
    }
    s
}

/// Render a frame as text. `prev` (the previously rendered frame) enables
/// instantaneous updates/s; without it rates are cumulative averages.
/// With `ansi`, the frame repaints in place: cursor-home prefix,
/// clear-to-end-of-line on every row, clear-below at the end — print it
/// to a raw terminal and the dashboard refreshes without scrolling.
pub fn render_dashboard(
    frame: &DashboardFrame,
    prev: Option<&DashboardFrame>,
    ansi: bool,
) -> String {
    let (eol, mut out) = if ansi {
        ("\x1b[K", String::from("\x1b[H"))
    } else {
        ("", String::new())
    };
    let beta = frame
        .measured_beta
        .map_or(String::new(), |b| format!("  measured β {b:.4}"));
    let loss = if frame.loss.is_finite() {
        format!("{:.4}", frame.loss)
    } else {
        "—".to_string()
    };
    let _ = writeln!(
        out,
        "hetero-scope · t={:7.2}s  loss {loss}  epochs {:.2}{beta}{eol}",
        frame.elapsed, frame.epochs
    );
    let _ = writeln!(
        out,
        "{:>3} {:<4} {:>12} {:>9} {:>7} {:>11} {:>13}  {:<22}{eol}",
        "w", "kind", "updates", "up/s", "batch", "examples", "stale 50/99", "utilization"
    );
    let total_updates: f64 = frame.rows.iter().map(|r| r.updates).sum();
    for r in &frame.rows {
        let prev_row = prev.and_then(|p| p.rows.iter().find(|pr| pr.worker == r.worker));
        let rate = match (prev, prev_row) {
            (Some(p), Some(pr)) if frame.elapsed > p.elapsed => {
                (r.updates - pr.updates) / (frame.elapsed - p.elapsed)
            }
            _ if frame.elapsed > 0.0 => r.updates / frame.elapsed,
            _ => 0.0,
        };
        let util = if frame.elapsed > 0.0 {
            r.busy_secs / frame.elapsed
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{:>3} {:<4} {:>12.1} {:>9.1} {:>7} {:>11.0} {:>6.1}/{:<6.1}  [{}] {:>3.0}%{eol}",
            r.worker,
            r.kind,
            r.updates,
            rate.max(0.0),
            r.batch,
            r.examples,
            r.staleness_p50,
            r.staleness_p99,
            bar(util, 16),
            100.0 * util.clamp(0.0, 1.0)
        );
    }
    let _ = writeln!(
        out,
        "total credited updates {total_updates:.1} across {} workers{eol}",
        frame.rows.len()
    );
    if ansi {
        out.push_str("\x1b[J");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_trace::DEFAULT_RING_CAPACITY;

    #[test]
    fn collect_parses_the_gauge_contract() {
        let sink = TraceSink::wall(DEFAULT_RING_CAPACITY);
        sink.gauge("engine.loss").set(0.75);
        sink.gauge("engine.epochs").set(1.5);
        sink.gauge("engine.beta_measured").set(0.93);
        sink.gauge("worker.0.kind").set(0.0);
        sink.gauge("worker.0.updates").set(100.0);
        sink.gauge("worker.0.batch").set(56.0);
        sink.gauge("worker.0.examples").set(5600.0);
        sink.gauge("worker.0.busy_secs").set(0.5);
        sink.gauge("worker.1.kind").set(1.0);
        sink.gauge("worker.1.updates").set(10.0);
        let hub = MetricsHub::new();
        let h = hub.histogram(Metric::Staleness, 1);
        for v in [1u64, 2, 3, 4, 100] {
            h.record(v);
        }
        let frame = DashboardFrame::collect(&sink, &hub, 1.0);
        assert_eq!(frame.loss, 0.75);
        assert_eq!(frame.measured_beta, Some(0.93));
        assert_eq!(frame.rows.len(), 2);
        assert_eq!(frame.rows[0].kind, "cpu");
        assert_eq!(frame.rows[0].batch, 56);
        assert_eq!(frame.rows[1].kind, "gpu");
        assert!(frame.rows[1].staleness_p99 >= frame.rows[1].staleness_p50);
        assert!(frame.rows[1].staleness_p50 >= 1.0);
    }

    #[test]
    fn render_is_stable_and_refreshable() {
        let mut frame = DashboardFrame {
            elapsed: 2.0,
            loss: 0.5,
            epochs: 0.8,
            measured_beta: Some(0.99),
            rows: vec![WorkerRow {
                worker: 0,
                kind: "cpu",
                updates: 200.0,
                batch: 64,
                examples: 12800.0,
                busy_secs: 1.0,
                staleness_p50: 1.0,
                staleness_p99: 4.0,
            }],
        };
        let plain = render_dashboard(&frame, None, false);
        assert!(plain.contains("measured β 0.9900"));
        assert!(plain.contains("cpu"));
        assert!(!plain.contains('\x1b'));
        let prev = frame.clone();
        frame.elapsed = 3.0;
        frame.rows[0].updates = 500.0;
        let ansi = render_dashboard(&frame, Some(&prev), true);
        assert!(ansi.starts_with("\x1b[H"));
        assert!(ansi.ends_with("\x1b[J"));
        // Instantaneous rate: (500-200)/(3-2) = 300/s.
        assert!(ansi.contains("300.0"));
    }
}
