//! Lock-free log-bucketed histograms (HDR-style) with quantile queries.
//!
//! A [`LogHistogram`] covers the full `u64` range with a fixed number of
//! buckets: values below 2^[`SUB_BITS`] get one bucket each (exact), and
//! every octave above that is split into 2^[`SUB_BITS`] sub-buckets, so the
//! relative bucket width — and therefore the worst-case relative quantile
//! error — is bounded by 2^-[`SUB_BITS`] ≈ 0.78% < 1%.
//!
//! Design constraints (DESIGN.md §4g):
//!
//! - **Lock-free record path.** [`LogHistogram::record`] is a handful of
//!   relaxed `fetch_add`/`fetch_max` operations on a fixed array; any number
//!   of workers can record into the same histogram concurrently.
//! - **Allocation-free record path.** The bucket array is allocated once at
//!   construction (~58 KiB); recording never touches the heap, preserving
//!   the zero-steady-state-allocation guarantee of the math core (PR 4).
//!   Measured by `crates/bench/tests/alloc_metrics.rs`.
//! - **Mergeable.** Bucket counts are plain sums, so per-worker histograms
//!   merge associatively into cross-worker aggregates
//!   ([`HistogramSnapshot::merge`], property-tested).
//!
//! Values are raw `u64`s; callers pick the unit (the engines record
//! durations in nanoseconds and staleness/retries as raw counts — see
//! [`crate::hub::Metric`]).

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each octave is split into `2^SUB_BITS` buckets,
/// bounding relative error by `2^-SUB_BITS` (~0.78%).
pub const SUB_BITS: u32 = 7;

/// Buckets per octave (`2^SUB_BITS`).
const SUBS: usize = 1 << SUB_BITS;

/// Total bucket count covering all of `u64`:
/// one linear block for `v < 2^SUB_BITS` plus `64 - SUB_BITS` octave blocks.
pub const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUBS;

/// Index of the bucket containing `v`.
///
/// Values below `2^SUB_BITS` map to themselves (exact buckets); larger
/// values map to `(octave, top-SUB_BITS-mantissa-bits)`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    let s = SUB_BITS;
    if v < (1 << s) {
        v as usize
    } else {
        let e = 63 - v.leading_zeros();
        let base = ((e - s + 1) as usize) << s;
        let offset = ((v >> (e - s)) as usize) - SUBS;
        base + offset
    }
}

/// Inclusive lower bound of bucket `idx` (the smallest value mapping to it).
#[inline]
pub fn bucket_lower(idx: usize) -> u64 {
    if idx < SUBS {
        idx as u64
    } else {
        let block = (idx >> SUB_BITS) as u32; // 1..=64-SUB_BITS
        let e = block + SUB_BITS - 1;
        let offset = (idx & (SUBS - 1)) as u64;
        (SUBS as u64 + offset) << (e - SUB_BITS)
    }
}

/// Width of bucket `idx` (number of distinct values it covers).
#[inline]
pub fn bucket_width(idx: usize) -> u64 {
    if idx < SUBS {
        1
    } else {
        let block = (idx >> SUB_BITS) as u32;
        let e = block + SUB_BITS - 1;
        1 << (e - SUB_BITS)
    }
}

/// Representative value reported for bucket `idx` (its midpoint), used by
/// quantile queries. The true value lies in the same bucket, so the error
/// is at most one bucket width: `max(1, value * 2^-SUB_BITS)`.
#[inline]
pub fn bucket_mid(idx: usize) -> u64 {
    bucket_lower(idx) + bucket_width(idx) / 2
}

/// A fixed-size, lock-free, mergeable log-bucketed histogram.
///
/// See the module docs for the bucketing scheme and guarantees.
pub struct LogHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl LogHistogram {
    /// An empty histogram. Performs the one and only heap allocation
    /// (the bucket array); recording is allocation-free afterwards.
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        LogHistogram {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation. Lock-free and allocation-free: three relaxed
    /// `fetch_add`s and one relaxed `fetch_max` on pre-allocated atomics.
    #[inline]
    pub fn record(&self, v: u64) {
        // Relaxed: each bucket/total is an independent monotone tally; no
        // memory is published through them, and readers only need eventual
        // per-cell consistency (a snapshot mid-record may see the bucket
        // increment before the total, which `snapshot` tolerates by
        // recomputing the count from the buckets).
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total observations recorded so far.
    pub fn count(&self) -> u64 {
        // Relaxed: monotone tally, nothing is published through it.
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values (wraps on overflow of u64 — at nanosecond
    /// scale that is ~584 years of accumulated duration).
    pub fn sum(&self) -> u64 {
        // Relaxed: monotone tally, nothing is published through it.
        self.sum.load(Ordering::Relaxed)
    }

    /// Add every observation of `other` into `self` (lock-free; both sides
    /// may be recorded into concurrently — merging is a plain bucket sum).
    pub fn merge(&self, other: &LogHistogram) {
        // Relaxed: bucket counts are commutative tallies; see `record`.
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = src.load(Ordering::Relaxed);
            if n != 0 {
                dst.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        // Relaxed: same commutative-tally argument as the buckets above.
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time copy for queries. The count is
    /// recomputed from the buckets so quantile math is internally exact
    /// even if records raced the snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        // Relaxed: reading monotone tallies; exact cross-cell atomicity is
        // not required (see `record`).
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            // Relaxed: monotone tallies, same argument as the bucket loads.
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

/// An owned point-in-time copy of a [`LogHistogram`], for quantile and
/// cumulative queries and for merging per-worker series into aggregates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (identity element for [`merge`](Self::merge)).
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Per-bucket counts (length [`NUM_BUCKETS`]).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Merge `other` into `self` (plain bucket sums — associative and
    /// commutative, property-tested in `tests/histogram_props.rs`).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += *src;
        }
        self.count += other.count;
        // Wrapping to match `LogHistogram::record`'s fetch_add semantics
        // (the live histogram wraps sum at u64 by design; see `sum`).
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (`q` in [0, 1]), reported as the midpoint of the
    /// bucket holding the ⌈q·n⌉-th smallest observation. Error vs. the
    /// exact order statistic is at most one bucket width:
    /// `max(1, exact * 2^-SUB_BITS)`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_mid(idx).min(self.max);
            }
        }
        self.max
    }

    /// Number of observations with value ≤ `v`, up to bucket resolution:
    /// counts every bucket at or below the bucket containing `v`, so
    /// observations in `v`'s own bucket but above `v` are included. The
    /// result is monotone in `v` and exact at bucket boundaries — the
    /// OpenMetrics `le` ladders are built on this.
    pub fn count_le(&self, v: u64) -> u64 {
        let idx = bucket_index(v);
        self.buckets[..=idx].iter().sum()
    }

    /// Compact serializable summary (what `TrainResult` persists).
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            p50: self.quantile(0.50) as f64,
            p90: self.quantile(0.90) as f64,
            p99: self.quantile(0.99) as f64,
            max: self.max as f64,
        }
    }
}

/// Serializable distribution summary: what a histogram boils down to when a
/// `TrainResult` is written to `results/*.json`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Mean observation.
    pub mean: f64,
    /// Median (bucket-midpoint estimate, ≤1% relative error).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Exact maximum.
    pub max: f64,
}

impl Summary {
    /// Scale every value field by `s` (e.g. `1e-9` to convert a summary
    /// recorded in nanoseconds to seconds). `count` is unchanged.
    pub fn scaled(self, s: f64) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean * s,
            p50: self.p50 * s,
            p90: self.p90 * s,
            p99: self.p99 * s,
            max: self.max * s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(127), 127);
        assert_eq!(bucket_index(128), 128);
        assert_eq!(bucket_index(255), 255);
        assert_eq!(bucket_index(256), 256);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_invert_index() {
        for idx in [0, 1, 127, 128, 129, 255, 256, 1000, NUM_BUCKETS - 1] {
            let lo = bucket_lower(idx);
            let w = bucket_width(idx);
            assert_eq!(bucket_index(lo), idx, "lower bound of {idx}");
            assert_eq!(bucket_index(lo + (w - 1)), idx, "upper bound of {idx}");
            if let Some(next) = lo.checked_add(w) {
                assert_eq!(bucket_index(next), idx + 1, "successor of {idx}");
            }
        }
    }

    #[test]
    fn record_and_quantiles() {
        let h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.sum(), 500_500);
        assert_eq!(s.max(), 1000);
        let p50 = s.quantile(0.5) as f64;
        assert!((p50 - 500.0).abs() <= 500.0 / 128.0 + 1.0, "p50 = {p50}");
        let p99 = s.quantile(0.99) as f64;
        assert!((p99 - 990.0).abs() <= 990.0 / 128.0 + 1.0, "p99 = {p99}");
        assert_eq!(s.quantile(1.0), 1000);
    }

    #[test]
    fn count_le_is_monotone_and_total() {
        let h = LogHistogram::new();
        for v in [3u64, 50, 129, 4096, 70_000] {
            h.record(v);
        }
        let s = h.snapshot();
        let mut prev = 0;
        for v in [0u64, 3, 49, 50, 128, 200, 5000, 100_000, u64::MAX] {
            let c = s.count_le(v);
            assert!(c >= prev, "count_le not monotone at {v}");
            prev = c;
        }
        assert_eq!(s.count_le(u64::MAX), s.count());
        assert_eq!(s.count_le(3), 1);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        let both = LogHistogram::new();
        for v in [1u64, 10, 100, 1000] {
            a.record(v);
            both.record(v);
        }
        for v in [5u64, 50, 500_000] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), both.snapshot());
    }

    #[test]
    fn summary_roundtrips_scaling() {
        let h = LogHistogram::new();
        for v in 0..100u64 {
            h.record(v * 1_000_000);
        }
        let s = h.snapshot().summary().scaled(1e-9);
        assert_eq!(s.count, 100);
        assert!(s.max <= 0.1 && s.max > 0.0);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
    }
}
