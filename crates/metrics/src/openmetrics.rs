//! OpenMetrics text-format exporter and strict validator.
//!
//! [`render`] turns a [`TraceSink`]'s counter/gauge registry plus a
//! [`MetricsHub`]'s histograms into one OpenMetrics exposition
//! (<https://prometheus.io/docs/specs/om/open_metrics_spec/>): counters as
//! `counter` families (`_total` samples), gauges as `gauge` families, and
//! every histogram as a `histogram` family with a fixed log-spaced `le`
//! ladder, `_sum`, and `_count`. No async runtime anywhere — the optional
//! scrape endpoint ([`crate::server::ScrapeServer`]) serves this string
//! over a plain `std::net::TcpListener`.
//!
//! [`validate_openmetrics`] is the strict line-format checker the test
//! suite, the dashboard example, and CI all run against rendered output:
//! HELP/TYPE ordering, name/label syntax and escaping, `le` monotonicity,
//! and `_bucket`/`_sum`/`_count` consistency.

use crate::hub::{HubSnapshot, Metric, MetricsHub, GLOBAL_WORKER};
use hetero_trace::{TraceSink, TypedSnapshot};
use std::collections::HashSet;
use std::fmt::Write as _;

/// Prefix applied to every exported family name.
pub const NAME_PREFIX: &str = "hetero_";

/// Upper bounds (in nanoseconds) of the `le` ladder used for duration
/// histograms: 1µs … 100s, one decade apart. Exported in seconds.
const SECONDS_LADDER_NS: [u64; 9] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
    100_000_000_000,
];

/// `le` ladder for count-valued histograms (staleness, merge retries).
const COUNT_LADDER: [u64; 12] = [0, 1, 2, 4, 8, 16, 32, 64, 128, 512, 2048, 8192];

/// Render the full exposition for a live sink + hub.
pub fn render(sink: &TraceSink, hub: &MetricsHub) -> String {
    render_parts(&sink.snapshot_typed(), &hub.snapshot())
}

/// Render from already-taken snapshots (what [`render`] does internally;
/// split out so tests can fabricate inputs).
pub fn render_parts(typed: &TypedSnapshot, hub: &HubSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &typed.counters {
        let fam = sanitize_name(name);
        let _ = writeln!(out, "# HELP {fam} Trace counter {}", escape_help(name));
        let _ = writeln!(out, "# TYPE {fam} counter");
        let _ = writeln!(out, "{fam}_total {value}");
    }
    for (name, value) in &typed.gauges {
        let fam = sanitize_name(name);
        let _ = writeln!(out, "# HELP {fam} Trace gauge {}", escape_help(name));
        let _ = writeln!(out, "# TYPE {fam} gauge");
        let _ = writeln!(out, "{fam} {}", fmt_value(*value));
    }
    for metric in Metric::ALL {
        let workers: Vec<u32> = hub
            .series
            .iter()
            .filter(|s| s.metric == metric)
            .map(|s| s.worker)
            .collect();
        if workers.is_empty() {
            continue;
        }
        let fam = histogram_family(metric);
        let _ = writeln!(out, "# HELP {fam} {}", escape_help(metric.help()));
        let _ = writeln!(out, "# TYPE {fam} histogram");
        for worker in workers {
            let Some(snap) = hub.series_for(metric, worker) else {
                continue;
            };
            let label = worker_label(worker);
            if metric.is_duration() {
                for ns in SECONDS_LADDER_NS {
                    let le = fmt_value(ns as f64 / 1e9);
                    let _ = writeln!(
                        out,
                        "{fam}_bucket{{worker=\"{label}\",le=\"{le}\"}} {}",
                        snap.count_le(ns)
                    );
                }
            } else {
                for b in COUNT_LADDER {
                    let _ = writeln!(
                        out,
                        "{fam}_bucket{{worker=\"{label}\",le=\"{b}\"}} {}",
                        snap.count_le(b)
                    );
                }
            }
            let _ = writeln!(
                out,
                "{fam}_bucket{{worker=\"{label}\",le=\"+Inf\"}} {}",
                snap.count()
            );
            let sum = if metric.is_duration() {
                fmt_value(snap.sum() as f64 / 1e9)
            } else {
                format!("{}", snap.sum())
            };
            let _ = writeln!(out, "{fam}_sum{{worker=\"{label}\"}} {sum}");
            let _ = writeln!(out, "{fam}_count{{worker=\"{label}\"}} {}", snap.count());
        }
    }
    out.push_str("# EOF\n");
    out
}

/// Exported family name for a hub metric (`hetero_` prefix, `_seconds`
/// suffix on durations).
pub fn histogram_family(metric: Metric) -> String {
    if metric.is_duration() {
        format!("{NAME_PREFIX}{}_seconds", metric.name())
    } else {
        format!("{NAME_PREFIX}{}", metric.name())
    }
}

fn worker_label(worker: u32) -> String {
    if worker == GLOBAL_WORKER {
        "global".to_string()
    } else {
        worker.to_string()
    }
}

/// Dotted internal counter names (`mq.w0.pushes`) → OpenMetrics names
/// (`hetero_mq_w0_pushes`): prefix, dots and any other illegal character
/// to underscores.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(NAME_PREFIX.len() + name.len());
    out.push_str(NAME_PREFIX);
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

/// `f64` → sample text: plain decimal, never exponent (OpenMetrics allows
/// exponents, but fixed decimals keep the validator and diffs simple).
fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v}");
        if s.contains('e') || s.contains('E') {
            // Rare extreme magnitudes: fall back to enough fixed digits.
            format!("{v:.12}")
        } else {
            s
        }
    }
}

// ---------------------------------------------------------------------------
// Validator
// ---------------------------------------------------------------------------

#[derive(Debug, PartialEq)]
enum FamilyType {
    Counter,
    Gauge,
    Histogram,
    Unknown,
}

struct FamilyState {
    name: String,
    typ: FamilyType,
    saw_help: bool,
    saw_samples: bool,
    // histogram bookkeeping, keyed by non-`le` label signature
    bucket_runs: Vec<(String, Vec<(f64, u64)>)>,
    counts: Vec<(String, u64)>,
    sums: Vec<String>,
}

impl FamilyState {
    fn new(name: &str) -> Self {
        FamilyState {
            name: name.to_string(),
            typ: FamilyType::Unknown,
            saw_help: false,
            saw_samples: false,
            bucket_runs: Vec::new(),
            counts: Vec::new(),
            sums: Vec::new(),
        }
    }
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parsed label set: `(name, value)` pairs in source order.
type Labels = Vec<(String, String)>;

/// Parse `{k="v",...}`; returns (labels, rest-after-`}`), or an error.
fn parse_labels(s: &str) -> Result<(Labels, &str), String> {
    let mut labels = Vec::new();
    let mut rest = &s[1..]; // skip '{'
    loop {
        if let Some(r) = rest.strip_prefix('}') {
            return Ok((labels, r));
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| "label missing '='".to_string())?;
        let key = &rest[..eq];
        if !valid_name(key) {
            return Err(format!("bad label name {key:?}"));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err("label value not quoted".into());
        }
        rest = &rest[1..];
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    end = Some(i);
                    break;
                }
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    other => return Err(format!("bad escape {other:?} in label value")),
                },
                '\n' => return Err("raw newline in label value".into()),
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| "unterminated label value".to_string())?;
        labels.push((key.to_string(), value));
        rest = &rest[end + 1..];
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
        } else if !rest.starts_with('}') {
            return Err("expected ',' or '}' after label".into());
        }
    }
}

fn finish_family(fam: &FamilyState) -> Result<(), String> {
    if fam.typ == FamilyType::Unknown {
        return Err(format!(
            "family {} has samples before/without # TYPE",
            fam.name
        ));
    }
    if fam.typ != FamilyType::Histogram {
        return Ok(());
    }
    if !fam.saw_samples {
        return Ok(());
    }
    for (sig, run) in &fam.bucket_runs {
        if run.is_empty() {
            return Err(format!("{}{{{sig}}}: no buckets", fam.name));
        }
        let mut prev_le = f64::NEG_INFINITY;
        let mut prev_count = 0u64;
        for (le, count) in run {
            if *le <= prev_le {
                return Err(format!(
                    "{}{{{sig}}}: le ladder not strictly increasing at {le}",
                    fam.name
                ));
            }
            if *count < prev_count {
                return Err(format!(
                    "{}{{{sig}}}: cumulative bucket count decreased at le={le}",
                    fam.name
                ));
            }
            prev_le = *le;
            prev_count = *count;
        }
        let (last_le, last_count) = run[run.len() - 1];
        if !last_le.is_infinite() {
            return Err(format!("{}{{{sig}}}: missing le=\"+Inf\" bucket", fam.name));
        }
        let Some((_, total)) = fam.counts.iter().find(|(s, _)| s == sig) else {
            return Err(format!("{}{{{sig}}}: missing _count sample", fam.name));
        };
        if *total != last_count {
            return Err(format!(
                "{}{{{sig}}}: _count {total} != +Inf bucket {last_count}",
                fam.name
            ));
        }
        if !fam.sums.iter().any(|s| s == sig) {
            return Err(format!("{}{{{sig}}}: missing _sum sample", fam.name));
        }
    }
    Ok(())
}

/// Strictly validate an OpenMetrics exposition. Checks, per the spec
/// subset this crate emits:
///
/// - terminated by exactly one final `# EOF` line;
/// - per family: `# HELP` at most once and before `# TYPE`, `# TYPE`
///   exactly once and before any sample, families contiguous and never
///   repeated;
/// - metric and label names match `[a-zA-Z_][a-zA-Z0-9_]*`; label values
///   quoted with only `\\`, `\"`, `\n` escapes;
/// - sample names consistent with the family type (`_total` for counters,
///   bare name for gauges, `_bucket`/`_sum`/`_count` for histograms);
/// - histogram `le` ladders strictly increasing and ending at `+Inf`,
///   cumulative counts non-decreasing, `_count` equal to the `+Inf`
///   bucket, `_sum` present;
/// - every value a finite number (counters additionally non-negative);
/// - no duplicate time series (name + label set).
pub fn validate_openmetrics(text: &str) -> Result<(), String> {
    if text.is_empty() {
        return Err("empty exposition".into());
    }
    if !text.ends_with('\n') {
        return Err("exposition must end with a newline".into());
    }
    let lines: Vec<&str> = text[..text.len() - 1].split('\n').collect();
    if lines.last() != Some(&"# EOF") {
        return Err("exposition must end with '# EOF'".into());
    }
    let mut family: Option<FamilyState> = None;
    let mut closed_families: HashSet<String> = HashSet::new();
    let mut seen_series: HashSet<String> = HashSet::new();

    let close = |fam: Option<FamilyState>, closed: &mut HashSet<String>| -> Result<(), String> {
        if let Some(f) = fam {
            finish_family(&f)?;
            closed.insert(f.name);
        }
        Ok(())
    };

    for (lineno, line) in lines.iter().enumerate() {
        let err = |msg: String| Err(format!("line {}: {msg}", lineno + 1));
        if *line == "# EOF" {
            if lineno != lines.len() - 1 {
                return err("'# EOF' before end of exposition".into());
            }
            break;
        }
        if line.is_empty() {
            return err("blank line".into());
        }
        if let Some(meta) = line.strip_prefix("# ") {
            let (kind, rest) = meta.split_once(' ').unwrap_or((meta, ""));
            match kind {
                "HELP" | "TYPE" | "UNIT" => {
                    let (name, payload) = rest.split_once(' ').unwrap_or((rest, ""));
                    if !valid_name(name) {
                        return err(format!("bad metric family name {name:?}"));
                    }
                    let starts_new = family.as_ref().is_none_or(|f| f.name != name);
                    if starts_new {
                        if closed_families.contains(name) {
                            return err(format!("family {name} is not contiguous"));
                        }
                        close(family.take(), &mut closed_families)?;
                        family = Some(FamilyState::new(name));
                    }
                    let fam = family.as_mut().ok_or("unreachable")?;
                    if fam.saw_samples {
                        return err(format!("metadata after samples for family {name}"));
                    }
                    match kind {
                        "HELP" => {
                            if fam.saw_help {
                                return err(format!("duplicate # HELP for {name}"));
                            }
                            if fam.typ != FamilyType::Unknown {
                                return err(format!("# HELP after # TYPE for {name}"));
                            }
                            fam.saw_help = true;
                            if payload.is_empty() {
                                return err(format!("empty HELP text for {name}"));
                            }
                        }
                        "TYPE" => {
                            if fam.typ != FamilyType::Unknown {
                                return err(format!("duplicate # TYPE for {name}"));
                            }
                            fam.typ = match payload {
                                "counter" => FamilyType::Counter,
                                "gauge" => FamilyType::Gauge,
                                "histogram" => FamilyType::Histogram,
                                other => return err(format!("unsupported type {other:?}")),
                            };
                        }
                        _ => {} // UNIT accepted, nothing tracked
                    }
                    continue;
                }
                other => return err(format!("unknown metadata line {other:?}")),
            }
        }
        if line.starts_with('#') {
            return err("malformed comment (expected '# HELP/TYPE/UNIT/EOF')".into());
        }

        // Sample line: name[{labels}] value
        let name_end = line
            .find(['{', ' '])
            .ok_or_else(|| format!("line {}: sample missing value", lineno + 1))?;
        let sample_name = &line[..name_end];
        if !valid_name(sample_name) {
            return err(format!("bad sample name {sample_name:?}"));
        }
        let (labels, rest) = if line[name_end..].starts_with('{') {
            match parse_labels(&line[name_end..]) {
                Ok(ok) => ok,
                Err(e) => return err(e),
            }
        } else {
            (Vec::new(), &line[name_end..])
        };
        let value_str = rest.trim_start_matches(' ');
        if value_str.is_empty() || rest == value_str {
            return err("sample missing ' value'".into());
        }
        let value: f64 = match value_str {
            "+Inf" | "-Inf" | "NaN" => return err(format!("non-finite value {value_str}")),
            v => v
                .parse()
                .map_err(|_| format!("line {}: bad value {v:?}", lineno + 1))?,
        };
        if !value.is_finite() {
            return err(format!("non-finite value {value_str}"));
        }
        {
            let mut k = labels.clone();
            k.sort();
            let key = format!("{sample_name}|{k:?}");
            if !seen_series.insert(key) {
                return err(format!("duplicate series {sample_name}{labels:?}"));
            }
        }
        let fam = match family.as_mut() {
            Some(f) => f,
            None => return err(format!("sample {sample_name} before any # TYPE")),
        };
        fam.saw_samples = true;
        let base = &fam.name;
        match fam.typ {
            FamilyType::Unknown => {
                return err(format!("sample {sample_name} in family without # TYPE"))
            }
            FamilyType::Counter => {
                if sample_name != format!("{base}_total") {
                    return err(format!("counter sample must be {base}_total"));
                }
                if value < 0.0 {
                    return err(format!("negative counter value {value}"));
                }
            }
            FamilyType::Gauge => {
                if sample_name != *base {
                    return err(format!("gauge sample must be named {base}"));
                }
            }
            FamilyType::Histogram => {
                let sig_of = |ls: &[(String, String)]| {
                    let mut parts: Vec<String> = ls
                        .iter()
                        .filter(|(k, _)| k != "le")
                        .map(|(k, v)| format!("{k}={v}"))
                        .collect();
                    parts.sort();
                    parts.join(",")
                };
                if sample_name == format!("{base}_bucket") {
                    let Some((_, le)) = labels.iter().find(|(k, _)| k == "le") else {
                        return err("histogram bucket missing le label".into());
                    };
                    let le_val = match le.as_str() {
                        "+Inf" => f64::INFINITY,
                        v => v
                            .parse()
                            .map_err(|_| format!("line {}: bad le {v:?}", lineno + 1))?,
                    };
                    if value < 0.0 || value.fract() != 0.0 {
                        return err(format!("bucket count must be a whole number, got {value}"));
                    }
                    let sig = sig_of(&labels);
                    match fam.bucket_runs.iter_mut().find(|(s, _)| *s == sig) {
                        Some((_, run)) => run.push((le_val, value as u64)),
                        None => fam.bucket_runs.push((sig, vec![(le_val, value as u64)])),
                    }
                } else if sample_name == format!("{base}_sum") {
                    fam.sums.push(sig_of(&labels));
                } else if sample_name == format!("{base}_count") {
                    if value < 0.0 || value.fract() != 0.0 {
                        return err(format!("_count must be a whole number, got {value}"));
                    }
                    fam.counts.push((sig_of(&labels), value as u64));
                } else {
                    return err(format!(
                        "histogram sample {sample_name} must be {base}_bucket/_sum/_count"
                    ));
                }
            }
        }
    }
    close(family.take(), &mut closed_families)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hub::MetricsHub;
    use hetero_trace::{TraceSink, DEFAULT_RING_CAPACITY};

    #[test]
    fn render_of_live_sink_and_hub_validates() {
        let sink = TraceSink::wall(DEFAULT_RING_CAPACITY);
        sink.counter("engine.requeues").add(2);
        sink.gauge("engine.beta").set(0.97);
        let hub = MetricsHub::new();
        let h = hub.histogram(Metric::BatchLatency, 0);
        for i in 0..100u64 {
            h.record(i * 10_000);
        }
        hub.histogram(Metric::Staleness, 1).record(3);
        let text = render(&sink, &hub);
        validate_openmetrics(&text).unwrap();
        assert!(text.contains("hetero_engine_requeues_total 2"));
        assert!(text.contains("# TYPE hetero_batch_latency_seconds histogram"));
        assert!(text.contains("le=\"+Inf\""));
        assert!(text.ends_with("# EOF\n"));
    }
}
