//! `cargo xtask lint` — workspace concurrency-hygiene lint.
//!
//! A deliberately simple, dependency-free text scanner (no `syn` in this
//! offline workspace) that enforces the rules DESIGN.md §4e commits to:
//!
//! 1. **SAFETY comments** — every `unsafe` keyword (block, fn, impl) must
//!    have a `// SAFETY:` comment on the same line or in the contiguous
//!    comment/attribute run above it.
//! 2. **Ordering allowlist** — `Ordering::{Relaxed,Acquire,Release,AcqRel,
//!    SeqCst}` may appear only in the audited concurrency modules
//!    ([`ORDERING_ALLOWLIST`]), and every use site must have a nearby
//!    comment justifying the chosen ordering (within
//!    [`ORDERING_COMMENT_WINDOW`] lines — one comment may cover a short
//!    cluster of sites, e.g. a CAS loop).
//! 3. **Supervised spawning** — `thread::spawn` / `thread::Builder` only in
//!    the supervision layer (`crates/core/src/engine_threads.rs`); workers
//!    must be started (and joined, panic-watched) there.
//! 4. **No unwrap on channel results** — `.send()/.recv()/...` results in
//!    non-test code must be handled, not `.unwrap()`/`.expect()`ed: a dead
//!    peer is an expected event the fault-tolerance layer handles.
//! 5. **SIMD target-feature** — any function whose body calls an x86 SIMD
//!    intrinsic (`_mm…`/`_mm256…`) must be annotated `#[target_feature]`:
//!    combined with rule 1 this means every unsafe SIMD block carries both
//!    a SAFETY comment *and* sits under an explicit feature gate, so a
//!    refactor can never silently move AVX2 code onto an unguarded path.
//!
//! Test code (`tests/`, `benches/`, `examples/`, `#[cfg(test)]` modules),
//! the vendored shims, and xtask itself are exempt. Run `cargo xtask lint
//! --self-check` to verify every rule still fires on seeded violations.

use std::fmt;
use std::path::{Path, PathBuf};

mod bench_diff;

/// Files (workspace-relative, `/`-separated) whose *paths* are allowed to
/// contain atomic `Ordering::` uses. Everything else must use higher-level
/// primitives from these modules.
const ORDERING_ALLOWLIST: &[&str] = &[
    "crates/mq/src/",                  // lock-free queue + channels (loom-checked)
    "crates/nn/src/shared.rs",         // Hogwild shared model (loom-checked)
    "crates/nn/src/sync.rs",           // atomic facade for the above
    "crates/trace/src/",               // monitoring counters/gauges (relaxed-only)
    "crates/gpu/src/stream.rs",        // stream completion flags
    "crates/tensor/src/simd.rs",       // write-once dispatch memo (relaxed-only)
    "crates/bench/src/alloc_count.rs", // counting allocator (relaxed-only)
    "crates/metrics/src/",             // histogram tallies + scrape shutdown flag (relaxed-only)
    "crates/flight/src/",              // health watchdog counters/peaks (relaxed-only)
];

/// The places allowed to start OS threads: the worker supervision layer,
/// and the simulated GPU stream's executor thread (a modeled device engine,
/// owned and joined by `Stream::drop`).
const SPAWN_ALLOWLIST: &[&str] = &[
    "crates/core/src/engine_threads.rs",
    "crates/gpu/src/stream.rs",
    "crates/metrics/src/server.rs",
];

/// How many lines above an `Ordering::` use a justification comment may
/// sit. Generous on purpose: one comment may justify a small cluster
/// (load + CAS-loop retry sites).
const ORDERING_COMMENT_WINDOW: usize = 10;

/// Keywords that mark a comment as an ordering justification.
const ORDERING_KEYWORDS: &[&str] = &[
    "Relaxed", "Acquire", "Release", "AcqRel", "SeqCst", "ordering", "Ordering",
];

#[derive(Debug)]
struct Violation {
    file: String,
    line: usize,
    rule: &'static str,
    msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") if args.iter().any(|a| a == "--self-check") => self_check(),
        Some("lint") => run_lint(),
        Some("bench-diff") => {
            std::process::exit(bench_diff::run(&args[1..], &workspace_root()));
        }
        _ => {
            eprintln!("usage: cargo xtask <lint [--self-check] | bench-diff ...>");
            std::process::exit(2);
        }
    }
}

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/crates/xtask.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask manifest has a workspace root two levels up")
        .to_path_buf()
}

fn run_lint() {
    let root = workspace_root();
    let violations = lint_workspace(&root);
    if violations.is_empty() {
        println!("xtask lint: OK");
        return;
    }
    for v in &violations {
        eprintln!("{v}");
    }
    eprintln!("xtask lint: {} violation(s)", violations.len());
    std::process::exit(1);
}

/// Lint every non-exempt `.rs` file under `crates/*/src`.
fn lint_workspace(root: &Path) -> Vec<Violation> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files);
    let mut violations = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        if is_exempt_path(&rel) {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&file) else {
            continue;
        };
        violations.extend(lint_source(&rel, &text));
    }
    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    violations
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Whole-path exemptions: only library/binary sources are linted.
fn is_exempt_path(rel: &str) -> bool {
    !rel.contains("/src/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
        || rel.starts_with("shims/")
        || rel.starts_with("crates/xtask/")
}

/// One source line after comment/string stripping, plus what was stripped.
struct Line {
    /// Code with comments and string contents blanked.
    code: String,
    /// Concatenated comment text on this line (line + block comments).
    comment: String,
    /// Inside a `#[cfg(test)]` (or any cfg containing `test`) item.
    in_test_cfg: bool,
}

/// Lint a single file's contents. `rel` is the workspace-relative path used
/// both for reporting and for the allowlists.
fn lint_source(rel: &str, text: &str) -> Vec<Violation> {
    let lines = preprocess(text);
    let mut out = Vec::new();

    let ordering_allowed = ORDERING_ALLOWLIST.iter().any(|p| rel.starts_with(p));
    let spawn_allowed = SPAWN_ALLOWLIST.contains(&rel);

    for (i, line) in lines.iter().enumerate() {
        let lineno = i + 1;
        if line.in_test_cfg {
            continue;
        }
        let code = line.code.as_str();

        // Rule 1: SAFETY comment on every `unsafe`.
        if has_word(code, "unsafe") && !safety_comment_nearby(&lines, i) {
            out.push(Violation {
                file: rel.to_string(),
                line: lineno,
                rule: "safety-comment",
                msg: "`unsafe` without a `// SAFETY:` comment on the line or in the comment run above".into(),
            });
        }

        // Rule 2: Ordering allowlist + justification comment.
        if code.contains("Ordering::") {
            if !ordering_allowed {
                out.push(Violation {
                    file: rel.to_string(),
                    line: lineno,
                    rule: "ordering-allowlist",
                    msg: "atomic Ordering used outside the audited concurrency modules".into(),
                });
            } else if !ordering_comment_nearby(&lines, i) {
                out.push(Violation {
                    file: rel.to_string(),
                    line: lineno,
                    rule: "ordering-justified",
                    msg: format!(
                        "Ordering use without a justification comment within {ORDERING_COMMENT_WINDOW} lines"
                    ),
                });
            }
        }

        // Rule 3: spawning only in the supervision layer.
        if !spawn_allowed && (code.contains("thread::spawn") || code.contains("thread::Builder")) {
            out.push(Violation {
                file: rel.to_string(),
                line: lineno,
                rule: "supervised-spawn",
                msg:
                    "thread spawn outside the supervision layer (crates/core/src/engine_threads.rs)"
                        .into(),
            });
        }

        // Rule 5: SIMD intrinsics only inside `#[target_feature]` fns.
        if uses_simd_intrinsic(code) && !enclosing_fn_has_target_feature(&lines, i) {
            out.push(Violation {
                file: rel.to_string(),
                line: lineno,
                rule: "simd-target-feature",
                msg: "SIMD intrinsic used in a function without a `#[target_feature]` attribute"
                    .into(),
            });
        }

        // Rule 4: no unwrap/expect on channel operation results.
        if let Some(op) = channel_unwrap(code) {
            out.push(Violation {
                file: rel.to_string(),
                line: lineno,
                rule: "channel-unwrap",
                msg: format!(
                    "`.{op}(..)` result unwrapped; handle disconnects explicitly in worker code"
                ),
            });
        }
    }
    out
}

/// Strip comments and string literals (keeping line structure), record the
/// comment text per line, and mark `#[cfg(test)]` item bodies.
fn preprocess(text: &str) -> Vec<Line> {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(usize),
        Str,
        RawStr(usize),
        Char,
    }
    let mut lines: Vec<Line> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut st = St::Code;
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if st == St::LineComment {
                st = St::Code;
            }
            lines.push(Line {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                in_test_cfg: false,
            });
            i += 1;
            continue;
        }
        match st {
            St::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    st = St::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    st = St::BlockComment(1);
                    i += 2;
                    continue;
                }
                if c == '"' {
                    st = St::Str;
                    code.push('"');
                    i += 1;
                    continue;
                }
                // Raw string heads: r"..."  r#"..."#  br#"..."# etc.
                if (c == 'r' || c == 'b') && !prev_is_ident(&code) {
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') && (c == 'r' || j > i + 1) {
                        code.push_str("\"\"");
                        st = St::RawStr(hashes);
                        i = j + 1;
                        continue;
                    }
                }
                if c == '\'' {
                    // Char literal vs lifetime: a literal closes with a
                    // quote after one (possibly escaped) character.
                    if chars.get(i + 1) == Some(&'\\') {
                        st = St::Char;
                        i += 2;
                        continue;
                    }
                    if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'') {
                        code.push_str("' '");
                        i += 3;
                        continue;
                    }
                    // Lifetime: keep the tick, scanning continues normally.
                }
                code.push(c);
                i += 1;
            }
            St::LineComment => {
                comment.push(c);
                i += 1;
            }
            St::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    st = St::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    st = St::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        st = St::Code;
                        i += 1 + hashes;
                        continue;
                    }
                }
                i += 1;
            }
            St::Char => {
                if c == '\'' {
                    code.push_str("' '");
                    st = St::Code;
                }
                i += 1;
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        lines.push(Line {
            code,
            comment,
            in_test_cfg: false,
        });
    }
    mark_test_cfg(&mut lines);
    lines
}

fn prev_is_ident(code: &str) -> bool {
    code.chars()
        .last()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Mark every line belonging to an item annotated `#[cfg(...test...)]`
/// (typically `#[cfg(test)] mod tests`) by brace-tracking from the
/// attribute to the close of the item's body.
fn mark_test_cfg(lines: &mut [Line]) {
    let mut i = 0;
    while i < lines.len() {
        let is_test_attr = {
            let code = lines[i].code.trim_start();
            code.starts_with("#[cfg(") && code.contains("test")
        };
        if !is_test_attr {
            i += 1;
            continue;
        }
        // Find the opening brace of the annotated item, then its close.
        let mut depth = 0usize;
        let mut opened = false;
        let mut j = i;
        while j < lines.len() {
            for c in lines[j].code.clone().chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth = depth.saturating_sub(1),
                    _ => {}
                }
            }
            lines[j].in_test_cfg = true;
            if opened && depth == 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
}

fn has_word(code: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .last()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + word.len();
        let after_ok = after >= code.len()
            || !code[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

/// True when the (comment-stripped) code calls an x86 SIMD intrinsic:
/// an identifier starting with `_mm` at a word boundary (`_mm_add_ps`,
/// `_mm256_fmadd_ps`, …).
fn uses_simd_intrinsic(code: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find("_mm") {
        let at = start + pos;
        let boundary = at == 0
            || !code[..at]
                .chars()
                .last()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if boundary {
            return true;
        }
        start = at + 3;
    }
    false
}

/// Walk up from line `i` to the nearest `fn` declaration and check the
/// contiguous attribute/comment run above it for `#[target_feature`.
/// (Closures cannot carry the attribute, so an intrinsic inside a closure
/// is attributed to — and must be inside — a `#[target_feature]` fn.)
fn enclosing_fn_has_target_feature(lines: &[Line], i: usize) -> bool {
    let mut j = i + 1;
    while j > 0 {
        j -= 1;
        if !has_word(&lines[j].code, "fn") {
            continue;
        }
        // Found the declaration; scan its attribute run.
        let mut k = j;
        while k > 0 {
            k -= 1;
            let code = lines[k].code.trim();
            if code.starts_with("#[") {
                if code.contains("target_feature") {
                    return true;
                }
            } else if !code.is_empty() {
                return false;
            }
        }
        return false;
    }
    false
}

/// A `// SAFETY:` comment counts if it is on the same line or anywhere in
/// the contiguous run of comment/attribute/empty lines directly above.
fn safety_comment_nearby(lines: &[Line], i: usize) -> bool {
    if lines[i].comment.contains("SAFETY:") {
        return true;
    }
    let mut j = i;
    while j > 0 {
        j -= 1;
        let line = &lines[j];
        let code = line.code.trim();
        let is_pure_annotation = code.is_empty() || code.starts_with("#[");
        if line.comment.contains("SAFETY:") {
            return true;
        }
        if !is_pure_annotation {
            return false;
        }
    }
    false
}

/// An ordering justification comment within the window above (or on the
/// same line): any comment mentioning an ordering keyword.
fn ordering_comment_nearby(lines: &[Line], i: usize) -> bool {
    let lo = i.saturating_sub(ORDERING_COMMENT_WINDOW);
    lines[lo..=i]
        .iter()
        .any(|l| ORDERING_KEYWORDS.iter().any(|k| l.comment.contains(k)))
}

/// Detects `.send(..).unwrap()` style patterns on a single line; returns
/// the channel operation name.
fn channel_unwrap(code: &str) -> Option<&'static str> {
    const OPS: &[&str] = &["try_send", "send", "try_recv", "recv_timeout", "recv"];
    for op in OPS {
        let needle = format!(".{op}(");
        let mut start = 0;
        while let Some(pos) = code[start..].find(&needle) {
            let at = start + pos + needle.len();
            // Skip to the matching close paren of the call.
            let mut depth = 1;
            let mut k = at;
            let bytes: Vec<char> = code[at..].chars().collect();
            let mut idx = 0;
            while idx < bytes.len() && depth > 0 {
                match bytes[idx] {
                    '(' => depth += 1,
                    ')' => depth -= 1,
                    _ => {}
                }
                idx += 1;
            }
            k += idx;
            let rest = code[k..].trim_start();
            if rest.starts_with(".unwrap()") || rest.starts_with(".expect(") {
                return Some(op);
            }
            start = at;
        }
    }
    None
}

/// Seeded violations: every rule must fire on its snippet, and a clean
/// snippet must produce nothing.
fn self_check() {
    let cases: &[(&str, &str, &str)] = &[
        (
            "safety-comment",
            "crates/demo/src/lib.rs",
            "fn f(p: *mut u8) { unsafe { *p = 0 }; }\n",
        ),
        (
            "ordering-allowlist",
            "crates/demo/src/lib.rs",
            "// Relaxed: because.\nfn f(a: &AtomicUsize) { a.load(Ordering::Relaxed); }\n",
        ),
        (
            "ordering-justified",
            "crates/mq/src/demo.rs",
            "fn f(a: &AtomicUsize) { a.load(Ordering::Relaxed); }\n",
        ),
        (
            "supervised-spawn",
            "crates/demo/src/lib.rs",
            "fn f() { std::thread::spawn(|| {}); }\n",
        ),
        (
            "channel-unwrap",
            "crates/demo/src/lib.rs",
            "fn f(tx: &Sender<u8>) { tx.send(1).unwrap(); }\n",
        ),
        (
            "simd-target-feature",
            "crates/demo/src/lib.rs",
            "// SAFETY: covered.\nunsafe fn f(p: *const f32) { _mm256_loadu_ps(p); }\n",
        ),
    ];
    let mut failed = false;
    for (rule, path, src) in cases {
        let hits = lint_source(path, src);
        if hits.iter().any(|v| v.rule == *rule) {
            println!("self-check: {rule} fires on seeded violation ... ok");
        } else {
            eprintln!("self-check: {rule} did NOT fire on: {src}");
            failed = true;
        }
    }
    // Clean code must not trip anything.
    let clean = "\
// SAFETY: p is valid by contract.\n\
fn f(p: *mut u8) { unsafe { *p = 0 }; }\n\
#[cfg(test)]\n\
mod tests {\n\
    fn g(tx: &Sender<u8>) { tx.send(1).unwrap(); }\n\
}\n";
    let hits = lint_source("crates/demo/src/lib.rs", clean);
    if hits.is_empty() {
        println!("self-check: clean snippet produces no violations ... ok");
    } else {
        for v in &hits {
            eprintln!("self-check: false positive: {v}");
        }
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("xtask lint --self-check: OK");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_is_clean() {
        let violations = lint_workspace(&workspace_root());
        assert!(
            violations.is_empty(),
            "workspace lint violations:\n{}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn strings_and_comments_are_ignored() {
        let src = "fn f() { let _ = \"thread::spawn Ordering::Relaxed unsafe\"; }\n";
        assert!(lint_source("crates/demo/src/lib.rs", src).is_empty());
        let src = "// thread::spawn in a comment is fine\nfn f() {}\n";
        assert!(lint_source("crates/demo/src/lib.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { std::thread::spawn(|| {}); }\n}\n";
        assert!(lint_source("crates/demo/src/lib.rs", src).is_empty());
    }

    #[test]
    fn seeded_violations_fire() {
        let src = "fn f(p: *mut u8) { unsafe { *p = 0 }; }\n";
        let hits = lint_source("crates/demo/src/lib.rs", src);
        assert!(hits.iter().any(|v| v.rule == "safety-comment"));
    }

    #[test]
    fn target_feature_gates_simd_intrinsics() {
        // Ungated intrinsic fires, even inside a closure.
        let src = "// SAFETY: ok.\nunsafe fn f(p: *const f32) {\n    let g = || _mm_loadu_ps(p);\n    g();\n}\n";
        let hits = lint_source("crates/demo/src/lib.rs", src);
        assert!(hits.iter().any(|v| v.rule == "simd-target-feature"));
        // The attribute (anywhere in the attribute run) silences it.
        let src = "#[cfg(target_arch = \"x86_64\")]\n#[target_feature(enable = \"avx2,fma\")]\n// SAFETY: ok.\nunsafe fn f(p: *const f32) { _mm256_loadu_ps(p); }\n";
        assert!(lint_source("crates/demo/src/lib.rs", src)
            .iter()
            .all(|v| v.rule != "simd-target-feature"));
        // `_mm` as part of a longer identifier is not an intrinsic.
        let src = "fn f(elem_mm: f32) -> f32 { elem_mm }\n";
        assert!(lint_source("crates/demo/src/lib.rs", src).is_empty());
    }

    #[test]
    fn expect_on_recv_is_flagged() {
        let src = "fn f(rx: &Receiver<u8>) { rx.recv().expect(\"alive\"); }\n";
        let hits = lint_source("crates/demo/src/lib.rs", src);
        assert!(hits.iter().any(|v| v.rule == "channel-unwrap"));
    }
}
