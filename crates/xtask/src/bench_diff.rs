//! `cargo xtask bench-diff` — the perf regression gate.
//!
//! Compares a freshly generated bench report (`BENCH_math.json` from
//! `bench_math`, `BENCH_train.json` from `bench_train`) against the
//! committed baseline at the workspace root, metric by metric, with
//! per-metric noise thresholds. Exit status is the contract:
//!
//! * `0` — every matched row is within threshold of its baseline,
//! * `1` — at least one metric regressed beyond its threshold (or a
//!   baseline row disappeared from the fresh run),
//! * `2` — usage / IO / parse error.
//!
//! Every invocation appends one JSON line to
//! `results/bench_diff_history.jsonl` so regressions and recoveries stay
//! visible in-repo over time. Rows present only in the fresh report are
//! reported but never fail the gate — new benchmarks should not need a
//! baseline update in the same commit to keep CI green.
//!
//! Thresholds are deliberately loose by default: CI boxes are noisy, and a
//! gate that cries wolf gets deleted. `--threshold <pct>` overrides all
//! per-metric defaults when an experiment needs a tighter (or looser) gate.

use std::path::{Path, PathBuf};

use serde_json::Value;

/// Which direction is good for a metric.
#[derive(Clone, Copy, PartialEq)]
enum Better {
    Higher,
    Lower,
}

/// A metric the gate watches: JSON field name, direction, and the default
/// allowed degradation (percent) before it counts as a regression.
struct Metric {
    field: &'static str,
    better: Better,
    default_threshold_pct: f64,
}

/// GEMM throughput in GFLOP/s; `parallel` wobbles more than single-thread
/// SIMD on shared runners, so it gets extra headroom.
const MATH_METRICS: &[Metric] = &[
    Metric {
        field: "simd_gflops",
        better: Better::Higher,
        default_threshold_pct: 30.0,
    },
    Metric {
        field: "parallel_gflops",
        better: Better::Higher,
        default_threshold_pct: 40.0,
    },
];

/// Engine throughput and convergence quality. `final_loss` is tighter: a
/// correctness bug shows up there long before throughput moves.
const TRAIN_METRICS: &[Metric] = &[
    Metric {
        field: "updates_per_sec",
        better: Better::Higher,
        default_threshold_pct: 35.0,
    },
    Metric {
        field: "final_loss",
        better: Better::Lower,
        default_threshold_pct: 25.0,
    },
];

/// One suite the gate knows how to diff.
struct Suite {
    name: &'static str,
    baseline_file: &'static str,
    /// JSON field holding the row array.
    rows_field: &'static str,
    /// Fields concatenated into the row identity key.
    key_fields: &'static [&'static str],
    metrics: &'static [Metric],
}

const SUITES: &[Suite] = &[
    Suite {
        name: "math",
        baseline_file: "BENCH_math.json",
        rows_field: "gemm",
        key_fields: &["kernel", "batch", "m", "k", "n"],
        metrics: MATH_METRICS,
    },
    Suite {
        name: "train",
        baseline_file: "BENCH_train.json",
        rows_field: "rows",
        key_fields: &["engine", "algorithm", "dataset", "measured_beta_enabled"],
        metrics: TRAIN_METRICS,
    },
];

/// Outcome of one (row, metric) comparison.
struct Delta {
    key: String,
    field: &'static str,
    baseline: f64,
    fresh: f64,
    /// Signed change in percent; positive always means "got worse".
    worse_pct: f64,
    threshold_pct: f64,
    regressed: bool,
}

/// Entry point for `cargo xtask bench-diff <suite> --fresh <file> [...]`.
/// Returns the process exit code.
pub fn run(args: &[String], root: &Path) -> i32 {
    let usage = "usage: cargo xtask bench-diff <math|train> --fresh <file> \
                 [--baseline <file>] [--threshold <pct>] [--history <file>|--no-history]";
    let Some(suite_name) = args.first() else {
        eprintln!("{usage}");
        return 2;
    };
    let Some(suite) = SUITES.iter().find(|s| s.name == suite_name.as_str()) else {
        eprintln!("bench-diff: unknown suite `{suite_name}`\n{usage}");
        return 2;
    };

    let mut baseline_path = root.join(suite.baseline_file);
    let mut fresh_path: Option<PathBuf> = None;
    let mut threshold_override: Option<f64> = None;
    let mut history_path = Some(root.join("results/bench_diff_history.jsonl"));
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--baseline" => match it.next() {
                Some(v) => baseline_path = PathBuf::from(v),
                None => return usage_err(usage, "--baseline needs a file"),
            },
            "--fresh" => match it.next() {
                Some(v) => fresh_path = Some(PathBuf::from(v)),
                None => return usage_err(usage, "--fresh needs a file"),
            },
            "--threshold" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(pct)) if pct >= 0.0 => threshold_override = Some(pct),
                _ => return usage_err(usage, "--threshold needs a non-negative percent"),
            },
            "--history" => match it.next() {
                Some(v) => history_path = Some(PathBuf::from(v)),
                None => return usage_err(usage, "--history needs a file"),
            },
            "--no-history" => history_path = None,
            other => return usage_err(usage, &format!("unknown flag `{other}`")),
        }
    }
    let Some(fresh_path) = fresh_path else {
        return usage_err(usage, "--fresh is required (run the bench first)");
    };

    let baseline = match load_rows(&baseline_path, suite) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("bench-diff: baseline {}: {e}", baseline_path.display());
            return 2;
        }
    };
    let fresh = match load_rows(&fresh_path, suite) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("bench-diff: fresh {}: {e}", fresh_path.display());
            return 2;
        }
    };

    let (deltas, missing, new_rows) = diff(suite, &baseline, &fresh, threshold_override);

    for d in &deltas {
        let verdict = if d.regressed { "REGRESSED" } else { "ok" };
        println!(
            "{:9} {:<58} {:>16} {:>12.4} -> {:>12.4} ({:+6.1}%, allow {:.0}%)",
            verdict, d.key, d.field, d.baseline, d.fresh, d.worse_pct, d.threshold_pct
        );
    }
    for key in &missing {
        println!("MISSING   {key} (baseline row absent from fresh run)");
    }
    for key in &new_rows {
        println!("new       {key} (no baseline yet; not gated)");
    }

    let regressions = deltas.iter().filter(|d| d.regressed).count() + missing.len();
    let verdict = if regressions == 0 { "pass" } else { "fail" };
    println!(
        "bench-diff {}: {} row(s), {} regression(s), {} missing, {} new -> {}",
        suite.name,
        deltas.len(),
        regressions - missing.len(),
        missing.len(),
        new_rows.len(),
        verdict
    );

    if let Some(history) = history_path {
        if let Err(e) = append_history(&history, suite, &deltas, &missing, verdict) {
            // History is bookkeeping, not the gate; warn and keep the verdict.
            eprintln!("bench-diff: could not append {}: {e}", history.display());
        }
    }

    if regressions == 0 {
        0
    } else {
        1
    }
}

fn usage_err(usage: &str, msg: &str) -> i32 {
    eprintln!("bench-diff: {msg}\n{usage}");
    2
}

/// Parse a report file into `(identity key, row)` pairs in file order.
fn load_rows(path: &Path, suite: &Suite) -> Result<Vec<(String, Value)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let doc: Value = serde_json::from_str(&text).map_err(|e| format!("{e:?}"))?;
    let Some(Value::Array(rows)) = doc.get(suite.rows_field) else {
        return Err(format!("no `{}` array", suite.rows_field));
    };
    Ok(rows
        .iter()
        .map(|row| (row_key(row, suite.key_fields), row.clone()))
        .collect())
}

/// Identity of a row: its key fields joined with `/`.
fn row_key(row: &Value, fields: &[&str]) -> String {
    fields
        .iter()
        .map(|f| match row.get(f) {
            Some(Value::Str(s)) => s.clone(),
            Some(Value::U64(n)) => n.to_string(),
            Some(Value::I64(n)) => n.to_string(),
            Some(Value::F64(x)) => x.to_string(),
            Some(Value::Bool(b)) => b.to_string(),
            _ => "?".into(),
        })
        .collect::<Vec<_>>()
        .join("/")
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::F64(x) => Some(*x),
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        _ => None,
    }
}

/// Compare every baseline row against the fresh run. Returns the per-metric
/// deltas, the keys of baseline rows missing from the fresh report, and the
/// keys of fresh rows with no baseline.
fn diff(
    suite: &Suite,
    baseline: &[(String, Value)],
    fresh: &[(String, Value)],
    threshold_override: Option<f64>,
) -> (Vec<Delta>, Vec<String>, Vec<String>) {
    let mut deltas = Vec::new();
    let mut missing = Vec::new();
    for (key, base_row) in baseline {
        let Some((_, fresh_row)) = fresh.iter().find(|(k, _)| k == key) else {
            missing.push(key.clone());
            continue;
        };
        for m in suite.metrics {
            let (Some(b), Some(f)) = (
                base_row.get(m.field).and_then(as_f64),
                fresh_row.get(m.field).and_then(as_f64),
            ) else {
                continue;
            };
            // Degenerate baselines (zero or non-finite) cannot anchor a
            // relative comparison; skip rather than divide by zero.
            if !b.is_finite() || !f.is_finite() || b == 0.0 {
                continue;
            }
            let worse_pct = match m.better {
                Better::Higher => (b - f) / b * 100.0,
                Better::Lower => (f - b) / b.abs() * 100.0,
            };
            let threshold_pct = threshold_override.unwrap_or(m.default_threshold_pct);
            deltas.push(Delta {
                key: key.clone(),
                field: m.field,
                baseline: b,
                fresh: f,
                worse_pct,
                threshold_pct,
                regressed: worse_pct > threshold_pct,
            });
        }
    }
    let new_rows = fresh
        .iter()
        .filter(|(k, _)| !baseline.iter().any(|(bk, _)| bk == k))
        .map(|(k, _)| k.clone())
        .collect();
    (deltas, missing, new_rows)
}

/// Append one JSONL record summarizing this gate run.
fn append_history(
    path: &Path,
    suite: &Suite,
    deltas: &[Delta],
    missing: &[String],
    verdict: &str,
) -> std::io::Result<()> {
    use std::io::Write;
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let worst = deltas
        .iter()
        .max_by(|a, b| a.worse_pct.total_cmp(&b.worse_pct));
    let regressed: Vec<Value> = deltas
        .iter()
        .filter(|d| d.regressed)
        .map(|d| {
            Value::Object(vec![
                ("key".into(), Value::Str(d.key.clone())),
                ("metric".into(), Value::Str(d.field.to_string())),
                ("worse_pct".into(), Value::F64(d.worse_pct)),
            ])
        })
        .collect();
    let record = Value::Object(vec![
        ("unix_secs".into(), Value::U64(unix_secs)),
        ("suite".into(), Value::Str(suite.name.to_string())),
        ("verdict".into(), Value::Str(verdict.to_string())),
        ("rows".into(), Value::U64(deltas.len() as u64)),
        (
            "worst_key".into(),
            worst.map_or(Value::Null, |d| Value::Str(d.key.clone())),
        ),
        (
            "worst_metric".into(),
            worst.map_or(Value::Null, |d| Value::Str(d.field.to_string())),
        ),
        (
            "worst_pct".into(),
            worst.map_or(Value::Null, |d| Value::F64(d.worse_pct)),
        ),
        ("regressions".into(), Value::Array(regressed)),
        (
            "missing".into(),
            Value::Array(missing.iter().map(|k| Value::Str(k.clone())).collect()),
        ),
    ]);
    let line =
        serde_json::to_string(&record).map_err(|e| std::io::Error::other(format!("{e:?}")))?;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(file, "{line}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(json: &str, suite: &Suite) -> Vec<(String, Value)> {
        let doc: Value = serde_json::from_str(json).unwrap();
        let Some(Value::Array(rows)) = doc.get(suite.rows_field) else {
            panic!("bad fixture");
        };
        rows.iter()
            .map(|r| (row_key(r, suite.key_fields), r.clone()))
            .collect()
    }

    fn math_suite() -> &'static Suite {
        SUITES.iter().find(|s| s.name == "math").unwrap()
    }

    fn train_suite() -> &'static Suite {
        SUITES.iter().find(|s| s.name == "train").unwrap()
    }

    const MATH_BASE: &str = r#"{"gemm":[
        {"kernel":"nn","batch":16,"m":16,"k":512,"n":512,
         "simd_gflops":50.0,"parallel_gflops":40.0}]}"#;

    #[test]
    fn parity_passes() {
        let suite = math_suite();
        let base = rows(MATH_BASE, suite);
        let (deltas, missing, new_rows) = diff(suite, &base, &base, None);
        assert_eq!(deltas.len(), 2);
        assert!(deltas.iter().all(|d| !d.regressed && d.worse_pct == 0.0));
        assert!(missing.is_empty() && new_rows.is_empty());
    }

    #[test]
    fn throughput_drop_beyond_threshold_regresses() {
        let suite = math_suite();
        let base = rows(MATH_BASE, suite);
        // simd 50 -> 30 is a 40% drop, past the 30% default; parallel
        // 40 -> 30 is 25%, inside its 40% allowance.
        let fresh = rows(
            r#"{"gemm":[
                {"kernel":"nn","batch":16,"m":16,"k":512,"n":512,
                 "simd_gflops":30.0,"parallel_gflops":30.0}]}"#,
            suite,
        );
        let (deltas, _, _) = diff(suite, &base, &fresh, None);
        let simd = deltas.iter().find(|d| d.field == "simd_gflops").unwrap();
        let par = deltas
            .iter()
            .find(|d| d.field == "parallel_gflops")
            .unwrap();
        assert!(simd.regressed);
        assert!(!par.regressed);
    }

    #[test]
    fn loss_is_lower_better() {
        let suite = train_suite();
        let base = rows(
            r#"{"rows":[{"engine":"sim","algorithm":"A","dataset":"w8a",
                "measured_beta_enabled":true,"updates_per_sec":1000,"final_loss":0.5}]}"#,
            suite,
        );
        // Loss halved: an improvement, never a regression.
        let better = rows(
            r#"{"rows":[{"engine":"sim","algorithm":"A","dataset":"w8a",
                "measured_beta_enabled":true,"updates_per_sec":1000,"final_loss":0.25}]}"#,
            suite,
        );
        let (deltas, _, _) = diff(suite, &base, &better, None);
        assert!(deltas.iter().all(|d| !d.regressed));
        // Loss doubled: 100% worse, past the 25% default.
        let worse = rows(
            r#"{"rows":[{"engine":"sim","algorithm":"A","dataset":"w8a",
                "measured_beta_enabled":true,"updates_per_sec":1000,"final_loss":1.0}]}"#,
            suite,
        );
        let (deltas, _, _) = diff(suite, &base, &worse, None);
        assert!(deltas
            .iter()
            .any(|d| d.field == "final_loss" && d.regressed));
    }

    #[test]
    fn missing_row_fails_new_row_does_not() {
        let suite = math_suite();
        let base = rows(MATH_BASE, suite);
        let fresh = rows(
            r#"{"gemm":[
                {"kernel":"nt","batch":16,"m":16,"k":512,"n":512,
                 "simd_gflops":50.0,"parallel_gflops":40.0}]}"#,
            suite,
        );
        let (deltas, missing, new_rows) = diff(suite, &base, &fresh, None);
        assert!(deltas.is_empty());
        assert_eq!(missing, vec!["nn/16/16/512/512".to_string()]);
        assert_eq!(new_rows, vec!["nt/16/16/512/512".to_string()]);
    }

    #[test]
    fn threshold_override_applies_to_all_metrics() {
        let suite = math_suite();
        let base = rows(MATH_BASE, suite);
        let fresh = rows(
            r#"{"gemm":[
                {"kernel":"nn","batch":16,"m":16,"k":512,"n":512,
                 "simd_gflops":48.0,"parallel_gflops":38.0}]}"#,
            suite,
        );
        // ~4-5% drops: fine at defaults, fatal at --threshold 1.
        let (deltas, _, _) = diff(suite, &base, &fresh, Some(1.0));
        assert!(deltas.iter().all(|d| d.regressed));
        let (deltas, _, _) = diff(suite, &base, &fresh, None);
        assert!(deltas.iter().all(|d| !d.regressed));
    }

    #[test]
    fn committed_baselines_parse_and_self_diff_clean() {
        let root = crate::workspace_root();
        for suite in SUITES {
            let path = root.join(suite.baseline_file);
            let rows = load_rows(&path, suite).expect("committed baseline parses");
            assert!(!rows.is_empty(), "{} has rows", suite.baseline_file);
            let (deltas, missing, new_rows) = diff(suite, &rows, &rows, None);
            assert!(!deltas.is_empty());
            assert!(deltas.iter().all(|d| !d.regressed));
            assert!(missing.is_empty() && new_rows.is_empty());
        }
    }
}
