//! A counting global allocator for steady-state allocation checks.
//!
//! The math-core benchmarks claim "zero heap allocations per training step
//! once the [`hetero_nn::Workspace`] is warm". That claim is only worth
//! anything if it is *measured*, so the `bench_math` binary (and any test
//! that wants to) installs [`CountingAlloc`] as the `#[global_allocator]`
//! and diffs [`CountingAlloc::allocations`] around the steady-state loop.
//!
//! The counter is a single relaxed atomic: we only ever read it from the
//! thread doing the allocation-free work, and an exact global ordering of
//! counts from other threads is not needed — any allocation attributed to
//! the measured region, from any thread, is a real regression.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// [`System`] allocator wrapper that counts `alloc`/`realloc` calls.
///
/// Install with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: CountingAlloc = CountingAlloc::new();
/// ```
pub struct CountingAlloc {
    allocations: AtomicU64,
}

impl CountingAlloc {
    /// A fresh counter starting at zero.
    pub const fn new() -> Self {
        CountingAlloc {
            allocations: AtomicU64::new(0),
        }
    }

    /// Total `alloc` + `realloc` calls since process start.
    ///
    /// Diff two reads around a region to count allocations inside it.
    pub fn allocations(&self) -> u64 {
        // Relaxed: monotone tally, nothing is published through it.
        self.allocations.load(Ordering::Relaxed)
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: defers every operation to `System`; the only added behavior is a
// relaxed atomic increment, which cannot violate the GlobalAlloc contract.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: each method forwards its arguments verbatim to `System`, so
    // every caller obligation is exactly `System`'s own.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // Relaxed: the counter is a monotone tally; no memory is published
        // through it, so atomicity alone suffices (see module docs).
        self.allocations.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout the caller passed under the same contract.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: forwards verbatim; caller obligations are `System`'s own.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: same ptr/layout the caller passed under the same contract.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: forwards verbatim; caller obligations are `System`'s own.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Relaxed: see `alloc`.
        self.allocations.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same arguments the caller passed under the same contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}
