//! Figure 7 — CPU and GPU utilization over three epochs on covtype.
//!
//! Paper shapes: CPU utilization hovers around 80% (56 of 64 threads);
//! GPU utilization stays above 80% for Hogbatch GPU and CPU+GPU (batch
//! 8192), drops toward the lower threshold (~50%) under Adaptive; the
//! end-of-epoch loss evaluation shows up as a GPU spike / CPU dip.
//!
//! Output: CSV `algorithm,device,time_s,utilization` sampled on a fixed
//! grid over the first three epochs.

use hetero_bench::plot::{write_chart, ChartConfig, Series};
use hetero_bench::Harness;
use hetero_core::{AlgorithmKind, WorkerKind};
use hetero_data::PaperDataset;

fn main() {
    let mut h = Harness::default();
    // Three epochs of covtype: cap the budget by epochs instead of time.
    let p = PaperDataset::Covtype;
    let dataset = h.dataset(p);
    eprintln!(
        "fig7: covtype scale={} width={} — 3 epochs per algorithm",
        h.scale, h.width
    );
    // Give a long time budget; the epoch cap stops the run.
    h.budget *= 4.0;

    println!("algorithm,device,time_s,utilization");
    for algo in [
        AlgorithmKind::HogwildCpu,
        AlgorithmKind::MiniBatchGpu,
        AlgorithmKind::CpuGpuHogbatch,
        AlgorithmKind::AdaptiveHogbatch,
    ] {
        let spec = h.network(p, &dataset);
        let mut train = h.train_config(algo, &dataset);
        train.max_epochs = Some(3);
        let engine =
            hetero_core::SimEngine::new(hetero_core::SimEngineConfig::paper_hardware(spec, train))
                .unwrap();
        let r = engine.run(&dataset);

        // Sample each worker's timeline on a grid covering the *active*
        // part of the run: the three epochs end when the last worker batch
        // completes, well before the safety time budget. The eval pseudo-
        // worker (batches == 0) is excluded from the horizon so the final
        // budget-boundary evaluation does not pad the plot with idle time.
        let horizon = r
            .workers
            .iter()
            .filter(|w| w.batches > 0)
            .map(|w| w.timeline.horizon())
            .fold(0.0f64, f64::max)
            .max(1e-9);
        let dt = horizon / 60.0;
        let mut cpu_avg = (0.0, 0);
        let mut gpu_avg = (0.0, 0);
        let mut svg_series = Vec::new();
        for (i, w) in r.workers.iter().enumerate() {
            if w.timeline.segments().is_empty() {
                continue;
            }
            let device = match (w.kind, w.batches) {
                (WorkerKind::Cpu, _) => "cpu".to_string(),
                (WorkerKind::Gpu, 0) => "gpu-eval".to_string(),
                (WorkerKind::Gpu, _) => format!("gpu{}", i),
            };
            let samples = w.timeline.sample(horizon, dt);
            svg_series.push(Series {
                name: device.clone(),
                points: samples.iter().map(|&(t, u)| (t, u)).collect(),
            });
            for (t, u) in samples {
                println!("{},{},{:.5},{:.4}", algo.label(), device, t, u);
                match w.kind {
                    WorkerKind::Cpu => {
                        cpu_avg.0 += u;
                        cpu_avg.1 += 1;
                    }
                    WorkerKind::Gpu if w.batches > 0 => {
                        gpu_avg.0 += u;
                        gpu_avg.1 += 1;
                    }
                    _ => {}
                }
            }
        }
        let cfg = ChartConfig {
            title: format!("Fig. 7 — utilization over 3 epochs ({})", algo.label()),
            x_label: "virtual seconds".into(),
            y_label: "utilization".into(),
            log_y: false,
            ..ChartConfig::default()
        };
        let path = format!(
            "results/fig7_{}.svg",
            algo.label().replace([' ', '+'], "_").to_lowercase()
        );
        if write_chart(&path, &cfg, &svg_series).unwrap_or(false) {
            eprintln!("  wrote {path}");
        }
        let mean = |(s, n): (f64, usize)| if n > 0 { s / n as f64 } else { 0.0 };
        eprintln!(
            "{:24} 3 epochs in {:8.3}s virtual | mean CPU util {:4.1}% | mean GPU util {:4.1}%",
            algo.label(),
            horizon,
            100.0 * mean(cpu_avg),
            100.0 * mean(gpu_avg)
        );
    }
}
