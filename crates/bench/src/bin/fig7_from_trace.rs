//! Figure 7 (trace-derived) — per-device utilization reconstructed from
//! the structured event trace instead of the engine's built-in timelines.
//!
//! The engine emits `BatchDispatched`/`BatchCompleted` pairs into a
//! virtual-time [`hetero_trace::TraceSink`]; this binary replays those
//! events into busy intervals and samples them on a fixed grid, so the
//! Chrome trace (`examples/trace_run.rs`) and the utilization plot come
//! from the same event stream and cannot disagree. Compare against
//! `fig7_utilization`, which reads the simulator timelines directly.
//!
//! Output: CSV `algorithm,device,time_s,utilization` plus a stderr
//! summary of total busy fractions from [`hetero_trace::utilization`].

use hetero_bench::Harness;
use hetero_core::{AlgorithmKind, WorkerKind};
use hetero_data::PaperDataset;
use hetero_trace::{utilization::utilization, EventKind, COORDINATOR};

/// Busy intervals per worker, reconstructed from dispatch/completion pairs.
fn busy_intervals(trace: &hetero_trace::Trace) -> Vec<(u32, Vec<(f64, f64)>)> {
    let mut pending: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
    let mut spans: std::collections::HashMap<u32, Vec<(f64, f64)>> =
        std::collections::HashMap::new();
    for event in trace.events_sorted() {
        if event.worker == COORDINATOR {
            continue;
        }
        match event.kind {
            EventKind::BatchDispatched { .. } => {
                pending.insert(event.worker, event.t);
            }
            EventKind::BatchCompleted { .. } => {
                if let Some(t0) = pending.remove(&event.worker) {
                    spans.entry(event.worker).or_default().push((t0, event.t));
                }
            }
            _ => {}
        }
    }
    let mut out: Vec<_> = spans.into_iter().collect();
    out.sort_by_key(|(w, _)| *w);
    out
}

/// Fraction of `[t0, t0 + dt)` covered by the (sorted, per-worker serial)
/// busy intervals.
fn coverage(intervals: &[(f64, f64)], t0: f64, dt: f64) -> f64 {
    let t1 = t0 + dt;
    let mut busy = 0.0;
    for &(a, b) in intervals {
        busy += (b.min(t1) - a.max(t0)).max(0.0);
    }
    (busy / dt.max(1e-12)).min(1.0)
}

fn main() {
    let h = Harness::default();
    let p = PaperDataset::Covtype;
    let dataset = h.dataset(p);
    eprintln!(
        "fig7_from_trace: covtype scale={} width={} budget={}s virtual",
        h.scale, h.width, h.budget
    );

    println!("algorithm,device,time_s,utilization");
    for algo in [
        AlgorithmKind::HogwildCpu,
        AlgorithmKind::MiniBatchGpu,
        AlgorithmKind::CpuGpuHogbatch,
        AlgorithmKind::AdaptiveHogbatch,
    ] {
        let (r, trace) = h.run_on_traced(p, &dataset, algo);
        let device = |w: u32| match r.workers.get(w as usize).map(|s| s.kind) {
            Some(WorkerKind::Cpu) => "cpu".to_string(),
            Some(WorkerKind::Gpu) => format!("gpu{w}"),
            None => format!("w{w}"),
        };

        let horizon = trace
            .events_sorted()
            .last()
            .map(|e| e.t)
            .unwrap_or(h.budget)
            .max(1e-9);
        let dt = horizon / 60.0;
        for (w, intervals) in busy_intervals(&trace) {
            let name = device(w);
            for i in 0..60 {
                let t = i as f64 * dt;
                println!(
                    "{},{},{:.5},{:.4}",
                    algo.label(),
                    name,
                    t,
                    coverage(&intervals, t, dt)
                );
            }
        }

        let totals = utilization(&trace);
        let fmt = |kind: WorkerKind| {
            let (busy, n): (f64, usize) = totals
                .iter()
                .filter(|u| r.workers.get(u.worker as usize).map(|s| s.kind) == Some(kind))
                .map(|u| u.busy_fraction)
                .fold((0.0, 0), |(s, n), f| (s + f, n + 1));
            if n > 0 {
                100.0 * busy / n as f64
            } else {
                0.0
            }
        };
        eprintln!(
            "{:24} {:5} events ({} dropped) | mean CPU util {:4.1}% | mean GPU util {:4.1}%",
            algo.label(),
            trace.len(),
            trace.total_dropped(),
            fmt(WorkerKind::Cpu),
            fmt(WorkerKind::Gpu)
        );
    }
}
