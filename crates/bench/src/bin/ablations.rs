//! Ablation sweeps over the design choices §VI calls out:
//!
//! 1. **α** (batch rescale factor) — how aggressive adaptation should be;
//! 2. **β** (surviving-update fraction credited per CPU batch) — how the
//!    coordinator discounts conflicting Hogwild updates;
//! 3. **GPU lower threshold** — the utilization-vs-balance trade-off that
//!    Figure 7's Adaptive curve exposes;
//! 4. **learning-rate ∝ batch** on/off — the Goyal-style scaling the
//!    paper adopts in §VI-B.
//!
//! Output: one CSV block per sweep on stdout, summary on stderr.

use hetero_bench::Harness;
use hetero_core::{AlgorithmKind, LrScaling, SimEngine, SimEngineConfig};
use hetero_data::PaperDataset;

fn main() {
    let h = Harness::default();
    let p = PaperDataset::Covtype;
    let dataset = h.dataset(p);
    let spec = h.network(p, &dataset);
    eprintln!(
        "ablations on covtype: scale={} width={} budget={}s",
        h.scale, h.width, h.budget
    );

    // --- 1. α sweep ----------------------------------------------------------
    println!("# alpha sweep (Adaptive Hogbatch)");
    println!("alpha,final_loss,cpu_fraction,gpu_final_batch");
    for alpha in [1.25, 1.5, 2.0, 4.0, 8.0] {
        let mut train = h.train_config(AlgorithmKind::AdaptiveHogbatch, &dataset);
        train.adaptive.alpha = alpha;
        let r = SimEngine::new(SimEngineConfig::paper_hardware(spec.clone(), train))
            .unwrap()
            .run(&dataset);
        let gpu_batch = r
            .workers
            .iter()
            .find(|w| w.kind == hetero_core::WorkerKind::Gpu && w.batches > 0)
            .map(|w| w.final_batch)
            .unwrap_or(0);
        println!(
            "{alpha},{:.5},{:.4},{gpu_batch}",
            r.final_loss(),
            r.cpu_update_fraction()
        );
        eprintln!(
            "alpha {alpha:4}: final loss {:.5}, CPU share {:4.1}%, GPU batch ends at {gpu_batch}",
            r.final_loss(),
            100.0 * r.cpu_update_fraction()
        );
    }

    // --- 2. β sweep ----------------------------------------------------------
    println!("# beta sweep (Adaptive Hogbatch)");
    println!("beta,final_loss,cpu_fraction");
    for beta in [0.25, 0.5, 0.75, 1.0] {
        let mut train = h.train_config(AlgorithmKind::AdaptiveHogbatch, &dataset);
        train.adaptive.beta = beta;
        let r = SimEngine::new(SimEngineConfig::paper_hardware(spec.clone(), train))
            .unwrap()
            .run(&dataset);
        println!(
            "{beta},{:.5},{:.4}",
            r.final_loss(),
            r.cpu_update_fraction()
        );
        eprintln!(
            "beta {beta:4}: final loss {:.5}, CPU share {:4.1}%",
            r.final_loss(),
            100.0 * r.cpu_update_fraction()
        );
    }

    // --- 3. GPU lower-threshold sweep -----------------------------------------
    println!("# gpu lower-threshold sweep (Adaptive Hogbatch)");
    println!("gpu_min_batch,final_loss,mean_gpu_util");
    let base = h.train_config(AlgorithmKind::AdaptiveHogbatch, &dataset);
    for div in [2usize, 4, 8, 16, 32] {
        let mut train = base.clone();
        train.adaptive.gpu_min_batch = (train.adaptive.gpu_max_batch / div).max(1);
        let min_b = train.adaptive.gpu_min_batch;
        let r = SimEngine::new(SimEngineConfig::paper_hardware(spec.clone(), train))
            .unwrap()
            .run(&dataset);
        let gpu = r
            .workers
            .iter()
            .find(|w| w.kind == hetero_core::WorkerKind::Gpu && w.batches > 0);
        let util = gpu
            .map(|w| {
                let hzn = w.timeline.horizon().max(1e-12);
                w.timeline.busy_time() / hzn
            })
            .unwrap_or(0.0);
        println!("{min_b},{:.5},{:.4}", r.final_loss(), util);
        eprintln!(
            "gpu_min {min_b:5}: final loss {:.5}, mean GPU util while active {:4.1}%",
            r.final_loss(),
            100.0 * util
        );
    }

    // --- 4. lr scaling on/off ---------------------------------------------------
    println!("# learning-rate scaling (CPU+GPU Hogbatch)");
    println!("scaling,final_loss,min_loss");
    for (name, scaling) in [
        ("none", LrScaling::None),
        (
            "sqrt",
            LrScaling::Sqrt {
                ref_batch: 1,
                max_lr: 0.5,
            },
        ),
        (
            "linear",
            LrScaling::Linear {
                ref_batch: 1,
                max_lr: 0.5,
            },
        ),
    ] {
        let mut train = h.train_config(AlgorithmKind::CpuGpuHogbatch, &dataset);
        train.lr_scaling = scaling;
        let r = SimEngine::new(SimEngineConfig::paper_hardware(spec.clone(), train))
            .unwrap()
            .run(&dataset);
        println!("{name},{:.5},{:.5}", r.final_loss(), r.min_loss());
        eprintln!(
            "lr scaling {name:6}: final loss {:.5} (min {:.5})",
            r.final_loss(),
            r.min_loss()
        );
    }
}
