//! Figure 5 — normalized loss vs (virtual) time, all algorithms × all
//! four datasets.
//!
//! Paper shapes this must reproduce:
//! - the heterogeneous algorithms (CPU+GPU, Adaptive) reach low loss
//!   fastest;
//! - Hogbatch/Hogwild CPU is orders of magnitude slower per epoch
//!   (236–317×) and barely moves within the budget;
//! - TensorFlow tracks Hogbatch GPU closely — except on `delicious`,
//!   where its multi-label path makes it clearly worse;
//! - Adaptive beats CPU+GPU on `real-sim` (high-dimensional data suffers
//!   more from conflicting updates).
//!
//! Output: CSV `dataset,algorithm,time,normalized_loss` on stdout; a
//! summary table on stderr.

use hetero_bench::plot::{write_chart, ChartConfig, Series};
use hetero_bench::{normalization_basis, Harness};
use hetero_core::AlgorithmKind;
use hetero_data::PaperDataset;

fn main() {
    let h = Harness::default();
    eprintln!(
        "fig5: scale={} width={} budget={}s (HETERO_SCALE/WIDTH/BUDGET to change)",
        h.scale, h.width, h.budget
    );
    println!("dataset,algorithm,time_s,normalized_loss");
    for p in PaperDataset::all() {
        let dataset = h.dataset(p);
        let results: Vec<_> = AlgorithmKind::all()
            .into_iter()
            .map(|a| h.run_on(p, &dataset, a))
            .collect();
        let basis = normalization_basis(&results);
        eprintln!("\n== {} (basis loss {:.5}) ==", dataset.name, basis);
        let mut svg_series = Vec::new();
        for r in &results {
            for pt in r.normalized_curve(basis) {
                println!(
                    "{},{},{:.5},{:.5}",
                    dataset.name, r.algorithm, pt.time, pt.loss
                );
            }
            svg_series.push(Series {
                name: r.algorithm.clone(),
                points: r
                    .normalized_curve(basis)
                    .iter()
                    .map(|pt| (pt.time, pt.loss as f64))
                    .collect(),
            });
            eprintln!(
                "  {:24} final {:7.3}x basis | reaches 1.5x basis at {}",
                r.algorithm,
                r.final_loss() / basis,
                r.time_to_loss(basis * 1.5)
                    .map(|t| format!("{t:.3}s"))
                    .unwrap_or_else(|| "never".into()),
            );
        }
        let cfg = ChartConfig {
            title: format!("Fig. 5 — normalized loss vs time ({})", dataset.name),
            x_label: "virtual seconds".into(),
            y_label: "loss / min loss (log)".into(),
            log_y: true,
            ..ChartConfig::default()
        };
        let path = format!("results/fig5_{}.svg", dataset.name);
        if write_chart(&path, &cfg, &svg_series).unwrap_or(false) {
            eprintln!("  wrote {path}");
        }
    }
}
