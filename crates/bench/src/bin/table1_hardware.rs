//! Table I — hardware architecture specification.
//!
//! Prints the paper's hardware table side by side with the simulated
//! device models this reproduction runs on, so every calibrated constant
//! is visible.

use hetero_sim::{CpuModel, DeviceModel, GpuModel};

fn main() {
    let cpu = CpuModel::xeon_pair();
    let gpu = GpuModel::v100();

    println!("# Table I: hardware architecture specifications");
    println!("component,paper,simulated");
    println!(
        "CPU cores,18 per socket (2 sockets),{} worker threads of {}",
        cpu.threads, cpu.hw_threads
    );
    println!("CPU threads,36 per socket,{}", cpu.hw_threads);
    println!(
        "GPU MPs,80 (V100),occupancy curve b/(b+{})",
        gpu.occupancy_half_batch
    );
    println!("GPU threads,2048 per MP,modeled via occupancy");
    println!("L1 cache,32(D) KB / 128 KB,— (throughput model)");
    println!("L2 cache,256 KB / 6 MB,— (throughput model)");
    println!("L3 / shared,45 MB / 96 KB,— (throughput model)");
    println!("host memory,488 GB,{} GB", cpu.memory_capacity() >> 30);
    println!("GPU memory,16 GB,{} GB", gpu.memory_capacity() >> 30);
    println!();
    println!("# calibrated throughput constants");
    println!("metric,value");
    println!("GPU peak fp32,{:.1} TFLOP/s", gpu.peak_flops / 1e12);
    println!("GPU occupancy @512,{:.2}", gpu.occupancy(512));
    println!("GPU occupancy @8192,{:.2}", gpu.occupancy(8192));
    println!(
        "GPU kernel-launch overhead,{:.0} us/step",
        gpu.launch_overhead * 1e6
    );
    println!("PCIe bandwidth,{:.0} GB/s", gpu.transfer_bandwidth / 1e9);
    println!("PCIe latency,{:.0} us", gpu.transfer_latency * 1e6);
    println!(
        "CPU per-thread GEMV,{:.1} GFLOP/s",
        cpu.thread_flops(1) / 1e9
    );
    println!(
        "CPU per-thread GEMM,{:.1} GFLOP/s",
        cpu.thread_flops(1024) / 1e9
    );
    println!(
        "CPU dispatch overhead,{:.0} us/batch",
        cpu.dispatch_overhead * 1e6
    );

    // The single number the models are calibrated against (§VII-B).
    let fpe: u64 = {
        let dims = [
            (54usize, 512usize),
            (512, 512),
            (512, 512),
            (512, 512),
            (512, 512),
            (512, 512),
            (512, 2),
        ];
        3 * dims
            .iter()
            .map(|&(i, o)| 2 * (i as u64) * (o as u64))
            .sum::<u64>()
    };
    let n = 581_012usize;
    let gpu_epoch = (n.div_ceil(8192)) as f64
        * (gpu.batch_time(fpe, 8192) + gpu.transfer_time((8192 * 54 * 4) as u64));
    let cpu_epoch = (n as f64 / cpu.threads as f64) * cpu.batch_time(fpe, cpu.threads);
    println!();
    println!("# calibration check (paper: CPU Hogwild 236-317x slower per epoch)");
    println!("covtype epoch on GPU (mini-batch 8192),{:.3} s", gpu_epoch);
    println!("covtype epoch on CPU (Hogwild),{:.1} s", cpu_epoch);
    println!("ratio,{:.0}x", cpu_epoch / gpu_epoch);
}
