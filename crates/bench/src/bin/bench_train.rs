//! End-to-end training benchmark → `BENCH_train.json`: updates/s,
//! time-to-fixed-loss, steady-state staleness quantiles, and measured β
//! per engine/algorithm, so future PRs have a whole-system trajectory to
//! diff against (the math-core counterpart is `bench_math`).
//!
//! Two legs:
//!
//! - **sim** — every paper algorithm on the calibrated V100/Xeon models
//!   (virtual time, deterministic), one row per algorithm.
//! - **threaded** — the two Hogbatch algorithms on real OS threads +
//!   software GPU (wall-clock), with `measured_beta` on so the row records
//!   the CAS-probed serialization rate β̂ alongside the configured value.
//!
//! "Time to fixed loss" uses a per-leg target: 105% of the best loss any
//! algorithm in that leg reached, so the column compares *speed to the
//! same quality* rather than final quality (which the budget caps anyway).
//! Rows that never reach the target report `null`.
//!
//! Honors `HETERO_SCALE` / `HETERO_WIDTH` / `HETERO_BUDGET` /
//! `HETERO_DEPTH_FACTOR` like every other bench binary, plus
//! `HETERO_BUDGET_WALL` (seconds, default `0.5`) for the threaded leg.
//!
//! ```text
//! cargo run --release -p hetero-bench --bin bench_train
//! ```

use std::sync::Arc;

use hetero_bench::Harness;
use hetero_core::{
    AlgorithmKind, FaultPlan, SimEngine, SimEngineConfig, ThreadedEngine, ThreadedEngineConfig,
    TrainResult,
};
use hetero_data::PaperDataset;
use hetero_flight::{FlightConfig, FlightRecorder};
use hetero_metrics::{Metric, MetricsHub, Summary};
use hetero_sim::GpuModel;
use hetero_trace::TraceSink;
use serde::Serialize;

#[derive(Serialize, Clone, Copy)]
struct Quantiles {
    count: u64,
    p50: f64,
    p99: f64,
    max: f64,
}

impl From<Summary> for Quantiles {
    fn from(s: Summary) -> Self {
        Quantiles {
            count: s.count,
            p50: s.p50,
            p99: s.p99,
            max: s.max,
        }
    }
}

#[derive(Serialize)]
struct Row {
    engine: &'static str,
    algorithm: String,
    dataset: String,
    /// Whether the run measured β from CAS probes (`TrainConfig::measured_beta`).
    measured_beta_enabled: bool,
    duration_secs: f64,
    epochs: f64,
    final_loss: f32,
    total_updates: f64,
    updates_per_sec: f64,
    /// Seconds (virtual or wall, per `engine`) to first reach the leg's
    /// shared target loss; `null` when this row never got there.
    time_to_target_loss: Option<f64>,
    /// Measured serialization rate β̂ (see DESIGN.md §4g); `null` when
    /// `measured_beta_enabled` is false.
    measured_beta: Option<f64>,
    /// Per-update gradient staleness in model versions (raw counts).
    staleness: Option<Quantiles>,
    /// Per-batch compute latency in milliseconds.
    batch_latency_ms: Option<Quantiles>,
    /// Training-health summary from the flight watchdog; `null` for runs
    /// without a flight recorder attached.
    health: Option<hetero_flight::HealthSummary>,
}

#[derive(Serialize)]
struct Report {
    scale: f64,
    width: usize,
    sim_budget_secs: f64,
    wall_budget_secs: f64,
    /// The leg-shared quality bar behind `time_to_target_loss`.
    target_rule: &'static str,
    sim_target_loss: f32,
    threaded_target_loss: f32,
    /// Throughput cost of the always-on flight watchdog, in percent:
    /// `(plain - watchdog) / plain * 100` on the Adaptive Hogbatch threaded
    /// run. Negative values are measurement noise (the instrumented run was
    /// faster).
    watchdog_overhead_pct: Option<f64>,
    /// The stable form of the same budget: the per-batch SIMD health scan
    /// timed directly, as a percentage of the fastest threaded batch-p50
    /// latency. Budgeted at < 2% — set `HETERO_ASSERT_OVERHEAD=1` to make
    /// the binary abort when the budget is blown.
    watchdog_scan_cost_pct: f64,
    rows: Vec<Row>,
}

/// Virtual/wall seconds at which `r`'s loss curve first reaches `target`.
fn time_to(r: &TrainResult, target: f32) -> Option<f64> {
    r.loss_curve
        .iter()
        .find(|p| p.loss <= target)
        .map(|p| p.time)
}

fn row(engine: &'static str, r: &TrainResult, hub: &MetricsHub, measured: bool) -> Row {
    Row {
        engine,
        algorithm: r.algorithm.clone(),
        dataset: r.dataset.clone(),
        measured_beta_enabled: measured,
        duration_secs: r.duration,
        epochs: r.epochs,
        final_loss: r.final_loss(),
        total_updates: r.total_updates(),
        updates_per_sec: r.total_updates() / r.duration.max(1e-9),
        time_to_target_loss: None, // filled once the leg's target is known
        measured_beta: r.measured_beta,
        staleness: r.staleness.map(Quantiles::from),
        batch_latency_ms: hub
            .summary(Metric::BatchLatency)
            .map(|s| Quantiles::from(s.scaled(1e-6))),
        health: r.health.clone(),
    }
}

fn main() {
    let h = Harness::default();
    let wall_budget = std::env::var("HETERO_BUDGET_WALL")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.5);
    let which = PaperDataset::W8a;
    let dataset = h.dataset(which);
    eprintln!(
        "bench_train: {} ({} examples), sim budget {}s, wall budget {}s",
        which.stats().name,
        dataset.len(),
        h.budget,
        wall_budget
    );

    // Sim leg: every algorithm, measured β on for the ones that share a
    // model (it is a property of concurrent application; the serial sim
    // reports exactly 1.0 — a useful fixture to diff the threaded β̂ against).
    let sim_algos = [
        AlgorithmKind::HogwildCpu,
        AlgorithmKind::MiniBatchGpu,
        AlgorithmKind::CpuGpuHogbatch,
        AlgorithmKind::AdaptiveHogbatch,
    ];
    let mut rows = Vec::new();
    let mut sim_results = Vec::new();
    for algo in sim_algos {
        let spec = h.network(which, &dataset);
        let mut train = h.train_config(algo, &dataset);
        train.measured_beta = algo.uses_gpu() && algo.uses_cpu();
        let measured = train.measured_beta;
        let engine =
            SimEngine::new(SimEngineConfig::paper_hardware(spec, train)).expect("valid sim config");
        let hub = MetricsHub::new();
        let r = engine.run_observed(&dataset, &TraceSink::disabled(), &hub);
        eprintln!(
            "  sim/{}: {:.0} updates ({:.0}/s), loss {:.4}",
            r.algorithm,
            r.total_updates(),
            r.total_updates() / r.duration.max(1e-9),
            r.final_loss()
        );
        rows.push(row("sim", &r, &hub, measured));
        sim_results.push(r);
    }
    let sim_target = sim_results
        .iter()
        .map(|r| r.min_loss())
        .fold(f32::INFINITY, f32::min)
        * 1.05;
    for (row, r) in rows.iter_mut().zip(&sim_results) {
        row.time_to_target_loss = time_to(r, sim_target);
    }

    // Threaded leg: the shared-model algorithms on real threads, β̂ measured.
    let cpu_threads = std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(2).max(2))
        .unwrap_or(4);
    let mut threaded_results = Vec::new();
    let first_threaded = rows.len();
    for algo in [
        AlgorithmKind::CpuGpuHogbatch,
        AlgorithmKind::AdaptiveHogbatch,
    ] {
        let spec = h.network(which, &dataset);
        let mut train = h.train_config(algo, &dataset);
        train.time_budget = wall_budget;
        train.eval_interval = (wall_budget / 8.0).max(0.02);
        train.measured_beta = true;
        let engine = ThreadedEngine::new(ThreadedEngineConfig {
            spec,
            train,
            cpu_threads,
            gpu_perf: GpuModel::v100(),
            gpu_workers: 1,
            fault_plan: FaultPlan::none(),
        })
        .expect("valid threaded config");
        let hub = MetricsHub::new();
        let r = engine.run_observed(Arc::new(dataset.clone()), &TraceSink::disabled(), &hub);
        eprintln!(
            "  threaded/{}: {:.0} updates ({:.0}/s), loss {:.4}, β̂ = {:?}",
            r.algorithm,
            r.total_updates(),
            r.total_updates() / r.duration.max(1e-9),
            r.final_loss(),
            r.measured_beta
        );
        rows.push(row("threaded", &r, &hub, true));
        threaded_results.push(r);
    }
    let threaded_target = threaded_results
        .iter()
        .map(|r| r.min_loss())
        .fold(f32::INFINITY, f32::min)
        * 1.05;
    for (row, r) in rows[first_threaded..].iter_mut().zip(&threaded_results) {
        row.time_to_target_loss = time_to(r, threaded_target);
    }

    // Watchdog leg: Adaptive Hogbatch once more with the flight recorder
    // attached, so the report carries (a) a health-summarized row and (b)
    // the measured overhead of the per-merge SIMD health scan relative to
    // the plain run above. Both runs burn the same wall budget, so
    // updates/s is the honest comparison.
    let (watchdog_overhead_pct, wd_batches, wd_duration) = {
        let spec = h.network(which, &dataset);
        let mut train = h.train_config(AlgorithmKind::AdaptiveHogbatch, &dataset);
        train.time_budget = wall_budget;
        train.eval_interval = (wall_budget / 8.0).max(0.02);
        train.measured_beta = true;
        let engine = ThreadedEngine::new(ThreadedEngineConfig {
            spec,
            train,
            cpu_threads,
            gpu_perf: GpuModel::v100(),
            gpu_workers: 1,
            fault_plan: FaultPlan::none(),
        })
        .expect("valid threaded config");
        let hub = MetricsHub::new();
        let flight = FlightRecorder::new(FlightConfig::default());
        let r = engine.run_flight(
            Arc::new(dataset.clone()),
            &TraceSink::disabled(),
            &hub,
            &flight,
        );
        let ups = r.total_updates() / r.duration.max(1e-9);
        let plain_ups = threaded_results
            .iter()
            .find(|p| p.algorithm == r.algorithm)
            .map(|p| p.total_updates() / p.duration.max(1e-9));
        let overhead = plain_ups
            .filter(|&p| p > 0.0)
            .map(|p| (p - ups) / p * 100.0);
        eprintln!(
            "  watchdog/{}: {:.0} updates ({ups:.0}/s), overhead {}",
            r.algorithm,
            r.total_updates(),
            overhead.map_or("n/a".into(), |o| format!("{o:.2}%")),
        );
        let mut wrow = row("threaded+watchdog", &r, &hub, true);
        wrow.time_to_target_loss = time_to(&r, threaded_target);
        rows.push(wrow);
        let batches: u64 = r.workers.iter().map(|w| w.batches).sum();
        (overhead, batches, r.duration)
    };
    // The A/B number above is honest but noisy (two short wall-clock runs).
    // The enforceable budget is the stable micro-measurement: time one
    // standalone SIMD health scan (the only extra per-batch work the
    // watchdog adds — the GPU merge path fuses it, so a standalone pass is
    // an upper bound), charge it to every batch the watchdog run processed,
    // and express that against the run's wall time.
    let watchdog_scan_cost_pct = {
        use hetero_nn::{scan_model, InitScheme, MergeScan, Model};
        let model = Model::new(h.network(which, &dataset), InitScheme::Xavier, 7);
        let mut scan = MergeScan::for_model(&model);
        let reps = 2000u32;
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            scan.reset();
            scan_model(&model, &mut scan);
        }
        let scan_secs = t0.elapsed().as_secs_f64() / reps as f64;
        let pct = scan_secs * wd_batches as f64 / wd_duration.max(1e-9) * 100.0;
        eprintln!(
            "  watchdog scan: {:.1}µs per model pass × {wd_batches} batches \
             = {pct:.3}% of the {wd_duration:.2}s run",
            scan_secs * 1e6
        );
        pct
    };
    if std::env::var("HETERO_ASSERT_OVERHEAD").as_deref() == Ok("1") {
        assert!(
            watchdog_scan_cost_pct < 2.0,
            "watchdog scan cost {watchdog_scan_cost_pct:.3}% of batch latency blew the 2% budget"
        );
        eprintln!("  watchdog overhead within the 2% budget");
    }

    println!("engine,algorithm,updates_per_sec,time_to_target,staleness_p50,staleness_p99,beta");
    for r in &rows {
        println!(
            "{},{},{:.1},{},{},{},{}",
            r.engine,
            r.algorithm,
            r.updates_per_sec,
            r.time_to_target_loss
                .map_or("".into(), |t| format!("{t:.4}")),
            r.staleness.map_or("".into(), |s| format!("{:.0}", s.p50)),
            r.staleness.map_or("".into(), |s| format!("{:.0}", s.p99)),
            r.measured_beta.map_or("".into(), |b| format!("{b:.4}")),
        );
    }

    let report = Report {
        scale: h.scale,
        width: h.width,
        sim_budget_secs: h.budget,
        wall_budget_secs: wall_budget,
        target_rule: "105% of the best min-loss within the same leg",
        sim_target_loss: sim_target,
        threaded_target_loss: threaded_target,
        watchdog_overhead_pct,
        watchdog_scan_cost_pct,
        rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write("BENCH_train.json", &json).expect("write BENCH_train.json");
    eprintln!("wrote BENCH_train.json");
}
