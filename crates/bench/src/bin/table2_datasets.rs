//! Table II — dataset statistics.
//!
//! Prints the paper's full-size dataset table, then the actual statistics
//! of the synthetic stand-ins generated at the current `HETERO_SCALE`.

use hetero_bench::Harness;
use hetero_data::PaperDataset;

fn main() {
    let h = Harness::default();

    println!("# Table II: datasets (paper, full size)");
    println!("dataset,examples,features,classes,multilabel,hidden_layers");
    for p in PaperDataset::all() {
        let s = p.stats();
        println!(
            "{},{},{},{},{},{}",
            s.name, s.examples, s.features, s.classes, s.multilabel, s.hidden_layers
        );
    }

    println!();
    println!("# generated stand-ins at scale {}", h.scale);
    println!("dataset,examples,features,classes,sparsity");
    for p in PaperDataset::all() {
        let d = h.dataset(p);
        println!(
            "{},{},{},{},{:.4}",
            d.name,
            d.len(),
            d.features(),
            d.num_classes(),
            d.sparsity()
        );
        eprintln!(
            "{}: {} examples x {} features ({}% of paper examples)",
            d.name,
            d.len(),
            d.features(),
            (100.0 * d.len() as f64 / p.stats().examples as f64).round()
        );
    }
}
