//! Math-core benchmark: GEMM / forward-backward / sgd_step at paper-like
//! shapes, written to `BENCH_math.json` so future PRs have a perf trajectory.
//!
//! Three modes per measurement:
//!
//! - `scalar` — serial kernel with dispatch forced to the portable path
//! - `simd` — serial kernel with dispatch forced to AVX2 (clamped to what
//!   the host supports, so on non-AVX2 hardware this degenerates to
//!   `scalar` and the speedup column reads ~1×)
//! - `parallel` — rayon `par_gemm_*` / `parallel=true` at the auto level
//!
//! The GEMM shapes are the dominant hidden-layer product of the paper's
//! networks (batch × 512 × 512) at batch ∈ {16, 256, 4096}; the
//! forward/backward and sgd_step sections run a covtype-shaped MLP
//! (54 → 512 → 512 → 2). The sgd_step section also diffs the process-wide
//! allocation counter around the steady-state loop — the "zero allocations
//! per warm step" claim is measured, not asserted.
//!
//! Run from the repo root (release profile, or the numbers are meaningless):
//!
//! ```text
//! cargo run --release -p hetero-bench --bin bench_math
//! ```

use hetero_bench::alloc_count::CountingAlloc;
use hetero_nn::{Activation, LossKind, MlpSpec, Model, Targets, Workspace};
use hetero_tensor::simd::{self, SimdLevel};
use hetero_tensor::{gemm, Matrix};
use serde::Serialize;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

const BATCHES: [usize; 3] = [16, 256, 4096];
const WIDTH: usize = 512;

fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
    })
}

/// Wall-time one closure: one untimed warmup call, then as many timed
/// calls as fit a ~0.4 s budget (min 1). Returns seconds per call.
fn time(mut f: impl FnMut()) -> f64 {
    f();
    let budget = 0.4;
    let mut iters = 0u32;
    let start = Instant::now();
    loop {
        f();
        iters += 1;
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= budget {
            return elapsed / iters as f64;
        }
    }
}

#[derive(Serialize)]
struct GemmRow {
    kernel: String,
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
    scalar_gflops: f64,
    simd_gflops: f64,
    parallel_gflops: f64,
    simd_speedup: f64,
}

#[derive(Serialize)]
struct FwdBwdRow {
    batch: usize,
    scalar_ms: f64,
    simd_ms: f64,
    parallel_ms: f64,
    simd_speedup: f64,
}

#[derive(Serialize)]
struct SgdStepReport {
    batch: usize,
    steps: u64,
    steady_state_allocs: u64,
    us_per_step: f64,
}

#[derive(Serialize)]
struct Report {
    host_avx2: bool,
    host_threads: usize,
    network: String,
    gemm: Vec<GemmRow>,
    forward_backward: Vec<FwdBwdRow>,
    sgd_step: SgdStepReport,
}

fn bench_gemm() -> Vec<GemmRow> {
    let mut rows = Vec::new();
    for &batch in &BATCHES {
        let (m, k, n) = (batch, WIDTH, WIDTH);
        let gflop = 2.0 * m as f64 * k as f64 * n as f64 / 1e9;
        let a = mat(m, k, 1);
        let b = mat(k, n, 2);
        let bt = b.transpose();
        let at = a.transpose();
        let mut c = Matrix::zeros(m, n);

        type Serial = fn(f32, &Matrix, &Matrix, f32, &mut Matrix);
        let kernels: [(&str, Serial, Serial, &Matrix, &Matrix); 3] = [
            ("nn", gemm::gemm_nn, gemm::par_gemm_nn, &a, &b),
            ("nt", gemm::gemm_nt, gemm::par_gemm_nt, &a, &bt),
            ("tn", gemm::gemm_tn, gemm::par_gemm_tn, &at, &b),
        ];
        for (name, serial, par, lhs, rhs) in kernels {
            let forced = |level: SimdLevel, c: &mut Matrix| {
                simd::with_level(level, || time(|| serial(1.0, lhs, rhs, 0.0, c)))
            };
            let t_scalar = forced(SimdLevel::Scalar, &mut c);
            let t_simd = forced(SimdLevel::Avx2, &mut c);
            let t_par = time(|| par(1.0, lhs, rhs, 0.0, &mut c));
            let row = GemmRow {
                kernel: name.to_string(),
                batch,
                m,
                k,
                n,
                scalar_gflops: gflop / t_scalar,
                simd_gflops: gflop / t_simd,
                parallel_gflops: gflop / t_par,
                simd_speedup: t_scalar / t_simd,
            };
            eprintln!(
                "gemm_{name} b={batch:<4} scalar {:7.2} GF/s  simd {:7.2} GF/s  par {:7.2} GF/s  ({:.2}x)",
                row.scalar_gflops, row.simd_gflops, row.parallel_gflops, row.simd_speedup
            );
            rows.push(row);
        }
    }
    rows
}

fn covtype_spec() -> MlpSpec {
    MlpSpec {
        input_dim: 54,
        hidden: vec![WIDTH, WIDTH],
        classes: 2,
        activation: Activation::Sigmoid,
        loss: LossKind::SoftmaxCrossEntropy,
    }
}

fn bench_forward_backward() -> Vec<FwdBwdRow> {
    let spec = covtype_spec();
    let model = Model::new(spec.clone(), Default::default(), 7);
    let mut rows = Vec::new();
    for &batch in &BATCHES {
        let x = mat(batch, spec.input_dim, 3);
        let classes: Vec<u32> = (0..batch as u32).map(|i| i % 2).collect();
        let mut ws = Workspace::with_batch_capacity(&spec, batch);
        let mut run = |level: Option<SimdLevel>, parallel: bool| {
            let mut body = || {
                time(|| {
                    ws.loss_and_gradient_into(&model, &x, Targets::Classes(&classes), parallel);
                })
            };
            match level {
                Some(l) => simd::with_level(l, body),
                None => body(),
            }
        };
        let t_scalar = run(Some(SimdLevel::Scalar), false);
        let t_simd = run(Some(SimdLevel::Avx2), false);
        let t_par = run(None, true);
        let row = FwdBwdRow {
            batch,
            scalar_ms: t_scalar * 1e3,
            simd_ms: t_simd * 1e3,
            parallel_ms: t_par * 1e3,
            simd_speedup: t_scalar / t_simd,
        };
        eprintln!(
            "fwd+bwd b={batch:<4} scalar {:8.2} ms  simd {:8.2} ms  par {:8.2} ms  ({:.2}x)",
            row.scalar_ms, row.simd_ms, row.parallel_ms, row.simd_speedup
        );
        rows.push(row);
    }
    rows
}

/// Full serial SGD steps on a warm workspace, diffing the global
/// allocation counter across the measured region. The serial path is the
/// one the CPU Hogwild lanes run; the rayon path necessarily allocates
/// (scoped-thread spawns) and is excluded by design.
fn bench_sgd_step() -> SgdStepReport {
    let spec = covtype_spec();
    let mut model = Model::new(spec.clone(), Default::default(), 7);
    let batch = 256;
    let x = mat(batch, spec.input_dim, 4);
    let classes: Vec<u32> = (0..batch as u32).map(|i| i % 2).collect();
    let mut ws = Workspace::with_batch_capacity(&spec, batch);
    let step = |model: &mut Model, ws: &mut Workspace| {
        ws.loss_and_gradient_into(model, &x, Targets::Classes(&classes), false);
        model.apply_gradient(ws.grad(), 0.01);
    };
    for _ in 0..3 {
        step(&mut model, &mut ws); // warm every buffer
    }
    let steps = 100u64;
    let allocs_before = ALLOC.allocations();
    let start = Instant::now();
    for _ in 0..steps {
        step(&mut model, &mut ws);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let steady_state_allocs = ALLOC.allocations() - allocs_before;
    let report = SgdStepReport {
        batch,
        steps,
        steady_state_allocs,
        us_per_step: elapsed / steps as f64 * 1e6,
    };
    eprintln!(
        "sgd_step b={batch} {:.0} us/step, {} allocations across {} warm steps",
        report.us_per_step, report.steady_state_allocs, report.steps
    );
    report
}

fn main() {
    let report = Report {
        host_avx2: simd::host_supports_avx2(),
        host_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        network: "54 -> 512 -> 512 -> 2 (covtype, sigmoid, softmax-CE)".to_string(),
        gemm: bench_gemm(),
        forward_backward: bench_forward_backward(),
        sgd_step: bench_sgd_step(),
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write("BENCH_math.json", &json).expect("write BENCH_math.json");
    eprintln!("wrote BENCH_math.json");
    if report.sgd_step.steady_state_allocs != 0 {
        eprintln!(
            "WARNING: workspace path allocated {} times in steady state",
            report.sgd_step.steady_state_allocs
        );
        std::process::exit(1);
    }
}
