//! Figure 8 — distribution of model updates between CPU and GPU for the
//! two heterogeneous algorithms, on all four datasets.
//!
//! Paper shapes: under CPU+GPU Hogbatch the CPU's many small Hogwild
//! updates dominate ("almost exclusive"); Adaptive moves the distribution
//! toward uniformity, with CPU and GPU each performing a comparable share.
//!
//! Output: CSV `dataset,algorithm,cpu_updates,gpu_updates,cpu_fraction`.

use hetero_bench::Harness;
use hetero_core::{AlgorithmKind, WorkerKind};
use hetero_data::PaperDataset;

fn main() {
    let h = Harness::default();
    eprintln!(
        "fig8: scale={} width={} budget={}s",
        h.scale, h.width, h.budget
    );
    println!("dataset,algorithm,cpu_updates,gpu_updates,cpu_fraction");
    for p in PaperDataset::all() {
        let dataset = h.dataset(p);
        for algo in [
            AlgorithmKind::CpuGpuHogbatch,
            AlgorithmKind::AdaptiveHogbatch,
        ] {
            let r = h.run_on(p, &dataset, algo);
            let cpu: f64 = r
                .workers
                .iter()
                .filter(|w| w.kind == WorkerKind::Cpu)
                .map(|w| w.updates)
                .sum();
            let gpu: f64 = r
                .workers
                .iter()
                .filter(|w| w.kind == WorkerKind::Gpu)
                .map(|w| w.updates)
                .sum();
            println!(
                "{},{},{:.0},{:.0},{:.4}",
                dataset.name,
                r.algorithm,
                cpu,
                gpu,
                r.cpu_update_fraction()
            );
            eprintln!(
                "{:10} {:24} CPU {:7.0} : GPU {:7.0}  ({:4.1}% CPU)",
                dataset.name,
                r.algorithm,
                cpu,
                gpu,
                100.0 * r.cpu_update_fraction()
            );
        }
    }
}
