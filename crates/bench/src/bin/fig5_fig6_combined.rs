//! Figures 5 and 6 from a single set of runs.
//!
//! Both figures plot the same experiments — normalized loss against
//! *time* (Fig. 5) and against *epochs* (Fig. 6) — so this binary runs
//! each (dataset × algorithm) cell once and emits both CSVs
//! (`results/fig5.csv`, `results/fig6.csv`) and both SVG sets. Use this
//! for the results of record; the individual `fig5_convergence` /
//! `fig6_statistical_efficiency` binaries remain for artifact-by-artifact
//! regeneration.

use std::io::Write;

use hetero_bench::plot::{write_chart, ChartConfig, Series};
use hetero_bench::{normalization_basis, Harness};
use hetero_core::AlgorithmKind;
use hetero_data::PaperDataset;

fn main() {
    let h = Harness::default();
    eprintln!(
        "fig5+6: scale={} width={} budget={}s depth_factor={}",
        h.scale, h.width, h.budget, h.depth_factor
    );
    std::fs::create_dir_all("results").expect("results dir");
    let mut f5 = std::fs::File::create("results/fig5.csv").expect("fig5 csv");
    let mut f6 = std::fs::File::create("results/fig6.csv").expect("fig6 csv");
    writeln!(f5, "dataset,algorithm,time_s,normalized_loss").unwrap();
    writeln!(f6, "dataset,algorithm,epochs,normalized_loss").unwrap();

    for p in PaperDataset::all() {
        let dataset = h.dataset(p);
        let results: Vec<_> = AlgorithmKind::all()
            .into_iter()
            .map(|a| h.run_on(p, &dataset, a))
            .collect();
        let basis = normalization_basis(&results);
        eprintln!("\n== {} (basis loss {:.5}) ==", dataset.name, basis);
        let mut time_series = Vec::new();
        let mut epoch_series = Vec::new();
        for r in &results {
            let curve = r.normalized_curve(basis);
            for pt in &curve {
                writeln!(
                    f5,
                    "{},{},{:.5},{:.5}",
                    dataset.name, r.algorithm, pt.time, pt.loss
                )
                .unwrap();
                writeln!(
                    f6,
                    "{},{},{:.4},{:.5}",
                    dataset.name, r.algorithm, pt.epochs, pt.loss
                )
                .unwrap();
            }
            time_series.push(Series {
                name: r.algorithm.clone(),
                points: curve.iter().map(|pt| (pt.time, pt.loss as f64)).collect(),
            });
            epoch_series.push(Series {
                name: r.algorithm.clone(),
                points: curve.iter().map(|pt| (pt.epochs, pt.loss as f64)).collect(),
            });
            let after_one = r
                .loss_curve
                .iter()
                .find(|pt| pt.epochs >= 1.0)
                .map(|pt| format!("{:.3}x", pt.loss / basis))
                .unwrap_or_else(|| "n/a".into());
            eprintln!(
                "  {:24} final {:7.3}x | reach 1.5x at {:>8} | {:8.2} epochs | loss@1ep {}",
                r.algorithm,
                r.final_loss() / basis,
                r.time_to_loss(basis * 1.5)
                    .map(|t| format!("{t:.3}s"))
                    .unwrap_or_else(|| "never".into()),
                r.epochs,
                after_one
            );
        }
        for (fig, series, xlab) in [
            ("fig5", &time_series, "virtual seconds"),
            ("fig6", &epoch_series, "epochs"),
        ] {
            let cfg = ChartConfig {
                title: format!(
                    "{} — normalized loss vs {} ({})",
                    if fig == "fig5" { "Fig. 5" } else { "Fig. 6" },
                    xlab,
                    dataset.name
                ),
                x_label: xlab.into(),
                y_label: "loss / min loss (log)".into(),
                log_y: true,
                ..ChartConfig::default()
            };
            let path = format!("results/{fig}_{}.svg", dataset.name);
            if write_chart(&path, &cfg, series).unwrap_or(false) {
                eprintln!("  wrote {path}");
            }
        }
    }
}
