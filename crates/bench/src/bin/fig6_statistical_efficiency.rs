//! Figure 6 — normalized loss vs epochs (statistical efficiency).
//!
//! Paper shapes: small-batch methods make the most progress per epoch;
//! Hogbatch GPU and TensorFlow (largest batches) are the least
//! statistically efficient and overlap almost exactly; the heterogeneous
//! algorithms sit between, with Adaptive above CPU+GPU (its batch mix is
//! closer to uniform). Hogwild CPU is omitted from the paper's figure —
//! it cannot complete the epochs in reasonable time — but we still emit
//! its (short) curve for completeness.
//!
//! Output: CSV `dataset,algorithm,epochs,normalized_loss`.

use hetero_bench::plot::{write_chart, ChartConfig, Series};
use hetero_bench::{normalization_basis, Harness};
use hetero_core::AlgorithmKind;
use hetero_data::PaperDataset;

fn main() {
    let h = Harness::default();
    eprintln!(
        "fig6: scale={} width={} budget={}s",
        h.scale, h.width, h.budget
    );
    println!("dataset,algorithm,epochs,normalized_loss");
    for p in PaperDataset::all() {
        let dataset = h.dataset(p);
        let results: Vec<_> = AlgorithmKind::all()
            .into_iter()
            .map(|a| h.run_on(p, &dataset, a))
            .collect();
        let basis = normalization_basis(&results);
        eprintln!("\n== {} ==", dataset.name);
        let mut svg_series = Vec::new();
        for r in &results {
            for pt in r.normalized_curve(basis) {
                println!(
                    "{},{},{:.4},{:.5}",
                    dataset.name, r.algorithm, pt.epochs, pt.loss
                );
            }
            svg_series.push(Series {
                name: r.algorithm.clone(),
                points: r
                    .normalized_curve(basis)
                    .iter()
                    .map(|pt| (pt.epochs, pt.loss as f64))
                    .collect(),
            });
            // Loss after the first completed epoch — the per-epoch
            // efficiency the figure ranks algorithms by.
            let after_one = r
                .loss_curve
                .iter()
                .find(|pt| pt.epochs >= 1.0)
                .map(|pt| format!("{:.3}x", pt.loss / basis))
                .unwrap_or_else(|| "n/a (no full epoch)".into());
            eprintln!(
                "  {:24} {:8.2} epochs run | loss after 1 epoch {}",
                r.algorithm, r.epochs, after_one
            );
        }
        let cfg = ChartConfig {
            title: format!("Fig. 6 — normalized loss vs epochs ({})", dataset.name),
            x_label: "epochs".into(),
            y_label: "loss / min loss (log)".into(),
            log_y: true,
            ..ChartConfig::default()
        };
        let path = format!("results/fig6_{}.svg", dataset.name);
        if write_chart(&path, &cfg, &svg_series).unwrap_or(false) {
            eprintln!("  wrote {path}");
        }
    }
}
