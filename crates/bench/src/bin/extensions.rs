//! Beyond-paper experiments enabled by the testbed:
//!
//! 1. **Omnivore-static vs Adaptive** (§II) — static speed-proportional
//!    batches against runtime adaptation;
//! 2. **Hybrid SVRG vs CPU+GPU Hogbatch** (§II's "compass" intuition made
//!    literal: GPU anchors + CPU corrected steps);
//! 3. **staleness compensation κ sweep** (§VI-B's stale-gradient remark);
//! 4. **multi-GPU scaling** (the paper's future work) — 1/2/4 simulated
//!    V100s under CPU+GPU Hogbatch.
//!
//! Output: CSV blocks on stdout, summary on stderr.

use hetero_bench::Harness;
use hetero_core::{
    AlgorithmKind, NetworkModel, PsEngine, PsEngineConfig, SimEngine, SimEngineConfig,
};
use hetero_data::PaperDataset;
use hetero_sim::{CpuModel, GpuModel};

fn main() {
    let h = Harness::default();
    let p = PaperDataset::Covtype;
    let dataset = h.dataset(p);
    let spec = h.network(p, &dataset);
    eprintln!(
        "extensions on covtype: scale={} width={} budget={}s",
        h.scale, h.width, h.budget
    );

    // --- 1 & 2: algorithm face-offs -------------------------------------------
    println!("# extended algorithm comparison");
    println!("algorithm,final_loss,min_loss,epochs,cpu_fraction");
    let mut results = Vec::new();
    for algo in [
        AlgorithmKind::CpuGpuHogbatch,
        AlgorithmKind::StaticProportional,
        AlgorithmKind::AdaptiveHogbatch,
        AlgorithmKind::HybridSvrg,
    ] {
        let train = h.train_config(algo, &dataset);
        let r = SimEngine::new(SimEngineConfig::paper_hardware(spec.clone(), train))
            .unwrap()
            .run(&dataset);
        println!(
            "{},{:.5},{:.5},{:.3},{:.4}",
            r.algorithm,
            r.final_loss(),
            r.min_loss(),
            r.epochs,
            r.cpu_update_fraction()
        );
        eprintln!(
            "{:24} final {:.5} | min {:.5} | {:7.2} epochs | CPU share {:4.1}%",
            r.algorithm,
            r.final_loss(),
            r.min_loss(),
            r.epochs,
            100.0 * r.cpu_update_fraction()
        );
        results.push(r);
    }

    // --- 3: staleness-compensation sweep ---------------------------------------
    println!("# staleness compensation sweep (CPU+GPU Hogbatch)");
    println!("kappa,final_loss,min_loss");
    for kappa in [0.0f32, 0.001, 0.01, 0.1] {
        let mut train = h.train_config(AlgorithmKind::CpuGpuHogbatch, &dataset);
        train.staleness_discount = kappa;
        let r = SimEngine::new(SimEngineConfig::paper_hardware(spec.clone(), train))
            .unwrap()
            .run(&dataset);
        println!("{kappa},{:.5},{:.5}", r.final_loss(), r.min_loss());
        eprintln!(
            "kappa {kappa:6}: final {:.5} (min {:.5})",
            r.final_loss(),
            r.min_loss()
        );
    }

    // --- 3b: distributed parameter server vs centralized shared memory ---------
    // §II: statically partitioned data + per-worker learning rates + network
    // round trips per batch. Same devices as the centralized run.
    println!("# parameter server vs shared memory (CPU+GPU)");
    println!("architecture,epochs,final_loss");
    {
        let shared = {
            let train = h.train_config(AlgorithmKind::CpuGpuHogbatch, &dataset);
            SimEngine::new(SimEngineConfig::paper_hardware(spec.clone(), train))
                .unwrap()
                .run(&dataset)
        };
        let ps = {
            let train = h.train_config(AlgorithmKind::CpuGpuHogbatch, &dataset);
            let batch = train.gpu_batch.min(dataset.len() / 2).max(1);
            PsEngine::new(PsEngineConfig {
                spec: spec.clone(),
                train,
                cpu_workers: vec![CpuModel::xeon_pair()],
                gpu_workers: vec![GpuModel::v100()],
                batch,
                network: NetworkModel::ten_gbe(),
                lr_compensation: 1.0,
            })
            .unwrap()
            .run(&dataset)
        };
        for r in [&shared, &ps] {
            println!("{},{:.3},{:.5}", r.algorithm, r.epochs, r.final_loss());
            eprintln!(
                "{:24} {:8.2} epochs | final loss {:.5}",
                r.algorithm,
                r.epochs,
                r.final_loss()
            );
        }
    }

    // --- 4: multi-GPU scaling ----------------------------------------------------
    println!("# multi-GPU scaling (CPU+GPU Hogbatch)");
    println!("gpus,epochs,final_loss,total_updates");
    for n_gpus in [1usize, 2, 4] {
        let train = h.train_config(AlgorithmKind::CpuGpuHogbatch, &dataset);
        let mut cfg = SimEngineConfig::paper_hardware(spec.clone(), train);
        let g = cfg.gpus[0].clone();
        cfg.gpus = (0..n_gpus).map(|_| g.clone()).collect();
        let r = SimEngine::new(cfg).unwrap().run(&dataset);
        println!(
            "{n_gpus},{:.3},{:.5},{:.0}",
            r.epochs,
            r.final_loss(),
            r.total_updates()
        );
        eprintln!(
            "{n_gpus} GPU(s): {:7.2} epochs | final {:.5} | {:.0} updates",
            r.epochs,
            r.final_loss(),
            r.total_updates()
        );
    }
}
