//! Minimal self-contained SVG line charts.
//!
//! The figure binaries emit CSV for external tooling *and* a rendered SVG
//! so `cargo run -p hetero-bench --bin fig5_convergence` regenerates a
//! directly viewable figure. No drawing dependencies: the SVG is assembled
//! as text.

use std::io::Write;
use std::path::Path;

/// One plotted series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// (x, y) points in data coordinates.
    pub points: Vec<(f64, f64)>,
}

/// Chart configuration.
#[derive(Debug, Clone)]
pub struct ChartConfig {
    /// Title rendered at the top.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Use log₁₀ scale on the y axis (loss curves).
    pub log_y: bool,
    /// Canvas width in px.
    pub width: u32,
    /// Canvas height in px.
    pub height: u32,
}

impl Default for ChartConfig {
    fn default() -> Self {
        ChartConfig {
            title: String::new(),
            x_label: String::new(),
            y_label: String::new(),
            log_y: false,
            width: 720,
            height: 420,
        }
    }
}

const PALETTE: [&str; 8] = [
    "#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#3ca951", "#ff8ab7", "#a463f2", "#97bbf5",
];

const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 150.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 48.0;

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 || v.abs() < 0.01 {
        format!("{v:.1e}")
    } else {
        format!("{v:.3}")
            .trim_end_matches('0')
            .trim_end_matches('.')
            .to_string()
    }
}

/// Render `series` into an SVG string.
///
/// Returns `None` when there is nothing plottable (no finite points).
pub fn render(cfg: &ChartConfig, series: &[Series]) -> Option<String> {
    let transform = |y: f64| if cfg.log_y { y.max(1e-12).log10() } else { y };
    let mut xs: Vec<f64> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    for s in series {
        for &(x, y) in &s.points {
            if x.is_finite() && y.is_finite() && (!cfg.log_y || y > 0.0) {
                xs.push(x);
                ys.push(transform(y));
            }
        }
    }
    if xs.is_empty() {
        return None;
    }
    let (x_min, x_max) = (
        xs.iter().cloned().fold(f64::INFINITY, f64::min),
        xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    );
    let (y_min, y_max) = (
        ys.iter().cloned().fold(f64::INFINITY, f64::min),
        ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    );
    let x_span = (x_max - x_min).max(1e-12);
    let y_span = (y_max - y_min).max(1e-12);
    let plot_w = cfg.width as f64 - MARGIN_L - MARGIN_R;
    let plot_h = cfg.height as f64 - MARGIN_T - MARGIN_B;
    let px = |x: f64| MARGIN_L + (x - x_min) / x_span * plot_w;
    let py = |y: f64| MARGIN_T + (1.0 - (transform(y) - y_min) / y_span) * plot_h;

    let mut svg = String::new();
    svg.push_str(&format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif">"#,
        w = cfg.width,
        h = cfg.height
    ));
    svg.push_str(&format!(
        r#"<rect width="{}" height="{}" fill="white"/>"#,
        cfg.width, cfg.height
    ));
    svg.push_str(&format!(
        r#"<text x="{}" y="22" text-anchor="middle" font-size="15" font-weight="bold">{}</text>"#,
        cfg.width / 2,
        xml_escape(&cfg.title)
    ));

    // Axes + grid + ticks.
    for i in 0..=4 {
        let fx = x_min + x_span * i as f64 / 4.0;
        let x = px(fx);
        svg.push_str(&format!(
            r##"<line x1="{x:.1}" y1="{t}" x2="{x:.1}" y2="{b}" stroke="#eee"/>"##,
            t = MARGIN_T,
            b = MARGIN_T + plot_h
        ));
        svg.push_str(&format!(
            r#"<text x="{x:.1}" y="{y:.1}" text-anchor="middle" font-size="11">{}</text>"#,
            fmt_tick(fx),
            y = MARGIN_T + plot_h + 16.0
        ));
        let fy_t = y_min + y_span * i as f64 / 4.0;
        let fy_data = if cfg.log_y { 10f64.powf(fy_t) } else { fy_t };
        let y = MARGIN_T + (1.0 - i as f64 / 4.0) * plot_h;
        svg.push_str(&format!(
            r##"<line x1="{l}" y1="{y:.1}" x2="{r}" y2="{y:.1}" stroke="#eee"/>"##,
            l = MARGIN_L,
            r = MARGIN_L + plot_w
        ));
        svg.push_str(&format!(
            r#"<text x="{x:.1}" y="{y:.1}" text-anchor="end" font-size="11">{}</text>"#,
            fmt_tick(fy_data),
            x = MARGIN_L - 6.0,
            y = y + 4.0
        ));
    }
    svg.push_str(&format!(
        r##"<rect x="{}" y="{}" width="{plot_w:.1}" height="{plot_h:.1}" fill="none" stroke="#888"/>"##,
        MARGIN_L, MARGIN_T
    ));
    svg.push_str(&format!(
        r#"<text x="{}" y="{}" text-anchor="middle" font-size="12">{}</text>"#,
        MARGIN_L + plot_w / 2.0,
        cfg.height as f64 - 10.0,
        xml_escape(&cfg.x_label)
    ));
    svg.push_str(&format!(
        r#"<text x="14" y="{}" text-anchor="middle" font-size="12" transform="rotate(-90 14 {y})">{}</text>"#,
        MARGIN_T + plot_h / 2.0,
        xml_escape(&cfg.y_label),
        y = MARGIN_T + plot_h / 2.0
    ));

    // Series.
    for (i, s) in series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let path: Vec<String> = s
            .points
            .iter()
            .filter(|&&(x, y)| x.is_finite() && y.is_finite() && (!cfg.log_y || y > 0.0))
            .enumerate()
            .map(|(j, &(x, y))| {
                format!(
                    "{}{:.1},{:.1}",
                    if j == 0 { "M" } else { "L" },
                    px(x),
                    py(y)
                )
            })
            .collect();
        if !path.is_empty() {
            svg.push_str(&format!(
                r#"<path d="{}" fill="none" stroke="{color}" stroke-width="1.8"/>"#,
                path.join(" ")
            ));
        }
        // Legend entry.
        let ly = MARGIN_T + 14.0 * i as f64 + 8.0;
        let lx = MARGIN_L + plot_w + 10.0;
        svg.push_str(&format!(
            r#"<line x1="{lx:.1}" y1="{ly:.1}" x2="{:.1}" y2="{ly:.1}" stroke="{color}" stroke-width="2.5"/>"#,
            lx + 18.0
        ));
        svg.push_str(&format!(
            r#"<text x="{:.1}" y="{:.1}" font-size="11">{}</text>"#,
            lx + 24.0,
            ly + 4.0,
            xml_escape(&s.name)
        ));
    }
    svg.push_str("</svg>");
    Some(svg)
}

/// Render and write a chart to `path` (parent directories are created).
pub fn write_chart(
    path: impl AsRef<Path>,
    cfg: &ChartConfig,
    series: &[Series],
) -> std::io::Result<bool> {
    let Some(svg) = render(cfg, series) else {
        return Ok(false);
    };
    if let Some(parent) = path.as_ref().parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(svg.as_bytes())?;
    Ok(true)
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> Vec<Series> {
        vec![
            Series {
                name: "a".into(),
                points: vec![(0.0, 1.0), (1.0, 0.5), (2.0, 0.25)],
            },
            Series {
                name: "b".into(),
                points: vec![(0.0, 1.0), (1.0, 0.9)],
            },
        ]
    }

    #[test]
    fn renders_valid_svg_skeleton() {
        let svg = render(&ChartConfig::default(), &series()).unwrap();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<path").count(), 2);
        assert!(svg.contains(">a</text>"));
        assert!(svg.contains(">b</text>"));
    }

    #[test]
    fn log_scale_drops_nonpositive_points() {
        let s = vec![Series {
            name: "x".into(),
            points: vec![(0.0, 0.0), (1.0, 1.0), (2.0, 10.0)],
        }];
        let cfg = ChartConfig {
            log_y: true,
            ..ChartConfig::default()
        };
        let svg = render(&cfg, &s).unwrap();
        // The zero point is skipped; the path has exactly 2 vertices.
        let path_part = svg.split("<path d=\"").nth(1).unwrap();
        let d = path_part.split('"').next().unwrap();
        assert_eq!(d.matches(['M', 'L']).count(), 2, "{d}");
    }

    #[test]
    fn empty_series_renders_nothing() {
        assert!(render(&ChartConfig::default(), &[]).is_none());
        let s = vec![Series {
            name: "nan".into(),
            points: vec![(f64::NAN, 1.0)],
        }];
        assert!(render(&ChartConfig::default(), &s).is_none());
    }

    #[test]
    fn escapes_markup_in_labels() {
        let cfg = ChartConfig {
            title: "a<b&c>".into(),
            ..ChartConfig::default()
        };
        let svg = render(&cfg, &series()).unwrap();
        assert!(svg.contains("a&lt;b&amp;c&gt;"));
    }

    #[test]
    fn write_chart_creates_file() {
        let dir = std::env::temp_dir().join("hetero_bench_plot");
        let path = dir.join("test.svg");
        let wrote = write_chart(&path, &ChartConfig::default(), &series()).unwrap();
        assert!(wrote);
        assert!(std::fs::read_to_string(&path).unwrap().contains("<svg"));
    }
}
