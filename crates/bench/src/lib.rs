//! # hetero-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (§VII). One binary per artifact:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1_hardware` | Table I — hardware specification |
//! | `table2_datasets` | Table II — dataset statistics |
//! | `fig5_convergence` | Figure 5 — normalized loss vs (virtual) time |
//! | `fig6_statistical_efficiency` | Figure 6 — normalized loss vs epochs |
//! | `fig7_utilization` | Figure 7 — CPU/GPU utilization over 3 epochs |
//! | `fig8_update_ratio` | Figure 8 — CPU:GPU model-update distribution |
//! | `ablations` | α/β/threshold/lr-scaling sweeps (§VI design choices) |
//! | `bench_math` | math-core perf trajectory → `BENCH_math.json` (not a paper artifact) |
//!
//! All binaries print CSV to stdout (plus rendered SVG charts under
//! `results/`) and a human-readable summary to stderr, and honor four
//! environment variables so the fidelity/runtime trade-off is explicit:
//!
//! - `HETERO_SCALE` — dataset scale vs Table II full size (default `0.005`,
//!   floored at ~1000 examples per dataset)
//! - `HETERO_WIDTH` — hidden-layer width (default `192`; the paper uses 512)
//! - `HETERO_BUDGET` — virtual-seconds budget per run (default `0.2`)
//! - `HETERO_DEPTH_FACTOR` — multiplier on the paper's hidden-layer counts
//!   (default `0.5`; `1` = the paper's 6/8/8/4 at much larger budgets)

#![warn(missing_docs)]

pub mod alloc_count;
pub mod plot;

use hetero_core::{
    AdaptiveParams, AlgorithmKind, LrScaling, SimEngine, SimEngineConfig, TrainConfig, TrainResult,
};
use hetero_data::{DenseDataset, PaperDataset};
use hetero_nn::{Activation, LossKind, MlpSpec};

/// Knobs every experiment binary shares.
#[derive(Debug, Clone)]
pub struct Harness {
    /// Dataset scale relative to Table II full size.
    pub scale: f64,
    /// Hidden-layer width (paper: 512).
    pub width: usize,
    /// Virtual-time budget per run, seconds.
    pub budget: f64,
    /// Multiplier on the paper's per-dataset hidden-layer count
    /// (default 0.5: depth 3/4/4/2 instead of 6/8/8/4). Plain SGD needs
    /// far more epochs than the default budget affords to push the paper's
    /// full-depth sigmoid stacks off the uniform-prediction plateau; set
    /// `HETERO_DEPTH_FACTOR=1` together with a larger budget for full
    /// fidelity.
    pub depth_factor: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Harness {
    fn default() -> Self {
        Harness {
            scale: env_f64("HETERO_SCALE", 0.005),
            width: env_usize("HETERO_WIDTH", 192),
            budget: env_f64("HETERO_BUDGET", 0.2),
            depth_factor: env_f64("HETERO_DEPTH_FACTOR", 0.5),
            seed: env_usize("HETERO_SEED", 42) as u64,
        }
    }
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl Harness {
    /// Generate the scaled stand-in for a paper dataset.
    ///
    /// A floor of ~1000 examples is applied so that the smaller Table II
    /// datasets (delicious: 16k full size) do not collapse to a handful of
    /// rows at small scales — adaptation needs multiple batches per epoch
    /// to act on.
    pub fn dataset(&self, which: PaperDataset) -> DenseDataset {
        let full = which.stats().examples as f64;
        let eff = self.scale.max(1000.0 / full).min(1.0);
        which.generate(eff, self.seed)
    }

    /// The paper's network for a dataset (§VII-A): hidden depth from the
    /// dataset preset, width from the harness (512 in the paper).
    pub fn network(&self, which: PaperDataset, dataset: &DenseDataset) -> MlpSpec {
        let stats = which.stats();
        let depth = ((stats.hidden_layers as f64 * self.depth_factor).round() as usize).max(1);
        MlpSpec {
            input_dim: dataset.features(),
            hidden: vec![self.width; depth],
            classes: dataset.num_classes(),
            activation: Activation::Sigmoid,
            loss: if stats.multilabel {
                LossKind::MultiLabelBce
            } else {
                LossKind::SoftmaxCrossEntropy
            },
        }
    }

    /// The shared training configuration (§VII-A methodology): identical
    /// hyperparameters for every algorithm on the same hardware, lr ∝
    /// batch, CPU at 1 example/thread, GPU batch up to 8192 (clamped by
    /// the dataset size at small scales).
    pub fn train_config(&self, algo: AlgorithmKind, dataset: &DenseDataset) -> TrainConfig {
        let n = dataset.len();
        let gpu_max = 8192.min(n.max(64));
        let gpu_min = (gpu_max / 16).max(16);
        TrainConfig {
            init: hetero_nn::InitScheme::XavierSigmoid,
            algorithm: algo,
            lr: 0.01,
            lr_scaling: LrScaling::Sqrt {
                ref_batch: 1,
                max_lr: 0.5,
            },
            cpu_batch_per_thread: 1,
            gpu_batch: gpu_max,
            adaptive: AdaptiveParams {
                alpha: 2.0,
                beta: 1.0,
                cpu_min_batch: 56,
                // The paper's upper threshold: 64 examples per thread.
                cpu_max_batch: 56 * 64,
                gpu_min_batch: gpu_min,
                gpu_max_batch: gpu_max,
            },
            time_budget: self.budget,
            max_epochs: None,
            grad_clip: None,
            weight_decay: 0.0,
            staleness_discount: 0.0,
            rayon_threads: 0,
            measured_beta: false,
            eval_interval: self.budget / 24.0,
            eval_subsample: 2048,
            ckpt_interval: None,
            ckpt_retain: 2,
            seed: self.seed,
        }
    }

    /// Run one (dataset, algorithm) cell on the paper's hardware models.
    pub fn run(&self, which: PaperDataset, algo: AlgorithmKind) -> TrainResult {
        let dataset = self.dataset(which);
        let spec = self.network(which, &dataset);
        let train = self.train_config(algo, &dataset);
        let engine = SimEngine::new(SimEngineConfig::paper_hardware(spec, train))
            .expect("valid experiment config");
        engine.run(&dataset)
    }

    /// Run one algorithm against a pre-generated dataset (reuse across
    /// algorithms so every curve starts from the same data and model).
    pub fn run_on(
        &self,
        which: PaperDataset,
        dataset: &DenseDataset,
        algo: AlgorithmKind,
    ) -> TrainResult {
        let spec = self.network(which, dataset);
        let train = self.train_config(algo, dataset);
        let engine = SimEngine::new(SimEngineConfig::paper_hardware(spec, train))
            .expect("valid experiment config");
        engine.run(dataset)
    }

    /// Like [`Harness::run_on`] but with a trace sink attached: returns the
    /// drained virtual-time event trace alongside the result, so figure
    /// binaries can derive utilization (and anything else) from events
    /// instead of the engine's built-in timelines.
    pub fn run_on_traced(
        &self,
        which: PaperDataset,
        dataset: &DenseDataset,
        algo: AlgorithmKind,
    ) -> (TrainResult, hetero_trace::Trace) {
        let spec = self.network(which, dataset);
        let train = self.train_config(algo, dataset);
        let engine = SimEngine::new(SimEngineConfig::paper_hardware(spec, train))
            .expect("valid experiment config");
        let sink = hetero_trace::TraceSink::virtual_time(hetero_trace::DEFAULT_RING_CAPACITY);
        let result = engine.run_traced(dataset, &sink);
        (result, sink.drain())
    }
}

/// Normalization basis: the paper normalizes all loss curves to the
/// minimum loss reached by any algorithm on that dataset.
pub fn normalization_basis(results: &[TrainResult]) -> f32 {
    results
        .iter()
        .map(|r| r.min_loss())
        .fold(f32::INFINITY, f32::min)
}

/// Print a CSV header + rows of (series, x, y) triples.
pub fn print_csv(header: &str, rows: impl IntoIterator<Item = (String, f64, f64)>) {
    println!("{header}");
    for (series, x, y) in rows {
        println!("{series},{x},{y}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_defaults_sane() {
        let h = Harness::default();
        assert!(h.scale > 0.0 && h.scale <= 1.0);
        assert!(h.width >= 8);
        assert!(h.budget > 0.0);
    }

    #[test]
    fn tiny_cell_runs() {
        let h = Harness {
            scale: 0.0005,
            width: 16,
            budget: 0.02,
            depth_factor: 0.5,
            seed: 1,
        };
        let r = h.run(PaperDataset::W8a, AlgorithmKind::MiniBatchGpu);
        assert!(r.final_loss().is_finite());
        assert!(r.total_updates() > 0.0);
    }

    #[test]
    fn network_matches_paper_depths() {
        let mut h = Harness {
            depth_factor: 1.0,
            ..Harness::default()
        };
        let d = h.dataset(PaperDataset::Covtype);
        let s = h.network(PaperDataset::Covtype, &d);
        assert_eq!(s.hidden.len(), 6);
        let d = h.dataset(PaperDataset::RealSim);
        let s = h.network(PaperDataset::RealSim, &d);
        assert_eq!(s.hidden.len(), 4);
        h.depth_factor = 0.5;
        let s = h.network(PaperDataset::RealSim, &d);
        assert_eq!(s.hidden.len(), 2);
    }

    #[test]
    fn traced_cell_yields_virtual_time_events() {
        let h = Harness {
            scale: 0.0005,
            width: 16,
            budget: 0.02,
            depth_factor: 0.5,
            seed: 1,
        };
        let d = h.dataset(PaperDataset::W8a);
        let (r, trace) = h.run_on_traced(PaperDataset::W8a, &d, AlgorithmKind::AdaptiveHogbatch);
        assert!(r.final_loss().is_finite());
        assert!(!trace.is_empty());
        assert_eq!(trace.domain, hetero_trace::TimeDomain::Virtual);
        let util = hetero_trace::utilization::utilization(&trace);
        assert!(!util.is_empty());
        assert!(util.iter().any(|w| w.busy_secs > 0.0));
    }

    #[test]
    fn normalization_picks_global_min() {
        let h = Harness {
            scale: 0.0005,
            width: 16,
            budget: 0.02,
            depth_factor: 0.5,
            seed: 1,
        };
        let d = h.dataset(PaperDataset::W8a);
        let a = h.run_on(PaperDataset::W8a, &d, AlgorithmKind::MiniBatchGpu);
        let b = h.run_on(PaperDataset::W8a, &d, AlgorithmKind::CpuGpuHogbatch);
        let basis = normalization_basis(&[a.clone(), b.clone()]);
        assert!(basis <= a.min_loss() && basis <= b.min_loss());
    }
}
