//! GEMM micro-benchmarks: the kernels that dominate DNN training cost
//! (forward NT, weight-gradient TN, backprop NN), serial vs rayon-parallel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hetero_tensor::simd::{self, SimdLevel};
use hetero_tensor::{gemm, Matrix};

fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
    })
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    // Shapes matching a 512-wide MLP layer at several batch sizes.
    for &batch in &[64usize, 512, 2048] {
        let (m, k, n) = (batch, 512, 512);
        let flops = 2 * m as u64 * k as u64 * n as u64;
        group.throughput(Throughput::Elements(flops));
        let a = mat(m, k, 1);
        let b = mat(k, n, 2);
        let bt = b.transpose();
        let at = a.transpose();

        group.bench_with_input(BenchmarkId::new("nn_serial", batch), &batch, |bch, _| {
            let mut cmat = Matrix::zeros(m, n);
            bch.iter(|| gemm::gemm_nn(1.0, &a, &b, 0.0, &mut cmat));
        });
        // Forced-dispatch serial variants: the scalar baseline and the SIMD
        // microkernels, independent of what the host auto-resolves to.
        for (tag, level) in [("scalar", SimdLevel::Scalar), ("simd", SimdLevel::Avx2)] {
            group.bench_with_input(
                BenchmarkId::new(format!("nn_{tag}"), batch),
                &batch,
                |bch, _| {
                    let mut cmat = Matrix::zeros(m, n);
                    simd::with_level(level, || {
                        bch.iter(|| gemm::gemm_nn(1.0, &a, &b, 0.0, &mut cmat))
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("nt_{tag}"), batch),
                &batch,
                |bch, _| {
                    let mut cmat = Matrix::zeros(m, n);
                    simd::with_level(level, || {
                        bch.iter(|| gemm::gemm_nt(1.0, &a, &bt, 0.0, &mut cmat))
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("tn_{tag}"), batch),
                &batch,
                |bch, _| {
                    let mut cmat = Matrix::zeros(m, n);
                    simd::with_level(level, || {
                        bch.iter(|| gemm::gemm_tn(1.0, &at, &b, 0.0, &mut cmat))
                    });
                },
            );
        }
        group.bench_with_input(BenchmarkId::new("nn_parallel", batch), &batch, |bch, _| {
            let mut cmat = Matrix::zeros(m, n);
            bch.iter(|| gemm::par_gemm_nn(1.0, &a, &b, 0.0, &mut cmat));
        });
        group.bench_with_input(BenchmarkId::new("nt_parallel", batch), &batch, |bch, _| {
            let mut cmat = Matrix::zeros(m, n);
            bch.iter(|| gemm::par_gemm_nt(1.0, &a, &bt, 0.0, &mut cmat));
        });
        group.bench_with_input(BenchmarkId::new("tn_parallel", batch), &batch, |bch, _| {
            let mut cmat = Matrix::zeros(m, n);
            bch.iter(|| gemm::par_gemm_tn(1.0, &at, &b, 0.0, &mut cmat));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
