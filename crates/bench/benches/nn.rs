//! Forward/backward benchmarks for the paper's network shapes: how much a
//! single SGD step costs at CPU-like (1/thread) vs GPU-like (large) batch
//! sizes, and the Hogwild shared-model update paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hetero_nn::{loss_and_gradient, InitScheme, LossKind, MlpSpec, Model, SharedModel, Targets};
use hetero_tensor::Matrix;

fn batch(n: usize, d: usize) -> (Matrix, Vec<u32>) {
    let x = Matrix::from_fn(n, d, |i, j| ((i * d + j) as f32 * 0.17).sin());
    let y = (0..n).map(|i| (i % 2) as u32).collect();
    (x, y)
}

fn bench_nn(c: &mut Criterion) {
    // covtype-like network scaled to 128-wide for bench runtime.
    let spec = MlpSpec {
        input_dim: 54,
        hidden: vec![128; 6],
        classes: 2,
        activation: hetero_nn::Activation::Sigmoid,
        loss: LossKind::SoftmaxCrossEntropy,
    };
    let model = Model::new(spec.clone(), InitScheme::PaperNormal, 1);

    let mut group = c.benchmark_group("nn_step");
    for &b in &[1usize, 64, 1024] {
        let (x, y) = batch(b, 54);
        group.throughput(Throughput::Elements(b as u64));
        group.bench_with_input(BenchmarkId::new("loss_and_gradient", b), &b, |bch, _| {
            bch.iter(|| loss_and_gradient(&model, &x, Targets::Classes(&y), b >= 64));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("shared_model");
    let shared = SharedModel::new(&model);
    let (x, y) = batch(16, 54);
    let (_, grad) = loss_and_gradient(&model, &x, Targets::Classes(&y), false);
    group.throughput(Throughput::Elements(model.num_params() as u64));
    group.bench_function("apply_gradient_racy", |b| {
        b.iter(|| shared.apply_gradient_racy(&grad, 1e-6));
    });
    group.bench_function("apply_gradient_atomic", |b| {
        b.iter(|| shared.apply_gradient_atomic(&grad, 1e-6));
    });
    group.bench_function("snapshot", |b| {
        b.iter(|| shared.snapshot());
    });
    group.finish();
}

criterion_group!(benches, bench_nn);
criterion_main!(benches);
