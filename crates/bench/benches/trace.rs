//! Tracing overhead: the no-op sink must cost nothing on the hot path.
//!
//! `emit/*` measures the raw per-event cost (the disabled case is a single
//! `enabled()` load and should be ~1 ns); `sim_run/*` measures a full short
//! simulated run untraced, with a disabled sink, and with tracing live, so
//! any regression of the instrumented engine paths shows up end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use hetero_core::{AlgorithmKind, SimEngine, SimEngineConfig, TrainConfig};
use hetero_data::PaperDataset;
use hetero_nn::MlpSpec;
use hetero_trace::{EventKind, TraceSink};

fn bench_emit(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_emit");
    group.bench_function("disabled", |b| {
        let sink = TraceSink::disabled();
        let mut depth = 0usize;
        b.iter(|| {
            depth = depth.wrapping_add(1);
            if sink.enabled() {
                sink.emit(0, EventKind::QueuePushed { depth });
            }
            depth
        });
    });
    group.bench_function("enabled", |b| {
        let sink = TraceSink::wall(1 << 12);
        let mut depth = 0usize;
        b.iter(|| {
            depth = depth.wrapping_add(1);
            if sink.enabled() {
                sink.emit(0, EventKind::QueuePushed { depth });
            }
            depth
        });
    });
    group.bench_function("counter_disabled", |b| {
        let counter = TraceSink::disabled().counter("bench.counter");
        b.iter(|| counter.add(1));
    });
    group.bench_function("counter_enabled", |b| {
        let sink = TraceSink::wall(1 << 12);
        let counter = sink.counter("bench.counter");
        b.iter(|| counter.add(1));
    });
    group.finish();
}

fn engine() -> (SimEngine, hetero_data::DenseDataset) {
    let dataset = PaperDataset::W8a.generate(0.002, 7);
    let spec = MlpSpec {
        input_dim: dataset.features(),
        hidden: vec![32, 32],
        classes: dataset.num_classes(),
        activation: hetero_nn::Activation::Sigmoid,
        loss: hetero_nn::LossKind::SoftmaxCrossEntropy,
    };
    let train = TrainConfig {
        algorithm: AlgorithmKind::AdaptiveHogbatch,
        time_budget: 0.02,
        rayon_threads: 0,
        eval_interval: 0.01,
        eval_subsample: 256,
        ..TrainConfig::default()
    };
    let engine = SimEngine::new(SimEngineConfig::paper_hardware(spec, train)).unwrap();
    (engine, dataset)
}

fn bench_sim_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_sim_run");
    group.sample_size(10);
    let (eng, dataset) = engine();
    group.bench_function("untraced", |b| b.iter(|| eng.run(&dataset)));
    group.bench_function("disabled_sink", |b| {
        let sink = TraceSink::disabled();
        b.iter(|| eng.run_traced(&dataset, &sink));
    });
    group.bench_function("enabled_sink", |b| {
        let sink = TraceSink::virtual_time(1 << 14);
        b.iter(|| {
            let r = eng.run_traced(&dataset, &sink);
            sink.drain();
            r
        });
    });
    group.finish();
}

criterion_group!(benches, bench_emit, bench_sim_run);
criterion_main!(benches);
