//! Dense vs sparse first-layer products at real-sim-like density —
//! quantifying the paper's "process everything dense" decision (§VII-A).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hetero_tensor::{gemm, CsrMatrix, Matrix};

fn sparse_batch(rows: usize, cols: usize, density: f64, seed: u64) -> Matrix {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state
    };
    let threshold = (density * u64::MAX as f64) as u64;
    Matrix::from_fn(rows, cols, |_, _| {
        if next() < threshold {
            ((next() >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        } else {
            0.0
        }
    })
}

fn bench_sparse(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_vs_dense");
    // real-sim-like shapes: wide input, modest batch, 0.25%–10% density.
    let (batch, input_dim, out) = (128usize, 4096usize, 256usize);
    let w = Matrix::from_fn(input_dim, out, |i, j| ((i + j) as f32 * 0.01).sin());
    let wt = w.transpose(); // out×in layout for the dense NT kernel

    for &density in &[0.0025f64, 0.02, 0.1] {
        let x = sparse_batch(batch, input_dim, density, 42);
        let csr = CsrMatrix::from_dense(&x, 0.0);
        group.throughput(Throughput::Elements(csr.nnz() as u64 * out as u64));
        group.bench_with_input(
            BenchmarkId::new("spmm", format!("{density}")),
            &density,
            |b, _| {
                b.iter(|| csr.spmm(&w));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("dense_gemm", format!("{density}")),
            &density,
            |b, _| {
                let mut z = Matrix::zeros(batch, out);
                b.iter(|| gemm::gemm_nt(1.0, &x, &wt, 0.0, &mut z));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sparse);
criterion_main!(benches);
