//! Message-queue benchmarks: the coordinator↔worker transport must be
//! cheap relative to batch processing (§V "lightweight asynchronous
//! coordinator").

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hetero_mq::{channel, MpscQueue};

fn bench_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("mq");
    group.throughput(Throughput::Elements(1));

    group.bench_function("queue_push_pop_uncontended", |b| {
        let q = MpscQueue::new();
        b.iter(|| {
            q.push(1u64);
            q.pop_spin()
        });
    });

    group.bench_function("channel_send_recv_uncontended", |b| {
        let (tx, rx) = channel();
        b.iter(|| {
            tx.send(1u64).unwrap();
            rx.try_recv().unwrap()
        });
    });

    group.throughput(Throughput::Elements(10_000));
    group.bench_function("channel_4_producers_10k", |b| {
        b.iter(|| {
            let (tx, rx) = channel();
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        for i in 0..2500u64 {
                            tx.send(i).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            let mut n = 0u64;
            while rx.recv().is_ok() {
                n += 1;
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n, 10_000);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_queue);
criterion_main!(benches);
