//! End-to-end engine benchmarks: the adaptive controller's per-request
//! cost (the paper claims it "does not incur observable overhead") and a
//! full short simulated run per algorithm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetero_core::adaptive::{AdaptiveController, WorkerBatchState};
use hetero_core::{AlgorithmKind, SimEngine, SimEngineConfig, TrainConfig};
use hetero_data::PaperDataset;
use hetero_nn::MlpSpec;

fn bench_controller(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive_controller");
    group.bench_function("on_request_2_workers", |b| {
        let mut ctl = AdaptiveController::new(
            2.0,
            true,
            vec![
                WorkerBatchState::new(56, 56, 3584),
                WorkerBatchState::new(8192, 512, 8192),
            ],
        );
        let mut w = 0;
        b.iter(|| {
            ctl.report_updates(w, 7.0);
            let batch = ctl.on_request(w);
            w = 1 - w;
            batch
        });
    });
    group.bench_function("on_request_16_workers", |b| {
        let states = (0..16)
            .map(|_| WorkerBatchState::new(512, 64, 8192))
            .collect();
        let mut ctl = AdaptiveController::new(2.0, true, states);
        let mut w = 0;
        b.iter(|| {
            ctl.report_updates(w, 3.0);
            let batch = ctl.on_request(w);
            w = (w + 1) % 16;
            batch
        });
    });
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_engine_short_run");
    group.sample_size(10);
    let dataset = PaperDataset::W8a.generate(0.002, 7);
    for algo in [
        AlgorithmKind::MiniBatchGpu,
        AlgorithmKind::CpuGpuHogbatch,
        AlgorithmKind::AdaptiveHogbatch,
    ] {
        group.bench_with_input(BenchmarkId::new("run", algo.label()), &algo, |b, &algo| {
            let spec = MlpSpec {
                input_dim: dataset.features(),
                hidden: vec![32, 32],
                classes: dataset.num_classes(),
                activation: hetero_nn::Activation::Sigmoid,
                loss: hetero_nn::LossKind::SoftmaxCrossEntropy,
            };
            let train = TrainConfig {
                algorithm: algo,
                time_budget: 0.02,
                rayon_threads: 0,
                eval_interval: 0.01,
                eval_subsample: 256,
                ..TrainConfig::default()
            };
            let engine = SimEngine::new(SimEngineConfig::paper_hardware(spec, train)).unwrap();
            b.iter(|| engine.run(&dataset));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_controller, bench_engine);
criterion_main!(benches);
