//! Software-GPU benchmarks: allocator, transfers, kernels, and the full
//! on-device training step a GPU worker executes per batch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hetero_gpu::{GpuDevice, GpuMlp, Stream};
use hetero_nn::{InitScheme, MlpSpec, Model, Targets};
use hetero_tensor::Matrix;

fn bench_gpu(c: &mut Criterion) {
    let device = GpuDevice::v100();

    let mut group = c.benchmark_group("gpu_mem");
    group.bench_function("alloc_free_1mb", |b| {
        b.iter(|| {
            let buf = device.mem().alloc(1 << 18).unwrap();
            device.mem().free(buf).unwrap();
        });
    });
    let host = vec![0.5f32; 1 << 18];
    group.throughput(Throughput::Bytes(1 << 20));
    group.bench_function("h2d_d2h_1mb", |b| {
        b.iter(|| {
            let buf = device.h2d(&host).unwrap();
            let back = device.d2h(buf);
            device.mem().free(buf).unwrap();
            back
        });
    });
    group.finish();

    let mut group = c.benchmark_group("gpu_stream");
    group.bench_function("launch_sync_noop", |b| {
        let s = Stream::new("bench");
        b.iter(|| {
            s.launch(|| {});
            s.synchronize();
        });
    });
    group.finish();

    let mut group = c.benchmark_group("gpu_train_step");
    let spec = MlpSpec {
        input_dim: 54,
        hidden: vec![128; 4],
        classes: 2,
        activation: hetero_nn::Activation::Sigmoid,
        loss: hetero_nn::LossKind::SoftmaxCrossEntropy,
    };
    let model = Model::new(spec.clone(), InitScheme::PaperNormal, 1);
    for &batch in &[64usize, 512] {
        let x = Matrix::from_fn(batch, 54, |i, j| ((i + j) as f32 * 0.1).cos());
        let y: Vec<u32> = (0..batch).map(|i| (i % 2) as u32).collect();
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::new("train_step", batch), &batch, |b, _| {
            let mut mlp = GpuMlp::upload(&device, &model).unwrap();
            b.iter(|| mlp.train_step(&x, Targets::Classes(&y), 0.01).unwrap());
            mlp.destroy();
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gpu);
criterion_main!(benches);
