//! Measured (not asserted-by-inspection) allocation-freedom of the
//! metrics hot paths: once a histogram exists and a `HistHandle` is
//! resolved, recording observations must never touch the heap — workers
//! call it inside the training loop, where PR 4 established a
//! zero-steady-state-allocation regime.
//!
//! Lives in its own integration-test binary because `#[global_allocator]`
//! is process-wide: mixing a counting allocator into the unit-test binary
//! would perturb every other test's numbers.

use hetero_bench::alloc_count::CountingAlloc;
use hetero_metrics::{HubSnapshot, LogHistogram, Metric, MetricsHub};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// Allocations observed while running `f` after one warmup call.
fn allocs_in(mut f: impl FnMut()) -> u64 {
    f(); // warm: lazy statics, first-touch paths
    let before = ALLOC.allocations();
    f();
    ALLOC.allocations() - before
}

#[test]
fn histogram_record_path_is_allocation_free() {
    let h = LogHistogram::new();
    let n = allocs_in(|| {
        // Sweep every bucket regime: exact sub-buckets, mid octaves, and
        // the top of the range (fetch_max updates included).
        for i in 0..10_000u64 {
            h.record(i);
            h.record(i << 20);
            h.record(u64::MAX - i);
        }
    });
    assert_eq!(n, 0, "LogHistogram::record allocated {n} times");
    assert_eq!(h.count(), 60_000);
}

#[test]
fn resolved_hist_handle_record_is_allocation_free() {
    let hub = MetricsHub::new();
    // Resolving a handle registers the series (allocates, once) …
    let lat = hub.histogram(Metric::BatchLatency, 0);
    let stale = hub.histogram(Metric::Staleness, 1);
    // … but recording through it afterwards must not.
    let n = allocs_in(|| {
        for i in 0..10_000u64 {
            lat.record_secs(i as f64 * 1e-6);
            stale.record(i % 17);
        }
    });
    assert_eq!(n, 0, "HistHandle record path allocated {n} times");
    assert!(hub.summary(Metric::BatchLatency).is_some());
}

#[test]
fn disabled_handle_record_is_allocation_free() {
    let hub = MetricsHub::disabled();
    let h = hub.histogram(Metric::QueueWait, 3);
    let n = allocs_in(|| {
        for i in 0..10_000u64 {
            h.record(i);
        }
    });
    assert_eq!(n, 0, "disabled HistHandle allocated {n} times");
}

#[test]
fn snapshot_queries_do_not_allocate_per_quantile() {
    let hub = MetricsHub::new();
    let h = hub.histogram(Metric::MergeWait, 0);
    for i in 1..1000u64 {
        h.record(i * 1000);
    }
    // Snapshotting allocates (it copies the bucket array — that is fine;
    // it happens at scrape/summary cadence, not per update). Quantile
    // queries on an existing snapshot must not.
    let snap: HubSnapshot = hub.snapshot();
    let merged = snap.merged(Metric::MergeWait).expect("series exists");
    let n = allocs_in(|| {
        for q in [0.5, 0.9, 0.99, 1.0] {
            std::hint::black_box(merged.quantile(q));
        }
        std::hint::black_box(merged.count_le(500_000));
    });
    assert_eq!(n, 0, "snapshot quantile queries allocated {n} times");
}
