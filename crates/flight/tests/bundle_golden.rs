//! Golden-file and schema checks for the postmortem bundle.
//!
//! The golden file pins the exact bytes a dump produces for a fixed,
//! fully deterministic recorder state, so accidental format drift (field
//! renames, lost sections, reordered keys) fails loudly — a bundle written
//! by an old binary must stay readable by new tooling. Regenerate
//! intentionally with
//! `UPDATE_GOLDEN=1 cargo test -p hetero-flight --test bundle_golden`.

use hetero_flight::{
    render_report, FlightConfig, FlightRecorder, HealthSnapshot, PostmortemBundle, Provenance,
    SCHEMA,
};
use hetero_metrics::{Metric, MetricsHub};
use hetero_trace::{EventKind, TimeDomain, COORDINATOR};
use serde_json::Value;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/postmortem_v1.json"
);

/// Dump a bundle from a fixed recorder state. Every input is pinned (no
/// clocks, no real git sha, virtual-time sink), so the JSON bytes are
/// reproducible across machines.
fn fixture_dump() -> String {
    let dir = std::env::temp_dir().join(format!("hetero-flight-golden-{}", std::process::id()));
    let flight = FlightRecorder::new(FlightConfig {
        dir: dir.clone(),
        ..FlightConfig::default()
    });
    flight.set_provenance(Provenance {
        engine: "sim".into(),
        algorithm: "Adaptive Hogbatch".into(),
        dataset: "w8a".into(),
        workers: 2,
        config_json: "{\"lr\":0.1}".into(),
        git_sha: Some("0123456789abcdef0123456789abcdef01234567".into()),
        simd_level: "Avx2".into(),
    });
    flight.set_resumable_from("results/ckpt/gen-0000000007.ckpt".into());
    let watchdog = flight.watchdog();
    watchdog.ensure_layers(2);
    watchdog.observe_layer(0, 0, 3, 4.0, 0);
    watchdog.observe_layer(1, 1, 3, 9.0, 0);
    watchdog.observe_eval(0.693);
    watchdog.observe_eval(0.512);
    flight.record_snapshot(HealthSnapshot {
        t: 0.5,
        loss: 0.512,
        epochs: 1.25,
        batches: vec![56, 8192],
        beta: Some(0.97),
        staleness_p50: Some(2.0),
        staleness_p99: Some(56.0),
        grad_peak_norm: 3.0,
    });
    let sink = flight.make_sink(TimeDomain::Virtual);
    sink.emit_at(0.1, 0, EventKind::BatchDispatched { batch: 56 });
    sink.emit_at(
        0.2,
        0,
        EventKind::BatchCompleted {
            batch: 56,
            updates: 14,
        },
    );
    sink.emit_at(0.5, COORDINATOR, EventKind::EvalPoint { loss: 0.512 });
    sink.emit_at(
        0.6,
        COORDINATOR,
        EventKind::HealthEvent {
            action: "clamp".into(),
            detail: "batch growth frozen".into(),
        },
    );
    sink.counter("mq.ready.pushes").add(3);
    let hub = MetricsHub::new();
    hub.histogram(Metric::BatchLatency, 0).record(1_000_000);
    hub.histogram(Metric::BatchLatency, 1).record(2_000_000);
    let path = flight
        .dump("fixture: seeded fault", sink.capture(), &hub)
        .expect("enabled recorder dumps");
    let json = std::fs::read_to_string(&path).expect("bundle written");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
    json
}

#[test]
fn bundle_matches_golden_file() {
    let json = fixture_dump();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_PATH).parent().unwrap()).unwrap();
        std::fs::write(GOLDEN_PATH, &json).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        json, golden,
        "postmortem bundle drifted from the golden file; old bundles must \
         stay readable — if the change is intentional, bump or extend the \
         schema and regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_bundle_parses_and_renders() {
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("golden file present");
    let bundle = PostmortemBundle::from_json(&golden).expect("golden parses");
    assert_eq!(bundle.schema, SCHEMA);
    let report = render_report(&bundle);
    assert!(report.contains("Adaptive Hogbatch"));
    assert!(report.contains("fixture: seeded fault"));
}

#[test]
fn bundle_schema_key_sets_are_stable() {
    let doc: Value = serde_json::from_str(&fixture_dump()).unwrap();
    let keys = |v: &Value| -> Vec<String> {
        match v {
            Value::Object(o) => o.iter().map(|(k, _)| k.clone()).collect(),
            other => panic!("expected object, got {}", other.kind()),
        }
    };
    assert_eq!(
        keys(&doc),
        [
            "schema",
            "reason",
            "resumable_from",
            "provenance",
            "health",
            "snapshots",
            "counters",
            "metrics",
            "trace"
        ]
        .map(String::from)
    );
    assert_eq!(
        keys(doc.get("provenance").unwrap()),
        [
            "engine",
            "algorithm",
            "dataset",
            "workers",
            "config_json",
            "git_sha",
            "simd_level"
        ]
        .map(String::from)
    );
    let Some(Value::Array(snaps)) = doc.get("snapshots") else {
        panic!("snapshots must be an array");
    };
    assert_eq!(
        keys(&snaps[0]),
        [
            "t",
            "loss",
            "epochs",
            "batches",
            "beta",
            "staleness_p50",
            "staleness_p99",
            "grad_peak_norm"
        ]
        .map(String::from)
    );
    let health = doc.get("health").unwrap();
    for required in [
        "nonfinite_events",
        "peak_grad_norm",
        "layer_peak_norms",
        "diverged",
        "stalled",
        "tripped",
    ] {
        assert!(
            health.get(required).is_some(),
            "health section lost `{required}`"
        );
    }
}
