//! `hetero-postmortem` — render a flight-recorder bundle.
//!
//! ```text
//! hetero-postmortem <bundle.json>                  # human-readable report
//! hetero-postmortem <bundle.json> --trace out.json # + Perfetto-loadable trace
//! ```
//!
//! Exit codes: 0 on success, 2 on usage error, 1 on a malformed bundle or
//! I/O failure.

use hetero_flight::{render_report, PostmortemBundle};

fn usage() -> ! {
    eprintln!("usage: hetero-postmortem <bundle.json> [--trace <out.json>]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut bundle_path: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace" => match it.next() {
                Some(p) => trace_out = Some(p),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            _ if bundle_path.is_none() => bundle_path = Some(arg),
            _ => usage(),
        }
    }
    let Some(bundle_path) = bundle_path else {
        usage()
    };

    let text = match std::fs::read_to_string(&bundle_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("hetero-postmortem: cannot read {bundle_path}: {e}");
            std::process::exit(1);
        }
    };
    let bundle = match PostmortemBundle::from_json(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("hetero-postmortem: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", render_report(&bundle));
    if let Some(out) = trace_out {
        if let Err(e) = hetero_trace::export::write_chrome(&bundle.trace, &out) {
            eprintln!("hetero-postmortem: cannot write trace {out}: {e}");
            std::process::exit(1);
        }
        println!("wrote Perfetto trace: {out}");
    }
}
