//! The training-health watchdog: lock-free accumulation of per-layer
//! gradient norms and NaN/±Inf counts from worker hot paths, plus loss
//! divergence/stall detection at eval points.
//!
//! Ordering discipline: every atomic here is a monitoring accumulator
//! (counts, f64-bit high-water marks, a one-way trip flag). No thread
//! reads one to establish happens-before with training data — the
//! coordinator polls them between batches and tolerates stale values — so
//! all accesses are `Relaxed`. The only cross-field invariant (trip
//! reason published before the flag) is protected by the `tripped_reason`
//! mutex, not by ordering.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

use crate::policy::{HealthAction, HealthPolicy, HealthSummary, NonfiniteRecord};

/// Serializable snapshot of a watchdog's accumulated tallies, captured by
/// a checkpoint so a resumed run keeps its health history (warnings,
/// clamps, peak norms, loss-trend state) instead of starting amnesiac.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WatchdogState {
    /// NaN/±Inf elements observed so far.
    pub nonfinite: u64,
    /// Policy warnings issued.
    pub warnings: u64,
    /// Controller clamps performed.
    pub clamps: u64,
    /// First non-finite observation site, if any.
    pub first_nonfinite: Option<NonfiniteRecord>,
    /// Per-layer peak L2 gradient norms.
    pub layer_peaks: Vec<f64>,
    /// First eval loss seen (anchors divergence detection).
    pub eval_initial: Option<f64>,
    /// Best eval loss seen.
    pub eval_best: f64,
    /// Evals since the best (stall counter).
    pub evals_since_best: u32,
    /// Whether divergence was detected (and reacted to).
    pub diverged: bool,
    /// Whether a stall was detected (and reacted to).
    pub stalled: bool,
}

#[derive(Default)]
struct EvalState {
    initial: Option<f64>,
    best: f64,
    since_best: u32,
    diverged: bool,
    stalled: bool,
    divergence_reacted: bool,
    stall_reacted: bool,
}

struct WatchdogInner {
    policy: HealthPolicy,
    nonfinite: AtomicU64,
    warnings: AtomicU64,
    clamps: AtomicU64,
    clamp_requested: AtomicBool,
    tripped_flag: AtomicBool,
    tripped_reason: Mutex<Option<String>>,
    first_nonfinite: Mutex<Option<NonfiniteRecord>>,
    /// Per-layer peak L2 norm as f64 bits (norms are non-negative, so the
    /// bit patterns order the same way the values do).
    peaks: RwLock<Vec<AtomicU64>>,
    evals: Mutex<EvalState>,
}

/// Shared health monitor. Cheap to clone (an `Arc` — or nothing at all
/// when disabled); every method on a disabled watchdog is a no-op.
#[derive(Clone, Default)]
pub struct Watchdog {
    inner: Option<Arc<WatchdogInner>>,
}

impl Watchdog {
    /// A watchdog that observes nothing and never trips.
    pub fn disabled() -> Self {
        Watchdog::default()
    }

    /// An active watchdog enforcing `policy`.
    pub fn new(policy: HealthPolicy) -> Self {
        Watchdog {
            inner: Some(Arc::new(WatchdogInner {
                policy,
                nonfinite: AtomicU64::new(0),
                warnings: AtomicU64::new(0),
                clamps: AtomicU64::new(0),
                clamp_requested: AtomicBool::new(false),
                tripped_flag: AtomicBool::new(false),
                tripped_reason: Mutex::new(None),
                first_nonfinite: Mutex::new(None),
                peaks: RwLock::new(Vec::new()),
                evals: Mutex::new(EvalState::default()),
            })),
        }
    }

    /// Whether observations are recorded at all.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The policy in force (`None` when disabled).
    pub fn policy(&self) -> Option<&HealthPolicy> {
        self.inner.as_deref().map(|i| &i.policy)
    }

    /// Size the per-layer peak-norm table. Engines call this once at
    /// startup; growing is idempotent and never shrinks.
    pub fn ensure_layers(&self, n: usize) {
        let Some(inner) = &self.inner else { return };
        let mut peaks = inner.peaks.write();
        while peaks.len() < n {
            peaks.push(AtomicU64::new(0));
        }
    }

    /// Record one per-layer scan result from a worker hot path: `sumsq` is
    /// the sum of squared finite elements of the applied gradient / merged
    /// delta for `layer`, `nonfinite` the NaN/±Inf count. `step` is the
    /// worker's 0-based batch counter (named in the postmortem when this
    /// observation trips the policy).
    pub fn observe_layer(&self, worker: u32, layer: usize, step: u64, sumsq: f64, nonfinite: u64) {
        let Some(inner) = &self.inner else { return };
        let norm = sumsq.sqrt();
        {
            let peaks = inner.peaks.read();
            if let Some(cell) = peaks.get(layer) {
                // Relaxed high-water mark (see module ordering note).
                let mut cur = cell.load(Ordering::Relaxed);
                while norm.to_bits() > cur {
                    match cell.compare_exchange_weak(
                        cur,
                        norm.to_bits(),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break,
                        Err(actual) => cur = actual,
                    }
                }
            }
        }
        if nonfinite > 0 {
            // Relaxed count (see module ordering note).
            inner.nonfinite.fetch_add(nonfinite, Ordering::Relaxed);
            let mut first = inner.first_nonfinite.lock();
            if first.is_none() {
                *first = Some(NonfiniteRecord {
                    worker,
                    layer,
                    step,
                });
            }
            drop(first);
            let detail = format!(
                "non-finite gradient: worker {worker}, layer {layer}, step {step} \
                 ({nonfinite} element(s))"
            );
            self.react(inner.policy.on_nonfinite, &detail);
        }
    }

    /// Feed one eval-loss observation (coordinator only). Returns the
    /// action the policy selected for a *newly* detected condition —
    /// [`HealthAction::Clamp`] asks the caller to clamp its adaptive
    /// controller (and then call [`note_clamp`](Self::note_clamp)).
    pub fn observe_eval(&self, loss: f64) -> HealthAction {
        let Some(inner) = &self.inner else {
            return HealthAction::Ignore;
        };
        let mut ev = inner.evals.lock();
        let Some(initial) = ev.initial else {
            ev.initial = Some(loss);
            ev.best = loss;
            return HealthAction::Ignore;
        };
        if loss < ev.best {
            ev.best = loss;
            ev.since_best = 0;
        } else {
            ev.since_best += 1;
        }
        let diverged =
            !loss.is_finite() || (initial > 0.0 && loss > inner.policy.divergence_factor * initial);
        if diverged && !ev.divergence_reacted {
            ev.diverged = true;
            ev.divergence_reacted = true;
            drop(ev);
            let detail = format!(
                "loss divergence: eval loss {loss} vs initial {initial} \
                 (threshold ×{})",
                inner.policy.divergence_factor
            );
            return self.react(inner.policy.on_divergence, &detail);
        }
        if ev.since_best >= inner.policy.stall_evals && !ev.stall_reacted {
            ev.stalled = true;
            ev.stall_reacted = true;
            let since = ev.since_best;
            drop(ev);
            let detail = format!("loss stall: no new best for {since} consecutive evals");
            return self.react(inner.policy.on_stall, &detail);
        }
        HealthAction::Ignore
    }

    /// Apply `action` for `detail`, counting warnings / requesting clamps /
    /// tripping as the policy dictates, and echo the action back.
    fn react(&self, action: HealthAction, detail: &str) -> HealthAction {
        let Some(inner) = &self.inner else {
            return HealthAction::Ignore;
        };
        match action {
            HealthAction::Ignore => {}
            HealthAction::Warn => {
                // Relaxed count (see module ordering note).
                inner.warnings.fetch_add(1, Ordering::Relaxed);
            }
            HealthAction::Clamp => {
                // Relaxed request flag; the coordinator polls it.
                inner.clamp_requested.store(true, Ordering::Relaxed);
            }
            HealthAction::Abort => {
                let mut reason = inner.tripped_reason.lock();
                if reason.is_none() {
                    *reason = Some(detail.to_string());
                }
                drop(reason);
                // Relaxed one-way flag (see module ordering note).
                inner.tripped_flag.store(true, Ordering::Relaxed);
            }
        }
        action
    }

    /// Consume a pending clamp request raised from a worker hot path.
    /// Returns `true` at most once per request.
    pub fn take_clamp_request(&self) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        // Relaxed swap: a lost race only delays the clamp one poll cycle.
        inner.clamp_requested.swap(false, Ordering::Relaxed)
    }

    /// Record that the caller performed a controller clamp.
    pub fn note_clamp(&self) {
        if let Some(inner) = &self.inner {
            // Relaxed count (see module ordering note).
            inner.clamps.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Why the policy aborted the run, if it has.
    pub fn tripped(&self) -> Option<String> {
        let inner = self.inner.as_deref()?;
        // Relaxed fast-path check (see module ordering note).
        if !inner.tripped_flag.load(Ordering::Relaxed) {
            return None;
        }
        inner.tripped_reason.lock().clone()
    }

    /// Export the accumulated tallies for checkpointing. Returns the
    /// default (empty) state when disabled.
    pub fn export_state(&self) -> WatchdogState {
        let Some(inner) = &self.inner else {
            return WatchdogState::default();
        };
        let ev = inner.evals.lock();
        WatchdogState {
            // Relaxed loads of monitoring tallies (see module ordering note).
            nonfinite: inner.nonfinite.load(Ordering::Relaxed),
            warnings: inner.warnings.load(Ordering::Relaxed),
            clamps: inner.clamps.load(Ordering::Relaxed),
            first_nonfinite: *inner.first_nonfinite.lock(),
            layer_peaks: inner
                .peaks
                .read()
                .iter()
                .map(|c| f64::from_bits(c.load(Ordering::Relaxed)))
                .collect(),
            eval_initial: ev.initial,
            eval_best: ev.best,
            evals_since_best: ev.since_best,
            diverged: ev.diverged,
            stalled: ev.stalled,
        }
    }

    /// Restore tallies exported by [`export_state`](Self::export_state)
    /// into this (freshly created) watchdog. A resumed run therefore
    /// continues the same health record: divergence stays anchored to the
    /// original initial loss, and already-reacted conditions do not fire a
    /// second reaction. No-op when disabled.
    pub fn restore_state(&self, state: &WatchdogState) {
        let Some(inner) = &self.inner else { return };
        // Relaxed stores: restore happens before workers start (see module
        // ordering note).
        inner.nonfinite.store(state.nonfinite, Ordering::Relaxed);
        inner.warnings.store(state.warnings, Ordering::Relaxed);
        inner.clamps.store(state.clamps, Ordering::Relaxed);
        *inner.first_nonfinite.lock() = state.first_nonfinite;
        self.ensure_layers(state.layer_peaks.len());
        {
            let peaks = inner.peaks.read();
            for (cell, &peak) in peaks.iter().zip(&state.layer_peaks) {
                cell.store(peak.to_bits(), Ordering::Relaxed);
            }
        }
        let mut ev = inner.evals.lock();
        ev.initial = state.eval_initial;
        ev.best = state.eval_best;
        ev.since_best = state.evals_since_best;
        ev.diverged = state.diverged;
        ev.stalled = state.stalled;
        // A condition that already triggered its one-shot reaction before
        // the checkpoint must not react again after resume.
        ev.divergence_reacted = state.diverged;
        ev.stall_reacted = state.stalled;
    }

    /// Snapshot the accumulated health record (postmortem path unset —
    /// the flight recorder fills it after dumping).
    pub fn summary(&self) -> HealthSummary {
        let Some(inner) = &self.inner else {
            return HealthSummary::default();
        };
        let peaks: Vec<f64> = inner
            .peaks
            .read()
            .iter()
            // Relaxed reads of monitoring high-water marks.
            .map(|c| f64::from_bits(c.load(Ordering::Relaxed)))
            .collect();
        let peak =
            peaks
                .iter()
                .enumerate()
                .fold(None::<(usize, f64)>, |best, (i, &n)| match best {
                    Some((_, bn)) if bn >= n => best,
                    _ => Some((i, n)),
                });
        let ev = inner.evals.lock();
        // Relaxed loads throughout: these are monitoring tallies; a summary
        // taken mid-run may lag a worker by a batch, which is acceptable.
        HealthSummary {
            nonfinite_events: inner.nonfinite.load(Ordering::Relaxed),
            peak_grad_norm: peak.map(|(_, n)| n).unwrap_or(0.0),
            peak_grad_layer: peak.filter(|&(_, n)| n > 0.0).map(|(i, _)| i),
            layer_peak_norms: peaks,
            diverged: ev.diverged,
            stalled: ev.stalled,
            warnings: inner.warnings.load(Ordering::Relaxed),
            clamps: inner.clamps.load(Ordering::Relaxed),
            first_nonfinite: *inner.first_nonfinite.lock(),
            tripped: self.tripped(),
            postmortem: None,
        }
    }
}

impl std::fmt::Debug for Watchdog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Watchdog")
            .field("enabled", &self.enabled())
            .field("tripped", &self.tripped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_watchdog_is_inert() {
        let w = Watchdog::disabled();
        w.ensure_layers(3);
        w.observe_layer(0, 0, 0, 1.0, 5);
        assert_eq!(w.observe_eval(1.0), HealthAction::Ignore);
        assert!(!w.enabled());
        assert_eq!(w.tripped(), None);
        assert_eq!(w.summary(), HealthSummary::default());
    }

    #[test]
    fn nonfinite_trips_abort_and_names_the_site() {
        let w = Watchdog::new(HealthPolicy::default());
        w.ensure_layers(2);
        w.observe_layer(1, 0, 3, 4.0, 0);
        assert_eq!(w.tripped(), None);
        w.observe_layer(1, 1, 4, 0.0, 2);
        let reason = w.tripped().expect("tripped");
        assert!(reason.contains("worker 1"), "{reason}");
        assert!(reason.contains("layer 1"), "{reason}");
        assert!(reason.contains("step 4"), "{reason}");
        let s = w.summary();
        assert_eq!(s.nonfinite_events, 2);
        assert_eq!(
            s.first_nonfinite,
            Some(NonfiniteRecord {
                worker: 1,
                layer: 1,
                step: 4
            })
        );
        assert_eq!(s.peak_grad_layer, Some(0));
        assert!((s.peak_grad_norm - 2.0).abs() < 1e-12);
    }

    #[test]
    fn peak_norm_is_a_high_water_mark() {
        let w = Watchdog::new(HealthPolicy::default());
        w.ensure_layers(1);
        w.observe_layer(0, 0, 0, 9.0, 0);
        w.observe_layer(0, 0, 1, 1.0, 0);
        assert_eq!(w.summary().layer_peak_norms, vec![3.0]);
    }

    #[test]
    fn divergence_warns_once_by_default() {
        let w = Watchdog::new(HealthPolicy::default());
        assert_eq!(w.observe_eval(1.0), HealthAction::Ignore);
        assert_eq!(w.observe_eval(0.9), HealthAction::Ignore);
        assert_eq!(w.observe_eval(5.0), HealthAction::Warn);
        // Reacted once; staying diverged does not repeat the action.
        assert_eq!(w.observe_eval(6.0), HealthAction::Ignore);
        let s = w.summary();
        assert!(s.diverged);
        assert_eq!(s.warnings, 1);
    }

    #[test]
    fn nan_loss_counts_as_divergence() {
        let p = HealthPolicy {
            on_divergence: HealthAction::Abort,
            ..HealthPolicy::default()
        };
        let w = Watchdog::new(p);
        assert_eq!(w.observe_eval(1.0), HealthAction::Ignore);
        assert_eq!(w.observe_eval(f64::NAN), HealthAction::Abort);
        assert!(w.tripped().unwrap().contains("divergence"));
    }

    #[test]
    fn stall_clamps_after_threshold() {
        let p = HealthPolicy {
            stall_evals: 3,
            ..HealthPolicy::default()
        };
        let w = Watchdog::new(p);
        assert_eq!(w.observe_eval(1.0), HealthAction::Ignore);
        for _ in 0..2 {
            assert_eq!(w.observe_eval(1.0), HealthAction::Ignore);
        }
        assert_eq!(w.observe_eval(1.0), HealthAction::Clamp);
        w.note_clamp();
        let s = w.summary();
        assert!(s.stalled);
        assert_eq!(s.clamps, 1);
        // A new best after the stall does not un-stall the record.
        assert_eq!(w.observe_eval(0.5), HealthAction::Ignore);
        assert!(w.summary().stalled);
    }

    #[test]
    fn export_restore_roundtrips_tallies() {
        let p = HealthPolicy {
            on_nonfinite: HealthAction::Warn,
            ..HealthPolicy::default()
        };
        let w = Watchdog::new(p.clone());
        w.ensure_layers(2);
        w.observe_layer(0, 0, 0, 9.0, 0);
        w.observe_layer(1, 1, 2, 0.0, 3);
        w.observe_eval(1.0);
        w.observe_eval(0.8);
        w.note_clamp();
        let state = w.export_state();

        let back = Watchdog::new(p);
        back.restore_state(&state);
        assert_eq!(back.export_state(), state);
        let s = back.summary();
        assert_eq!(s.nonfinite_events, 3);
        assert_eq!(s.warnings, 1);
        assert_eq!(s.clamps, 1);
        assert_eq!(s.layer_peak_norms, vec![3.0, 0.0]);
        assert_eq!(
            s.first_nonfinite,
            Some(NonfiniteRecord {
                worker: 1,
                layer: 1,
                step: 2
            })
        );
        // Divergence detection stays anchored to the pre-resume initial.
        assert_eq!(back.observe_eval(100.0), HealthAction::Warn);
    }

    #[test]
    fn restored_reacted_conditions_do_not_refire() {
        let w = Watchdog::new(HealthPolicy::default());
        w.observe_eval(1.0);
        w.observe_eval(50.0); // diverged -> Warn (default policy)
        let state = w.export_state();
        assert!(state.diverged);

        let back = Watchdog::new(HealthPolicy::default());
        back.restore_state(&state);
        // Still diverged after resume, but the one-shot reaction already
        // happened before the checkpoint.
        assert_eq!(back.observe_eval(60.0), HealthAction::Ignore);
        assert!(back.summary().diverged);
    }

    #[test]
    fn worker_side_clamp_requests_are_consumed_once() {
        let p = HealthPolicy {
            on_nonfinite: HealthAction::Clamp,
            ..HealthPolicy::default()
        };
        let w = Watchdog::new(p);
        w.ensure_layers(1);
        w.observe_layer(0, 0, 0, 0.0, 1);
        assert_eq!(w.tripped(), None);
        assert!(w.take_clamp_request());
        assert!(!w.take_clamp_request());
    }
}
