//! The black-box flight recorder: bounded retention of recent history plus
//! postmortem bundle dumps on fault paths.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hetero_metrics::{Metric, MetricsHub};
use hetero_trace::{TimeDomain, Trace, TraceSink};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::bundle::{MetricRow, PostmortemBundle, SCHEMA};
use crate::policy::HealthPolicy;
use crate::ring::RetentionRing;
use crate::watchdog::Watchdog;

/// Per-shard trace-ring capacity for recorder-created sinks: big enough to
/// hold the recent-event window of a real run, small enough to bound the
/// black box's memory (events are ~64 B, so this is ≈¼ MiB per thread).
pub const DEFAULT_RETENTION_EVENTS: usize = 1 << 12;

/// Flight-recorder configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightConfig {
    /// Health policy the embedded watchdog enforces.
    pub policy: HealthPolicy,
    /// Directory postmortem bundles are written into.
    pub dir: PathBuf,
    /// How many periodic [`HealthSnapshot`]s to retain (drop-oldest).
    pub snapshot_capacity: usize,
    /// Per-shard capacity of recorder-created trace sinks (drop-oldest
    /// rings: the retention window of recent events).
    pub retention_events: usize,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            policy: HealthPolicy::default(),
            dir: PathBuf::from("results/postmortem"),
            snapshot_capacity: 256,
            retention_events: DEFAULT_RETENTION_EVENTS,
        }
    }
}

/// Run provenance embedded in every bundle: enough to reproduce the run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Provenance {
    /// Engine that produced the run (`threaded` / `sim` / `ps`).
    pub engine: String,
    /// Algorithm label (matches `TrainResult::algorithm`).
    pub algorithm: String,
    /// Dataset name.
    pub dataset: String,
    /// Worker slots at startup.
    pub workers: usize,
    /// The engine's `TrainConfig`, pre-serialized to JSON by the engine so
    /// this crate stays decoupled from `hetero-core`.
    pub config_json: String,
    /// Git commit of the working tree, if resolvable.
    pub git_sha: Option<String>,
    /// Active SIMD dispatch level (e.g. `Avx2`, `Scalar`).
    pub simd_level: String,
}

/// One periodic controller-state snapshot retained by the recorder.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HealthSnapshot {
    /// Seconds into the run (wall or virtual, per the engine).
    pub t: f64,
    /// Eval loss at this point.
    pub loss: f64,
    /// Epochs completed.
    pub epochs: f64,
    /// Per-worker batch sizes (controller state).
    pub batches: Vec<usize>,
    /// Measured β̂ so far, when the run measures it.
    pub beta: Option<f64>,
    /// Staleness p50 from the metrics hub, when enabled.
    pub staleness_p50: Option<f64>,
    /// Staleness p99 from the metrics hub, when enabled.
    pub staleness_p99: Option<f64>,
    /// Peak per-layer gradient norm seen so far.
    pub grad_peak_norm: f64,
}

struct RecorderInner {
    cfg: FlightConfig,
    watchdog: Watchdog,
    provenance: Mutex<Option<Provenance>>,
    /// Newest crash-consistent checkpoint path, refreshed by the engine on
    /// every publish so a postmortem names where to resume from.
    resumable_from: Mutex<Option<String>>,
    snapshots: Mutex<RetentionRing<HealthSnapshot>>,
    /// Distinguishes multiple dumps from one process (monotonic suffix).
    seq: AtomicU64,
    last_dump: Mutex<Option<String>>,
}

/// The always-on black box. Cheap to clone (an `Arc` — or nothing at all
/// when disabled). Engines thread one through a run via `run_flight`;
/// every method on a disabled recorder is a no-op.
#[derive(Clone, Default)]
pub struct FlightRecorder {
    inner: Option<Arc<RecorderInner>>,
}

impl FlightRecorder {
    /// A recorder that records nothing and never dumps.
    pub fn disabled() -> Self {
        FlightRecorder::default()
    }

    /// An active recorder with `cfg`.
    pub fn new(cfg: FlightConfig) -> Self {
        let watchdog = Watchdog::new(cfg.policy.clone());
        FlightRecorder {
            inner: Some(Arc::new(RecorderInner {
                snapshots: Mutex::new(RetentionRing::new(cfg.snapshot_capacity)),
                cfg,
                watchdog,
                provenance: Mutex::new(None),
                resumable_from: Mutex::new(None),
                seq: AtomicU64::new(0),
                last_dump: Mutex::new(None),
            })),
        }
    }

    /// Whether the black box is recording.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The embedded training-health watchdog (disabled when the recorder
    /// is).
    pub fn watchdog(&self) -> Watchdog {
        self.inner
            .as_deref()
            .map(|i| i.watchdog.clone())
            .unwrap_or_default()
    }

    /// A bounded drop-oldest [`TraceSink`] in `domain` — the retention
    /// window of recent events. Engines use this when the caller did not
    /// supply an enabled sink of their own, so a postmortem always has a
    /// trace to embed. Returns a disabled sink on a disabled recorder.
    pub fn make_sink(&self, domain: TimeDomain) -> TraceSink {
        let Some(inner) = &self.inner else {
            return TraceSink::disabled();
        };
        match domain {
            TimeDomain::Wall => TraceSink::wall(inner.cfg.retention_events),
            TimeDomain::Virtual => TraceSink::virtual_time(inner.cfg.retention_events),
        }
    }

    /// Record the run's provenance (engines call this once at startup).
    pub fn set_provenance(&self, p: Provenance) {
        if let Some(inner) = &self.inner {
            *inner.provenance.lock() = Some(p);
        }
    }

    /// Record the newest checkpoint a dead run can be resumed from
    /// (engines call this after every successful checkpoint publish).
    pub fn set_resumable_from(&self, path: String) {
        if let Some(inner) = &self.inner {
            *inner.resumable_from.lock() = Some(path);
        }
    }

    /// Retain one periodic controller-state snapshot (drop-oldest).
    pub fn record_snapshot(&self, s: HealthSnapshot) {
        if let Some(inner) = &self.inner {
            inner.snapshots.lock().push(s);
        }
    }

    /// Retained snapshots, oldest → newest.
    pub fn snapshots(&self) -> Vec<HealthSnapshot> {
        self.inner
            .as_deref()
            .map(|i| i.snapshots.lock().to_vec())
            .unwrap_or_default()
    }

    /// Path of the most recent bundle this recorder dumped, if any.
    pub fn last_dump(&self) -> Option<String> {
        self.inner
            .as_deref()
            .and_then(|i| i.last_dump.lock().clone())
    }

    /// Dump a self-contained postmortem bundle for `reason`, embedding the
    /// drained `trace` and the metric summaries from `hub`. Returns the
    /// bundle path, or `None` when disabled or when the write failed (a
    /// postmortem must never turn a fault into a crash — failures are
    /// reported on stderr instead).
    pub fn dump(&self, reason: &str, trace: Trace, hub: &MetricsHub) -> Option<String> {
        let inner = self.inner.as_deref()?;
        let metrics: Vec<MetricRow> = Metric::ALL
            .iter()
            .filter_map(|m| {
                hub.summary(*m).map(|summary| MetricRow {
                    metric: m.name().to_string(),
                    summary,
                })
            })
            .collect();
        let bundle = PostmortemBundle {
            schema: SCHEMA.to_string(),
            reason: reason.to_string(),
            resumable_from: inner.resumable_from.lock().clone(),
            provenance: inner.provenance.lock().clone(),
            health: inner.watchdog.summary(),
            snapshots: inner.snapshots.lock().to_vec(),
            counters: trace.counters.clone(),
            metrics,
            trace,
        };
        // Relaxed: the counter only needs uniqueness per process, not
        // ordering with the bundle contents (those travel by value above).
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        let name = format!("postmortem-{}-{}.json", std::process::id(), seq);
        let path = inner.cfg.dir.join(name);
        let write = || -> std::io::Result<()> {
            std::fs::create_dir_all(&inner.cfg.dir)?;
            let json = serde_json::to_string_pretty(&bundle)
                .map_err(|e| std::io::Error::other(format!("{e:?}")))?;
            std::fs::write(&path, json)
        };
        match write() {
            Ok(()) => {
                let shown = path.display().to_string();
                *inner.last_dump.lock() = Some(shown.clone());
                Some(shown)
            }
            Err(e) => {
                eprintln!(
                    "hetero-flight: failed to write postmortem {}: {e}",
                    path.display()
                );
                None
            }
        }
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("enabled", &self.enabled())
            .field("last_dump", &self.last_dump())
            .finish()
    }
}

/// Resolve the current git commit by reading `.git/HEAD` (following one
/// level of `ref:` indirection, including packed refs). Filesystem-only —
/// no `git` subprocess — and `None` outside a repository.
pub fn read_git_sha() -> Option<String> {
    let head = std::fs::read_to_string(".git/HEAD").ok()?;
    let head = head.trim();
    if let Some(r) = head.strip_prefix("ref: ") {
        if let Ok(sha) = std::fs::read_to_string(format!(".git/{r}")) {
            return Some(sha.trim().to_string());
        }
        let packed = std::fs::read_to_string(".git/packed-refs").ok()?;
        packed.lines().find_map(|line| {
            let (sha, name) = line.split_once(' ')?;
            (name == r).then(|| sha.to_string())
        })
    } else {
        Some(head.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_trace::EventKind;

    #[test]
    fn disabled_recorder_is_inert() {
        let r = FlightRecorder::disabled();
        assert!(!r.enabled());
        assert!(!r.watchdog().enabled());
        assert!(!r.make_sink(TimeDomain::Wall).enabled());
        r.record_snapshot(HealthSnapshot::default());
        assert!(r.snapshots().is_empty());
        let trace = TraceSink::disabled().drain();
        assert_eq!(r.dump("x", trace, &MetricsHub::disabled()), None);
    }

    #[test]
    fn snapshots_retain_newest() {
        let cfg = FlightConfig {
            snapshot_capacity: 2,
            ..FlightConfig::default()
        };
        let r = FlightRecorder::new(cfg);
        for i in 0..5 {
            r.record_snapshot(HealthSnapshot {
                t: i as f64,
                ..HealthSnapshot::default()
            });
        }
        let kept = r.snapshots();
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].t, 3.0);
        assert_eq!(kept[1].t, 4.0);
    }

    #[test]
    fn dump_writes_a_parseable_bundle() {
        let dir = std::env::temp_dir().join(format!("hetero-flight-test-{}", std::process::id()));
        let cfg = FlightConfig {
            dir: dir.clone(),
            ..FlightConfig::default()
        };
        let r = FlightRecorder::new(cfg);
        r.set_provenance(Provenance {
            engine: "test".into(),
            algorithm: "unit".into(),
            ..Provenance::default()
        });
        let sink = r.make_sink(TimeDomain::Wall);
        sink.emit(0, EventKind::EvalPoint { loss: 0.5 });
        sink.counter("test.count").add(3);
        let path = r
            .dump("unit test", sink.drain(), &MetricsHub::disabled())
            .expect("dump path");
        assert_eq!(r.last_dump().as_deref(), Some(path.as_str()));
        let text = std::fs::read_to_string(&path).unwrap();
        let bundle: PostmortemBundle = serde_json::from_str(&text).unwrap();
        assert_eq!(bundle.schema, SCHEMA);
        assert_eq!(bundle.reason, "unit test");
        assert_eq!(bundle.provenance.as_ref().unwrap().engine, "test");
        assert_eq!(bundle.trace.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn git_sha_resolves_inside_this_repo() {
        // The workspace tests run from a git checkout; outside one this
        // returns None, which is also a valid outcome for the helper.
        if std::path::Path::new(".git").exists() {
            let sha = read_git_sha();
            assert!(sha.is_none_or(|s| s.len() >= 7));
        }
    }
}
