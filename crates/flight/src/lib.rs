//! # hetero-flight
//!
//! The third observability leg of the workspace, after structured tracing
//! (`hetero-trace`) and live metrics (`hetero-metrics`): **forensics and
//! automated judgment** for asynchronous CPU+GPU training runs.
//!
//! - [`FlightRecorder`] — an always-on black box. It keeps a bounded
//!   retention window of recent trace events (by handing the engine a
//!   bounded [`hetero_trace::TraceSink`] when the caller did not supply
//!   one), a drop-oldest ring of periodic [`HealthSnapshot`]s (loss, batch
//!   sizes, β̂, staleness quantiles, gradient norms), and run
//!   [`Provenance`] (serialized config, git sha, SIMD level). On any fault
//!   path — worker retirement, abort, or watchdog trip — the engine dumps
//!   a self-contained [`PostmortemBundle`] JSON that the
//!   `hetero-postmortem` binary renders as a human-readable report and a
//!   Perfetto-loadable Chrome trace.
//! - [`Watchdog`] — the training-health monitor the engines feed from
//!   their hot paths: per-layer gradient/update norms and NaN/±Inf counts
//!   (computed by SIMD scans or fused into the shared-model merge loop),
//!   plus loss divergence and stall detectors evaluated at every eval
//!   point. A configurable [`HealthPolicy`] maps each condition to Warn →
//!   clamp-the-adaptive-controller → abort-with-postmortem.
//!
//! Both follow the workspace's disabled-by-default observability pattern:
//! a disabled recorder/watchdog is an `Option::None` wrapper whose every
//! method is a no-op, so un-instrumented runs pay nothing and behave
//! bit-identically.

#![warn(missing_docs)]

pub mod bundle;
pub mod policy;
pub mod recorder;
pub mod ring;
pub mod watchdog;

pub use bundle::{render_report, MetricRow, PostmortemBundle, SCHEMA};
pub use policy::{HealthAction, HealthPolicy, HealthSummary, NonfiniteRecord};
pub use recorder::{read_git_sha, FlightConfig, FlightRecorder, HealthSnapshot, Provenance};
pub use ring::RetentionRing;
pub use watchdog::{Watchdog, WatchdogState};
