//! Health policy: what the watchdog watches for and how it reacts.

use serde::{Deserialize, Serialize};

/// Reaction to a detected health condition, in escalation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthAction {
    /// Record the condition but take no action.
    Ignore,
    /// Count a warning (surfaced via trace events and the dashboard).
    Warn,
    /// Clamp the `AdaptiveController`'s batch growth at its current sizes
    /// (stops the controller from feeding a sick run bigger batches).
    Clamp,
    /// Abort the run and dump a postmortem bundle.
    Abort,
}

/// Configurable mapping from health conditions to [`HealthAction`]s, plus
/// the detector thresholds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthPolicy {
    /// Reaction to a NaN/±Inf element in an applied gradient or merged
    /// delta. Default [`HealthAction::Abort`]: a poisoned shared model
    /// cannot recover.
    pub on_nonfinite: HealthAction,
    /// Reaction to loss divergence (eval loss exceeding
    /// `divergence_factor ×` the initial loss, or going non-finite).
    /// Default [`HealthAction::Warn`].
    pub on_divergence: HealthAction,
    /// Reaction to a stall (no new best loss for `stall_evals` consecutive
    /// eval points). Default [`HealthAction::Clamp`].
    pub on_stall: HealthAction,
    /// Divergence threshold as a multiple of the initial eval loss.
    pub divergence_factor: f64,
    /// Consecutive evals without a new best loss that count as a stall.
    pub stall_evals: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            on_nonfinite: HealthAction::Abort,
            on_divergence: HealthAction::Warn,
            on_stall: HealthAction::Clamp,
            divergence_factor: 4.0,
            stall_evals: 6,
        }
    }
}

/// Where the first non-finite element was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NonfiniteRecord {
    /// Worker slot that produced the poisoned gradient/delta.
    pub worker: u32,
    /// Model layer index containing the non-finite element.
    pub layer: usize,
    /// The worker's 0-based batch counter when it was observed.
    pub step: u64,
}

/// Serializable end-of-run health record carried on `TrainResult`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HealthSummary {
    /// Total NaN/±Inf elements observed across all scans.
    pub nonfinite_events: u64,
    /// Largest per-layer gradient/update L2 norm seen during the run.
    pub peak_grad_norm: f64,
    /// Layer index the peak norm belongs to (`None` if nothing was scanned).
    pub peak_grad_layer: Option<usize>,
    /// Peak L2 norm per layer, indexed by layer.
    pub layer_peak_norms: Vec<f64>,
    /// Whether the loss diverged past the policy threshold.
    pub diverged: bool,
    /// Whether the loss stalled past the policy threshold.
    pub stalled: bool,
    /// Warnings the policy recorded.
    pub warnings: u64,
    /// Controller clamps the policy triggered.
    pub clamps: u64,
    /// First non-finite observation, naming worker/layer/step.
    pub first_nonfinite: Option<NonfiniteRecord>,
    /// Why the watchdog aborted the run, if it did.
    pub tripped: Option<String>,
    /// Path of the postmortem bundle dumped for this run, if any.
    pub postmortem: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_escalates_sensibly() {
        let p = HealthPolicy::default();
        assert_eq!(p.on_nonfinite, HealthAction::Abort);
        assert_eq!(p.on_divergence, HealthAction::Warn);
        assert_eq!(p.on_stall, HealthAction::Clamp);
        assert!(p.divergence_factor > 1.0);
        assert!(p.stall_evals > 0);
    }

    #[test]
    fn summary_roundtrips_through_json() {
        let s = HealthSummary {
            nonfinite_events: 3,
            peak_grad_norm: 1.5,
            peak_grad_layer: Some(2),
            layer_peak_norms: vec![0.1, 0.2, 1.5],
            diverged: true,
            stalled: false,
            warnings: 1,
            clamps: 0,
            first_nonfinite: Some(NonfiniteRecord {
                worker: 4,
                layer: 2,
                step: 7,
            }),
            tripped: Some("non-finite gradient".into()),
            postmortem: Some("results/postmortem/x.json".into()),
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: HealthSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
