//! The postmortem bundle: one self-contained JSON document holding
//! everything needed to diagnose a dead run, plus the human-readable
//! report renderer behind the `hetero-postmortem` binary.

use hetero_metrics::Summary;
use hetero_trace::Trace;
use serde::{Deserialize, Serialize};

use crate::policy::HealthSummary;
use crate::recorder::{HealthSnapshot, Provenance};

/// Bundle schema identifier; bump on incompatible layout changes.
pub const SCHEMA: &str = "hetero-postmortem/v1";

/// Merged histogram summary for one metric at dump time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricRow {
    /// Stable metric name (see `hetero_metrics::Metric::name`).
    pub metric: String,
    /// Merged summary across all workers.
    pub summary: Summary,
}

/// A self-contained postmortem: provenance, health record, retained
/// snapshots, counters, metric summaries, and the full retained trace
/// (re-exportable as a Perfetto-loadable Chrome trace).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PostmortemBundle {
    /// Schema identifier ([`SCHEMA`]).
    pub schema: String,
    /// Why the bundle was dumped.
    pub reason: String,
    /// Newest crash-consistent checkpoint the dead run can be resumed
    /// from, when the engine ran with checkpointing on.
    pub resumable_from: Option<String>,
    /// Run provenance, when the engine recorded it.
    pub provenance: Option<Provenance>,
    /// The watchdog's accumulated health record.
    pub health: HealthSummary,
    /// Retained periodic snapshots, oldest → newest.
    pub snapshots: Vec<HealthSnapshot>,
    /// Trace counters and gauges at dump time (flattened to f64).
    pub counters: Vec<(String, f64)>,
    /// Merged histogram summaries from the metrics hub.
    pub metrics: Vec<MetricRow>,
    /// The retained event window (serde-roundtrips, so
    /// `hetero_trace::export::write_chrome` can re-export it).
    pub trace: Trace,
}

impl PostmortemBundle {
    /// Parse a bundle from JSON, checking the schema tag.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let bundle: PostmortemBundle =
            serde_json::from_str(text).map_err(|e| format!("bundle parse error: {e:?}"))?;
        if bundle.schema != SCHEMA {
            return Err(format!(
                "unsupported bundle schema {:?} (expected {SCHEMA:?})",
                bundle.schema
            ));
        }
        Ok(bundle)
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.4}")).unwrap_or_else(|| "-".into())
}

/// Render a bundle as the human-readable report `hetero-postmortem`
/// prints.
pub fn render_report(b: &PostmortemBundle) -> String {
    let mut out = String::new();
    let mut line = |s: String| {
        out.push_str(&s);
        out.push('\n');
    };
    line(format!("postmortem bundle ({})", b.schema));
    line(format!("reason: {}", b.reason));
    if let Some(p) = &b.resumable_from {
        line(format!("resumable from: {p}"));
    }
    line(String::new());
    if let Some(p) = &b.provenance {
        line("provenance:".into());
        line(format!("  engine:     {}", p.engine));
        line(format!("  algorithm:  {}", p.algorithm));
        line(format!("  dataset:    {}", p.dataset));
        line(format!("  workers:    {}", p.workers));
        line(format!("  simd:       {}", p.simd_level));
        line(format!(
            "  git sha:    {}",
            p.git_sha.as_deref().unwrap_or("-")
        ));
        line(String::new());
    }
    let h = &b.health;
    line("health:".into());
    line(format!("  non-finite events: {}", h.nonfinite_events));
    if let Some(f) = &h.first_nonfinite {
        line(format!(
            "  first non-finite:  worker {}, layer {}, step {}",
            f.worker, f.layer, f.step
        ));
    }
    line(format!(
        "  peak grad norm:    {:.6}{}",
        h.peak_grad_norm,
        h.peak_grad_layer
            .map(|l| format!(" (layer {l})"))
            .unwrap_or_default()
    ));
    line(format!(
        "  diverged: {}  stalled: {}  warnings: {}  clamps: {}",
        h.diverged, h.stalled, h.warnings, h.clamps
    ));
    if let Some(t) = &h.tripped {
        line(format!("  tripped:  {t}"));
    }
    line(String::new());
    if !b.snapshots.is_empty() {
        line(format!("snapshots ({} retained):", b.snapshots.len()));
        line("  t          loss       epochs    beta    stale-p50  stale-p99  batches".into());
        for s in &b.snapshots {
            line(format!(
                "  {:<10.4} {:<10.4} {:<9.3} {:<7} {:<10} {:<10} {:?}",
                s.t,
                s.loss,
                s.epochs,
                fmt_opt(s.beta),
                fmt_opt(s.staleness_p50),
                fmt_opt(s.staleness_p99),
                s.batches
            ));
        }
        line(String::new());
    }
    if !b.metrics.is_empty() {
        line("metrics (merged across workers):".into());
        for m in &b.metrics {
            line(format!(
                "  {:<16} count {:<8} mean {:<12.4} p50 {:<12.4} p99 {:<12.4} max {:.4}",
                m.metric,
                m.summary.count,
                m.summary.mean,
                m.summary.p50,
                m.summary.p99,
                m.summary.max
            ));
        }
        line(String::new());
    }
    if !b.counters.is_empty() {
        line("counters:".into());
        for (k, v) in &b.counters {
            line(format!("  {k:<40} {v}"));
        }
        line(String::new());
    }
    line(format!(
        "trace: {} events in {} shard(s), {} dropped ({} time)",
        b.trace.len(),
        b.trace.shards.len(),
        b.trace.total_dropped(),
        b.trace.domain.label()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::NonfiniteRecord;
    use hetero_trace::{EventKind, TraceSink};

    fn sample() -> PostmortemBundle {
        let sink = TraceSink::wall(16);
        sink.emit(0, EventKind::EvalPoint { loss: 0.4 });
        PostmortemBundle {
            schema: SCHEMA.to_string(),
            reason: "worker retirement".into(),
            resumable_from: Some("results/ckpt/gen-0000000042.ckpt".into()),
            provenance: Some(Provenance {
                engine: "threaded".into(),
                algorithm: "CPU+GPU Hogbatch".into(),
                dataset: "synthetic".into(),
                workers: 2,
                config_json: "{}".into(),
                git_sha: Some("abc1234".into()),
                simd_level: "Avx2".into(),
            }),
            health: HealthSummary {
                nonfinite_events: 1,
                peak_grad_norm: 2.5,
                peak_grad_layer: Some(0),
                layer_peak_norms: vec![2.5, 0.3],
                first_nonfinite: Some(NonfiniteRecord {
                    worker: 1,
                    layer: 0,
                    step: 3,
                }),
                tripped: Some("non-finite gradient".into()),
                ..HealthSummary::default()
            },
            snapshots: vec![HealthSnapshot {
                t: 0.5,
                loss: 0.7,
                epochs: 1.5,
                batches: vec![16, 64],
                beta: Some(0.9),
                staleness_p50: Some(2.0),
                staleness_p99: Some(9.0),
                grad_peak_norm: 2.5,
            }],
            counters: vec![("engine.requeues".into(), 1.0)],
            metrics: vec![],
            trace: sink.drain(),
        }
    }

    #[test]
    fn bundle_roundtrips_and_renders() {
        let b = sample();
        let json = serde_json::to_string_pretty(&b).unwrap();
        let back = PostmortemBundle::from_json(&json).unwrap();
        assert_eq!(back.reason, b.reason);
        assert_eq!(back.provenance, b.provenance);
        assert_eq!(back.health, b.health);
        assert_eq!(back.snapshots, b.snapshots);
        assert_eq!(back.counters, b.counters);
        assert_eq!(back.trace.len(), b.trace.len());
        assert_eq!(back.trace.events_sorted(), b.trace.events_sorted());
        let report = render_report(&back);
        assert!(report.contains("worker retirement"));
        assert!(report.contains("resumable from: results/ckpt/gen-0000000042.ckpt"));
        assert!(report.contains("worker 1, layer 0, step 3"));
        assert!(report.contains("CPU+GPU Hogbatch"));
        assert!(report.contains("1 events"));
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let mut b = sample();
        b.schema = "hetero-postmortem/v999".into();
        let json = serde_json::to_string(&b).unwrap();
        let err = PostmortemBundle::from_json(&json).unwrap_err();
        assert!(err.contains("unsupported"), "{err}");
    }

    #[test]
    fn embedded_trace_exports_to_chrome_json() {
        let b = sample();
        let chrome = hetero_trace::export::to_chrome_json(&b.trace);
        assert!(chrome.contains("traceEvents"));
    }
}
