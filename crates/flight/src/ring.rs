//! Bounded drop-oldest retention ring for periodic snapshots.

/// A fixed-capacity ring that keeps the **newest** `capacity` items:
/// pushing onto a full ring evicts the oldest entry. Allocation happens
/// once at construction; `push` never reallocates.
#[derive(Debug, Clone)]
pub struct RetentionRing<T> {
    buf: Vec<Option<T>>,
    head: usize,
    len: usize,
}

impl<T> RetentionRing<T> {
    /// A ring retaining at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        RetentionRing {
            buf: (0..cap).map(|_| None).collect(),
            head: 0,
            len: 0,
        }
    }

    /// Maximum retained items.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Items currently retained.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append `item`, evicting the oldest entry if full.
    pub fn push(&mut self, item: T) {
        let cap = self.buf.len();
        if self.len < cap {
            let idx = (self.head + self.len) % cap;
            self.buf[idx] = Some(item);
            self.len += 1;
        } else {
            self.buf[self.head] = Some(item);
            self.head = (self.head + 1) % cap;
        }
    }

    /// Iterate retained items oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let cap = self.buf.len();
        (0..self.len).map(move |i| {
            self.buf[(self.head + i) % cap]
                .as_ref()
                .expect("retained slot is occupied")
        })
    }
}

impl<T: Clone> RetentionRing<T> {
    /// Retained items oldest → newest as a `Vec`.
    pub fn to_vec(&self) -> Vec<T> {
        self.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn under_capacity_keeps_everything_in_order() {
        let mut r = RetentionRing::new(4);
        r.push(1);
        r.push(2);
        assert_eq!(r.to_vec(), vec![1, 2]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn overflow_drops_only_the_oldest() {
        let mut r = RetentionRing::new(3);
        for i in 0..10 {
            r.push(i);
        }
        assert_eq!(r.to_vec(), vec![7, 8, 9]);
        assert_eq!(r.capacity(), 3);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut r = RetentionRing::new(0);
        r.push(5);
        r.push(6);
        assert_eq!(r.to_vec(), vec![6]);
    }

    proptest! {
        // The flight-recorder invariant: whatever the push sequence, the
        // ring retains exactly the newest min(len, capacity) items, in
        // order — it never drops the newest events.
        #[test]
        fn retention_never_drops_newest(cap in 1usize..32, items in prop::collection::vec(0u32..1000, 0..100)) {
            let mut r = RetentionRing::new(cap);
            for &v in &items {
                r.push(v);
            }
            let keep = items.len().min(cap);
            let expected: Vec<u32> = items[items.len() - keep..].to_vec();
            prop_assert_eq!(r.to_vec(), expected);
            prop_assert!(r.len() <= r.capacity());
        }
    }
}
