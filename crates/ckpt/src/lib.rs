//! # hetero-ckpt
//!
//! Crash-consistent checkpointing for long training runs: recovery, not
//! just survival. The supervision layer (worker retirement, the health
//! watchdog, postmortem bundles) keeps a run alive and explains its death;
//! this crate makes death cheap, by bounding the work lost to a crash to
//! one checkpoint interval.
//!
//! Three guarantees, in order of importance:
//!
//! 1. **A checkpoint on disk is never torn.** Every write goes to a
//!    temporary file in the same directory, is flushed with `fsync`, and
//!    only then renamed over the final name — the POSIX atomic-publish
//!    idiom. A crash mid-write leaves a stray temp file (ignored and
//!    cleaned on the next write), never a half-written checkpoint under
//!    the real name.
//! 2. **A damaged checkpoint is detected, not trusted.** Each file ends in
//!    a fixed-size footer carrying the payload length, a CRC32 (IEEE) of
//!    the payload, and a magic tag. Truncation, bit rot, or a torn rename
//!    on a non-atomic filesystem all fail verification, and the loader
//!    falls back to the previous generation.
//! 3. **The previous generation survives until the next one is safe.**
//!    Checkpoints form a generation chain `gen-NNNNNNNNNN.ckpt`; pruning
//!    runs only *after* a successful atomic publish and always keeps at
//!    least one older generation, so there is no instant at which the only
//!    checkpoint on disk is unverified.
//!
//! The store is payload-agnostic (any `serde`-serializable state); the
//! engine-specific snapshot types live with the engines in `hetero-core`.
//! [`Checkpointer`] wraps a store with a cadence and follows the
//! workspace's disabled-by-default observability pattern: a disabled
//! checkpointer is an `Option::None` whose every method is a no-op, so
//! un-checkpointed runs behave bit-identically.

#![warn(missing_docs)]

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Footer magic: `HCKP` little-endian. A file that does not end in these
/// four bytes is not a finished checkpoint, whatever its name says.
const MAGIC: u32 = u32::from_le_bytes(*b"HCKP");
/// Footer layout: payload length (u64 LE) + payload CRC32 (u32 LE) + magic
/// (u32 LE).
const FOOTER_LEN: usize = 8 + 4 + 4;

// --- CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) -----------------
// Hand-rolled because the workspace vendors every dependency; the standard
// table-driven byte-at-a-time form is plenty for checkpoint-sized payloads.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `bytes` — the checksum Ethernet, gzip, and PNG use.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// --- Errors ---------------------------------------------------------------

/// Why a checkpoint operation failed.
#[derive(Debug)]
pub enum CkptError {
    /// The filesystem said no.
    Io(std::io::Error),
    /// The file exists but fails verification (truncated, bit-rotted, or
    /// not a checkpoint at all). The string says which check failed.
    Corrupt(String),
    /// The payload verified but did not decode as the requested state
    /// type (e.g. a checkpoint written by an incompatible version).
    Decode(String),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint io: {e}"),
            CkptError::Corrupt(why) => write!(f, "checkpoint corrupt: {why}"),
            CkptError::Decode(why) => write!(f, "checkpoint decode: {why}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

// --- Store ----------------------------------------------------------------

/// What a successful checkpoint write reports back to the engine (for the
/// `ckpt.*` gauges and the write-latency histogram).
#[derive(Debug, Clone)]
pub struct SaveReport {
    /// Generation number of the file just published.
    pub generation: u64,
    /// Final path of the published checkpoint.
    pub path: PathBuf,
    /// Payload + footer size in bytes.
    pub bytes: u64,
    /// Wall seconds spent serializing is the caller's business; this is
    /// the wall time of write + fsync + rename + prune.
    pub write_secs: f64,
}

/// A directory of checkpoint generations with atomic publish and verified
/// load. Payload-agnostic: callers hand it serialized bytes (or a serde
/// value via [`CkptStore::save`]) and get them back verified.
#[derive(Debug)]
pub struct CkptStore {
    dir: PathBuf,
    retain: usize,
}

impl CkptStore {
    /// Open (creating if needed) a checkpoint directory keeping `retain`
    /// generations. `retain` is clamped to at least 2 so the previous
    /// generation always survives a torn write of the newest.
    pub fn open(dir: impl Into<PathBuf>, retain: usize) -> Result<Self, CkptError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CkptStore {
            dir,
            retain: retain.max(2),
        })
    }

    /// The directory this store publishes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// All generations currently on disk, ascending. Files that merely
    /// *look* like checkpoints (right name shape) are listed without being
    /// verified — verification happens at load.
    pub fn generations(&self) -> Vec<(u64, PathBuf)> {
        let mut gens = Vec::new();
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return gens;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(num) = name
                .strip_prefix("gen-")
                .and_then(|rest| rest.strip_suffix(".ckpt"))
            {
                if let Ok(g) = num.parse::<u64>() {
                    gens.push((g, entry.path()));
                }
            }
        }
        gens.sort_by_key(|(g, _)| *g);
        gens
    }

    /// Serialize `state` as JSON and publish it as generation `gen`.
    pub fn save<T: serde::Serialize>(&self, gen: u64, state: &T) -> Result<SaveReport, CkptError> {
        let payload = serde_json::to_string(state)
            .map_err(|e| CkptError::Decode(format!("serialize: {e}")))?;
        self.save_bytes(gen, payload.as_bytes())
    }

    /// Publish raw `payload` bytes as generation `gen`: write payload +
    /// footer to a temp file, fsync, atomically rename, fsync the
    /// directory, then prune generations beyond the retention window.
    pub fn save_bytes(&self, gen: u64, payload: &[u8]) -> Result<SaveReport, CkptError> {
        let start = Instant::now();
        let final_path = self.dir.join(format!("gen-{gen:010}.ckpt"));
        let tmp_path = self.dir.join(format!(".tmp-gen-{gen:010}.ckpt"));
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp_path)?;
            f.write_all(payload)?;
            let mut footer = [0u8; FOOTER_LEN];
            footer[..8].copy_from_slice(&(payload.len() as u64).to_le_bytes());
            footer[8..12].copy_from_slice(&crc32(payload).to_le_bytes());
            footer[12..].copy_from_slice(&MAGIC.to_le_bytes());
            f.write_all(&footer)?;
            // The data must be durable *before* the rename publishes the
            // name: rename-before-fsync can surface an empty file under
            // the final name after a power cut.
            f.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        // Make the rename itself durable (the directory entry is metadata
        // of the directory, not the file).
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.prune(gen);
        Ok(SaveReport {
            generation: gen,
            path: final_path,
            bytes: (payload.len() + FOOTER_LEN) as u64,
            write_secs: start.elapsed().as_secs_f64(),
        })
    }

    /// Drop generations older than the retention window (and any stale
    /// temp files from crashed writes). Only generations strictly older
    /// than `newest` are candidates, so a concurrent writer's fresher file
    /// is never touched.
    fn prune(&self, newest: u64) {
        let gens = self.generations();
        let keep_from = gens.len().saturating_sub(self.retain);
        for (g, path) in &gens[..keep_from] {
            if *g < newest {
                let _ = fs::remove_file(path);
            }
        }
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                if let Some(name) = name.to_str() {
                    if name.starts_with(".tmp-gen-")
                        && !name.ends_with(&format!("{newest:010}.ckpt"))
                    {
                        let _ = fs::remove_file(entry.path());
                    }
                }
            }
        }
    }

    /// Read and verify the checkpoint at `path`, returning the payload.
    pub fn read_verified(path: &Path) -> Result<Vec<u8>, CkptError> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        if bytes.len() < FOOTER_LEN {
            return Err(CkptError::Corrupt(format!(
                "{} bytes is shorter than the footer",
                bytes.len()
            )));
        }
        let (payload_plus, footer) = bytes.split_at(bytes.len() - FOOTER_LEN);
        let magic = u32::from_le_bytes(footer[12..16].try_into().expect("footer slice"));
        if magic != MAGIC {
            return Err(CkptError::Corrupt("footer magic mismatch".into()));
        }
        let len = u64::from_le_bytes(footer[..8].try_into().expect("footer slice")) as usize;
        if len != payload_plus.len() {
            return Err(CkptError::Corrupt(format!(
                "footer claims {len} payload bytes, file has {}",
                payload_plus.len()
            )));
        }
        let want = u32::from_le_bytes(footer[8..12].try_into().expect("footer slice"));
        let got = crc32(payload_plus);
        if want != got {
            return Err(CkptError::Corrupt(format!(
                "crc mismatch: footer {want:#010x}, payload {got:#010x}"
            )));
        }
        bytes.truncate(len);
        Ok(bytes)
    }

    /// Decode the checkpoint at `path` into `T` (after verification).
    pub fn load_path<T: serde::Deserialize>(path: &Path) -> Result<T, CkptError> {
        let payload = Self::read_verified(path)?;
        let text = String::from_utf8(payload)
            .map_err(|_| CkptError::Corrupt("payload is not UTF-8".into()))?;
        serde_json::from_str(&text).map_err(|e| CkptError::Decode(e.to_string()))
    }

    /// Load the newest generation that verifies and decodes, walking the
    /// chain backwards past torn or corrupt files. Returns `None` when no
    /// valid checkpoint exists at all.
    pub fn load_latest<T: serde::Deserialize>(&self) -> Option<(u64, PathBuf, T)> {
        for (g, path) in self.generations().into_iter().rev() {
            if let Ok(state) = Self::load_path::<T>(&path) {
                return Some((g, path, state));
            }
        }
        None
    }
}

// --- Checkpointer ---------------------------------------------------------

/// How a [`Checkpointer`] is set up.
#[derive(Debug, Clone)]
pub struct CkptConfig {
    /// Directory for the generation chain (created if missing).
    pub dir: PathBuf,
    /// Seconds between checkpoints, in whatever clock the engine runs on
    /// (virtual for the simulation/PS engines, wall for the threaded one).
    pub interval: f64,
    /// Generations to keep on disk (clamped to ≥ 2).
    pub retain: usize,
    /// Resume from the newest valid generation in `dir` before training,
    /// instead of starting fresh. A fresh start never deletes existing
    /// generations — it appends after them.
    pub resume: bool,
}

struct CheckpointerInner {
    store: CkptStore,
    interval: f64,
    resume: bool,
    next_gen: u64,
    next_at: f64,
    last_save: Option<SaveReport>,
    /// Engine clock value of the last successful save (for age gauges).
    last_saved_at: Option<f64>,
    write_errors: u64,
}

/// Cadenced checkpoint writer for the engines' `run_ckpt` entry points.
///
/// Disabled-by-default like every observability hook in this workspace: a
/// [`Checkpointer::disabled`] instance answers `false`/`None` everywhere
/// and the engine's checkpoint branches never execute, so the run is
/// bit-identical to one without checkpointing. Internally a mutex-wrapped
/// inner — engines call it from a single coordinator thread, so the lock
/// is never contended.
pub struct Checkpointer {
    inner: Option<Arc<Mutex<CheckpointerInner>>>,
}

impl Checkpointer {
    /// The no-op checkpointer.
    pub fn disabled() -> Self {
        Checkpointer { inner: None }
    }

    /// An active checkpointer over `cfg.dir`. Never clobbers an existing
    /// chain: new generations are numbered after the newest file present.
    pub fn new(cfg: CkptConfig) -> Result<Self, CkptError> {
        let store = CkptStore::open(cfg.dir, cfg.retain)?;
        let next_gen = store.generations().last().map(|(g, _)| g + 1).unwrap_or(0);
        Ok(Checkpointer {
            inner: Some(Arc::new(Mutex::new(CheckpointerInner {
                store,
                interval: cfg.interval.max(f64::MIN_POSITIVE),
                resume: cfg.resume,
                next_gen,
                next_at: cfg.interval,
                last_save: None,
                last_saved_at: None,
                write_errors: 0,
            }))),
        })
    }

    /// Whether checkpointing is active.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether a checkpoint is due at engine time `t`.
    pub fn due(&self, t: f64) -> bool {
        match &self.inner {
            Some(inner) => t >= inner.lock().expect("ckpt lock").next_at,
            None => false,
        }
    }

    /// Publish `state` as the next generation, stamped with engine time
    /// `t`. Advances the cadence whether or not the write succeeds — a
    /// sick disk must not turn every subsequent loop iteration into a
    /// doomed write. Returns `None` when disabled or on write failure
    /// (failures are tallied; see [`Checkpointer::write_errors`]).
    pub fn save<T: serde::Serialize>(&self, t: f64, state: &T) -> Option<SaveReport> {
        let inner = self.inner.as_ref()?;
        let mut inner = inner.lock().expect("ckpt lock");
        // Next checkpoint is one interval after this save, so a long
        // stall doesn't queue a burst of catch-up checkpoints.
        inner.next_at = t + inner.interval;
        let gen = inner.next_gen;
        match inner.store.save(gen, state) {
            Ok(report) => {
                inner.next_gen = gen + 1;
                inner.last_save = Some(report.clone());
                inner.last_saved_at = Some(t);
                Some(report)
            }
            Err(_) => {
                inner.write_errors += 1;
                None
            }
        }
    }

    /// The newest valid checkpoint state, when this checkpointer was
    /// configured to resume. Restores the cadence relative to the
    /// checkpoint's stored engine time via the caller passing it back to
    /// [`Checkpointer::resume_mark`].
    pub fn resume_state<T: serde::Deserialize>(&self) -> Option<T> {
        let inner = self.inner.as_ref()?;
        let inner = inner.lock().expect("ckpt lock");
        if !inner.resume {
            return None;
        }
        inner.store.load_latest::<T>().map(|(_, _, state)| state)
    }

    /// Note that the engine resumed at engine time `t`: the next
    /// checkpoint is due one interval later, not at the fresh-start
    /// cadence origin.
    pub fn resume_mark(&self, t: f64) {
        if let Some(inner) = &self.inner {
            let mut inner = inner.lock().expect("ckpt lock");
            inner.next_at = t + inner.interval;
        }
    }

    /// Path of the newest checkpoint published (or found) by this
    /// checkpointer — what a postmortem report names as "resumable from".
    pub fn latest_path(&self) -> Option<PathBuf> {
        let inner = self.inner.as_ref()?;
        let inner = inner.lock().expect("ckpt lock");
        if let Some(r) = &inner.last_save {
            return Some(r.path.clone());
        }
        inner.store.generations().last().map(|(_, p)| p.clone())
    }

    /// Engine time of the last successful save (for age gauges).
    pub fn last_saved_at(&self) -> Option<f64> {
        self.inner
            .as_ref()?
            .lock()
            .expect("ckpt lock")
            .last_saved_at
    }

    /// How many checkpoint writes have failed since construction.
    pub fn write_errors(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.lock().expect("ckpt lock").write_errors)
            .unwrap_or(0)
    }
}

impl Clone for Checkpointer {
    fn clone(&self) -> Self {
        Checkpointer {
            inner: self.inner.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Toy {
        step: u64,
        loss: f64,
        weights: Vec<f64>,
    }

    fn toy(step: u64) -> Toy {
        Toy {
            step,
            loss: 1.0 / (step + 1) as f64,
            weights: (0..16).map(|i| i as f64 * 0.5 + step as f64).collect(),
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "hetero-ckpt-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn crc32_known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let store = CkptStore::open(&dir, 3).unwrap();
        store.save(0, &toy(0)).unwrap();
        let r = store.save(1, &toy(1)).unwrap();
        assert_eq!(r.generation, 1);
        assert!(r.bytes > FOOTER_LEN as u64);
        let (g, _, back) = store.load_latest::<Toy>().unwrap();
        assert_eq!(g, 1);
        assert_eq!(back, toy(1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_prunes_but_keeps_two() {
        let dir = tmp_dir("retain");
        let store = CkptStore::open(&dir, 1).unwrap(); // clamped to 2
        for g in 0..5 {
            store.save(g, &toy(g)).unwrap();
        }
        let gens: Vec<u64> = store.generations().iter().map(|(g, _)| *g).collect();
        assert_eq!(gens, vec![3, 4]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_file_rejected_and_previous_generation_wins() {
        let dir = tmp_dir("trunc");
        let store = CkptStore::open(&dir, 3).unwrap();
        store.save(0, &toy(0)).unwrap();
        let r1 = store.save(1, &toy(1)).unwrap();
        // Simulate a torn write of the newest generation.
        let bytes = fs::read(&r1.path).unwrap();
        fs::write(&r1.path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            CkptStore::load_path::<Toy>(&r1.path),
            Err(CkptError::Corrupt(_))
        ));
        let (g, _, back) = store.load_latest::<Toy>().unwrap();
        assert_eq!(g, 0);
        assert_eq!(back, toy(0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bitflip_rejected_by_crc() {
        let dir = tmp_dir("bitflip");
        let store = CkptStore::open(&dir, 3).unwrap();
        let r = store.save(0, &toy(7)).unwrap();
        let mut bytes = fs::read(&r.path).unwrap();
        let mid = bytes.len() / 3;
        bytes[mid] ^= 0x40;
        fs::write(&r.path, &bytes).unwrap();
        assert!(matches!(
            CkptStore::load_path::<Toy>(&r.path),
            Err(CkptError::Corrupt(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stray_temp_files_are_ignored_and_cleaned() {
        let dir = tmp_dir("straytmp");
        let store = CkptStore::open(&dir, 3).unwrap();
        // A crash mid-write leaves a temp file behind.
        fs::write(dir.join(".tmp-gen-0000000099.ckpt"), b"half a checkpoint").unwrap();
        assert!(store.load_latest::<Toy>().is_none());
        store.save(0, &toy(0)).unwrap();
        let leftover: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(leftover.is_empty(), "stale temp files not cleaned");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_checkpointer_is_inert() {
        let c = Checkpointer::disabled();
        assert!(!c.enabled());
        assert!(!c.due(1e12));
        assert!(c.save(0.0, &toy(0)).is_none());
        assert!(c.resume_state::<Toy>().is_none());
        assert!(c.latest_path().is_none());
        assert_eq!(c.write_errors(), 0);
    }

    #[test]
    fn cadence_and_resume_flow() {
        let dir = tmp_dir("cadence");
        let c = Checkpointer::new(CkptConfig {
            dir: dir.clone(),
            interval: 1.0,
            retain: 3,
            resume: false,
        })
        .unwrap();
        assert!(!c.due(0.5));
        assert!(c.due(1.0));
        let r = c.save(1.0, &toy(1)).unwrap();
        assert_eq!(r.generation, 0);
        assert!(!c.due(1.5));
        // A stall past several intervals still schedules exactly one next.
        c.save(7.3, &toy(7)).unwrap();
        assert!(!c.due(8.0));
        assert!(c.due(8.3));
        assert_eq!(c.last_saved_at(), Some(7.3));

        // Resume: a fresh checkpointer over the same dir picks up the
        // newest state and continues the generation chain.
        let c2 = Checkpointer::new(CkptConfig {
            dir: dir.clone(),
            interval: 1.0,
            retain: 3,
            resume: true,
        })
        .unwrap();
        let back: Toy = c2.resume_state().unwrap();
        assert_eq!(back, toy(7));
        c2.resume_mark(7.3);
        assert!(!c2.due(8.0));
        let r = c2.save(8.3, &toy(8)).unwrap();
        assert_eq!(r.generation, 2, "chain continues, no clobber");
        let _ = fs::remove_dir_all(&dir);
    }
}
