//! Kill-and-resume integration suite: the crash-consistency properties
//! the checkpoint subsystem promises, driven through the real engines.
//!
//! - the deterministic engines (sim) resume **bit-identically** for any
//!   seed and checkpoint cadence;
//! - a checkpoint torn at *any* byte offset is rejected and the previous
//!   generation wins;
//! - a threaded run killed mid-flight by the fault injector resumes from
//!   its last published generation and still reaches the target loss.

use std::sync::Arc;

use hetero_ckpt::{Checkpointer, CkptConfig, CkptStore};
use hetero_core::{
    AlgorithmKind, FaultPlan, SimEngine, SimEngineConfig, ThreadedEngine, ThreadedEngineConfig,
    TrainConfig,
};
use hetero_data::{DenseDataset, SynthConfig};
use hetero_flight::FlightRecorder;
use hetero_metrics::MetricsHub;
use hetero_nn::MlpSpec;
use hetero_sim::{CpuModel, GpuModel};
use hetero_trace::TraceSink;
use proptest::prelude::*;
use serde::{Deserialize, Serialize};

/// Unique temp dir per test invocation (process id + a caller tag).
fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("hetero-ckpt-it-{}-{tag}", std::process::id()))
}

fn sim_dataset(seed: u64) -> DenseDataset {
    let mut cfg = SynthConfig::small(300, 10, 2, 3);
    cfg.separability = 3.0;
    cfg.seed = seed;
    let mut d = cfg.generate();
    d.standardize();
    d
}

fn sim_config(seed: u64) -> SimEngineConfig {
    let budget = 0.02;
    let train = TrainConfig {
        algorithm: AlgorithmKind::AdaptiveHogbatch,
        lr: 0.05,
        time_budget: budget,
        eval_interval: budget / 8.0,
        eval_subsample: 128,
        rayon_threads: 0,
        seed,
        ..TrainConfig::default()
    };
    // Deliberately sluggish hardware: high per-batch overheads mean a few
    // hundred simulated events per run instead of thousands, which keeps a
    // whole property-test batch within CI time. The *property* (resume is
    // bit-identical) is hardware-independent.
    let mut cpu = CpuModel::xeon_pair();
    cpu.dispatch_overhead = 100e-6;
    let mut gpu = GpuModel::v100();
    gpu.launch_overhead = 500e-6;
    SimEngineConfig {
        spec: MlpSpec::tiny(10, 2),
        train,
        cpu,
        gpus: vec![gpu],
        tf_op_overhead: 20e-6,
        tf_multilabel_penalty: 3.0,
        fault_plan: FaultPlan::none(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// For any seed and any checkpoint cadence, a sim run resumed from its
    /// newest mid-run generation continues the loss curve bit-for-bit.
    #[test]
    fn sim_resume_is_bit_identical_for_any_seed_and_cadence(
        seed in 0u64..1000,
        // Cadences from "several checkpoints per run" to "one near the end".
        interval_frac in 1u32..=8,
    ) {
        let dir = temp_dir(&format!("sim-prop-{seed}-{interval_frac}"));
        let _ = std::fs::remove_dir_all(&dir);
        let data = sim_dataset(seed ^ 0x5eed);
        let cfg = sim_config(seed);
        let interval = cfg.train.time_budget * interval_frac as f64 / 10.0;

        let baseline = SimEngine::new(cfg.clone()).unwrap().run(&data);

        let writer = Checkpointer::new(CkptConfig {
            dir: dir.clone(),
            interval,
            retain: 2,
            resume: false,
        })
        .unwrap();
        let checked = SimEngine::new(cfg.clone()).unwrap().run_ckpt(
            &data,
            &TraceSink::disabled(),
            &MetricsHub::disabled(),
            &FlightRecorder::disabled(),
            &writer,
        );
        // Checkpointing observes; it never perturbs the schedule.
        prop_assert_eq!(&baseline.loss_curve, &checked.loss_curve);
        prop_assert!(writer.latest_path().is_some(), "no checkpoint published");

        let reader = Checkpointer::new(CkptConfig {
            dir: dir.clone(),
            interval,
            retain: 2,
            resume: true,
        })
        .unwrap();
        let resumed = SimEngine::new(cfg).unwrap().run_ckpt(
            &data,
            &TraceSink::disabled(),
            &MetricsHub::disabled(),
            &FlightRecorder::disabled(),
            &reader,
        );
        prop_assert_eq!(&baseline.loss_curve, &resumed.loss_curve);
        prop_assert_eq!(baseline.epochs, resumed.epochs);
        for (a, b) in baseline.workers.iter().zip(&resumed.workers) {
            prop_assert_eq!(a.batches, b.batches);
            prop_assert_eq!(a.examples, b.examples);
            prop_assert_eq!(a.updates, b.updates);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A payload big enough that truncation can land anywhere interesting
/// (inside the JSON, inside the footer, at zero).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Payload {
    run: String,
    values: Vec<f64>,
}

fn payload(tag: u64) -> Payload {
    Payload {
        run: format!("generation-{tag}"),
        values: (0..64).map(|i| tag as f64 + i as f64 * 0.5).collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncating the newest generation at ANY offset (a torn write) makes
    /// it unreadable, and `load_latest` falls back to the previous intact
    /// generation — the crash-consistency contract.
    #[test]
    fn truncation_at_any_offset_rejected_with_fallback(
        seed in any::<u64>(),
        frac in 0.0f64..1.0,
    ) {
        let dir = temp_dir(&format!("trunc-prop-{seed}"));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CkptStore::open(&dir, 4).unwrap();
        store.save(1, &payload(1)).unwrap();
        store.save(2, &payload(2)).unwrap();

        let gens = store.generations();
        prop_assert_eq!(gens.len(), 2);
        let (newest_gen, newest_path) = gens.last().unwrap().clone();
        prop_assert_eq!(newest_gen, 2);

        // Tear the newest file at an arbitrary offset strictly inside it.
        let bytes = std::fs::read(&newest_path).unwrap();
        let cut = ((bytes.len() as f64) * frac) as usize;
        let cut = cut.min(bytes.len().saturating_sub(1));
        std::fs::write(&newest_path, &bytes[..cut]).unwrap();

        // The torn generation is rejected outright…
        prop_assert!(CkptStore::load_path::<Payload>(&newest_path).is_err());
        // …and the chain falls back to the previous intact generation.
        let (g, _, restored) = store.load_latest::<Payload>().expect("fallback generation");
        prop_assert_eq!(g, 1);
        prop_assert_eq!(restored, payload(1));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A threaded run whose workers are all killed mid-flight by the fault
/// injector leaves a valid checkpoint chain behind; resuming from it with
/// healthy workers finishes the budget and reaches the target loss.
#[test]
fn faultplan_killed_threaded_run_resumes_to_target_loss() {
    let dir = temp_dir("thr-kill");
    let _ = std::fs::remove_dir_all(&dir);
    let mut synth = SynthConfig::small(400, 8, 2, 5);
    synth.separability = 3.0;
    let mut d = synth.generate();
    d.standardize();
    let data = Arc::new(d);

    let budget = 2.0;
    let train = TrainConfig {
        algorithm: AlgorithmKind::CpuGpuHogbatch,
        lr: 0.05,
        cpu_batch_per_thread: 1,
        gpu_batch: 64,
        time_budget: budget,
        eval_interval: budget / 8.0,
        eval_subsample: 200,
        rayon_threads: 0,
        seed: 3,
        ..TrainConfig::default()
    };
    let cfg = ThreadedEngineConfig {
        spec: MlpSpec::tiny(8, 2),
        train,
        cpu_threads: 4,
        gpu_perf: GpuModel::v100(),
        gpu_workers: 1,
        fault_plan: FaultPlan::none(),
    };

    // Incarnation 1: both worker slots (CPU=0, GPU=1) are killed mid-run.
    // The GPU dies almost immediately; the CPU lives long enough that the
    // 1ms checkpoint cadence publishes several generations first, but dies
    // far short of the 2s budget — so the run aborts with work left to do.
    let mut killed_cfg = cfg.clone();
    killed_cfg.fault_plan = FaultPlan::none().die_after(0, 150).die_after(1, 3);
    let writer = Checkpointer::new(CkptConfig {
        dir: dir.clone(),
        interval: 0.001,
        retain: 3,
        resume: false,
    })
    .unwrap();
    let killed = ThreadedEngine::new(killed_cfg).unwrap().run_ckpt(
        Arc::clone(&data),
        &TraceSink::disabled(),
        &MetricsHub::disabled(),
        &FlightRecorder::disabled(),
        &writer,
    );
    assert_eq!(
        killed.aborted.as_deref(),
        Some("all workers retired by faults"),
        "fault plan did not kill the run: {:?}",
        killed
            .workers
            .iter()
            .map(|w| (w.kind, w.batches, w.retired.clone()))
            .collect::<Vec<_>>()
    );
    assert!(
        writer.latest_path().is_some(),
        "no checkpoint survived the kill"
    );

    // Incarnation 2: healthy workers resume from the chain and finish.
    let reader = Checkpointer::new(CkptConfig {
        dir: dir.clone(),
        interval: 0.001,
        retain: 3,
        resume: true,
    })
    .unwrap();
    let resumed = ThreadedEngine::new(cfg).unwrap().run_ckpt(
        Arc::clone(&data),
        &TraceSink::disabled(),
        &MetricsHub::disabled(),
        &FlightRecorder::disabled(),
        &reader,
    );
    assert!(resumed.aborted.is_none(), "{:?}", resumed.aborted);
    // The resumed curve keeps the killed run's prefix and extends it.
    let n_prefix = resumed
        .loss_curve
        .iter()
        .zip(&killed.loss_curve)
        .take_while(|(a, b)| a.time == b.time && a.loss == b.loss)
        .count();
    assert!(n_prefix >= 1, "resumed curve lost the killed run's prefix");
    assert!(
        resumed.loss_curve.len() > n_prefix,
        "resume added no eval points"
    );
    // Target loss: the resumed run must actually train — a clear drop from
    // the initial loss, not just survive.
    let initial = resumed.initial_loss();
    let target = initial * 0.8;
    assert!(
        resumed.min_loss() < target,
        "resumed run missed target loss: {} !< {target} (initial {initial})",
        resumed.min_loss(),
    );
    let _ = std::fs::remove_dir_all(&dir);
}
