//! # hetero-mq
//!
//! The custom asynchronous message queues used by the heterogeneous CPU+GPU
//! training framework.
//!
//! The paper implements its coordinator↔worker communication with "our
//! custom asynchronous message queue" on top of pthreads. This crate is that
//! substrate, built from scratch in two layers:
//!
//! - [`queue::MpscQueue`] — a lock-free intrusive multi-producer /
//!   single-consumer queue (Vyukov-style). Producers enqueue with a single
//!   atomic swap; the unique consumer dequeues without any atomic RMW in the
//!   common case. Because only the consumer ever pops, popped nodes can be
//!   freed immediately — no epoch/hazard-pointer reclamation needed.
//! - [`mod@channel`] — a blocking unbounded MPSC channel (`Sender`/`Receiver`)
//!   layered on the lock-free queue plus a mutex+condvar wakeup, with
//!   disconnect detection, `try_recv`, and `recv_timeout`. This is what the
//!   coordinator and workers actually exchange control messages over.
//!
//! The memory-ordering discipline follows the release/acquire patterns from
//! *Rust Atomics and Locks*: a producer publishes a node with `Release`
//! (on the swap and the `next` store) and the consumer observes it with
//! `Acquire`, establishing the happens-before edge that makes the payload
//! visible.
//!
//! Those claims are model-checked: building with `--features loom` swaps
//! every primitive (via [`mod@sync`]) for the vendored loom checker, and the
//! suites in `tests/loom_*.rs` exhaustively explore the interleavings of
//! push/pop, the close/disconnect protocol, and the sleep/wake handshake.
//! See DESIGN.md §4e.

#![warn(missing_docs)]

pub mod bounded;
pub mod channel;
pub mod queue;
pub mod sync;

pub use bounded::{bounded, BoundedReceiver, BoundedSender};
pub use channel::{
    channel, channel_traced, Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
};
pub use queue::MpscQueue;
