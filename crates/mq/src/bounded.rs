//! Bounded MPSC channel with blocking backpressure.
//!
//! The unbounded [`crate::channel()`] is right for control messages (a worker
//! has at most one outstanding request), but a production coordinator also
//! needs backpressure when producers can outrun the consumer — e.g. result
//! aggregation from many workers. [`bounded`] provides that: `send` blocks
//! while the queue holds `capacity` messages, `try_send` fails fast.

use std::collections::VecDeque;
use std::time::Duration;

use crate::sync::{Arc, AtomicBool, AtomicUsize, Condvar, Mutex, Ordering};

pub use crate::channel::{RecvError, RecvTimeoutError, TryRecvError};

/// Error returned by [`BoundedSender::try_send`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The queue is at capacity.
    Full(T),
    /// The receiver is gone.
    Disconnected(T),
}

/// Error returned by [`BoundedSender::send`] when the receiver is gone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundedSendError<T>(pub T);

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    capacity: usize,
    /// Signaled when the queue transitions non-full.
    not_full: Condvar,
    /// Signaled when the queue transitions non-empty.
    not_empty: Condvar,
    senders: AtomicUsize,
    receiver_alive: AtomicBool,
}

/// Sending half of a bounded channel (cloneable).
pub struct BoundedSender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half of a bounded channel.
pub struct BoundedReceiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create a bounded MPSC channel holding at most `capacity` messages.
///
/// # Panics
/// Panics on zero capacity (rendezvous channels are not supported).
pub fn bounded<T: Send>(capacity: usize) -> (BoundedSender<T>, BoundedReceiver<T>) {
    assert!(capacity > 0, "capacity must be positive");
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::with_capacity(capacity)),
        capacity,
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
        senders: AtomicUsize::new(1),
        receiver_alive: AtomicBool::new(true),
    });
    (
        BoundedSender {
            shared: Arc::clone(&shared),
        },
        BoundedReceiver { shared },
    )
}

impl<T: Send> BoundedSender<T> {
    /// Enqueue, blocking while the channel is full.
    pub fn send(&self, value: T) -> Result<(), BoundedSendError<T>> {
        let mut q = self.shared.queue.lock();
        loop {
            // Acquire: pairs with the receiver-drop Release store (as in the
            // unbounded channel) so a failing send observes a settled close.
            if !self.shared.receiver_alive.load(Ordering::Acquire) {
                return Err(BoundedSendError(value));
            }
            if q.len() < self.shared.capacity {
                q.push_back(value);
                drop(q);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            self.shared.not_full.wait(&mut q);
        }
    }

    /// Enqueue without blocking.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        // Acquire: same pairing as `send`.
        if !self.shared.receiver_alive.load(Ordering::Acquire) {
            return Err(TrySendError::Disconnected(value));
        }
        let mut q = self.shared.queue.lock();
        if q.len() >= self.shared.capacity {
            return Err(TrySendError::Full(value));
        }
        q.push_back(value);
        drop(q);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Messages currently queued (racy snapshot).
    pub fn len(&self) -> usize {
        self.shared.queue.lock().len()
    }

    /// True when no messages are queued (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The channel's capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }
}

impl<T> Clone for BoundedSender<T> {
    fn clone(&self) -> Self {
        // Relaxed: clone from a live handle cannot race the count hitting
        // zero (same argument as `Arc::clone`).
        self.shared.senders.fetch_add(1, Ordering::Relaxed);
        BoundedSender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for BoundedSender<T> {
    fn drop(&mut self) {
        // AcqRel: Release orders this sender's queued messages before the
        // decrement; Acquire on the final decrement pairs with the
        // receiver's Acquire load of the count.
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Notify under the queue lock: otherwise the decrement+notify
            // can land between a receiver's senders-check and its wait,
            // losing the wakeup and deadlocking the receiver. Found by the
            // loom suite (`sender_drop_wakes_blocked_bounded_receiver`).
            let _q = self.shared.queue.lock();
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T: Send> BoundedReceiver<T> {
    /// Blocking receive.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.shared.queue.lock();
        loop {
            if let Some(v) = q.pop_front() {
                drop(q);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            // Acquire: pairs with the AcqRel decrement in the sender drop —
            // zero means every sender's last push is already in the queue.
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            self.shared.not_empty.wait(&mut q);
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.shared.queue.lock();
        if let Some(v) = q.pop_front() {
            drop(q);
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        // Acquire: same pairing as `recv`.
        if self.shared.senders.load(Ordering::Acquire) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocking receive with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut q = self.shared.queue.lock();
        loop {
            if let Some(v) = q.pop_front() {
                drop(q);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            // Acquire: same pairing as `recv`.
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            if self
                .shared
                .not_empty
                .wait_until(&mut q, deadline)
                .timed_out()
            {
                return match q.pop_front() {
                    Some(v) => {
                        drop(q);
                        self.shared.not_full.notify_one();
                        Ok(v)
                    }
                    None => Err(RecvTimeoutError::Timeout),
                };
            }
        }
    }
}

impl<T> Drop for BoundedReceiver<T> {
    fn drop(&mut self) {
        // Release: pairs with the senders' Acquire loads of the flag.
        self.shared.receiver_alive.store(false, Ordering::Release);
        // Notify under the queue lock so the close cannot slip between a
        // blocked sender's alive-check and its wait (lost wakeup — found by
        // the loom suite, `receiver_drop_unblocks_blocked_bounded_sender`).
        let _q = self.shared.queue.lock();
        self.shared.not_full.notify_all();
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn basic_roundtrip() {
        let (tx, rx) = bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn try_send_full() {
        let (tx, _rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(tx.len(), 2);
        assert_eq!(tx.capacity(), 2);
    }

    #[test]
    fn send_blocks_until_capacity_frees() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let h = thread::spawn(move || {
            // Blocks until the consumer drains.
            tx.send(2).unwrap();
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        h.join().unwrap();
    }

    #[test]
    fn dropped_receiver_unblocks_sender() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let h = thread::spawn(move || tx.send(2));
        thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert_eq!(h.join().unwrap(), Err(BoundedSendError(2)));
    }

    #[test]
    fn disconnect_after_drain() {
        let (tx, rx) = bounded(4);
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn recv_timeout_expires() {
        let (_tx, rx) = bounded::<u8>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn backpressure_bounds_queue_under_contention() {
        let (tx, rx) = bounded(8);
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..1000u32 {
                        tx.send(i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut count = 0;
        while rx.recv().is_ok() {
            count += 1;
        }
        for p in producers {
            p.join().unwrap();
        }
        assert_eq!(count, 4000);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        bounded::<u8>(0);
    }
}
