//! Blocking unbounded MPSC channel layered on the lock-free queue.
//!
//! This is the control-message transport between the paper's coordinator and
//! workers. It combines [`crate::MpscQueue`] (hot path: lock-free push) with
//! a `parking_lot` mutex + condvar used **only** for sleeping when the queue
//! is empty — the classic "eventcount-lite" pattern from *Rust Atomics and
//! Locks*: producers take the lock only to wake a parked consumer.

use std::time::Duration;

use hetero_trace::{CounterHandle, EventKind, GaugeHandle, TraceSink};

use crate::queue::MpscQueue;
use crate::sync::{Arc, AtomicBool, AtomicUsize, Condvar, Mutex, Ordering};

/// Error returned by [`Sender::send`] when the receiver is gone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> SendError<T> {
    /// Recover the message that could not be delivered, so the caller can
    /// re-queue it elsewhere (the coordinator does this when a worker dies
    /// with a batch in flight).
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "send on a channel with no receiver")
    }
}

impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when every sender is gone and the
/// queue is drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "recv on an empty channel with no senders")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel currently empty (senders still alive).
    Empty,
    /// Channel empty and all senders dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Deadline elapsed with no message.
    Timeout,
    /// Channel empty and all senders dropped.
    Disconnected,
}

/// Pre-resolved tracing state for one channel. Handles are resolved at
/// construction so the hot path touches only atomics; with a disabled sink
/// every call reduces to an `Option` branch.
struct ChannelTrace {
    sink: TraceSink,
    /// Worker/queue id stamped on emitted events for attribution.
    id: u32,
    pushes: CounterHandle,
    pops: CounterHandle,
    depth_hwm: GaugeHandle,
}

impl ChannelTrace {
    fn disabled() -> Self {
        ChannelTrace {
            sink: TraceSink::disabled(),
            id: 0,
            pushes: CounterHandle::disabled(),
            pops: CounterHandle::disabled(),
            depth_hwm: GaugeHandle::disabled(),
        }
    }

    fn new(sink: &TraceSink, name: &str, id: u32) -> Self {
        ChannelTrace {
            sink: sink.clone(),
            id,
            pushes: sink.counter(&format!("mq.{name}.pushes")),
            pops: sink.counter(&format!("mq.{name}.pops")),
            depth_hwm: sink.gauge(&format!("mq.{name}.depth_hwm")),
        }
    }
}

struct Shared<T> {
    queue: MpscQueue<T>,
    senders: AtomicUsize,
    receiver_alive: AtomicBool,
    /// Guards nothing but the sleep/wake protocol.
    sleep_lock: Mutex<()>,
    wakeup: Condvar,
    trace: ChannelTrace,
}

/// Sending half; cheap to clone (one per worker thread).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half; exactly one exists per channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create an unbounded MPSC channel.
pub fn channel<T: Send>() -> (Sender<T>, Receiver<T>) {
    channel_with_trace(ChannelTrace::disabled())
}

/// Create an unbounded MPSC channel whose pushes and pops are observable
/// through `sink`.
///
/// Every successful send emits [`EventKind::QueuePushed`] and every
/// successful receive emits [`EventKind::QueuePopped`], each carrying the
/// post-operation approximate depth; the channel also maintains
/// `mq.<name>.pushes` / `mq.<name>.pops` counters and an
/// `mq.<name>.depth_hwm` high-water-mark gauge. Events are stamped with
/// `id` as the worker field. With a disabled sink this is exactly
/// [`channel`].
pub fn channel_traced<T: Send>(sink: &TraceSink, name: &str, id: u32) -> (Sender<T>, Receiver<T>) {
    let trace = if sink.enabled() {
        ChannelTrace::new(sink, name, id)
    } else {
        ChannelTrace::disabled()
    };
    channel_with_trace(trace)
}

fn channel_with_trace<T: Send>(trace: ChannelTrace) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: MpscQueue::new(),
        senders: AtomicUsize::new(1),
        receiver_alive: AtomicBool::new(true),
        sleep_lock: Mutex::new(()),
        wakeup: Condvar::new(),
        trace,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T: Send> Sender<T> {
    /// Enqueue a message, waking the receiver if it is parked.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        // Acquire: pairs with the receiver-drop Release store so a sender
        // that observes the flag also observes everything the receiver did
        // before dropping.
        if !self.shared.receiver_alive.load(Ordering::Acquire) {
            return Err(SendError(value));
        }
        self.shared.queue.push(value);
        if self.shared.trace.sink.enabled() {
            let depth = self.shared.queue.len();
            self.shared
                .trace
                .sink
                .emit(self.shared.trace.id, EventKind::QueuePushed { depth });
            self.shared.trace.pushes.add(1);
            self.shared.trace.depth_hwm.fetch_max(depth as f64);
        }
        // Wake a parked receiver. Taking the lock orders this notify after
        // the receiver's "queue is empty" check, closing the lost-wakeup race.
        let _guard = self.shared.sleep_lock.lock();
        self.shared.wakeup.notify_one();
        Ok(())
    }

    /// Number of live senders (including this one).
    pub fn sender_count(&self) -> usize {
        // Relaxed: informational snapshot; no memory is guarded by it.
        self.shared.senders.load(Ordering::Relaxed)
    }

    /// Whether the receiving half has been dropped. A `true` here means
    /// every future [`Sender::send`] will fail — supervision code can use
    /// this to detect a dead peer without consuming a message.
    pub fn is_disconnected(&self) -> bool {
        // Acquire: same pairing as in `send`.
        !self.shared.receiver_alive.load(Ordering::Acquire)
    }

    /// Approximate number of queued messages (see [`MpscQueue::len`]).
    pub fn len(&self) -> usize {
        self.shared.queue.len()
    }

    /// Whether the queue is currently observed empty.
    pub fn is_empty(&self) -> bool {
        self.shared.queue.is_empty()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        // Relaxed: like `Arc::clone`, incrementing from an existing handle
        // needs no ordering — the clone cannot race the count reaching zero.
        self.shared.senders.fetch_add(1, Ordering::Relaxed);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        // AcqRel: Release orders this sender's queue pushes before the
        // decrement; Acquire on the last decrement makes every other
        // sender's pushes visible to the receiver's disconnect check (which
        // Acquire-loads the count). Same protocol as `Arc`'s refcount.
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender: wake the receiver so it can observe disconnection.
            let _guard = self.shared.sleep_lock.lock();
            self.shared.wakeup.notify_one();
        }
    }
}

impl<T: Send> Receiver<T> {
    /// Record a successful pop on the trace, if tracing is live.
    fn note_pop(&self) {
        if self.shared.trace.sink.enabled() {
            let depth = self.shared.queue.len();
            self.shared
                .trace
                .sink
                .emit(self.shared.trace.id, EventKind::QueuePopped { depth });
            self.shared.trace.pops.add(1);
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        match self.shared.queue.pop_spin() {
            Some(v) => {
                self.note_pop();
                Ok(v)
            }
            None => {
                // Acquire: pairs with the AcqRel decrement in Sender::drop —
                // observing zero means every sender's final pushes are
                // visible, so the re-check below is conclusive.
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    // Re-check: a message may have been pushed before the
                    // last sender dropped.
                    match self.shared.queue.pop_spin() {
                        Some(v) => {
                            self.note_pop();
                            Ok(v)
                        }
                        None => Err(TryRecvError::Disconnected),
                    }
                } else {
                    Err(TryRecvError::Empty)
                }
            }
        }
    }

    /// Approximate number of queued messages (see [`MpscQueue::len`]).
    pub fn len(&self) -> usize {
        self.shared.queue.len()
    }

    /// Whether the queue is currently observed empty.
    pub fn is_empty(&self) -> bool {
        self.shared.queue.is_empty()
    }

    /// Blocking receive; returns `Err(RecvError)` only after every sender
    /// dropped *and* the queue drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        loop {
            match self.try_recv() {
                Ok(v) => return Ok(v),
                Err(TryRecvError::Disconnected) => return Err(RecvError),
                Err(TryRecvError::Empty) => {
                    let mut guard = self.shared.sleep_lock.lock();
                    // Re-check under the lock to avoid sleeping through a
                    // send that raced with the check above.
                    match self.try_recv() {
                        Ok(v) => return Ok(v),
                        Err(TryRecvError::Disconnected) => return Err(RecvError),
                        Err(TryRecvError::Empty) => {
                            self.shared.wakeup.wait(&mut guard);
                        }
                    }
                }
            }
        }
    }

    /// Blocking receive with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match self.try_recv() {
                Ok(v) => return Ok(v),
                Err(TryRecvError::Disconnected) => return Err(RecvTimeoutError::Disconnected),
                Err(TryRecvError::Empty) => {
                    let now = std::time::Instant::now();
                    if now >= deadline {
                        return Err(RecvTimeoutError::Timeout);
                    }
                    let mut guard = self.shared.sleep_lock.lock();
                    match self.try_recv() {
                        Ok(v) => return Ok(v),
                        Err(TryRecvError::Disconnected) => {
                            return Err(RecvTimeoutError::Disconnected)
                        }
                        Err(TryRecvError::Empty) => {
                            if self
                                .shared
                                .wakeup
                                .wait_until(&mut guard, deadline)
                                .timed_out()
                            {
                                // One final drain attempt at the deadline.
                                drop(guard);
                                return match self.try_recv() {
                                    Ok(v) => Ok(v),
                                    Err(TryRecvError::Disconnected) => {
                                        Err(RecvTimeoutError::Disconnected)
                                    }
                                    Err(TryRecvError::Empty) => Err(RecvTimeoutError::Timeout),
                                };
                            }
                        }
                    }
                }
            }
        }
    }

    /// Blocking receive that also reports how long the call waited —
    /// near-zero when a message was already queued, the park duration
    /// otherwise. Worker loops feed the wait into the `QueueWait`
    /// histogram (`hetero-metrics`) to expose queue-starvation
    /// distributions without re-deriving them from raw traces.
    pub fn recv_timed(&self) -> (Result<T, RecvError>, Duration) {
        let start = std::time::Instant::now();
        let result = self.recv();
        (result, start.elapsed())
    }

    /// Drain everything currently queued without blocking.
    pub fn drain(&self) -> Vec<T> {
        let mut out = Vec::new();
        while let Ok(v) = self.try_recv() {
            out.push(v);
        }
        out
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        // Release: pairs with the senders' Acquire loads so a sender that
        // sees the channel closed also sees the receiver's final state.
        self.shared.receiver_alive.store(false, Ordering::Release);
    }
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Relaxed: debug snapshot only.
        f.debug_struct("Sender")
            .field("senders", &self.shared.senders.load(Ordering::Relaxed))
            .finish()
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Receiver").finish()
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = channel();
        tx.send(42).unwrap();
        assert_eq!(rx.recv(), Ok(42));
    }

    #[test]
    fn try_recv_empty_then_value() {
        let (tx, rx) = channel();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(1).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
    }

    #[test]
    fn disconnect_after_drain() {
        let (tx, rx) = channel();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_to_dropped_receiver_fails() {
        let (tx, rx) = channel();
        assert!(!tx.is_disconnected());
        drop(rx);
        assert!(tx.is_disconnected());
        let err = tx.send(5).unwrap_err();
        assert_eq!(err, SendError(5));
        assert_eq!(err.into_inner(), 5);
    }

    #[test]
    fn recv_timeout_expires() {
        let (tx, rx) = channel::<u32>();
        let start = std::time::Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(30)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(start.elapsed() >= Duration::from_millis(25));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_blocks_until_send() {
        let (tx, rx) = channel();
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            tx.send("late").unwrap();
        });
        assert_eq!(rx.recv(), Ok("late"));
        h.join().unwrap();
    }

    #[test]
    fn clone_tracks_sender_count() {
        let (tx, rx) = channel::<()>();
        assert_eq!(tx.sender_count(), 1);
        let tx2 = tx.clone();
        assert_eq!(tx.sender_count(), 2);
        drop(tx2);
        assert_eq!(tx.sender_count(), 1);
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn many_senders_all_messages_arrive() {
        let (tx, rx) = channel();
        let senders = 8;
        let per = 2000usize;
        let handles: Vec<_> = (0..senders)
            .map(|_| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..per {
                        tx.send(i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut sum = 0usize;
        let mut n = 0usize;
        while let Ok(v) = rx.recv() {
            sum += v;
            n += 1;
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n, senders * per);
        assert_eq!(sum, senders * per * (per - 1) / 2);
    }

    #[test]
    fn recv_timed_measures_the_park() {
        let (tx, rx) = channel();
        tx.send(1).unwrap();
        let (v, wait) = rx.recv_timed();
        assert_eq!(v, Ok(1));
        assert!(wait < Duration::from_millis(50));
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            tx.send(2).unwrap();
        });
        let (v, wait) = rx.recv_timed();
        assert_eq!(v, Ok(2));
        assert!(wait >= Duration::from_millis(20), "waited {wait:?}");
        h.join().unwrap();
        let (v, _) = rx.recv_timed();
        assert_eq!(v, Err(RecvError));
    }

    #[test]
    fn drain_collects_pending() {
        let (tx, rx) = channel();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.drain(), vec![0, 1, 2, 3, 4]);
        assert!(rx.drain().is_empty());
    }

    #[test]
    fn len_is_exact_when_quiescent() {
        let (tx, rx) = channel();
        assert_eq!(tx.len(), 0);
        for i in 0..7 {
            tx.send(i).unwrap();
        }
        assert_eq!(tx.len(), 7);
        assert_eq!(rx.len(), 7);
        assert_eq!(rx.recv(), Ok(0));
        assert_eq!(rx.len(), 6);
        rx.drain();
        assert_eq!(rx.len(), 0);
        assert!(rx.is_empty());
    }

    #[test]
    fn traced_channel_emits_depth_events_and_counters() {
        let sink = hetero_trace::TraceSink::wall(1024);
        let (tx, rx) = channel_traced::<usize>(&sink, "coord_inbox", 3);
        let senders = 4;
        let per = 500usize;
        let handles: Vec<_> = (0..senders)
            .map(|_| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..per {
                        tx.send(i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut received = 0usize;
        while rx.recv().is_ok() {
            received += 1;
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(received, senders * per);
        assert_eq!(rx.len(), 0);

        let trace = sink.drain();
        let mut pushed = 0usize;
        let mut popped = 0usize;
        for event in trace.events_sorted() {
            match event.kind {
                hetero_trace::EventKind::QueuePushed { depth } => {
                    assert_eq!(event.worker, 3);
                    assert!(depth <= senders * per);
                    pushed += 1;
                }
                hetero_trace::EventKind::QueuePopped { .. } => {
                    assert_eq!(event.worker, 3);
                    popped += 1;
                }
                ref other => panic!("unexpected event {other:?}"),
            }
        }
        // Events can be shed by the bounded rings, but counters are exact.
        assert!(pushed + (trace.total_dropped() as usize) >= popped);
        let counters: std::collections::HashMap<String, f64> =
            trace.counters.iter().cloned().collect();
        assert_eq!(
            counters.get("mq.coord_inbox.pushes"),
            Some(&((senders * per) as f64))
        );
        assert_eq!(
            counters.get("mq.coord_inbox.pops"),
            Some(&((senders * per) as f64))
        );
        assert!(
            counters
                .get("mq.coord_inbox.depth_hwm")
                .copied()
                .unwrap_or(0.0)
                >= 1.0
        );
    }

    #[test]
    fn untraced_channel_has_disabled_sink() {
        let (tx, rx) = channel::<u8>();
        assert!(!tx.shared.trace.sink.enabled());
        tx.send(1).unwrap();
        assert_eq!(rx.recv(), Ok(1));
    }

    #[test]
    fn ping_pong_two_channels() {
        // Coordinator/worker round trips — the framework's actual topology.
        let (to_worker_tx, to_worker_rx) = channel();
        let (to_coord_tx, to_coord_rx) = channel();
        let worker = thread::spawn(move || {
            while let Ok(v) = to_worker_rx.recv() {
                if v == 0 {
                    break;
                }
                to_coord_tx.send(v * 2).unwrap();
            }
        });
        for i in 1..=100 {
            to_worker_tx.send(i).unwrap();
            assert_eq!(to_coord_rx.recv(), Ok(i * 2));
        }
        to_worker_tx.send(0).unwrap();
        worker.join().unwrap();
        assert_eq!(to_coord_rx.recv(), Err(RecvError));
    }
}
