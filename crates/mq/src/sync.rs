//! Synchronization-primitive facade for this crate.
//!
//! Every atomic, mutex, condvar, `Arc`, spin hint, and race-checked cell used
//! by the queue and channels is imported from here rather than from
//! `std`/`parking_lot` directly. In normal builds the re-exports are zero-cost
//! aliases of the real primitives; under `--features loom` they swap to the
//! vendored loom model checker, which serializes threads, explores
//! interleavings, and verifies the happens-before relation of every access
//! (see `shims/loom` and DESIGN.md §4e).
//!
//! Rules for code in this crate:
//! - never `use std::sync::atomic::...` / `parking_lot::...` directly;
//! - wrap non-atomic data shared across threads in [`UnsafeCell`] so the
//!   model checker can see (and race-check) the accesses;
//! - spin with [`hint::spin_loop`], which becomes a scheduler yield under
//!   loom instead of a livelock.

#[cfg(feature = "loom")]
pub use loom::cell::UnsafeCell;
#[cfg(feature = "loom")]
pub use loom::hint;
#[cfg(feature = "loom")]
pub use loom::sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};
#[cfg(feature = "loom")]
pub use loom::sync::{Arc, Condvar, Mutex};

#[cfg(not(feature = "loom"))]
pub use parking_lot::{Condvar, Mutex};
#[cfg(not(feature = "loom"))]
pub use std::hint;
#[cfg(not(feature = "loom"))]
pub use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};
#[cfg(not(feature = "loom"))]
pub use std::sync::Arc;

/// Interior-mutability cell with loom's closure-based access API.
///
/// In normal builds this is a transparent wrapper over
/// [`std::cell::UnsafeCell`] — `with`/`with_mut` compile down to a bare
/// pointer handoff. Under `--features loom` the loom version is used instead,
/// which treats every access as a scheduling point and panics on any
/// read/write or write/write pair not ordered by happens-before.
#[cfg(not(feature = "loom"))]
#[derive(Debug)]
pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

#[cfg(not(feature = "loom"))]
impl<T> UnsafeCell<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        UnsafeCell(std::cell::UnsafeCell::new(value))
    }

    /// Immutable access through a raw pointer.
    ///
    /// The caller must uphold the same aliasing rules as
    /// [`std::cell::UnsafeCell::get`]; the loom build verifies them.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        f(self.0.get())
    }

    /// Mutable access through a raw pointer (same contract as [`Self::with`]).
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        f(self.0.get())
    }
}
