//! Lock-free multi-producer / single-consumer queue (Vyukov-style).
//!
//! Producers race only on a single `swap` of the `tail` pointer; each then
//! links its node behind the previous tail with a `Release` store. The
//! unique consumer chases `next` pointers from a stub node. The transient
//! window between a producer's swap and its `next` store is handled by the
//! consumer observing a null `next` on a non-tail node and reporting
//! "inconsistent" (retry) — the standard behaviour of this queue.
//!
//! Safety model: only the consumer pops, so a popped node has no other
//! reader and can be dropped immediately. `Send`/`Sync` bounds require
//! `T: Send` since payloads cross threads.

use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

struct Node<T> {
    next: AtomicPtr<Node<T>>,
    value: Option<T>,
}

impl<T> Node<T> {
    fn new(value: Option<T>) -> *mut Node<T> {
        Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(ptr::null_mut()),
            value,
        }))
    }
}

/// Result of a non-blocking pop attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Pop<T> {
    /// A value was dequeued.
    Data(T),
    /// The queue was observed empty.
    Empty,
    /// A producer is mid-publish; retry shortly.
    Inconsistent,
}

/// Lock-free unbounded MPSC queue.
///
/// Any number of threads may call [`MpscQueue::push`]; exactly one thread at
/// a time may call [`MpscQueue::pop`] (enforced by requiring `&mut self` or
/// external synchronization — the blocking channel in this crate guarantees
/// it by construction).
pub struct MpscQueue<T> {
    tail: AtomicPtr<Node<T>>,
    /// Consumer-owned; only ever touched by the single consumer.
    head: AtomicPtr<Node<T>>,
    /// Approximate element count: incremented *before* the tail swap
    /// publishes a node, decremented after a successful pop. Ordering the
    /// increment first means `len()` may transiently over-report an
    /// in-flight push but can never underflow, which is the safe direction
    /// for a monitoring signal.
    depth: AtomicUsize,
}

unsafe impl<T: Send> Send for MpscQueue<T> {}
unsafe impl<T: Send> Sync for MpscQueue<T> {}

impl<T> MpscQueue<T> {
    /// Create an empty queue.
    pub fn new() -> Self {
        let stub = Node::new(None);
        MpscQueue {
            tail: AtomicPtr::new(stub),
            head: AtomicPtr::new(stub),
            depth: AtomicUsize::new(0),
        }
    }

    /// Enqueue a value. Safe to call from any number of threads concurrently.
    pub fn push(&self, value: T) {
        self.depth.fetch_add(1, Ordering::Relaxed);
        let node = Node::new(Some(value));
        // Swap ourselves in as the new tail; Release publishes the node's
        // payload to whoever later observes the pointer.
        let prev = self.tail.swap(node, Ordering::AcqRel);
        // Link the old tail to us. Until this store lands, the consumer may
        // see the queue as Inconsistent.
        unsafe {
            (*prev).next.store(node, Ordering::Release);
        }
    }

    /// Dequeue a value.
    ///
    /// # Safety contract
    /// Must only be called by one consumer thread at a time; the blocking
    /// channel wrapper upholds this. Calling it concurrently from multiple
    /// threads is a logic error that this type does not detect.
    pub fn pop(&self) -> Pop<T> {
        unsafe {
            let head = self.head.load(Ordering::Relaxed);
            let next = (*head).next.load(Ordering::Acquire);
            if !next.is_null() {
                // Advance head; the old head (stub or consumed node) dies here.
                self.head.store(next, Ordering::Relaxed);
                let value = (*next).value.take().expect("non-stub node has a value");
                drop(Box::from_raw(head));
                self.depth.fetch_sub(1, Ordering::Relaxed);
                return Pop::Data(value);
            }
            if self.tail.load(Ordering::Acquire) == head {
                Pop::Empty
            } else {
                // A producer swapped tail but hasn't linked `next` yet.
                Pop::Inconsistent
            }
        }
    }

    /// Pop, spinning through the transient `Inconsistent` state.
    ///
    /// Returns `None` only when the queue is genuinely empty.
    pub fn pop_spin(&self) -> Option<T> {
        loop {
            match self.pop() {
                Pop::Data(v) => return Some(v),
                Pop::Empty => return None,
                Pop::Inconsistent => std::hint::spin_loop(),
            }
        }
    }

    /// Approximate element count (exact only when quiescent). May briefly
    /// over-report a push that has bumped the counter but not yet linked
    /// its node; never underflows.
    pub fn len(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Best-effort emptiness check (exact only when quiescent).
    pub fn is_empty(&self) -> bool {
        let head = self.head.load(Ordering::Relaxed);
        let next_null = unsafe { (*head).next.load(Ordering::Acquire).is_null() };
        next_null && self.tail.load(Ordering::Acquire) == head
    }
}

impl<T> Default for MpscQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for MpscQueue<T> {
    fn drop(&mut self) {
        // Drain remaining nodes, then free the stub.
        while let Some(v) = self.pop_spin() {
            drop(v);
        }
        let head = self.head.load(Ordering::Relaxed);
        unsafe {
            drop(Box::from_raw(head));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn push_pop_single_thread() {
        let q = MpscQueue::new();
        assert!(q.is_empty());
        q.push(1);
        q.push(2);
        assert!(!q.is_empty());
        assert_eq!(q.pop_spin(), Some(1));
        assert_eq!(q.pop_spin(), Some(2));
        assert_eq!(q.pop_spin(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_order_preserved_per_producer() {
        let q = Arc::new(MpscQueue::new());
        let producers = 4;
        let per = 1000;
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..per {
                        q.push((p, i));
                    }
                })
            })
            .collect();
        let mut last = vec![-1i64; producers];
        let mut count = 0;
        while count < producers * per {
            if let Some((p, i)) = q.pop_spin() {
                assert!(
                    (i as i64) > last[p],
                    "per-producer FIFO violated: {} after {}",
                    i,
                    last[p]
                );
                last[p] = i as i64;
                count += 1;
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(q.pop_spin(), None);
    }

    #[test]
    fn drop_frees_pending_values() {
        // Values left in the queue are dropped with it (checked by Arc count).
        let marker = Arc::new(());
        {
            let q = MpscQueue::new();
            for _ in 0..10 {
                q.push(Arc::clone(&marker));
            }
        }
        assert_eq!(Arc::strong_count(&marker), 1);
    }

    #[test]
    fn stress_many_producers() {
        let q = Arc::new(MpscQueue::new());
        let producers = 8;
        let per = 5000usize;
        let handles: Vec<_> = (0..producers)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..per {
                        q.push(i);
                    }
                })
            })
            .collect();
        let mut sum = 0usize;
        let mut seen = 0usize;
        while seen < producers * per {
            if let Some(v) = q.pop_spin() {
                sum += v;
                seen += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sum, producers * (per * (per - 1) / 2));
    }

    #[test]
    fn len_tracks_depth_under_concurrent_producers() {
        let q = Arc::new(MpscQueue::new());
        let producers = 4;
        let per = 2000usize;
        let handles: Vec<_> = (0..producers)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..per {
                        q.push(i);
                    }
                })
            })
            .collect();
        // While producers run, len() must stay within [0, total in flight].
        let total = producers * per;
        let mut popped = 0usize;
        while popped < total / 2 {
            if q.pop_spin().is_some() {
                popped += 1;
            }
            let len = q.len();
            assert!(len <= total, "len {len} exceeds total pushes {total}");
        }
        for h in handles {
            h.join().unwrap();
        }
        // Quiescent: len is exact.
        assert_eq!(q.len(), total - popped);
        while q.pop_spin().is_some() {
            popped += 1;
        }
        assert_eq!(popped, total);
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_reports_empty_not_inconsistent_when_quiescent() {
        let q: MpscQueue<u32> = MpscQueue::new();
        assert_eq!(q.pop(), Pop::Empty);
        q.push(7);
        assert_eq!(q.pop(), Pop::Data(7));
        assert_eq!(q.pop(), Pop::Empty);
    }
}
