//! Lock-free multi-producer / single-consumer queue (Vyukov-style).
//!
//! Producers race only on a single `swap` of the `tail` pointer; each then
//! links its node behind the previous tail with a `Release` store. The
//! unique consumer chases `next` pointers from a stub node. The transient
//! window between a producer's swap and its `next` store is handled by the
//! consumer observing a null `next` on a non-tail node and reporting
//! "inconsistent" (retry) — the standard behaviour of this queue.
//!
//! Safety model: only the consumer pops, so a popped node has no other
//! reader and can be dropped immediately. `Send`/`Sync` bounds require
//! `T: Send` since payloads cross threads.
//!
//! All primitives come from [`crate::sync`], so `--features loom` model-checks
//! this file's interleavings (see `crates/mq/tests/loom_queue.rs`); the node
//! payload lives in a [`sync::UnsafeCell`] so the checker race-checks the
//! non-atomic value handoff, not just the pointers.

use std::ptr;

use crate::sync::{self, AtomicPtr, AtomicUsize, Ordering};

/// Memory ordering of the producer's `next`-pointer store — the store that
/// *publishes* a node (and its payload) to the consumer. Must be `Release`:
/// the consumer's `Acquire` load of `next` synchronizes with it, ordering the
/// payload write before the consumer's read.
///
/// Building with `RUSTFLAGS="--cfg hetero_weak_publish"` weakens this to
/// `Relaxed` — an intentional seeded bug that the loom suite must catch
/// (`scripts/check_mutation.sh` asserts the failure). Never set in real
/// builds.
#[cfg(not(hetero_weak_publish))]
const PUBLISH_ORD: Ordering = Ordering::Release;
#[cfg(hetero_weak_publish)]
const PUBLISH_ORD: Ordering = Ordering::Relaxed;

struct Node<T> {
    next: AtomicPtr<Node<T>>,
    /// Payload; written by exactly one producer before the node is published,
    /// taken by the unique consumer after it observes the publish store.
    value: sync::UnsafeCell<Option<T>>,
}

impl<T> Node<T> {
    fn new(value: Option<T>) -> *mut Node<T> {
        Box::into_raw(Box::new(Node {
            next: AtomicPtr::new(ptr::null_mut()),
            value: sync::UnsafeCell::new(value),
        }))
    }
}

/// Result of a non-blocking pop attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Pop<T> {
    /// A value was dequeued.
    Data(T),
    /// The queue was observed empty.
    Empty,
    /// A producer is mid-publish; retry shortly.
    Inconsistent,
}

/// Lock-free unbounded MPSC queue.
///
/// Any number of threads may call [`MpscQueue::push`]; exactly one thread at
/// a time may call [`MpscQueue::pop`] (enforced by requiring `&mut self` or
/// external synchronization — the blocking channel in this crate guarantees
/// it by construction).
pub struct MpscQueue<T> {
    tail: AtomicPtr<Node<T>>,
    /// Consumer-owned; only ever touched by the single consumer.
    head: AtomicPtr<Node<T>>,
    /// Approximate element count: incremented *before* the tail swap
    /// publishes a node, decremented after a successful pop. Ordering the
    /// increment first means `len()` may transiently over-report an
    /// in-flight push but can never underflow, which is the safe direction
    /// for a monitoring signal.
    depth: AtomicUsize,
}

// SAFETY: producers only touch `tail`/`depth` (atomics) and nodes they
// allocated but have not yet published; the unique consumer owns `head` and
// every node it reaches through an Acquire-loaded `next`, so no node is ever
// accessed mutably from two threads at once. `T: Send` because values cross
// from producer to consumer threads.
unsafe impl<T: Send> Send for MpscQueue<T> {}
// SAFETY: as above — `&MpscQueue` exposes `push` to any thread, and the
// single-consumer contract on `pop` is upheld by the channel wrapper.
unsafe impl<T: Send> Sync for MpscQueue<T> {}

impl<T> MpscQueue<T> {
    /// Create an empty queue.
    pub fn new() -> Self {
        let stub = Node::new(None);
        MpscQueue {
            tail: AtomicPtr::new(stub),
            head: AtomicPtr::new(stub),
            depth: AtomicUsize::new(0),
        }
    }

    /// Enqueue a value. Safe to call from any number of threads concurrently.
    pub fn push(&self, value: T) {
        // Relaxed: `depth` is a monitoring counter with no ordering role; it
        // never gates memory access (see field docs for the no-underflow
        // argument).
        self.depth.fetch_add(1, Ordering::Relaxed);
        let node = Node::new(Some(value));
        // AcqRel swap: Release so our node's initialization (payload write,
        // null `next`) is published to the producer that swaps after us and
        // will link behind our node; Acquire so we see the previous
        // producer's node initialization before storing into its `next`.
        let prev = self.tail.swap(node, Ordering::AcqRel);
        // Link the old tail to us. Until this store lands, the consumer may
        // see the queue as Inconsistent. PUBLISH_ORD is `Release` (pairs with
        // the consumer's Acquire load of `next`): it publishes the payload.
        // SAFETY: `prev` came from the tail swap, so it is a live node —
        // either the stub or a node some producer fully allocated. Nodes are
        // only freed by the consumer *after* it observes a non-null `next`,
        // i.e. after this very store, so `prev` cannot have been freed yet.
        unsafe {
            (*prev).next.store(node, PUBLISH_ORD);
        }
    }

    /// Dequeue a value.
    ///
    /// # Safety contract
    /// Must only be called by one consumer thread at a time; the blocking
    /// channel wrapper upholds this. Calling it concurrently from multiple
    /// threads is a logic error that this type does not detect.
    pub fn pop(&self) -> Pop<T> {
        // Relaxed: `head` is consumer-private state; no other thread reads
        // or writes it, so the load needs no ordering.
        let head = self.head.load(Ordering::Relaxed);
        // Acquire: pairs with the producer's PUBLISH_ORD (Release) store,
        // making the node payload visible before we take it below.
        // SAFETY: `head` is the stub or the last node we consumed; both stay
        // alive until the consumer frees them further down — no other thread
        // frees nodes.
        let next = unsafe { (*head).next.load(Ordering::Acquire) };
        if !next.is_null() {
            // Advance head; the old head (stub or consumed node) dies here.
            // Relaxed: consumer-private store, same as the load above.
            self.head.store(next, Ordering::Relaxed);
            // SAFETY: `next` was published by a producer's Release store and
            // observed by our Acquire load, so its payload write
            // happens-before this read; the single-consumer contract means
            // nobody else takes it.
            let value = unsafe { (*next).value.with_mut(|v| (*v).take()) }
                .expect("non-stub node has a value");
            // SAFETY: `head` is no longer reachable — `self.head` now points
            // past it, producers only ever append at tail, and we are the
            // unique consumer — so this is the last reference to the node.
            unsafe { drop(Box::from_raw(head)) };
            // Relaxed: monitoring counter, see `push`.
            self.depth.fetch_sub(1, Ordering::Relaxed);
            return Pop::Data(value);
        }
        // Acquire: order this tail check after the `next` load so that a
        // null `next` plus `tail == head` reliably means "empty", not "we
        // read a stale tail from before a push".
        if self.tail.load(Ordering::Acquire) == head {
            Pop::Empty
        } else {
            // A producer swapped tail but hasn't linked `next` yet.
            Pop::Inconsistent
        }
    }

    /// Pop, spinning through the transient `Inconsistent` state.
    ///
    /// Returns `None` only when the queue is genuinely empty.
    pub fn pop_spin(&self) -> Option<T> {
        loop {
            match self.pop() {
                Pop::Data(v) => return Some(v),
                Pop::Empty => return None,
                Pop::Inconsistent => crate::sync::hint::spin_loop(),
            }
        }
    }

    /// Approximate element count (exact only when quiescent). May briefly
    /// over-report a push that has bumped the counter but not yet linked
    /// its node; never underflows.
    pub fn len(&self) -> usize {
        // Relaxed: monitoring counter, see `push`.
        self.depth.load(Ordering::Relaxed)
    }

    /// Best-effort emptiness check (exact only when quiescent).
    pub fn is_empty(&self) -> bool {
        // Relaxed: consumer-private pointer (or racy snapshot when called
        // from a producer — documented best-effort).
        let head = self.head.load(Ordering::Relaxed);
        // Acquire: same pairing as `pop` — see a published node if there is
        // one. SAFETY: `head` stays alive as in `pop`; callers other than
        // the consumer only ever dereference the stub/last-consumed node,
        // which the consumer frees only after advancing `head`.
        let next_null = unsafe { (*head).next.load(Ordering::Acquire).is_null() };
        // Acquire: order the tail check after the `next` load, as in `pop`.
        next_null && self.tail.load(Ordering::Acquire) == head
    }
}

impl<T> Default for MpscQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for MpscQueue<T> {
    fn drop(&mut self) {
        // `&mut self` proves no producer or consumer is live, so pop_spin
        // can never observe a mid-publish window here and the drain
        // terminates. Every pushed-but-unpopped node is freed by pop_spin
        // (payload dropped with it); the stub/last-consumed node is the one
        // `head` still points at, freed below.
        while let Some(v) = self.pop_spin() {
            drop(v);
        }
        // Relaxed: `&mut self` exclusivity — no concurrent accessor exists.
        let head = self.head.load(Ordering::Relaxed);
        // SAFETY: after the drain `head == tail`, and exclusivity (`&mut
        // self`) means nobody else can free or reach this final node.
        unsafe {
            drop(Box::from_raw(head));
        }
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn push_pop_single_thread() {
        let q = MpscQueue::new();
        assert!(q.is_empty());
        q.push(1);
        q.push(2);
        assert!(!q.is_empty());
        assert_eq!(q.pop_spin(), Some(1));
        assert_eq!(q.pop_spin(), Some(2));
        assert_eq!(q.pop_spin(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_order_preserved_per_producer() {
        let q = Arc::new(MpscQueue::new());
        let producers = 4;
        let per = 1000;
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..per {
                        q.push((p, i));
                    }
                })
            })
            .collect();
        let mut last = vec![-1i64; producers];
        let mut count = 0;
        while count < producers * per {
            if let Some((p, i)) = q.pop_spin() {
                assert!(
                    (i as i64) > last[p],
                    "per-producer FIFO violated: {} after {}",
                    i,
                    last[p]
                );
                last[p] = i as i64;
                count += 1;
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(q.pop_spin(), None);
    }

    #[test]
    fn drop_frees_pending_values() {
        // Values left in the queue are dropped with it (checked by Arc count).
        let marker = Arc::new(());
        {
            let q = MpscQueue::new();
            for _ in 0..10 {
                q.push(Arc::clone(&marker));
            }
        }
        assert_eq!(Arc::strong_count(&marker), 1);
    }

    #[test]
    fn stress_many_producers() {
        let q = Arc::new(MpscQueue::new());
        let producers = 8;
        let per = if cfg!(miri) { 200usize } else { 5000usize };
        let handles: Vec<_> = (0..producers)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..per {
                        q.push(i);
                    }
                })
            })
            .collect();
        let mut sum = 0usize;
        let mut seen = 0usize;
        while seen < producers * per {
            if let Some(v) = q.pop_spin() {
                sum += v;
                seen += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sum, producers * (per * (per - 1) / 2));
    }

    #[test]
    fn len_tracks_depth_under_concurrent_producers() {
        let q = Arc::new(MpscQueue::new());
        let producers = 4;
        let per = if cfg!(miri) { 100usize } else { 2000usize };
        let handles: Vec<_> = (0..producers)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..per {
                        q.push(i);
                    }
                })
            })
            .collect();
        // While producers run, len() must stay within [0, total in flight].
        let total = producers * per;
        let mut popped = 0usize;
        while popped < total / 2 {
            if q.pop_spin().is_some() {
                popped += 1;
            }
            let len = q.len();
            assert!(len <= total, "len {len} exceeds total pushes {total}");
        }
        for h in handles {
            h.join().unwrap();
        }
        // Quiescent: len is exact.
        assert_eq!(q.len(), total - popped);
        while q.pop_spin().is_some() {
            popped += 1;
        }
        assert_eq!(popped, total);
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_reports_empty_not_inconsistent_when_quiescent() {
        let q: MpscQueue<u32> = MpscQueue::new();
        assert_eq!(q.pop(), Pop::Empty);
        q.push(7);
        assert_eq!(q.pop(), Pop::Data(7));
        assert_eq!(q.pop(), Pop::Empty);
    }
}
