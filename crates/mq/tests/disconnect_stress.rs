//! Stress tests for channel disconnect races with real OS threads — the
//! torture-test complement to the exhaustive-but-small loom suites.
//!
//! Covers: senders dropping while the receiver is parked, the receiver
//! dying under blocked bounded senders, and the coordinator's
//! idle-disconnect sweep pattern (poll `Sender::is_disconnected` to detect
//! a worker that died without a fault message, then recover the in-flight
//! message from `SendError`).
#![cfg(not(feature = "loom"))]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use hetero_mq::{bounded, channel};

/// Repeatedly race N sender-drops against a parked receiver: every message
/// sent before a drop must arrive, and the receiver must always observe
/// the disconnect (a lost wakeup here means this test hangs).
#[test]
fn senders_drop_while_receiver_blocked() {
    let rounds = if cfg!(miri) { 5 } else { 200 };
    for round in 0..rounds {
        let (tx, rx) = channel();
        let sent = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|s| {
                let tx = tx.clone();
                let sent = Arc::clone(&sent);
                thread::spawn(move || {
                    // Odd senders contribute a message; even ones just drop,
                    // so the disconnect races both empty and non-empty
                    // queues.
                    if s % 2 == 1 {
                        tx.send(round).unwrap();
                        sent.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        drop(tx);
        let mut got = 0;
        while let Ok(v) = rx.recv() {
            assert_eq!(v, round);
            got += 1;
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(got, sent.load(Ordering::SeqCst));
    }
}

/// The receiver dies while several bounded senders are blocked on a full
/// queue: all of them must unblock into clean errors carrying their values.
#[test]
fn receiver_drop_unblocks_all_blocked_bounded_senders() {
    let rounds = if cfg!(miri) { 3 } else { 50 };
    for _ in 0..rounds {
        let (tx, rx) = bounded(1);
        tx.send(0u32).unwrap();
        let handles: Vec<_> = (1..=4u32)
            .map(|v| {
                let tx = tx.clone();
                thread::spawn(move || tx.send(v))
            })
            .collect();
        // Give the senders a moment to park on the full queue, then die.
        thread::sleep(Duration::from_millis(1));
        drop(rx);
        for (i, h) in handles.into_iter().enumerate() {
            let err = h.join().unwrap().unwrap_err();
            assert_eq!(err.0, (i + 1) as u32, "value must be recoverable");
        }
    }
}

/// The coordinator's idle-disconnect sweep (engine_threads.rs): a worker
/// that dies without sending a fault is detected by polling
/// `is_disconnected()` on its exec sender, and the batch that was in flight
/// is recovered from the failed send for re-dispatch.
#[test]
fn idle_disconnect_sweep_detects_silently_dead_worker() {
    let (exec_tx, exec_rx) = channel::<u64>();
    let worker = thread::spawn(move || {
        // Worker processes one message, then dies without any fault report.
        let batch = exec_rx.recv().unwrap();
        assert_eq!(batch, 1);
        // exec_rx dropped here == silent death.
    });
    exec_tx.send(1).unwrap();
    worker.join().unwrap();

    // Sweep: poll like the coordinator's recv_timeout arm does.
    let mut swept = false;
    for _ in 0..2000 {
        if exec_tx.is_disconnected() {
            swept = true;
            break;
        }
        thread::sleep(Duration::from_micros(50));
    }
    assert!(swept, "sweep never observed the dead worker");

    // The in-flight batch bounces back for re-dispatch, not into the void.
    let err = exec_tx.send(42).unwrap_err();
    assert_eq!(err.into_inner(), 42);
}

/// High-frequency clone/drop churn on the sender count racing a receiver
/// draining to disconnect — the sender-count protocol must neither report
/// disconnect early (while a sender lives) nor miss it at the end.
#[test]
fn sender_count_churn_never_false_disconnects() {
    let rounds = if cfg!(miri) { 3 } else { 50 };
    let per = if cfg!(miri) { 10 } else { 200 };
    for _ in 0..rounds {
        let (tx, rx) = channel();
        let h = thread::spawn(move || {
            for i in 0..per {
                let t = tx.clone();
                t.send(i).unwrap();
                // Both clones drop continuously; the count must only hit
                // zero after this loop ends.
            }
        });
        let mut got = 0;
        while let Ok(v) = rx.recv() {
            assert_eq!(v, got);
            got += 1;
        }
        assert_eq!(got, per, "disconnect observed before all sends");
        h.join().unwrap();
    }
}
