//! Leak audit for the queue/channel drop paths — written to run under
//! `cargo +nightly miri test -p hetero-mq --test miri_leak` (Miri's leak
//! checker validates every allocation) but also meaningful under plain
//! `cargo test` via explicit drop counting.
//!
//! Audit summary (PR-3): `MpscQueue::drop` takes `&mut self`, so no
//! producer can be mid-publish; it drains via `pop_spin` (freeing each node
//! and dropping its payload) and then frees the final stub/last-consumed
//! node that `head` points at. The channels own their queue through an
//! `Arc<Shared>`, so whichever half drops last runs that drain. These tests
//! pin each of those paths.
#![cfg(not(feature = "loom"))]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use hetero_mq::{bounded, channel, MpscQueue};

/// Payload that counts its drops.
#[derive(Debug)]
struct DropCounter(Arc<AtomicUsize>);

impl Drop for DropCounter {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

fn counter() -> (Arc<AtomicUsize>, impl Fn() -> DropCounter) {
    let n = Arc::new(AtomicUsize::new(0));
    let n2 = Arc::clone(&n);
    (n, move || DropCounter(Arc::clone(&n2)))
}

#[test]
fn queue_drop_frees_all_pending_values() {
    let (drops, make) = counter();
    {
        let q = MpscQueue::new();
        for _ in 0..10 {
            q.push(make());
        }
    }
    assert_eq!(drops.load(Ordering::SeqCst), 10);
}

#[test]
fn queue_partial_drain_then_drop_frees_the_rest() {
    let (drops, make) = counter();
    {
        let q = MpscQueue::new();
        for _ in 0..10 {
            q.push(make());
        }
        for _ in 0..4 {
            drop(q.pop_spin().expect("value pending"));
        }
        assert_eq!(drops.load(Ordering::SeqCst), 4);
    }
    assert_eq!(drops.load(Ordering::SeqCst), 10);
}

#[test]
fn queue_drop_after_concurrent_pushes_frees_everything() {
    let (drops, _make) = counter();
    let per = if cfg!(miri) { 20 } else { 500 };
    {
        let q = Arc::new(MpscQueue::new());
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                let n = Arc::clone(&drops);
                std::thread::spawn(move || {
                    for _ in 0..per {
                        q.push(DropCounter(Arc::clone(&n)));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Drop the queue with everything still enqueued.
    }
    assert_eq!(drops.load(Ordering::SeqCst), 2 * per);
}

#[test]
fn channel_undelivered_messages_freed_when_both_halves_drop() {
    let (drops, make) = counter();
    {
        let (tx, rx) = channel();
        for _ in 0..7 {
            tx.send(make()).unwrap();
        }
        drop(tx);
        drop(rx);
    }
    assert_eq!(drops.load(Ordering::SeqCst), 7);
}

#[test]
fn channel_message_rejected_by_dead_receiver_is_returned_not_leaked() {
    let (drops, make) = counter();
    let (tx, rx) = channel();
    drop(rx);
    let err = tx.send(make()).unwrap_err();
    assert_eq!(drops.load(Ordering::SeqCst), 0, "value must be recoverable");
    let value = err.into_inner();
    drop(value);
    assert_eq!(drops.load(Ordering::SeqCst), 1);
}

#[test]
fn bounded_pending_messages_freed_on_drop() {
    let (drops, make) = counter();
    {
        let (tx, rx) = bounded(8);
        for _ in 0..5 {
            tx.send(make()).unwrap();
        }
        drop(tx);
        drop(rx);
    }
    assert_eq!(drops.load(Ordering::SeqCst), 5);
}
