//! Property and stress tests for the message-queue substrate.

// Under `--features loom` the crate's primitives require a model-checker
// context; these std-thread tests are compiled out (the loom_*.rs suites
// cover the same protocols exhaustively).
#![cfg(not(feature = "loom"))]

use std::sync::Arc;
use std::thread;

use hetero_mq::{channel, MpscQueue};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Single-threaded queue behaves exactly like a VecDeque.
    #[test]
    fn queue_matches_vecdeque(ops in prop::collection::vec(any::<Option<u16>>(), 0..200)) {
        let q = MpscQueue::new();
        let mut model = std::collections::VecDeque::new();
        for op in ops {
            match op {
                Some(v) => {
                    q.push(v);
                    model.push_back(v);
                }
                None => {
                    prop_assert_eq!(q.pop_spin(), model.pop_front());
                }
            }
        }
        // Drain and compare the tails.
        while let Some(expected) = model.pop_front() {
            prop_assert_eq!(q.pop_spin(), Some(expected));
        }
        prop_assert_eq!(q.pop_spin(), None);
    }

    /// Channel delivers every message exactly once under concurrency, and
    /// preserves per-sender order.
    #[test]
    fn channel_exactly_once(producers in 1usize..6, per in 1usize..400) {
        let (tx, rx) = channel();
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..per {
                        tx.send((p, i)).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut last = vec![-1i64; producers];
        let mut count = 0usize;
        while let Ok((p, i)) = rx.recv() {
            prop_assert!((i as i64) > last[p], "per-sender order violated");
            last[p] = i as i64;
            count += 1;
        }
        for h in handles {
            h.join().unwrap();
        }
        prop_assert_eq!(count, producers * per);
    }
}

#[test]
fn queue_shared_across_threads_via_arc() {
    let q = Arc::new(MpscQueue::new());
    let q2 = Arc::clone(&q);
    let producer = thread::spawn(move || {
        for i in 0..10_000u32 {
            q2.push(i);
        }
    });
    let mut next = 0u32;
    while next < 10_000 {
        if let Some(v) = q.pop_spin() {
            assert_eq!(v, next, "single-producer order must be FIFO");
            next += 1;
        }
    }
    producer.join().unwrap();
}

#[test]
fn channel_high_contention_torture() {
    let (tx, rx) = channel();
    let producers = 16;
    let per = 10_000usize;
    let handles: Vec<_> = (0..producers)
        .map(|_| {
            let tx = tx.clone();
            thread::spawn(move || {
                for i in 0..per {
                    tx.send(i as u64).unwrap();
                }
            })
        })
        .collect();
    drop(tx);
    let mut n = 0usize;
    let mut sum = 0u64;
    while let Ok(v) = rx.recv() {
        n += 1;
        sum += v;
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(n, producers * per);
    assert_eq!(
        sum,
        (producers as u64) * (per as u64) * (per as u64 - 1) / 2
    );
}
