//! Model-checking of the blocking channels under `--features loom`: the
//! eventcount-lite sleep/wake handshake (no lost wakeups), the
//! close/disconnect protocol of both channel flavours, and bounded
//! backpressure.
#![cfg(feature = "loom")]

use hetero_mq::bounded::BoundedSendError;
use hetero_mq::{bounded, channel, RecvError, TryRecvError};
use loom::thread;

/// The lost-wakeup race: the receiver's empty-check and sleep must not
/// straddle a send. Every interleaving of send vs. park must deliver.
#[test]
fn recv_never_misses_a_send() {
    loom::model(|| {
        let (tx, rx) = channel();
        let h = thread::spawn(move || tx.send(5u32).unwrap());
        assert_eq!(rx.recv(), Ok(5));
        h.join().unwrap();
    });
}

/// Sender dropped while the receiver may already be parked: the last-sender
/// notify must wake it to observe the disconnect (never hang).
#[test]
fn sender_drop_wakes_blocked_receiver() {
    loom::model(|| {
        let (tx, rx) = channel::<u8>();
        let h = thread::spawn(move || drop(tx));
        assert_eq!(rx.recv(), Err(RecvError));
        h.join().unwrap();
    });
}

/// Two senders racing sends against their own drops: both messages arrive,
/// and disconnect is reported only after the drain.
#[test]
fn two_senders_disconnect_after_drain() {
    loom::model(|| {
        let (tx, rx) = channel();
        let tx2 = tx.clone();
        let h1 = thread::spawn(move || tx.send(1u32).unwrap());
        let h2 = thread::spawn(move || tx2.send(2u32).unwrap());
        let a = rx.recv().unwrap();
        let b = rx.recv().unwrap();
        assert_eq!(a + b, 3);
        assert_eq!(rx.recv(), Err(RecvError));
        h1.join().unwrap();
        h2.join().unwrap();
    });
}

/// `try_recv` must never report `Disconnected` while a message is still
/// queued — including the window where the sender pushed and dropped
/// between the receiver's empty-check and its sender-count check (the
/// re-check branch).
#[test]
fn try_recv_reports_disconnect_only_after_drain() {
    loom::model(|| {
        let (tx, rx) = channel();
        let h = thread::spawn(move || tx.send(9u8).unwrap());
        loop {
            match rx.try_recv() {
                Ok(v) => {
                    assert_eq!(v, 9);
                    break;
                }
                Err(TryRecvError::Empty) => thread::yield_now(),
                Err(TryRecvError::Disconnected) => {
                    panic!("disconnect reported before the queued message drained")
                }
            }
        }
        h.join().unwrap();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    });
}

/// Bounded channel: a producer pushing past capacity blocks and resumes;
/// order and completeness survive every interleaving.
#[test]
fn bounded_backpressure_delivers_in_order() {
    loom::model(|| {
        let (tx, rx) = bounded(1);
        let h = thread::spawn(move || {
            tx.send(1u8).unwrap();
            // Blocks until the consumer drains the first message.
            tx.send(2u8).unwrap();
        });
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
        h.join().unwrap();
    });
}

/// Receiver dropped while a sender is blocked on a full queue: the close
/// must wake the sender into a clean error (never a hang or a lost value
/// without an error).
#[test]
fn receiver_drop_unblocks_blocked_bounded_sender() {
    loom::model(|| {
        let (tx, rx) = bounded(1);
        tx.send(1u8).unwrap();
        let h = thread::spawn(move || tx.send(2u8));
        drop(rx);
        assert_eq!(h.join().unwrap(), Err(BoundedSendError(2)));
    });
}

/// Last bounded sender dropped while the receiver may be parked on
/// `not_empty`: the notify_all in the sender drop must wake it.
#[test]
fn sender_drop_wakes_blocked_bounded_receiver() {
    loom::model(|| {
        let (tx, rx) = bounded::<u8>(1);
        let h = thread::spawn(move || drop(tx));
        assert_eq!(rx.recv(), Err(RecvError));
        h.join().unwrap();
    });
}
