//! Exhaustive model-checking of the Vyukov MPSC queue under `--features
//! loom`: producer/consumer interleavings, the mid-publish `Inconsistent`
//! window, multi-producer FIFO/no-loss, and depth accounting.
//!
//! `producer_publish_is_visible_to_consumer` is the regression test for the
//! publish ordering: `scripts/check_mutation.sh` rebuilds with
//! `--cfg hetero_weak_publish` (weakening the producer's `next` store to
//! `Relaxed`) and asserts this suite then fails with a data-race report.
#![cfg(feature = "loom")]

use std::sync::atomic::{AtomicBool as StdAtomicBool, Ordering as StdOrdering};

use hetero_mq::queue::{MpscQueue, Pop};
use hetero_mq::sync::Arc;
use loom::thread;

/// Spin (politely, via loom yields) until the queue produces a value.
fn recv_spin<T: Send>(q: &MpscQueue<T>) -> T {
    loop {
        if let Some(v) = q.pop_spin() {
            return v;
        }
        thread::yield_now();
    }
}

/// The core publish/consume handshake: the payload written by the producer
/// must happen-before the consumer's take. Fails (data race) if the
/// producer's `next` store is weakened below `Release`.
#[test]
fn producer_publish_is_visible_to_consumer() {
    loom::model(|| {
        let q = Arc::new(MpscQueue::new());
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || {
            q2.push(Box::new(41usize));
        });
        let v = recv_spin(&q);
        assert_eq!(*v, 41);
        h.join().unwrap();
    });
}

#[test]
fn two_producers_nothing_lost_fifo_per_producer() {
    loom::model(|| {
        let q = Arc::new(MpscQueue::new());
        let handles: Vec<_> = (0..2usize)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    q.push((p, 0u32));
                    q.push((p, 1u32));
                })
            })
            .collect();
        let mut last = [-1i64; 2];
        for _ in 0..4 {
            let (p, i) = recv_spin(&q);
            assert!(
                i64::from(i) > last[p],
                "per-producer FIFO violated: {i} after {}",
                last[p]
            );
            last[p] = i64::from(i);
        }
        assert_eq!(q.pop_spin(), None);
        for h in handles {
            h.join().unwrap();
        }
    });
}

/// Some interleaving must land in the window between a producer's tail swap
/// and its `next` store — and `pop` must report it as `Inconsistent`
/// (retryable), never as a spurious `Empty` or corrupt `Data`.
#[test]
fn mid_publish_window_reports_inconsistent() {
    static SEEN_WINDOW: StdAtomicBool = StdAtomicBool::new(false);
    loom::model(|| {
        let q = Arc::new(MpscQueue::new());
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || q2.push(7u32));
        match q.pop() {
            Pop::Data(v) => assert_eq!(v, 7),
            Pop::Empty => {}
            Pop::Inconsistent => SEEN_WINDOW.store(true, StdOrdering::Relaxed),
        }
        h.join().unwrap();
        // After the producer finished, the element is poppable (unless the
        // first pop already took it) and the state is consistent.
        match q.pop() {
            Pop::Data(v) => assert_eq!(v, 7),
            Pop::Empty => {}
            Pop::Inconsistent => panic!("inconsistent after producer completed"),
        }
    });
    assert!(
        SEEN_WINDOW.load(StdOrdering::Relaxed),
        "no explored schedule hit the mid-publish window"
    );
}

#[test]
fn len_never_underflows_and_settles_exact() {
    loom::model(|| {
        let q = Arc::new(MpscQueue::new());
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || q2.push(1u8));
        // Racy mid-flight reads may over-report but never exceed the pushes.
        assert!(q.len() <= 1);
        assert_eq!(recv_spin(&q), 1);
        assert_eq!(q.pop_spin(), None);
        h.join().unwrap();
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    });
}

/// Dropping a queue with values still enqueued must free every node (the
/// drain-then-free-stub path in `Drop`); under loom the checker also
/// verifies the drop's cell accesses are race-free.
#[test]
fn drop_with_queued_values_is_clean() {
    loom::model(|| {
        let q = MpscQueue::new();
        q.push(Box::new(1u32));
        q.push(Box::new(2u32));
        drop(q);
    });
}
