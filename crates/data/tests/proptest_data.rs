//! Property tests for dataset handling: LIBSVM round trips, shuffling,
//! splitting, and the batch scheduler.

use hetero_data::{libsvm, BatchScheduler, DenseDataset, Labels, ShuffledScheduler, SynthConfig};
use hetero_tensor::Matrix;
use proptest::prelude::*;

fn arb_dense(max_rows: usize, max_cols: usize) -> impl Strategy<Value = DenseDataset> {
    (1..=max_rows, 1..=max_cols, any::<u64>()).prop_map(|(rows, cols, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        // Quantized values that survive the text round trip exactly.
        let x = Matrix::from_fn(rows, cols, |_, _| {
            let v = (next() % 17) as f32;
            if v < 5.0 {
                0.0
            } else {
                v * 0.25
            }
        });
        let labels = Labels::Classes((0..rows).map(|_| (next() % 3) as u32).collect());
        DenseDataset::new("prop", x, labels)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// LIBSVM write → parse → densify reproduces the feature matrix and
    /// the label sequence exactly.
    #[test]
    fn libsvm_roundtrip_exact(d in arb_dense(20, 12)) {
        let mut buf = Vec::new();
        libsvm::write(&d, &mut buf).unwrap();
        let parsed = libsvm::parse_reader(buf.as_slice()).unwrap();
        let back = libsvm::densify("prop", &parsed, false, d.features());
        prop_assert_eq!(&back.x, &d.x);
        // Labels are remapped to contiguous ids in sorted order; since ours
        // are already 0..k, they must round-trip identically.
        match (&back.labels, &d.labels) {
            (Labels::Classes(a), Labels::Classes(b)) => {
                // Only identical when all classes appear; otherwise the
                // remap compresses ids. Check consistency of partition.
                for (x, y) in a.iter().zip(b.iter()) {
                    for (x2, y2) in a.iter().zip(b.iter()) {
                        prop_assert_eq!(x == x2, y == y2, "label partition changed");
                    }
                }
            }
            _ => prop_assert!(false, "label kind changed"),
        }
    }

    /// Shuffling preserves the multiset of (row, label) pairs.
    #[test]
    fn shuffle_is_permutation(d in arb_dense(30, 6), seed in any::<u64>()) {
        let mut shuffled = d.clone();
        shuffled.shuffle(seed);
        prop_assert_eq!(shuffled.len(), d.len());
        // Sort row signatures and compare.
        let sig = |ds: &DenseDataset| {
            let mut rows: Vec<Vec<u32>> = (0..ds.len())
                .map(|i| {
                    let mut v: Vec<u32> = ds.x.row(i).iter().map(|f| f.to_bits()).collect();
                    if let Labels::Classes(c) = &ds.labels {
                        v.push(c[i]);
                    }
                    v
                })
                .collect();
            rows.sort();
            rows
        };
        prop_assert_eq!(sig(&shuffled), sig(&d));
    }

    /// Split fractions always partition the dataset.
    #[test]
    fn split_partitions(d in arb_dense(40, 4), frac in 0.0f32..0.9) {
        let (train, test) = d.split(frac);
        prop_assert_eq!(train.len() + test.len(), d.len());
        prop_assert_eq!(train.features(), d.features());
        prop_assert_eq!(test.features(), d.features());
    }

    /// The scheduler's fractional epoch counter equals served/n exactly.
    #[test]
    fn scheduler_epoch_fraction(n in 1usize..200, reqs in prop::collection::vec(1usize..50, 1..40)) {
        let mut s = BatchScheduler::new(n, None);
        let mut served = 0u64;
        for r in reqs {
            let b = s.next_batch(r).unwrap();
            served += b.len() as u64;
        }
        prop_assert_eq!(s.examples_served(), served);
        prop_assert!((s.epochs_elapsed() - served as f64 / n as f64).abs() < 1e-12);
    }

    /// The shuffled scheduler's served-example totals are exact at every
    /// step — including non-divisible `n`, where the short tail block is
    /// handed out mid-epoch wherever the permutation places it.
    #[test]
    fn shuffled_scheduler_served_total_exact(
        n in 1usize..300,
        block in 1usize..40,
        epochs in 1usize..4,
        seed in any::<u64>(),
    ) {
        let mut s = ShuffledScheduler::new(n, block, seed, Some(epochs));
        let mut served = 0u64;
        while let Some(b) = s.next_block() {
            served += b.len() as u64;
            prop_assert_eq!(s.examples_served(), served, "mid-epoch drift");
        }
        prop_assert_eq!(served, (n * epochs) as u64);
        prop_assert!((s.epochs_elapsed() - epochs as f64).abs() < 1e-9);
    }

    /// Synthetic multilabel generation: label matrix is 0/1 and every
    /// example has at least one positive.
    #[test]
    fn multilabel_wellformed(seed in any::<u64>(), classes in 2usize..30) {
        let mut cfg = SynthConfig::small(50, 8, classes, seed);
        cfg.avg_labels = Some(2.0);
        let d = cfg.generate();
        match &d.labels {
            Labels::MultiHot(y) => {
                for i in 0..y.rows() {
                    let mut any = false;
                    for j in 0..y.cols() {
                        let v = y.get(i, j);
                        prop_assert!(v == 0.0 || v == 1.0);
                        any |= v == 1.0;
                    }
                    prop_assert!(any, "example {i} without labels");
                }
            }
            _ => prop_assert!(false, "expected multihot"),
        }
    }
}
