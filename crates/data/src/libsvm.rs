//! LIBSVM text-format reader/writer.
//!
//! Format per line: `label(s) index:value index:value ...` where indices are
//! 1-based and strictly increasing. Multi-label files (e.g. `delicious`)
//! carry comma-separated label lists: `3,7,12 5:0.3 ...`.
//!
//! When the real paper datasets are present on disk they can be loaded with
//! [`parse_file`]; everything is densified (the paper also trains dense).

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use hetero_tensor::Matrix;

use crate::dataset::{DenseDataset, Labels};

/// Parse error with 1-based line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "libsvm parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// One parsed example before densification.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseExample {
    /// Label indices (length 1 for single-label data). Raw values as they
    /// appear in the file; negative labels (−1) are preserved.
    pub labels: Vec<i64>,
    /// (0-based feature index, value) pairs in ascending index order.
    pub features: Vec<(usize, f32)>,
}

/// Parse LIBSVM text into sparse examples.
pub fn parse_reader<R: Read>(reader: R) -> Result<Vec<SparseExample>, ParseError> {
    let mut out = Vec::new();
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line.map_err(|e| ParseError {
            line: lineno + 1,
            message: format!("io error: {e}"),
        })?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace().peekable();
        // An all-negative multi-label row is written with an *empty* label
        // field, so the first token on such a line is already a feature
        // (`index:value`). Only a token without ':' is a label list.
        let labels: Vec<i64> = match parts.peek() {
            Some(tok) if !tok.contains(':') => {
                let label_tok = parts.next().expect("peeked");
                label_tok
                    .split(',')
                    .map(|t| {
                        // Accept float-formatted labels like "1.0".
                        t.parse::<i64>()
                            .or_else(|_| t.parse::<f64>().map(|f| f as i64))
                            .map_err(|_| ParseError {
                                line: lineno + 1,
                                message: format!("bad label '{t}'"),
                            })
                    })
                    .collect::<Result<_, _>>()?
            }
            Some(_) => Vec::new(),
            None => {
                return Err(ParseError {
                    line: lineno + 1,
                    message: "missing label".into(),
                })
            }
        };
        let mut features = Vec::new();
        let mut last_idx: i64 = -1;
        for tok in parts {
            let (idx, val) = tok.split_once(':').ok_or_else(|| ParseError {
                line: lineno + 1,
                message: format!("bad feature token '{tok}'"),
            })?;
            let idx: usize = idx.parse().map_err(|_| ParseError {
                line: lineno + 1,
                message: format!("bad feature index '{idx}'"),
            })?;
            if idx == 0 {
                return Err(ParseError {
                    line: lineno + 1,
                    message: "feature indices are 1-based".into(),
                });
            }
            let val: f32 = val.parse().map_err(|_| ParseError {
                line: lineno + 1,
                message: format!("bad feature value '{val}'"),
            })?;
            if (idx as i64) <= last_idx {
                return Err(ParseError {
                    line: lineno + 1,
                    message: format!("non-increasing feature index {idx}"),
                });
            }
            last_idx = idx as i64;
            features.push((idx - 1, val));
        }
        out.push(SparseExample { labels, features });
    }
    Ok(out)
}

/// Parse a LIBSVM file from disk.
pub fn parse_file(path: impl AsRef<Path>) -> Result<Vec<SparseExample>, ParseError> {
    let f = std::fs::File::open(path.as_ref()).map_err(|e| ParseError {
        line: 0,
        message: format!("cannot open {}: {e}", path.as_ref().display()),
    })?;
    parse_reader(f)
}

/// Densify sparse examples into a [`DenseDataset`].
///
/// `multilabel` selects the label representation. Single-label files map
/// raw labels to contiguous class ids in sorted order (so `{-1, +1}`
/// becomes `{0, 1}`); multi-label files map raw labels to columns the same
/// way. `min_features` pads the feature dimension (files may omit trailing
/// all-zero columns).
pub fn densify(
    name: &str,
    examples: &[SparseExample],
    multilabel: bool,
    min_features: usize,
) -> DenseDataset {
    let d = examples
        .iter()
        .flat_map(|e| e.features.iter().map(|&(i, _)| i + 1))
        .max()
        .unwrap_or(0)
        .max(min_features);
    let mut x = Matrix::zeros(examples.len(), d);
    for (row, ex) in examples.iter().enumerate() {
        for &(i, v) in &ex.features {
            x.set(row, i, v);
        }
    }
    // Contiguous class-id mapping.
    let mut raw: Vec<i64> = examples
        .iter()
        .flat_map(|e| e.labels.iter().copied())
        .collect();
    raw.sort_unstable();
    raw.dedup();
    let class_of = |l: i64| raw.binary_search(&l).expect("label seen during scan") as u32;
    let labels = if multilabel {
        let mut y = Matrix::zeros(examples.len(), raw.len());
        for (row, ex) in examples.iter().enumerate() {
            for &l in &ex.labels {
                y.set(row, class_of(l) as usize, 1.0);
            }
        }
        Labels::MultiHot(y)
    } else {
        Labels::Classes(
            examples
                .iter()
                .map(|e| {
                    assert_eq!(e.labels.len(), 1, "multi-label line in single-label mode");
                    class_of(e.labels[0])
                })
                .collect(),
        )
    };
    DenseDataset::new(name, x, labels)
}

/// Write a dataset back to LIBSVM text (zeros omitted).
pub fn write<W: Write>(dataset: &DenseDataset, mut w: W) -> std::io::Result<()> {
    for i in 0..dataset.len() {
        match &dataset.labels {
            Labels::Classes(v) => write!(w, "{}", v[i])?,
            Labels::MultiHot(m) => {
                let mut first = true;
                for j in 0..m.cols() {
                    if m.get(i, j) > 0.5 {
                        if first {
                            write!(w, "{j}")?;
                            first = false;
                        } else {
                            write!(w, ",{j}")?;
                        }
                    }
                }
                // A row with no positive labels gets an *empty* label
                // field (the line starts at its first feature token);
                // writing a literal `0` would invent a phantom label class
                // on round-trip and flip a label bit.
            }
        }
        for (j, &v) in dataset.x.row(i).iter().enumerate() {
            if v != 0.0 {
                write!(w, " {}:{}", j + 1, v)?;
            }
        }
        writeln!(w)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_single_label() {
        let text = "+1 1:0.5 3:1.5\n-1 2:2.0\n";
        let ex = parse_reader(text.as_bytes()).unwrap();
        assert_eq!(ex.len(), 2);
        assert_eq!(ex[0].labels, vec![1]);
        assert_eq!(ex[0].features, vec![(0, 0.5), (2, 1.5)]);
        assert_eq!(ex[1].labels, vec![-1]);
    }

    #[test]
    fn parse_multilabel() {
        let text = "3,7,12 1:1.0 5:0.25\n";
        let ex = parse_reader(text.as_bytes()).unwrap();
        assert_eq!(ex[0].labels, vec![3, 7, 12]);
        assert_eq!(ex[0].features, vec![(0, 1.0), (4, 0.25)]);
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let text = "# header\n\n1 1:1\n";
        assert_eq!(parse_reader(text.as_bytes()).unwrap().len(), 1);
    }

    #[test]
    fn parse_rejects_bad_tokens() {
        assert!(parse_reader("1 abc".as_bytes()).is_err());
        assert!(parse_reader("x 1:1".as_bytes()).is_err());
        assert!(parse_reader("1 0:1".as_bytes()).is_err()); // 0 index
        assert!(parse_reader("1 2:1 2:2".as_bytes()).is_err()); // non-increasing
        assert!(parse_reader("1 3:1 2:2".as_bytes()).is_err());
    }

    #[test]
    fn parse_accepts_float_labels() {
        let ex = parse_reader("1.0 1:2\n".as_bytes()).unwrap();
        assert_eq!(ex[0].labels, vec![1]);
    }

    #[test]
    fn densify_single_label_maps_classes() {
        let ex = parse_reader("+1 1:1\n-1 2:1\n+1 3:1\n".as_bytes()).unwrap();
        let d = densify("t", &ex, false, 0);
        assert_eq!(d.features(), 3);
        assert_eq!(d.num_classes(), 2);
        match &d.labels {
            Labels::Classes(v) => assert_eq!(v, &vec![1, 0, 1]), // -1 -> 0, +1 -> 1
            _ => panic!(),
        }
        assert_eq!(d.x.get(1, 1), 1.0);
        assert_eq!(d.x.get(1, 0), 0.0);
    }

    #[test]
    fn densify_multilabel_builds_multihot() {
        let ex = parse_reader("3,7 1:1\n7 2:1\n".as_bytes()).unwrap();
        let d = densify("t", &ex, true, 0);
        assert_eq!(d.num_classes(), 2); // labels {3, 7}
        match &d.labels {
            Labels::MultiHot(m) => {
                assert_eq!(m.get(0, 0), 1.0); // label 3
                assert_eq!(m.get(0, 1), 1.0); // label 7
                assert_eq!(m.get(1, 0), 0.0);
                assert_eq!(m.get(1, 1), 1.0);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn densify_pads_min_features() {
        let ex = parse_reader("1 1:1\n".as_bytes()).unwrap();
        let d = densify("t", &ex, false, 10);
        assert_eq!(d.features(), 10);
    }

    #[test]
    fn write_parse_roundtrip() {
        let ex = parse_reader("+1 1:0.5 3:1.5\n-1 2:2\n".as_bytes()).unwrap();
        let d = densify("t", &ex, false, 0);
        let mut buf = Vec::new();
        write(&d, &mut buf).unwrap();
        let ex2 = parse_reader(buf.as_slice()).unwrap();
        let d2 = densify("t", &ex2, false, d.features());
        assert_eq!(d.x, d2.x);
    }

    #[test]
    fn write_parse_roundtrip_all_negative_multilabel_row() {
        // Row 1 has no positive labels: the writer must emit an empty
        // label field, and the round-trip must neither invent a label
        // class nor set a label bit on that row.
        let mut y = Matrix::zeros(3, 2);
        y.set(0, 0, 1.0);
        y.set(2, 1, 1.0);
        let mut x = Matrix::zeros(3, 2);
        x.set(0, 0, 0.5);
        x.set(1, 1, 2.0);
        x.set(2, 0, 1.5);
        let d = DenseDataset::new("t", x, Labels::MultiHot(y));
        let mut buf = Vec::new();
        write(&d, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(
            !text.lines().nth(1).unwrap().starts_with('0'),
            "phantom label written: {text:?}"
        );
        let ex2 = parse_reader(buf.as_slice()).unwrap();
        assert_eq!(ex2.len(), 3);
        assert!(ex2[1].labels.is_empty());
        let d2 = densify("t", &ex2, true, d.features());
        assert_eq!(d2.num_classes(), 2, "round-trip invented a label class");
        match &d2.labels {
            Labels::MultiHot(m) => {
                assert_eq!(m.get(0, 0), 1.0);
                assert_eq!(m.get(1, 0), 0.0);
                assert_eq!(m.get(1, 1), 0.0);
                assert_eq!(m.get(2, 1), 1.0);
            }
            _ => panic!(),
        }
        assert_eq!(d.x, d2.x);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("hetero_data_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.libsvm");
        std::fs::write(&path, "1 1:1 2:2\n0 2:1\n").unwrap();
        let ex = parse_file(&path).unwrap();
        assert_eq!(ex.len(), 2);
        assert!(parse_file(dir.join("missing.libsvm")).is_err());
    }
}
