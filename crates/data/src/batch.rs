//! Coordinator-side batch scheduling.
//!
//! Algorithm 1/2 of the paper: the coordinator "prepares a batch by
//! selecting a continuous range from the training data and storing a
//! reference to its starting position". [`BatchScheduler`] is that logic —
//! it hands out contiguous `[start, end)` ranges of requested size, tracks
//! epoch boundaries, and (optionally) signals when the data should be
//! reshuffled between epochs.
//!
//! Crucially for the heterogeneous algorithms, **each request may ask for a
//! different size** — this is the "minimal change to the ScheduleWork
//! handler" that enables per-worker batch sizes (§VI-B).

use serde::{Deserialize, Serialize};

/// A contiguous batch of examples `[start, end)` within the training data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchRange {
    /// First example index (inclusive).
    pub start: usize,
    /// One past the last example index.
    pub end: usize,
    /// Which epoch this batch belongs to (0-based).
    pub epoch: usize,
}

impl BatchRange {
    /// Number of examples in the batch.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True for a zero-length range.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Hands out contiguous batches over `n` examples, epoch after epoch.
///
/// Serializable: the scheduler is part of the training state a checkpoint
/// captures (cursor, epoch, and progress counters restore exactly).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchScheduler {
    n: usize,
    cursor: usize,
    epoch: usize,
    max_epochs: Option<usize>,
    batches_served: u64,
    examples_served: u64,
}

impl BatchScheduler {
    /// Scheduler over `n` examples; `max_epochs = None` runs forever
    /// (the paper stops on a wall-clock budget instead of an epoch count).
    pub fn new(n: usize, max_epochs: Option<usize>) -> Self {
        assert!(n > 0, "empty training set");
        BatchScheduler {
            n,
            cursor: 0,
            epoch: 0,
            max_epochs,
            batches_served: 0,
            examples_served: 0,
        }
    }

    /// Request the next batch of (up to) `size` examples.
    ///
    /// The final batch of an epoch may be shorter. Returns `None` once
    /// `max_epochs` is exhausted. When a batch closes an epoch, the next
    /// call rolls into the following epoch automatically.
    pub fn next_batch(&mut self, size: usize) -> Option<BatchRange> {
        assert!(size > 0, "zero batch size requested");
        if let Some(max) = self.max_epochs {
            if self.epoch >= max {
                return None;
            }
        }
        let start = self.cursor;
        let end = (start + size).min(self.n);
        let range = BatchRange {
            start,
            end,
            epoch: self.epoch,
        };
        self.cursor = end;
        if self.cursor >= self.n {
            self.cursor = 0;
            self.epoch += 1;
        }
        self.batches_served += 1;
        self.examples_served += range.len() as u64;
        Some(range)
    }

    /// Examples remaining in the current epoch.
    pub fn remaining_in_epoch(&self) -> usize {
        self.n - self.cursor
    }

    /// Current epoch (0-based; increments when an epoch's last example is
    /// handed out).
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Fractional epoch progress, counting served examples.
    pub fn epochs_elapsed(&self) -> f64 {
        self.examples_served as f64 / self.n as f64
    }

    /// Total batches handed out.
    pub fn batches_served(&self) -> u64 {
        self.batches_served
    }

    /// Total examples handed out.
    pub fn examples_served(&self) -> u64 {
        self.examples_served
    }

    /// Dataset size this scheduler covers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Schedulers are never empty (`new` rejects n = 0).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Scheduler handing out contiguous *blocks of a per-epoch permutation*.
///
/// The plain [`BatchScheduler`] walks the data in storage order every
/// epoch; real SGD pipelines reshuffle between epochs. This scheduler keeps
/// the coordinator's contiguous-range contract (a batch is still one block)
/// while the *block order* is a fresh seeded permutation each epoch —
/// batches from different epochs therefore cover the data in different
/// sequences without copying any rows.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShuffledScheduler {
    inner: BatchScheduler,
    n: usize,
    block: usize,
    /// Permutation of block indices for the current epoch.
    order: Vec<usize>,
    seed: u64,
    current_epoch: usize,
    /// Examples actually handed out (mapped ranges, not raw cursor steps).
    examples_served: u64,
}

impl ShuffledScheduler {
    /// Scheduler over `n` examples in shuffleable blocks of `block`
    /// examples (the batch size granularity).
    pub fn new(n: usize, block: usize, seed: u64, max_epochs: Option<usize>) -> Self {
        assert!(block > 0, "zero block size");
        let mut s = ShuffledScheduler {
            inner: BatchScheduler::new(n, max_epochs),
            n,
            block,
            order: Vec::new(),
            seed,
            current_epoch: usize::MAX,
            examples_served: 0,
        };
        s.reshuffle(0);
        s
    }

    fn reshuffle(&mut self, epoch: usize) {
        use rand::seq::SliceRandom;
        let blocks = self.n.div_ceil(self.block);
        self.order = (0..blocks).collect();
        self.order.shuffle(&mut rand::rngs::StdRng::seed_from_u64(
            self.seed ^ (epoch as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ));
        self.current_epoch = epoch;
    }

    /// Next shuffled block of up to `block` examples, or `None` when the
    /// epoch budget is exhausted.
    pub fn next_block(&mut self) -> Option<BatchRange> {
        let raw = self.inner.next_batch(self.block)?;
        if raw.epoch != self.current_epoch {
            self.reshuffle(raw.epoch);
        }
        // Map the raw cursor position to the permuted block. The raw
        // cursor walks 0..n in `block` strides, so the index is always in
        // range; a defensive `% order.len()` here would silently alias a
        // mapping bug onto a wrong-but-valid block instead of surfacing it.
        let block_idx = raw.start / self.block;
        assert!(
            block_idx < self.order.len(),
            "block index {block_idx} out of range for {} blocks",
            self.order.len()
        );
        let mapped = self.order[block_idx];
        let start = mapped * self.block;
        let end = (start + self.block).min(self.n);
        // Count the *mapped* range actually handed out. When
        // n % block != 0 the short tail block is served when the
        // permutation reaches it, not when the raw cursor hits n — counting
        // the raw range made examples_served/epochs_elapsed drift mid-epoch.
        self.examples_served += (end - start) as u64;
        Some(BatchRange {
            start,
            end,
            epoch: raw.epoch,
        })
    }

    /// Fractional epochs elapsed, counting examples actually handed out.
    pub fn epochs_elapsed(&self) -> f64 {
        self.examples_served as f64 / self.n as f64
    }

    /// Total examples handed out (mapped ranges).
    pub fn examples_served(&self) -> u64 {
        self.examples_served
    }
}

use rand::SeedableRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_tile_the_epoch() {
        let mut s = BatchScheduler::new(10, Some(1));
        let b1 = s.next_batch(4).unwrap();
        let b2 = s.next_batch(4).unwrap();
        let b3 = s.next_batch(4).unwrap();
        assert_eq!((b1.start, b1.end), (0, 4));
        assert_eq!((b2.start, b2.end), (4, 8));
        assert_eq!((b3.start, b3.end), (8, 10)); // truncated tail
        assert_eq!(b3.len(), 2);
        assert!(s.next_batch(4).is_none()); // epoch budget exhausted
    }

    #[test]
    fn epochs_roll_over() {
        let mut s = BatchScheduler::new(6, Some(2));
        for _ in 0..3 {
            s.next_batch(2).unwrap();
        }
        assert_eq!(s.epoch(), 1);
        let b = s.next_batch(2).unwrap();
        assert_eq!(b.epoch, 1);
        assert_eq!(b.start, 0);
    }

    #[test]
    fn unbounded_scheduler_never_ends() {
        let mut s = BatchScheduler::new(4, None);
        for i in 0..100 {
            let b = s.next_batch(3).unwrap();
            assert!(!b.is_empty(), "iteration {i}");
        }
        assert!(s.epochs_elapsed() > 20.0);
    }

    #[test]
    fn mixed_batch_sizes_per_request() {
        // The heterogeneous property: different sizes in consecutive calls.
        let mut s = BatchScheduler::new(100, None);
        let small = s.next_batch(1).unwrap();
        let large = s.next_batch(64).unwrap();
        assert_eq!(small.len(), 1);
        assert_eq!(large.len(), 64);
        assert_eq!(large.start, 1);
    }

    #[test]
    fn progress_counters() {
        let mut s = BatchScheduler::new(10, None);
        s.next_batch(5).unwrap();
        s.next_batch(5).unwrap();
        s.next_batch(5).unwrap();
        assert_eq!(s.batches_served(), 3);
        assert_eq!(s.examples_served(), 15);
        assert!((s.epochs_elapsed() - 1.5).abs() < 1e-9);
        assert_eq!(s.remaining_in_epoch(), 5);
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn zero_examples_panics() {
        BatchScheduler::new(0, None);
    }

    #[test]
    #[should_panic(expected = "zero batch size")]
    fn zero_size_request_panics() {
        BatchScheduler::new(5, None).next_batch(0);
    }

    #[test]
    fn oversized_batch_clamped_to_epoch() {
        let mut s = BatchScheduler::new(5, None);
        let b = s.next_batch(100).unwrap();
        assert_eq!(b.len(), 5);
        assert_eq!(s.epoch(), 1);
    }

    #[test]
    fn shuffled_scheduler_covers_every_example_each_epoch() {
        let mut s = ShuffledScheduler::new(50, 8, 7, Some(1));
        let mut seen = [false; 50];
        while let Some(b) = s.next_block() {
            seen[b.start..b.end].iter_mut().for_each(|s| *s = true);
        }
        assert!(seen.iter().all(|&v| v), "incomplete epoch coverage");
    }

    #[test]
    fn shuffled_scheduler_different_order_across_epochs() {
        let mut s = ShuffledScheduler::new(64, 8, 3, Some(2));
        let mut epoch0 = Vec::new();
        let mut epoch1 = Vec::new();
        while let Some(b) = s.next_block() {
            if b.epoch == 0 {
                epoch0.push(b.start);
            } else {
                epoch1.push(b.start);
            }
        }
        assert_eq!(epoch0.len(), 8);
        assert_eq!(epoch1.len(), 8);
        assert_ne!(epoch0, epoch1, "epochs visited blocks in the same order");
        // Both epochs cover the same block set.
        let mut a = epoch0.clone();
        let mut b = epoch1.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn shuffled_scheduler_counts_mapped_ranges() {
        // n % block != 0: the tail block (2 examples) is served wherever
        // the permutation places it; the counter must track the handed-out
        // ranges exactly at every step, not the raw cursor walk.
        let mut s = ShuffledScheduler::new(50, 8, 7, Some(2));
        let mut served = 0u64;
        while let Some(b) = s.next_block() {
            served += b.len() as u64;
            assert_eq!(s.examples_served(), served, "mid-epoch drift");
            assert!((s.epochs_elapsed() - served as f64 / 50.0).abs() < 1e-12);
        }
        assert_eq!(served, 100);
    }

    #[test]
    fn shuffled_scheduler_roundtrips_through_serde() {
        let mut s = ShuffledScheduler::new(50, 8, 7, Some(3));
        for _ in 0..9 {
            s.next_block().unwrap();
        }
        let json = serde_json::to_string(&s).unwrap();
        let mut back: ShuffledScheduler = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        // The restored scheduler continues the identical block sequence.
        for _ in 0..9 {
            assert_eq!(back.next_block(), s.next_block());
        }
    }

    #[test]
    fn shuffled_scheduler_deterministic_per_seed() {
        let collect = |seed| {
            let mut s = ShuffledScheduler::new(40, 5, seed, Some(1));
            let mut v = Vec::new();
            while let Some(b) = s.next_block() {
                v.push(b.start);
            }
            v
        };
        assert_eq!(collect(9), collect(9));
        assert_ne!(collect(9), collect(10));
    }
}
