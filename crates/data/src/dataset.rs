//! In-memory dense dataset.
//!
//! The paper processes every dataset "in dense format" (§VII-A), so the
//! feature matrix is a dense row-major [`Matrix`] even for nominally sparse
//! sources like real-sim.

use hetero_tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Ground-truth labels: one class per example, or a multi-hot matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Labels {
    /// Single-label classification: one class index per example.
    Classes(Vec<u32>),
    /// Multi-label classification: `examples × labels` 0/1 matrix.
    MultiHot(Matrix),
}

impl Labels {
    /// Number of labeled examples.
    pub fn len(&self) -> usize {
        match self {
            Labels::Classes(v) => v.len(),
            Labels::MultiHot(m) => m.rows(),
        }
    }

    /// True when no examples are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct classes/labels covered.
    pub fn num_classes(&self) -> usize {
        match self {
            Labels::Classes(v) => v.iter().map(|&c| c as usize + 1).max().unwrap_or(0),
            Labels::MultiHot(m) => m.cols(),
        }
    }

    /// Labels for examples `start..end`.
    pub fn slice(&self, start: usize, end: usize) -> Labels {
        match self {
            Labels::Classes(v) => Labels::Classes(v[start..end].to_vec()),
            Labels::MultiHot(m) => Labels::MultiHot(m.slice_rows(start, end)),
        }
    }

    /// Copy labels for examples `start..end` into `out`, reusing its
    /// buffers — the allocation-free counterpart of [`slice`](Self::slice).
    /// If `out` holds the wrong variant it is replaced (one-time cost).
    pub fn slice_into(&self, start: usize, end: usize, out: &mut Labels) {
        match self {
            Labels::Classes(v) => {
                if let Labels::Classes(dst) = out {
                    dst.clear();
                    dst.extend_from_slice(&v[start..end]);
                } else {
                    *out = Labels::Classes(v[start..end].to_vec());
                }
            }
            Labels::MultiHot(m) => {
                if let Labels::MultiHot(dst) = out {
                    dst.resize(end - start, m.cols());
                    for (i, row) in (start..end).enumerate() {
                        dst.row_mut(i).copy_from_slice(m.row(row));
                    }
                } else {
                    *out = Labels::MultiHot(m.slice_rows(start, end));
                }
            }
        }
    }

    /// Borrow as the `hetero-nn` target view.
    pub fn as_targets(&self) -> hetero_nn::Targets<'_> {
        match self {
            Labels::Classes(v) => hetero_nn::Targets::Classes(v),
            Labels::MultiHot(m) => hetero_nn::Targets::MultiHot(m),
        }
    }

    /// Reorder examples by `perm` (perm[i] = source row of new row i).
    fn permute(&self, perm: &[usize]) -> Labels {
        match self {
            Labels::Classes(v) => Labels::Classes(perm.iter().map(|&i| v[i]).collect()),
            Labels::MultiHot(m) => {
                let mut out = Matrix::zeros(m.rows(), m.cols());
                for (new, &old) in perm.iter().enumerate() {
                    out.row_mut(new).copy_from_slice(m.row(old));
                }
                Labels::MultiHot(out)
            }
        }
    }
}

/// A dense dataset: feature matrix plus labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseDataset {
    /// Feature matrix, `examples × features`.
    pub x: Matrix,
    /// Labels, one entry/row per example.
    pub labels: Labels,
    /// Human-readable dataset name.
    pub name: String,
}

impl DenseDataset {
    /// Construct, validating that features and labels agree.
    ///
    /// # Panics
    /// Panics if row counts disagree.
    pub fn new(name: impl Into<String>, x: Matrix, labels: Labels) -> Self {
        assert_eq!(x.rows(), labels.len(), "feature rows != label rows");
        DenseDataset {
            x,
            labels,
            name: name.into(),
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.x.rows()
    }

    /// True when the dataset holds no examples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Feature dimensionality.
    pub fn features(&self) -> usize {
        self.x.cols()
    }

    /// Number of classes/labels.
    pub fn num_classes(&self) -> usize {
        self.labels.num_classes()
    }

    /// Batch view: features and labels for rows `start..end`.
    pub fn batch(&self, start: usize, end: usize) -> (Matrix, Labels) {
        (self.x.slice_rows(start, end), self.labels.slice(start, end))
    }

    /// Copy rows `start..end` into reused buffers — the allocation-free
    /// counterpart of [`batch`](Self::batch): once `x`/`labels` have served
    /// a batch at least this large, subsequent calls allocate nothing.
    pub fn batch_into(&self, start: usize, end: usize, x: &mut Matrix, labels: &mut Labels) {
        x.resize(end - start, self.x.cols());
        for (i, row) in (start..end).enumerate() {
            x.row_mut(i).copy_from_slice(self.x.row(row));
        }
        self.labels.slice_into(start, end, labels);
    }

    /// Deterministically shuffle examples in place (Fisher–Yates on a
    /// permutation, applied to features and labels together).
    pub fn shuffle(&mut self, seed: u64) {
        let mut perm: Vec<usize> = (0..self.len()).collect();
        perm.shuffle(&mut StdRng::seed_from_u64(seed));
        let mut x = Matrix::zeros(self.x.rows(), self.x.cols());
        for (new, &old) in perm.iter().enumerate() {
            x.row_mut(new).copy_from_slice(self.x.row(old));
        }
        self.x = x;
        self.labels = self.labels.permute(&perm);
    }

    /// Split into (train, test) with `test_fraction` of the tail held out.
    pub fn split(&self, test_fraction: f32) -> (DenseDataset, DenseDataset) {
        assert!((0.0..1.0).contains(&test_fraction), "fraction in [0,1)");
        let n_test = (self.len() as f32 * test_fraction).round() as usize;
        let n_train = self.len() - n_test;
        let (tx, tl) = self.batch(0, n_train);
        let (ex, el) = self.batch(n_train, self.len());
        (
            DenseDataset::new(format!("{}-train", self.name), tx, tl),
            DenseDataset::new(format!("{}-test", self.name), ex, el),
        )
    }

    /// Scale every feature column to zero mean / unit variance (in place).
    /// Constant columns are left centered at zero.
    pub fn standardize(&mut self) {
        let n = self.len();
        if n == 0 {
            return;
        }
        let d = self.features();
        let mut mean = vec![0.0f64; d];
        for r in self.x.rows_iter() {
            for (m, v) in mean.iter_mut().zip(r) {
                *m += *v as f64;
            }
        }
        mean.iter_mut().for_each(|m| *m /= n as f64);
        let mut var = vec![0.0f64; d];
        for r in self.x.rows_iter() {
            for ((s, v), m) in var.iter_mut().zip(r).zip(&mean) {
                let c = *v as f64 - m;
                *s += c * c;
            }
        }
        let inv_std: Vec<f32> = var
            .iter()
            .map(|&s| {
                let std = (s / n as f64).sqrt();
                if std > 1e-12 {
                    (1.0 / std) as f32
                } else {
                    1.0
                }
            })
            .collect();
        let mean32: Vec<f32> = mean.iter().map(|&m| m as f32).collect();
        let cols = d;
        for r in self.x.as_mut_slice().chunks_exact_mut(cols) {
            for ((v, m), s) in r.iter_mut().zip(&mean32).zip(&inv_std) {
                *v = (*v - m) * s;
            }
        }
    }

    /// Scale every feature column to unit variance **without centering**
    /// (in place). This preserves sparsity — the right normalization for
    /// bag-of-words-like data where zero means "absent".
    pub fn scale_to_unit_variance(&mut self) {
        let n = self.len();
        if n == 0 {
            return;
        }
        let d = self.features();
        let mut sq = vec![0.0f64; d];
        for r in self.x.rows_iter() {
            for (s, v) in sq.iter_mut().zip(r) {
                *s += (*v as f64) * (*v as f64);
            }
        }
        let inv_rms: Vec<f32> = sq
            .iter()
            .map(|&s| {
                let rms = (s / n as f64).sqrt();
                if rms > 1e-12 {
                    (1.0 / rms) as f32
                } else {
                    1.0
                }
            })
            .collect();
        let cols = d;
        for r in self.x.as_mut_slice().chunks_exact_mut(cols) {
            for (v, s) in r.iter_mut().zip(&inv_rms) {
                *v *= s;
            }
        }
    }

    /// Compressed-sparse-row view of the feature matrix (exact zeros are
    /// dropped). Pairs with [`hetero_nn::loss_and_gradient_sparse`] for
    /// bag-of-words datasets like real-sim.
    pub fn to_csr(&self) -> hetero_tensor::CsrMatrix {
        hetero_tensor::CsrMatrix::from_dense(&self.x, 0.0)
    }

    /// Fraction of exactly-zero feature entries (density diagnostics).
    pub fn sparsity(&self) -> f32 {
        if self.x.is_empty() {
            return 0.0;
        }
        let zeros = self.x.as_slice().iter().filter(|&&v| v == 0.0).count();
        zeros as f32 / self.x.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> DenseDataset {
        let x = Matrix::from_fn(10, 3, |i, j| (i * 3 + j) as f32);
        let labels = Labels::Classes((0..10).map(|i| (i % 2) as u32).collect());
        DenseDataset::new("toy", x, labels)
    }

    #[test]
    fn construction_and_stats() {
        let d = toy();
        assert_eq!(d.len(), 10);
        assert_eq!(d.features(), 3);
        assert_eq!(d.num_classes(), 2);
        assert!(!d.is_empty());
    }

    #[test]
    #[should_panic(expected = "feature rows")]
    fn mismatched_rows_panic() {
        DenseDataset::new("bad", Matrix::zeros(3, 2), Labels::Classes(vec![0, 1]));
    }

    #[test]
    fn batch_into_matches_batch() {
        let d = toy();
        let mut x = Matrix::zeros(0, 0);
        let mut labels = Labels::Classes(Vec::new());
        // Warm at the largest batch, then reuse at smaller ones.
        for (s, e) in [(1, 8), (2, 5), (0, 3)] {
            d.batch_into(s, e, &mut x, &mut labels);
            let (x_ref, l_ref) = d.batch(s, e);
            assert_eq!(x, x_ref);
            assert_eq!(labels, l_ref);
        }
    }

    #[test]
    fn batch_into_multihot_labels() {
        let x = Matrix::from_fn(6, 2, |i, j| (i + j) as f32);
        let mh = Matrix::from_fn(6, 3, |i, j| ((i + j) % 2) as f32);
        let d = DenseDataset::new("mh", x, Labels::MultiHot(mh));
        let mut bx = Matrix::zeros(0, 0);
        // Wrong starting variant: replaced on first use, reused after.
        let mut labels = Labels::Classes(Vec::new());
        for (s, e) in [(0, 5), (2, 4)] {
            d.batch_into(s, e, &mut bx, &mut labels);
            let (x_ref, l_ref) = d.batch(s, e);
            assert_eq!(bx, x_ref);
            assert_eq!(labels, l_ref);
        }
    }

    #[test]
    fn batch_extraction() {
        let d = toy();
        let (x, l) = d.batch(2, 5);
        assert_eq!(x.rows(), 3);
        assert_eq!(x.get(0, 0), 6.0);
        match l {
            Labels::Classes(v) => assert_eq!(v, vec![0, 1, 0]),
            _ => panic!(),
        }
    }

    #[test]
    fn shuffle_preserves_example_label_pairs() {
        let mut d = toy();
        // Mark each row's identity in column 0 = row index * 3.
        d.shuffle(99);
        for i in 0..d.len() {
            let orig_row = (d.x.get(i, 0) / 3.0) as u32;
            match &d.labels {
                Labels::Classes(v) => assert_eq!(v[i], orig_row % 2, "row {i} decoupled"),
                _ => panic!(),
            }
        }
        // Deterministic per seed.
        let mut d2 = toy();
        d2.shuffle(99);
        assert_eq!(d.x, d2.x);
        // Different seed gives a different order (overwhelmingly likely).
        let mut d3 = toy();
        d3.shuffle(100);
        assert_ne!(d.x, d3.x);
    }

    #[test]
    fn split_fractions() {
        let d = toy();
        let (train, test) = d.split(0.3);
        assert_eq!(train.len(), 7);
        assert_eq!(test.len(), 3);
        assert_eq!(train.features(), 3);
    }

    #[test]
    fn standardize_zero_mean_unit_var() {
        let mut d = toy();
        d.standardize();
        for j in 0..d.features() {
            let col = d.x.col(j);
            let mean: f32 = col.iter().sum::<f32>() / col.len() as f32;
            let var: f32 = col.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / col.len() as f32;
            assert!(mean.abs() < 1e-4, "col {j} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "col {j} var {var}");
        }
    }

    #[test]
    fn standardize_constant_column_no_nan() {
        let x = Matrix::full(5, 2, 3.0);
        let mut d = DenseDataset::new("const", x, Labels::Classes(vec![0; 5]));
        d.standardize();
        assert!(d.x.all_finite());
        assert!(d.x.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn scale_to_unit_variance_preserves_zeros() {
        let x = Matrix::from_rows(&[&[0.0, 4.0], &[0.0, 0.0], &[3.0, 0.0]]);
        let mut d = DenseDataset::new("s", x, Labels::Classes(vec![0, 1, 0]));
        let before = d.sparsity();
        d.scale_to_unit_variance();
        assert_eq!(d.sparsity(), before);
        // Column RMS should be 1 after scaling.
        for j in 0..2 {
            let col = d.x.col(j);
            let rms = (col.iter().map(|v| v * v).sum::<f32>() / col.len() as f32).sqrt();
            assert!((rms - 1.0).abs() < 1e-4, "col {j} rms {rms}");
        }
    }

    #[test]
    fn multihot_labels() {
        let y = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[0.0, 1.0, 0.0]]);
        let l = Labels::MultiHot(y);
        assert_eq!(l.len(), 2);
        assert_eq!(l.num_classes(), 3);
        let s = l.slice(1, 2);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn sparsity_counts_zeros() {
        let x = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        let d = DenseDataset::new("s", x, Labels::Classes(vec![0, 1]));
        assert!((d.sparsity() - 0.75).abs() < 1e-6);
    }

    #[test]
    fn csr_view_roundtrips() {
        let x = Matrix::from_rows(&[&[0.0, 2.0, 0.0], &[1.0, 0.0, 3.0]]);
        let d = DenseDataset::new("s", x.clone(), Labels::Classes(vec![0, 1]));
        let csr = d.to_csr();
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.to_dense(), x);
    }

    #[test]
    fn as_targets_matches_variant() {
        let d = toy();
        match d.labels.as_targets() {
            hetero_nn::Targets::Classes(c) => assert_eq!(c.len(), 10),
            _ => panic!(),
        }
    }
}
