//! Seeded synthetic dataset generators.
//!
//! The generators reproduce the *statistical shape* of the paper's
//! evaluation datasets: example count, feature dimensionality, class count,
//! sparsity, and class separability. Convergence comparisons between SGD
//! variants depend on those shape parameters (gradient noise scale, update
//! cost, label structure) rather than on the exact real-world feature
//! values, which is what makes this substitution sound (see DESIGN.md §2).
//!
//! Single-label data is a mixture model: each class owns a random unit
//! center; an example is its class center scaled by `separability` plus
//! isotropic noise, with an optional sparse mask (only a fraction of
//! coordinates active, mimicking bag-of-words data like real-sim).
//!
//! Multi-label data (delicious-like) draws `avg_labels` labels per example
//! and sums the corresponding label centers before adding noise.

use hetero_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use crate::dataset::{DenseDataset, Labels};

/// Configuration for the synthetic generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Number of examples.
    pub examples: usize,
    /// Feature dimensionality.
    pub features: usize,
    /// Number of classes (single-label) or labels (multi-label).
    pub classes: usize,
    /// Mean labels per example; `None` ⇒ single-label.
    pub avg_labels: Option<f32>,
    /// Distance scale between class centers (0 = unlearnable noise).
    pub separability: f32,
    /// Per-example fraction of *active* (non-zero) features, in (0, 1].
    pub density: f32,
    /// Additive noise standard deviation.
    pub noise: f32,
    /// RNG seed; every byte of the dataset is a pure function of the config.
    pub seed: u64,
}

impl SynthConfig {
    /// A sensible default shape for tests: dense, well-separated, binary.
    pub fn small(examples: usize, features: usize, classes: usize, seed: u64) -> Self {
        SynthConfig {
            examples,
            features,
            classes,
            avg_labels: None,
            separability: 2.0,
            density: 1.0,
            noise: 1.0,
            seed,
        }
    }

    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.features == 0 || self.classes == 0 {
            return Err("features and classes must be positive".into());
        }
        if !(0.0 < self.density && self.density <= 1.0) {
            return Err("density must be in (0, 1]".into());
        }
        if let Some(a) = self.avg_labels {
            if a <= 0.0 {
                return Err("avg_labels must be positive".into());
            }
        }
        Ok(())
    }

    /// Generate the dataset.
    pub fn generate(&self) -> DenseDataset {
        self.validate().expect("invalid SynthConfig");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let unit = Normal::new(0.0f32, 1.0).expect("valid normal");

        // Class centers: random unit-norm directions scaled by separability.
        let centers: Vec<Vec<f32>> = (0..self.classes)
            .map(|_| {
                let mut c: Vec<f32> = (0..self.features).map(|_| unit.sample(&mut rng)).collect();
                let norm = c.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
                let s = self.separability / norm;
                c.iter_mut().for_each(|v| *v *= s);
                c
            })
            .collect();

        let noise = Normal::new(0.0f32, self.noise).expect("valid normal");
        let mut x = Matrix::zeros(self.examples, self.features);

        match self.avg_labels {
            None => {
                let mut labels = Vec::with_capacity(self.examples);
                for i in 0..self.examples {
                    let y = rng.gen_range(0..self.classes);
                    labels.push(y as u32);
                    self.fill_row(&mut rng, &noise, &centers[y], x.row_mut(i));
                }
                DenseDataset::new("synthetic", x, Labels::Classes(labels))
            }
            Some(avg) => {
                let mut y = Matrix::zeros(self.examples, self.classes);
                let p_label = (avg / self.classes as f32).clamp(0.0, 1.0);
                let mut sum_center = vec![0.0f32; self.features];
                for i in 0..self.examples {
                    sum_center.iter_mut().for_each(|v| *v = 0.0);
                    let mut any = false;
                    for (c, center) in centers.iter().enumerate().take(self.classes) {
                        if rng.gen::<f32>() < p_label {
                            y.set(i, c, 1.0);
                            for (s, v) in sum_center.iter_mut().zip(center) {
                                *s += v;
                            }
                            any = true;
                        }
                    }
                    if !any {
                        // Guarantee ≥1 label, like real multi-label corpora.
                        let c = rng.gen_range(0..self.classes);
                        y.set(i, c, 1.0);
                        sum_center.copy_from_slice(&centers[c]);
                    }
                    self.fill_row(&mut rng, &noise, &sum_center, x.row_mut(i));
                }
                DenseDataset::new("synthetic-multilabel", x, Labels::MultiHot(y))
            }
        }
    }

    fn fill_row(&self, rng: &mut StdRng, noise: &Normal<f32>, center: &[f32], row: &mut [f32]) {
        if self.density >= 1.0 {
            for (r, c) in row.iter_mut().zip(center) {
                *r = c + noise.sample(rng);
            }
        } else {
            // Sparse bag-of-words-like pattern: only a random subset of
            // coordinates is active; inactive ones are exactly zero.
            for (r, c) in row.iter_mut().zip(center) {
                if rng.gen::<f32>() < self.density {
                    *r = c + noise.sample(rng);
                } else {
                    *r = 0.0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = SynthConfig::small(50, 10, 3, 7);
        assert_eq!(cfg.generate().x, cfg.generate().x);
        let mut cfg2 = cfg.clone();
        cfg2.seed = 8;
        assert_ne!(cfg.generate().x, cfg2.generate().x);
    }

    #[test]
    fn shapes_match_config() {
        let cfg = SynthConfig::small(40, 12, 4, 1);
        let d = cfg.generate();
        assert_eq!(d.len(), 40);
        assert_eq!(d.features(), 12);
        assert!(d.num_classes() <= 4);
    }

    #[test]
    fn density_controls_sparsity() {
        let mut cfg = SynthConfig::small(200, 50, 2, 3);
        cfg.density = 0.1;
        let d = cfg.generate();
        let s = d.sparsity();
        assert!(s > 0.8 && s < 0.97, "sparsity {s}");
        cfg.density = 1.0;
        assert!(cfg.generate().sparsity() < 0.01);
    }

    #[test]
    fn multilabel_has_at_least_one_label_each() {
        let mut cfg = SynthConfig::small(100, 10, 20, 5);
        cfg.avg_labels = Some(3.0);
        let d = cfg.generate();
        match &d.labels {
            Labels::MultiHot(y) => {
                for i in 0..y.rows() {
                    let count: f32 = y.row(i).iter().sum();
                    assert!(count >= 1.0, "example {i} has no labels");
                }
                // Mean labels per example should be near avg_labels.
                let total: f32 = (0..y.rows()).map(|i| y.row(i).iter().sum::<f32>()).sum();
                let mean = total / y.rows() as f32;
                assert!((mean - 3.0).abs() < 1.0, "mean labels {mean}");
            }
            _ => panic!("expected multihot"),
        }
    }

    #[test]
    fn separable_data_is_linearly_structured() {
        // With high separability and low noise, same-class examples should
        // be closer to their own class mean than to the other class mean.
        let mut cfg = SynthConfig::small(100, 20, 2, 11);
        cfg.separability = 5.0;
        cfg.noise = 0.5;
        let d = cfg.generate();
        let labels = match &d.labels {
            Labels::Classes(v) => v.clone(),
            _ => panic!(),
        };
        let mut means = vec![vec![0.0f32; 20]; 2];
        let mut counts = [0usize; 2];
        for (i, &label) in labels.iter().enumerate() {
            let c = label as usize;
            counts[c] += 1;
            for (m, v) in means[c].iter_mut().zip(d.x.row(i)) {
                *m += v;
            }
        }
        for c in 0..2 {
            means[c]
                .iter_mut()
                .for_each(|m| *m /= counts[c].max(1) as f32);
        }
        let mut correct = 0;
        for (i, &label) in labels.iter().enumerate() {
            let dist =
                |m: &[f32]| -> f32 { d.x.row(i).iter().zip(m).map(|(a, b)| (a - b).powi(2)).sum() };
            let pred = if dist(&means[0]) < dist(&means[1]) {
                0
            } else {
                1
            };
            if pred == label as usize {
                correct += 1;
            }
        }
        assert!(
            correct as f32 / d.len() as f32 > 0.9,
            "only {correct}/100 separable"
        );
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut cfg = SynthConfig::small(10, 5, 2, 0);
        cfg.density = 0.0;
        assert!(cfg.validate().is_err());
        let mut cfg = SynthConfig::small(10, 0, 2, 0);
        cfg.features = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = SynthConfig::small(10, 5, 2, 0);
        cfg.avg_labels = Some(-1.0);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_examples_ok() {
        let cfg = SynthConfig::small(0, 5, 2, 0);
        let d = cfg.generate();
        assert!(d.is_empty());
    }
}
