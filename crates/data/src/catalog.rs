//! The paper's evaluation datasets (Table II) as named presets.
//!
//! Each preset carries the full-size statistics reported in the paper plus
//! the DNN depth §VII-A assigns it ("the number of hidden layers is set
//! inversely proportional to the dataset size": 4 for real-sim, 6 for
//! covtype, 8 for w8a and delicious). `generate(scale)` produces a
//! synthetic stand-in with the same proportions, shrunk by `scale` for
//! machines smaller than the paper's p3.16xlarge.

use serde::{Deserialize, Serialize};

use crate::dataset::DenseDataset;
use crate::synth::SynthConfig;

/// The four evaluation datasets of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PaperDataset {
    /// Forest cover type — 581,012 × 54, binary (LIBSVM binary version).
    Covtype,
    /// w8a web page classification — 49,749 × 300, binary.
    W8a,
    /// delicious tagging — 16,105 × 500, **983-label multi-label**.
    Delicious,
    /// real-sim newsgroup posts — 72,309 × 20,958, binary, highly sparse.
    RealSim,
}

/// Table II statistics plus the paper's network depth for a dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Dataset name as the paper spells it.
    pub name: &'static str,
    /// Full-size example count.
    pub examples: usize,
    /// Feature dimensionality.
    pub features: usize,
    /// Classes (single-label) or labels (multi-label).
    pub classes: usize,
    /// Whether the dataset is multi-label.
    pub multilabel: bool,
    /// Approximate fraction of non-zero entries in the raw data.
    pub density: f32,
    /// Whether the dataset is treated as dense for preprocessing.
    ///
    /// Density alone is a poor gate: covtype at 0.22 is the paper's
    /// "dense" dataset (its non-zeros are real-valued cartographic
    /// features, not indicator bits), while w8a/delicious/real-sim are
    /// genuinely sparse. An explicit flag keeps the preprocessing choice
    /// reviewable instead of hiding it behind a threshold no preset meets.
    pub dense: bool,
    /// Hidden-layer count the paper assigns (§VII-A).
    pub hidden_layers: usize,
}

impl PaperDataset {
    /// All four datasets in the paper's presentation order.
    pub fn all() -> [PaperDataset; 4] {
        [
            PaperDataset::Covtype,
            PaperDataset::W8a,
            PaperDataset::Delicious,
            PaperDataset::RealSim,
        ]
    }

    /// Table II statistics for this dataset.
    pub fn stats(&self) -> DatasetStats {
        match self {
            PaperDataset::Covtype => DatasetStats {
                name: "covtype",
                examples: 581_012,
                features: 54,
                classes: 2,
                multilabel: false,
                density: 0.22,
                dense: true,
                hidden_layers: 6,
            },
            PaperDataset::W8a => DatasetStats {
                name: "w8a",
                examples: 49_749,
                features: 300,
                classes: 2,
                multilabel: false,
                density: 0.04,
                dense: false,
                hidden_layers: 8,
            },
            PaperDataset::Delicious => DatasetStats {
                name: "delicious",
                examples: 16_105,
                features: 500,
                classes: 983,
                multilabel: true,
                density: 0.04,
                dense: false,
                hidden_layers: 8,
            },
            PaperDataset::RealSim => DatasetStats {
                name: "real-sim",
                examples: 72_309,
                features: 20_958,
                classes: 2,
                multilabel: false,
                density: 0.0025,
                dense: false,
                hidden_layers: 4,
            },
        }
    }

    /// Synthetic-generator configuration at `scale ∈ (0, 1]` of full size.
    ///
    /// Examples and (for real-sim's extreme width) features shrink with
    /// `scale`; class structure, sparsity, and multi-labelness are kept.
    pub fn synth_config(&self, scale: f64, seed: u64) -> SynthConfig {
        assert!(scale > 0.0 && scale <= 1.0, "scale in (0, 1]");
        let s = self.stats();
        let examples = ((s.examples as f64 * scale).round() as usize).max(16);
        // Very wide feature spaces shrink with sqrt(scale) so small runs
        // stay "high-dimensional relative to examples" like the original.
        let features = if s.features > 1000 {
            ((s.features as f64 * scale.sqrt()).round() as usize).max(64)
        } else {
            s.features
        };
        let classes = if s.multilabel {
            ((s.classes as f64 * scale.sqrt()).round() as usize).clamp(8, s.classes)
        } else {
            s.classes
        };
        SynthConfig {
            examples,
            features,
            classes,
            avg_labels: if s.multilabel { Some(19.0) } else { None },
            separability: 2.5,
            density: s.density.max(0.002),
            noise: 1.0,
            seed: seed ^ (*self as u64).wrapping_mul(0x9e37_79b9),
        }
    }

    /// Generate the scaled synthetic stand-in.
    ///
    /// Dense datasets are standardized (zero mean / unit variance); sparse
    /// ones are only variance-scaled, since mean-centering would destroy
    /// the sparsity that makes them representative.
    pub fn generate(&self, scale: f64, seed: u64) -> DenseDataset {
        let mut d = self.synth_config(scale, seed).generate();
        // Gate on the explicit `dense` flag, not a density threshold: the
        // old `density >= 0.5` check was satisfied by no preset, so the
        // standardize() branch was dead and covtype shipped variance-scaled
        // only, contradicting the doc comment above.
        if self.stats().dense {
            d.standardize();
        } else {
            d.scale_to_unit_variance();
        }
        d.name = self.stats().name.to_string();
        d
    }

    /// The paper's hidden-layer count for this dataset.
    pub fn hidden_layers(&self) -> usize {
        self.stats().hidden_layers
    }

    /// Parse a dataset name (the paper's spelling, case-insensitive).
    pub fn from_name(name: &str) -> Option<PaperDataset> {
        match name.to_ascii_lowercase().as_str() {
            "covtype" => Some(PaperDataset::Covtype),
            "w8a" => Some(PaperDataset::W8a),
            "delicious" => Some(PaperDataset::Delicious),
            "real-sim" | "realsim" | "real_sim" => Some(PaperDataset::RealSim),
            _ => None,
        }
    }
}

impl std::fmt::Display for PaperDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.stats().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Labels;

    #[test]
    fn table2_stats_match_paper() {
        let c = PaperDataset::Covtype.stats();
        assert_eq!((c.examples, c.features, c.classes), (581_012, 54, 2));
        let w = PaperDataset::W8a.stats();
        assert_eq!((w.examples, w.features, w.classes), (49_749, 300, 2));
        let d = PaperDataset::Delicious.stats();
        assert_eq!((d.examples, d.features, d.classes), (16_105, 500, 983));
        assert!(d.multilabel);
        let r = PaperDataset::RealSim.stats();
        assert_eq!((r.examples, r.features, r.classes), (72_309, 20_958, 2));
    }

    #[test]
    fn depths_match_section_7a() {
        assert_eq!(PaperDataset::RealSim.hidden_layers(), 4);
        assert_eq!(PaperDataset::Covtype.hidden_layers(), 6);
        assert_eq!(PaperDataset::W8a.hidden_layers(), 8);
        assert_eq!(PaperDataset::Delicious.hidden_layers(), 8);
    }

    #[test]
    fn scaled_generation_keeps_proportions() {
        let d = PaperDataset::W8a.generate(0.01, 42);
        assert_eq!(d.features(), 300); // narrow feature spaces not shrunk
        assert!((490..=510).contains(&d.len()), "examples {}", d.len());
        assert_eq!(d.num_classes(), 2);
    }

    #[test]
    fn realsim_shrinks_features_with_sqrt_scale() {
        let d = PaperDataset::RealSim.generate(0.01, 42);
        // 20958 * 0.1 ≈ 2096
        assert!(
            (1800..=2400).contains(&d.features()),
            "features {}",
            d.features()
        );
        assert!(d.sparsity() > 0.5, "real-sim stand-in should stay sparse");
    }

    #[test]
    fn delicious_is_multilabel() {
        let d = PaperDataset::Delicious.generate(0.02, 1);
        assert!(matches!(d.labels, Labels::MultiHot(_)));
        assert!(d.num_classes() >= 8);
    }

    #[test]
    fn from_name_roundtrip() {
        for p in PaperDataset::all() {
            assert_eq!(PaperDataset::from_name(p.stats().name), Some(p));
        }
        assert_eq!(
            PaperDataset::from_name("REAL-SIM"),
            Some(PaperDataset::RealSim)
        );
        assert_eq!(PaperDataset::from_name("imagenet"), None);
    }

    #[test]
    fn covtype_standardizes_to_zero_mean() {
        // Pins the fixed preprocessing gate: covtype is the dense preset,
        // so every feature column must come out mean≈0 / var≈1. Before the
        // fix it was only variance-scaled (column means stayed positive).
        let d = PaperDataset::Covtype.generate(0.002, 7);
        let (rows, cols) = (d.len(), d.features());
        for c in 0..cols {
            let mut mean = 0.0f64;
            let mut var = 0.0f64;
            for r in 0..rows {
                mean += d.x.get(r, c) as f64;
            }
            mean /= rows as f64;
            for r in 0..rows {
                let dv = d.x.get(r, c) as f64 - mean;
                var += dv * dv;
            }
            var /= rows as f64;
            assert!(mean.abs() < 1e-3, "col {c} mean {mean}");
            assert!((var - 1.0).abs() < 0.1 || var < 1e-9, "col {c} var {var}");
        }
        // Sparse presets must stay un-centered (zeros preserved).
        let s = PaperDataset::W8a.generate(0.01, 7);
        assert!(s.sparsity() > 0.5, "w8a stand-in should stay sparse");
    }

    #[test]
    fn dense_flag_matches_paper_presets() {
        assert!(PaperDataset::Covtype.stats().dense);
        assert!(!PaperDataset::W8a.stats().dense);
        assert!(!PaperDataset::Delicious.stats().dense);
        assert!(!PaperDataset::RealSim.stats().dense);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = PaperDataset::Covtype.generate(0.001, 5);
        let b = PaperDataset::Covtype.generate(0.001, 5);
        assert_eq!(a.x, b.x);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_panics() {
        PaperDataset::Covtype.generate(0.0, 1);
    }
}
