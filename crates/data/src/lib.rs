//! # hetero-data
//!
//! Datasets and batch scheduling for the hetero-sgd workspace.
//!
//! The paper evaluates on four LIBSVM classification datasets (Table II):
//! `covtype`, `w8a`, `delicious` (983-label multi-label), and `real-sim`
//! (20,958-dimensional). Those exact files are not shipped here, so this
//! crate provides both:
//!
//! - [`libsvm`] — a full LIBSVM-format parser/writer (single- and
//!   multi-label), used verbatim when the real files are available on disk;
//! - [`synth`] — seeded synthetic generators that match a dataset's *shape*
//!   (examples × features × classes, sparsity, class balance, separability),
//!   which is what the paper's convergence comparisons actually exercise;
//! - [`catalog`] — the four paper datasets as named presets carrying their
//!   Table II statistics, per-dataset DNN depth (§VII-A), and a `scale`
//!   knob to generate laptop-sized variants with the same proportions;
//! - [`batch`] — the coordinator-side batch schedule: contiguous example
//!   ranges handed out per worker request, with per-epoch reshuffling.

#![warn(missing_docs)]

pub mod batch;
pub mod catalog;
pub mod dataset;
pub mod libsvm;
pub mod synth;

pub use batch::{BatchScheduler, ShuffledScheduler};
pub use catalog::{DatasetStats, PaperDataset};
pub use dataset::{DenseDataset, Labels};
pub use synth::SynthConfig;
