//! Network shape and loss configuration.

use serde::{Deserialize, Serialize};

use crate::activation::Activation;

/// Output-layer / loss configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LossKind {
    /// Softmax output + cross-entropy against a single class label
    /// (covtype, w8a, real-sim in the paper).
    SoftmaxCrossEntropy,
    /// Sigmoid output + mean binary cross-entropy against a multi-hot label
    /// vector (the 983-label `delicious` dataset).
    MultiLabelBce,
}

/// Shape of a fully-connected MLP plus its training loss.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MlpSpec {
    /// Dimensionality of the input feature vectors (`d_1` in the paper).
    pub input_dim: usize,
    /// Width of each hidden layer, in order. The paper uses a constant 512.
    pub hidden: Vec<usize>,
    /// Number of output classes/labels.
    pub classes: usize,
    /// Hidden activation (paper: sigmoid).
    pub activation: Activation,
    /// Output/loss configuration.
    pub loss: LossKind,
}

impl MlpSpec {
    /// Paper-style network: `depth` hidden layers of 512 sigmoid units.
    pub fn paper(input_dim: usize, depth: usize, classes: usize, loss: LossKind) -> Self {
        MlpSpec {
            input_dim,
            hidden: vec![512; depth],
            classes,
            activation: Activation::Sigmoid,
            loss,
        }
    }

    /// Small network for tests and examples.
    pub fn tiny(input_dim: usize, classes: usize) -> Self {
        MlpSpec {
            input_dim,
            hidden: vec![16, 16],
            classes,
            activation: Activation::Sigmoid,
            loss: LossKind::SoftmaxCrossEntropy,
        }
    }

    /// Layer input/output dimensions, including the output layer:
    /// `[(input_dim, h1), (h1, h2), ..., (hk, classes)]`.
    pub fn layer_dims(&self) -> Vec<(usize, usize)> {
        let mut dims = Vec::with_capacity(self.hidden.len() + 1);
        let mut prev = self.input_dim;
        for &h in &self.hidden {
            dims.push((prev, h));
            prev = h;
        }
        dims.push((prev, self.classes));
        dims
    }

    /// Total number of layers (hidden + output).
    pub fn num_layers(&self) -> usize {
        self.hidden.len() + 1
    }

    /// Total trainable parameters (weights + biases).
    pub fn num_params(&self) -> usize {
        self.layer_dims().iter().map(|&(i, o)| i * o + o).sum()
    }

    /// FLOPs for one example's forward pass (2·in·out per layer, the
    /// matrix-product cost that dominates; element-wise ops ignored).
    pub fn forward_flops_per_example(&self) -> u64 {
        self.layer_dims()
            .iter()
            .map(|&(i, o)| 2 * (i as u64) * (o as u64))
            .sum()
    }

    /// FLOPs for one example's full SGD step: forward + backward.
    ///
    /// Backward costs ≈ 2× forward (gradient w.r.t. inputs and weights each
    /// cost one GEMM of the forward shape), the standard 3× total rule.
    pub fn train_flops_per_example(&self) -> u64 {
        3 * self.forward_flops_per_example()
    }

    /// Bytes of one f32 parameter set (model or gradient).
    pub fn param_bytes(&self) -> u64 {
        4 * self.num_params() as u64
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.input_dim == 0 {
            return Err("input_dim must be positive".into());
        }
        if self.classes == 0 {
            return Err("classes must be positive".into());
        }
        if self.hidden.contains(&0) {
            return Err("hidden layer widths must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_shapes() {
        let s = MlpSpec::paper(54, 6, 2, LossKind::SoftmaxCrossEntropy);
        assert_eq!(s.hidden, vec![512; 6]);
        assert_eq!(s.num_layers(), 7);
        let dims = s.layer_dims();
        assert_eq!(dims[0], (54, 512));
        assert_eq!(dims[6], (512, 2));
    }

    #[test]
    fn param_count() {
        // 2 -> 3 -> 2: (2*3+3) + (3*2+2) = 9 + 8 = 17
        let s = MlpSpec {
            input_dim: 2,
            hidden: vec![3],
            classes: 2,
            activation: Activation::Sigmoid,
            loss: LossKind::SoftmaxCrossEntropy,
        };
        assert_eq!(s.num_params(), 17);
        assert_eq!(s.param_bytes(), 68);
    }

    #[test]
    fn flops_counts() {
        let s = MlpSpec {
            input_dim: 4,
            hidden: vec![8],
            classes: 2,
            activation: Activation::Sigmoid,
            loss: LossKind::SoftmaxCrossEntropy,
        };
        // 2*4*8 + 2*8*2 = 64 + 32 = 96
        assert_eq!(s.forward_flops_per_example(), 96);
        assert_eq!(s.train_flops_per_example(), 288);
    }

    #[test]
    fn no_hidden_layers_is_logistic_regression() {
        let s = MlpSpec {
            input_dim: 10,
            hidden: vec![],
            classes: 3,
            activation: Activation::Sigmoid,
            loss: LossKind::SoftmaxCrossEntropy,
        };
        assert_eq!(s.num_layers(), 1);
        assert_eq!(s.layer_dims(), vec![(10, 3)]);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn validate_rejects_zeros() {
        let mut s = MlpSpec::tiny(4, 2);
        s.input_dim = 0;
        assert!(s.validate().is_err());
        let mut s = MlpSpec::tiny(4, 2);
        s.classes = 0;
        assert!(s.validate().is_err());
        let mut s = MlpSpec::tiny(4, 2);
        s.hidden = vec![8, 0];
        assert!(s.validate().is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let s = MlpSpec::paper(300, 8, 2, LossKind::SoftmaxCrossEntropy);
        let json = serde_json::to_string(&s).unwrap();
        let back: MlpSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
