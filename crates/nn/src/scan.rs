//! Per-layer health scans: gradient/update norms and NaN/Inf detection.
//!
//! The training-health watchdog (`hetero-flight`) needs, for every applied
//! gradient or merged replica delta, (a) the per-layer L2 norm of the
//! update and (b) whether any element was non-finite. [`MergeScan`] is the
//! allocation-free accumulator both producers fill:
//!
//! - CPU Hogwild lanes call [`scan_model`] on the workspace gradient —
//!   one extra SIMD pass over a buffer that is tiny next to the GEMMs that
//!   produced it;
//! - GPU merges use [`crate::SharedModel::merge_delta_scaled_scanned`],
//!   which folds the scan into the CAS merge loop itself — zero extra
//!   passes over memory.
//!
//! Scans are read-only observations: they never change what is written to
//! the model, so enabling the watchdog cannot perturb training math.

use crate::model::Model;
use hetero_tensor::ops;

/// Accumulated scan results for one model layer.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LayerScan {
    /// Sum of squared *finite* elements seen so far (f64 accumulator).
    pub sumsq: f64,
    /// Count of NaN/±Inf elements seen so far.
    pub nonfinite: u64,
}

impl LayerScan {
    /// L2 norm of everything accumulated into this layer.
    pub fn norm(&self) -> f64 {
        self.sumsq.sqrt()
    }
}

/// Per-layer scan accumulator, sized once at worker startup and reused for
/// every batch (no allocations on the hot path).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MergeScan {
    layers: Vec<LayerScan>,
}

impl MergeScan {
    /// An accumulator with `num_layers` zeroed slots.
    pub fn new(num_layers: usize) -> Self {
        MergeScan {
            layers: vec![LayerScan::default(); num_layers],
        }
    }

    /// An accumulator shaped like `model` (one slot per layer).
    pub fn for_model(model: &Model) -> Self {
        Self::new(model.layers().len())
    }

    /// Zero every slot for the next batch (keeps the allocation).
    pub fn reset(&mut self) {
        self.layers
            .iter_mut()
            .for_each(|l| *l = LayerScan::default());
    }

    /// Per-layer accumulated results.
    pub fn layers(&self) -> &[LayerScan] {
        &self.layers
    }

    /// Mutable slot for layer `l` (producers accumulate through this).
    pub fn layer_mut(&mut self, l: usize) -> &mut LayerScan {
        &mut self.layers[l]
    }

    /// Total non-finite elements across all layers.
    pub fn nonfinite_total(&self) -> u64 {
        self.layers.iter().map(|l| l.nonfinite).sum()
    }

    /// `(layer index, L2 norm)` of the layer with the largest norm, or
    /// `None` for an empty accumulator.
    pub fn peak(&self) -> Option<(usize, f64)> {
        self.layers
            .iter()
            .enumerate()
            .map(|(i, l)| (i, l.norm()))
            .fold(None, |best, (i, n)| match best {
                Some((_, bn)) if bn >= n => best,
                _ => Some((i, n)),
            })
    }

    /// First layer index containing a non-finite element, if any.
    pub fn first_nonfinite_layer(&self) -> Option<usize> {
        self.layers.iter().position(|l| l.nonfinite > 0)
    }
}

/// Accumulate a per-layer scan of `model` (weights + biases per layer)
/// into `scan` using the SIMD `sumsq_nonfinite` reduction.
///
/// Used on workspace *gradients* (a [`crate::Gradient`] is a `Model`) by
/// the CPU lanes, and on merged snapshots at eval time for weight norms.
///
/// # Panics
/// Panics if `scan` has fewer slots than `model` has layers.
pub fn scan_model(model: &Model, scan: &mut MergeScan) {
    assert!(
        scan.layers.len() >= model.layers().len(),
        "scan has {} slots for {} layers",
        scan.layers.len(),
        model.layers().len()
    );
    for (l, layer) in model.layers().iter().enumerate() {
        let (ws, wb) = ops::sumsq_nonfinite(layer.w.as_slice());
        let (bs, bb) = ops::sumsq_nonfinite(&layer.b);
        let slot = &mut scan.layers[l];
        slot.sumsq += ws + bs;
        slot.nonfinite += wb + bb;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::InitScheme;
    use crate::spec::MlpSpec;

    fn model() -> Model {
        Model::new(MlpSpec::tiny(4, 2), InitScheme::Xavier, 7)
    }

    #[test]
    fn scan_matches_manual_norms() {
        let m = model();
        let mut scan = MergeScan::for_model(&m);
        scan_model(&m, &mut scan);
        for (l, layer) in m.layers().iter().enumerate() {
            let manual: f64 = layer
                .w
                .as_slice()
                .iter()
                .chain(&layer.b)
                .map(|&v| v as f64 * v as f64)
                .sum();
            assert!((scan.layers()[l].sumsq - manual).abs() < 1e-9);
            assert_eq!(scan.layers()[l].nonfinite, 0);
        }
        assert_eq!(scan.first_nonfinite_layer(), None);
        assert!(scan.peak().is_some());
    }

    #[test]
    fn poisoned_layer_is_counted_and_located() {
        let mut m = model();
        m.layers_mut()[1].b[0] = f32::NAN;
        let mut scan = MergeScan::for_model(&m);
        scan_model(&m, &mut scan);
        assert_eq!(scan.nonfinite_total(), 1);
        assert_eq!(scan.first_nonfinite_layer(), Some(1));
        // The poisoned element is excluded from the norm, not NaN-ing it.
        assert!(scan.layers()[1].norm().is_finite());
    }

    #[test]
    fn reset_keeps_capacity_and_zeroes() {
        let m = model();
        let mut scan = MergeScan::for_model(&m);
        scan_model(&m, &mut scan);
        scan.reset();
        assert!(scan.layers().iter().all(|l| *l == LayerScan::default()));
    }
}
