//! The framework's *global model*: shared, concurrently-updated parameters.
//!
//! §V of the paper: CPU workers access the global model **by reference** and
//! update it Hogwild-style — concurrent, unsynchronized read–modify–write,
//! where lost updates are tolerated by design. GPU workers keep a **deep
//! copy** replica and merge it back asynchronously.
//!
//! In Rust, "benign" data races are still UB on plain `f32`, so the storage
//! is a flat `Vec<AtomicU32>` holding f32 bit patterns accessed with
//! `Relaxed` ordering. Two update flavours are provided:
//!
//! - [`SharedModel::apply_gradient_racy`] — load/compute/store per element.
//!   Concurrent writers can overwrite each other, which is *exactly* the
//!   Hogwild semantics the paper relies on (conflicts happen, convergence
//!   survives).
//! - [`SharedModel::apply_gradient_atomic`] — per-element CAS loop; no
//!   update is ever lost. Used to study the effect of lost updates (the
//!   paper's β parameter quantifies the "surviving fraction").

use crate::model::Model;
use crate::spec::MlpSpec;
use crate::sync::{AtomicU32, AtomicU64, Ordering};

// Ordering discipline for this file: every atomic access is `Relaxed`. The
// parameters are pure numeric data — no worker ever uses a parameter value
// to decide whether *other* memory is initialized, so no access needs to
// publish or acquire anything. Lost updates (racy path) and interleaved
// snapshots are tolerated by the Hogwild design; what Rust requires is only
// that the accesses be atomic, not that they be ordered. The loom suite
// (`tests/loom_shared.rs`) checks the CAS path loses nothing and the racy
// path stays within its feasible envelope under all interleavings.

/// Every how many parameters the sampled racy path probes for write
/// conflicts (see [`SharedModel::apply_gradient_racy_sampled`]). Sparse on
/// purpose: the probe is a strong CAS instead of a plain store, and the
/// estimator only needs a sample, not a census.
const CONFLICT_SAMPLE_STRIDE: usize = 16;

/// Shared parameter store for concurrent SGD.
pub struct SharedModel {
    spec: MlpSpec,
    params: Vec<AtomicU32>,
    /// Total number of model updates applied (any worker).
    updates: AtomicU64,
    /// Parameter writes probed for conflicts by the sampled racy path.
    conflict_samples: AtomicU64,
    /// Probed writes that observed a racing foreign write.
    conflict_losses: AtomicU64,
}

impl SharedModel {
    /// Wrap an initial model into shared storage.
    pub fn new(model: &Model) -> Self {
        let params = model
            .flatten()
            .into_iter()
            .map(|v| AtomicU32::new(v.to_bits()))
            .collect();
        SharedModel {
            spec: model.spec().clone(),
            params,
            updates: AtomicU64::new(0),
            conflict_samples: AtomicU64::new(0),
            conflict_losses: AtomicU64::new(0),
        }
    }

    /// Network specification of the stored model.
    pub fn spec(&self) -> &MlpSpec {
        &self.spec
    }

    /// Number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Total updates applied so far.
    pub fn update_count(&self) -> u64 {
        // Relaxed: monitoring counter (see module ordering note above).
        self.updates.load(Ordering::Relaxed)
    }

    /// Read the current parameters into a flat vector (relaxed loads; the
    /// snapshot may interleave with concurrent updates — by design).
    pub fn read_flat(&self) -> Vec<f32> {
        // Relaxed: snapshot may interleave with writers by design; each
        // element is still read tear-free (see module ordering note).
        self.params
            .iter()
            .map(|p| f32::from_bits(p.load(Ordering::Relaxed)))
            .collect()
    }

    /// Deep-copy snapshot as a [`Model`] — what a GPU worker transfers to
    /// device memory, and what the coordinator evaluates the loss on.
    pub fn snapshot(&self) -> Model {
        let mut model = Model::zeros_like(&self.spec);
        self.snapshot_into(&mut model);
        model
    }

    /// Read the current parameters into an existing model, reusing its
    /// buffers — the allocation-free counterpart of
    /// [`snapshot`](Self::snapshot) used by steady-state worker loops.
    pub fn snapshot_into(&self, model: &mut Model) {
        assert_eq!(model.spec(), &self.spec, "snapshot spec mismatch");
        let mut idx = 0;
        // Relaxed: snapshot may interleave with writers by design; each
        // element is still read tear-free (see module ordering note).
        for layer in model.layers_mut() {
            for v in layer.w.as_mut_slice() {
                *v = f32::from_bits(self.params[idx].load(Ordering::Relaxed));
                idx += 1;
            }
            for v in layer.b.iter_mut() {
                *v = f32::from_bits(self.params[idx].load(Ordering::Relaxed));
                idx += 1;
            }
        }
    }

    /// Overwrite the stored parameters from a model (merging a deep replica
    /// back; concurrent readers may observe a mix of old and new values).
    pub fn store(&self, model: &Model) {
        assert_eq!(model.spec(), &self.spec, "replica spec mismatch");
        // Relaxed: overwrite is allowed to interleave with concurrent
        // readers/writers (see module ordering note).
        for (p, v) in self.params.iter().zip(model.flatten()) {
            p.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Hogwild update: `w ← w − eta·g` with racy per-element load/store.
    ///
    /// Lost updates under contention are expected and tolerated — this is
    /// the paper's CPU-worker update path.
    pub fn apply_gradient_racy(&self, grad: &Model, eta: f32) {
        assert_eq!(grad.spec(), &self.spec, "gradient spec mismatch");
        let mut idx = 0;
        // Relaxed load/store pairs: the non-atomic read-modify-write is the
        // point — concurrent writers may overwrite each other (Hogwild
        // lost-update semantics; module ordering note above).
        for layer in grad.layers() {
            for &g in layer.w.as_slice() {
                let p = &self.params[idx];
                let cur = f32::from_bits(p.load(Ordering::Relaxed));
                p.store((cur - eta * g).to_bits(), Ordering::Relaxed);
                idx += 1;
            }
            for &g in &layer.b {
                let p = &self.params[idx];
                // Relaxed: same racy Hogwild load/store as the weights above.
                let cur = f32::from_bits(p.load(Ordering::Relaxed));
                p.store((cur - eta * g).to_bits(), Ordering::Relaxed);
                idx += 1;
            }
        }
        // Relaxed: monitoring counter.
        self.updates.fetch_add(1, Ordering::Relaxed);
    }

    /// Hogwild update with **conflict sampling**: identical model dynamics
    /// to [`apply_gradient_racy`](Self::apply_gradient_racy), but every
    /// `CONFLICT_SAMPLE_STRIDE`-th (16th) parameter write is probed with a
    /// strong `compare_exchange` first. A probe that fails observed a
    /// foreign write racing this one — exactly the event that makes a
    /// Hogwild update partially "not survive" — and is tallied into the
    /// measured-β estimator ([`beta_estimate`](Self::beta_estimate)). On a
    /// failed probe the value is stored anyway, preserving the racy
    /// last-writer-wins semantics bit-for-bit.
    pub fn apply_gradient_racy_sampled(&self, grad: &Model, eta: f32) {
        assert_eq!(grad.spec(), &self.spec, "gradient spec mismatch");
        let mut idx = 0;
        let mut samples = 0u64;
        let mut losses = 0u64;
        let mut apply = |g: f32| {
            let p = &self.params[idx];
            // Relaxed load/store pairs: same racy Hogwild semantics as
            // `apply_gradient_racy` (module ordering note above); the
            // sampled strong CAS below also needs no ordering — only its
            // success/failure verdict is used, as a conflict *observation*.
            let cur = p.load(Ordering::Relaxed);
            let next = (f32::from_bits(cur) - eta * g).to_bits();
            if idx % CONFLICT_SAMPLE_STRIDE == 0 {
                samples += 1;
                if p.compare_exchange(cur, next, Ordering::Relaxed, Ordering::Relaxed)
                    .is_err()
                {
                    losses += 1;
                    p.store(next, Ordering::Relaxed);
                }
            } else {
                // Relaxed: unsampled lane of the same racy store above.
                p.store(next, Ordering::Relaxed);
            }
            idx += 1;
        };
        for layer in grad.layers() {
            layer.w.as_slice().iter().for_each(|&g| apply(g));
            layer.b.iter().for_each(|&g| apply(g));
        }
        // Relaxed: monitoring counters.
        self.conflict_samples.fetch_add(samples, Ordering::Relaxed);
        if losses > 0 {
            self.conflict_losses.fetch_add(losses, Ordering::Relaxed);
        }
        self.updates.fetch_add(1, Ordering::Relaxed);
    }

    /// Probed and conflicting parameter writes accumulated by
    /// [`apply_gradient_racy_sampled`](Self::apply_gradient_racy_sampled):
    /// `(samples, losses)`.
    pub fn conflict_counts(&self) -> (u64, u64) {
        // Relaxed: monitoring counters.
        (
            self.conflict_samples.load(Ordering::Relaxed),
            self.conflict_losses.load(Ordering::Relaxed),
        )
    }

    /// Measured surviving-update fraction β̂ = 1 − losses/samples, from the
    /// sampled conflict probes. `None` until at least one probe ran (e.g.
    /// the run never used the sampled path). The paper fixes β = 1 by
    /// default; this estimator lets the adaptive controller credit CPU
    /// batches with `t·β̂` instead when `TrainConfig::measured_beta` is on.
    pub fn beta_estimate(&self) -> Option<f64> {
        let (samples, losses) = self.conflict_counts();
        if samples == 0 {
            return None;
        }
        Some(1.0 - losses as f64 / samples as f64)
    }

    /// Lock-free exact update: per-element CAS loop; never loses a write.
    pub fn apply_gradient_atomic(&self, grad: &Model, eta: f32) {
        assert_eq!(grad.spec(), &self.spec, "gradient spec mismatch");
        let mut idx = 0;
        let mut apply = |g: f32| {
            let p = &self.params[idx];
            // Relaxed CAS loop: atomicity of each compare_exchange is what
            // guarantees no lost update; ordering is irrelevant because the
            // value is pure data (module ordering note above).
            let mut cur = p.load(Ordering::Relaxed);
            loop {
                let next = (f32::from_bits(cur) - eta * g).to_bits();
                match p.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
            idx += 1;
        };
        for layer in grad.layers() {
            layer.w.as_slice().iter().for_each(|&g| apply(g));
            layer.b.iter().for_each(|&g| apply(g));
        }
        // Relaxed: monitoring counter.
        self.updates.fetch_add(1, Ordering::Relaxed);
    }

    /// Merge a deep replica by adding its delta from `base`:
    /// `w ← w + (replica − base)` element-wise (atomic).
    ///
    /// This is how a GPU worker folds its locally-trained replica into the
    /// global model without clobbering CPU updates that landed meanwhile.
    pub fn merge_delta(&self, base: &Model, replica: &Model) {
        self.merge_delta_scaled(base, replica, 1.0);
    }

    /// Merge a replica delta scaled by `scale`:
    /// `w ← w + scale·(replica − base)`.
    ///
    /// `scale < 1` implements the paper's §VI-B staleness compensation —
    /// discounting a delta whose base snapshot has since gone stale.
    pub fn merge_delta_scaled(&self, base: &Model, replica: &Model, scale: f32) {
        self.merge_delta_scaled_observed(base, replica, scale);
    }

    /// Like [`merge_delta_scaled`](Self::merge_delta_scaled) but returns
    /// the number of CAS retries the merge incurred — a direct measure of
    /// merge contention with concurrent Hogwild writers (0 on an
    /// uncontended merge). Feeds the `MergeRetries` histogram.
    pub fn merge_delta_scaled_observed(&self, base: &Model, replica: &Model, scale: f32) -> u64 {
        // Monomorphized no-op observer: identical codegen to the original
        // unscanned merge.
        self.merge_core(base, replica, scale, |_, _| {})
    }

    /// [`merge_delta_scaled_observed`](Self::merge_delta_scaled_observed)
    /// with the training-health scan fused into the merge loop: each
    /// scaled delta is accumulated (sum of squares of the finite part plus
    /// a NaN/±Inf count) into the caller-owned per-layer `scan` as it is
    /// CAS-applied — zero extra passes over the parameters and zero
    /// allocations. A non-finite delta is still merged (the poisoned run
    /// is the watchdog's problem to abort, not the merge's to mask).
    pub fn merge_delta_scaled_scanned(
        &self,
        base: &Model,
        replica: &Model,
        scale: f32,
        scan: &mut crate::scan::MergeScan,
    ) -> u64 {
        self.merge_core(base, replica, scale, |layer, delta| {
            let slot = scan.layer_mut(layer);
            if delta.is_finite() {
                slot.sumsq += delta as f64 * delta as f64;
            } else {
                slot.nonfinite += 1;
            }
        })
    }

    /// Shared merge body: CAS-applies `scale·(replica − base)` and calls
    /// `obs(layer, delta)` for every element (including zero deltas, which
    /// are observed but not CAS-applied).
    fn merge_core(
        &self,
        base: &Model,
        replica: &Model,
        scale: f32,
        mut obs: impl FnMut(usize, f32),
    ) -> u64 {
        assert_eq!(base.spec(), &self.spec, "base spec mismatch");
        assert_eq!(replica.spec(), &self.spec, "replica spec mismatch");
        assert!(scale.is_finite() && scale >= 0.0, "bad merge scale");
        let mut idx = 0;
        let mut retries = 0u64;
        for (layer, (bl, rl)) in base.layers().iter().zip(replica.layers()).enumerate() {
            let mut merge = |bv: f32, rv: f32| {
                let p = &self.params[idx];
                idx += 1;
                let delta = scale * (rv - bv);
                obs(layer, delta);
                if delta == 0.0 {
                    return;
                }
                // Relaxed CAS loop: same argument as `apply_gradient_atomic`
                // — the add must not be lost, but needs no ordering. Failed
                // exchanges are tallied as contention observations.
                let mut cur = p.load(Ordering::Relaxed);
                loop {
                    let next = (f32::from_bits(cur) + delta).to_bits();
                    match p.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                        Ok(_) => break,
                        Err(actual) => {
                            retries += 1;
                            cur = actual;
                        }
                    }
                }
            };
            for (bv, rv) in bl.w.as_slice().iter().zip(rl.w.as_slice()) {
                merge(*bv, *rv);
            }
            for (bv, rv) in bl.b.iter().zip(&rl.b) {
                merge(*bv, *rv);
            }
        }
        // Relaxed: monitoring counter.
        self.updates.fetch_add(1, Ordering::Relaxed);
        retries
    }
}

impl std::fmt::Debug for SharedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedModel")
            .field("params", &self.params.len())
            .field("updates", &self.update_count())
            .finish()
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;
    use crate::init::InitScheme;
    use crate::spec::MlpSpec;
    use std::sync::Arc;

    fn setup() -> (Model, SharedModel) {
        let m = Model::new(MlpSpec::tiny(3, 2), InitScheme::Xavier, 9);
        let s = SharedModel::new(&m);
        (m, s)
    }

    #[test]
    fn snapshot_roundtrips_initial_model() {
        let (m, s) = setup();
        assert_eq!(s.snapshot(), m);
        assert_eq!(s.num_params(), m.num_params());
    }

    #[test]
    fn snapshot_into_matches_snapshot() {
        let (m, s) = setup();
        let mut grad = Model::zeros_like(m.spec());
        grad.layers_mut()[0].w.set(0, 1, 2.0);
        grad.layers_mut()[1].b[1] = -1.0;
        s.apply_gradient_racy(&grad, 0.1);
        let mut out = Model::zeros_like(m.spec());
        s.snapshot_into(&mut out);
        assert_eq!(out, s.snapshot());
    }

    #[test]
    fn racy_update_applied_when_uncontended() {
        let (m, s) = setup();
        let mut grad = Model::zeros_like(m.spec());
        grad.layers_mut()[0].w.set(0, 0, 1.0);
        s.apply_gradient_racy(&grad, 0.1);
        let snap = s.snapshot();
        let expect = m.layers()[0].w.get(0, 0) - 0.1;
        assert!((snap.layers()[0].w.get(0, 0) - expect).abs() < 1e-6);
        assert_eq!(s.update_count(), 1);
    }

    #[test]
    fn atomic_update_equals_racy_when_serial() {
        let (m, s1) = setup();
        let s2 = SharedModel::new(&m);
        let mut grad = Model::zeros_like(m.spec());
        grad.layers_mut()[1].b[0] = 2.0;
        s1.apply_gradient_racy(&grad, 0.5);
        s2.apply_gradient_atomic(&grad, 0.5);
        assert_eq!(s1.read_flat(), s2.read_flat());
    }

    #[test]
    fn sampled_racy_matches_racy_and_measures_beta_one_when_serial() {
        let (m, s1) = setup();
        let s2 = SharedModel::new(&m);
        let mut grad = Model::zeros_like(m.spec());
        grad.layers_mut()[0].w.set(0, 0, 1.0);
        grad.layers_mut()[1].b[0] = -0.5;
        s1.apply_gradient_racy(&grad, 0.3);
        s2.apply_gradient_racy_sampled(&grad, 0.3);
        assert_eq!(s1.read_flat(), s2.read_flat());
        assert_eq!(s2.update_count(), 1);
        // Uncontended probes never observe a conflict: β̂ = 1 exactly.
        let (samples, losses) = s2.conflict_counts();
        assert!(samples >= 1);
        assert_eq!(losses, 0);
        assert_eq!(s2.beta_estimate(), Some(1.0));
        // The plain racy path never probes, so it has no estimate.
        assert_eq!(s1.beta_estimate(), None);
    }

    #[test]
    fn sampled_racy_under_contention_keeps_beta_in_unit_interval() {
        let (m, s) = setup();
        let s = Arc::new(s);
        let mut grad = Model::zeros_like(m.spec());
        grad.layers_mut()[0].w.set(0, 0, 1e-6);
        let grad = Arc::new(grad);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                let g = Arc::clone(&grad);
                std::thread::spawn(move || {
                    for _ in 0..2000 {
                        s.apply_gradient_racy_sampled(&g, 1.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let beta = s.beta_estimate().unwrap();
        assert!((0.0..=1.0).contains(&beta), "beta {beta} out of range");
        let (samples, losses) = s.conflict_counts();
        assert!(samples >= 8000);
        assert!(losses <= samples);
    }

    #[test]
    fn observed_merge_reports_zero_retries_uncontended() {
        let (m, s) = setup();
        let base = m.clone();
        let mut replica = m.clone();
        let old = replica.layers()[0].w.get(0, 1);
        replica.layers_mut()[0].w.set(0, 1, old + 1.0);
        let retries = s.merge_delta_scaled_observed(&base, &replica, 1.0);
        assert_eq!(retries, 0);
        assert!((s.snapshot().layers()[0].w.get(0, 1) - (old + 1.0)).abs() < 1e-6);
    }

    #[test]
    fn store_overwrites() {
        let (m, s) = setup();
        let other = Model::new(m.spec().clone(), InitScheme::Constant(0.25), 0);
        s.store(&other);
        assert_eq!(s.snapshot(), other);
    }

    #[test]
    fn merge_delta_adds_difference() {
        let (m, s) = setup();
        // replica = base + 0.5 on one weight
        let base = m.clone();
        let mut replica = m.clone();
        let old = replica.layers()[0].w.get(1, 1);
        replica.layers_mut()[0].w.set(1, 1, old + 0.5);
        s.merge_delta(&base, &replica);
        let snap = s.snapshot();
        assert!((snap.layers()[0].w.get(1, 1) - (old + 0.5)).abs() < 1e-6);
        // Other params untouched.
        assert_eq!(snap.layers()[1].w, m.layers()[1].w);
    }

    #[test]
    fn atomic_concurrent_updates_none_lost() {
        let (m, s) = setup();
        let s = Arc::new(s);
        let mut grad = Model::zeros_like(m.spec());
        grad.layers_mut()[0].w.set(0, 0, 1.0);
        let grad = Arc::new(grad);
        let threads = 8;
        let per = 500;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let s = Arc::clone(&s);
                let g = Arc::clone(&grad);
                std::thread::spawn(move || {
                    for _ in 0..per {
                        s.apply_gradient_atomic(&g, 1.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let expected = m.layers()[0].w.get(0, 0) - (threads * per) as f32;
        let got = s.snapshot().layers()[0].w.get(0, 0);
        assert!(
            (got - expected).abs() < 1e-2,
            "atomic adds lost: {got} vs {expected}"
        );
        assert_eq!(s.update_count(), (threads * per) as u64);
    }

    #[test]
    fn racy_concurrent_updates_may_lose_but_stay_finite() {
        // Hogwild semantics: the final value lies between "all lost but one"
        // and "none lost"; it must never be corrupted.
        let (m, s) = setup();
        let s = Arc::new(s);
        let mut grad = Model::zeros_like(m.spec());
        grad.layers_mut()[0].w.set(0, 0, 1.0);
        let grad = Arc::new(grad);
        let threads = 4;
        let per = 1000i64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let s = Arc::clone(&s);
                let g = Arc::clone(&grad);
                std::thread::spawn(move || {
                    for _ in 0..per {
                        s.apply_gradient_racy(&g, 1.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let start = m.layers()[0].w.get(0, 0);
        let got = s.snapshot().layers()[0].w.get(0, 0);
        let applied = (start - got) as i64;
        assert!(
            applied >= 1 && applied <= threads as i64 * per,
            "applied {applied} outside feasible range"
        );
        assert!(got.is_finite());
    }
}
