//! Training with a sparse input layer.
//!
//! For bag-of-words data like real-sim (~0.25% dense) only the **first**
//! layer touches the input, so sparsity pays off exactly twice per step:
//! the first forward product `X·W₁ᵀ` and the first weight gradient
//! `∇W₁ = δ₁ᵀ·X`. Every other layer is dense regardless. This module plugs
//! [`hetero_tensor::CsrMatrix`] into those two spots and reuses the dense
//! pipeline everywhere else — making the paper's "process everything dense"
//! decision (§VII-A) measurable rather than assumed.

use hetero_tensor::{ops, CsrMatrix, Matrix};

use crate::backward::Gradient;
use crate::forward::{loss, ForwardPass, Targets};
use crate::model::Model;
use crate::spec::LossKind;

/// Forward pass with a sparse batch (first layer sparse, rest dense).
pub fn forward_sparse(model: &Model, x: &CsrMatrix, parallel: bool) -> ForwardPass {
    assert_eq!(
        x.cols(),
        model.spec().input_dim,
        "sparse batch width {} != input_dim {}",
        x.cols(),
        model.spec().input_dim
    );
    let n_layers = model.layers().len();
    let mut activations = Vec::with_capacity(n_layers);

    // Layer 1: sparse product against the pre-transposed weights.
    let w1 = &model.layers()[0].w;
    let mut z = x.spmm(&w1.transpose());
    ops::add_row_broadcast(&mut z, &model.layers()[0].b);
    if n_layers == 1 {
        apply_output(model, &mut z);
    } else {
        model.spec().activation.apply(&mut z);
    }
    activations.push(z);

    // Remaining layers: the standard dense path.
    for l in 1..n_layers {
        let layer = &model.layers()[l];
        let input = activations.last().expect("layer output present");
        let mut z = Matrix::zeros(input.rows(), layer.w.rows());
        if parallel {
            hetero_tensor::gemm::par_gemm_nt(1.0, input, &layer.w, 0.0, &mut z);
        } else {
            hetero_tensor::gemm::gemm_nt(1.0, input, &layer.w, 0.0, &mut z);
        }
        ops::add_row_broadcast(&mut z, &layer.b);
        if l + 1 == n_layers {
            apply_output(model, &mut z);
        } else {
            model.spec().activation.apply(&mut z);
        }
        activations.push(z);
    }
    ForwardPass { activations }
}

fn apply_output(model: &Model, z: &mut Matrix) {
    match model.spec().loss {
        LossKind::SoftmaxCrossEntropy => ops::softmax_rows(z),
        LossKind::MultiLabelBce => ops::sigmoid_inplace(z),
    }
}

/// Loss + exact gradient for a sparse batch.
///
/// Produces the same gradient as densifying `x` and calling
/// [`crate::loss_and_gradient`], at `O(nnz)` cost in the input layer.
pub fn loss_and_gradient_sparse(
    model: &Model,
    x: &CsrMatrix,
    targets: Targets<'_>,
    parallel: bool,
) -> (f32, Gradient) {
    let pass = forward_sparse(model, x, parallel);
    let batch_loss = loss(pass.probs(), targets, model.spec().loss);

    let n_layers = model.layers().len();
    let mut grad = Model::zeros_like(model.spec());

    // Output delta, identical to the dense path.
    let mut delta = pass.probs().clone();
    let batch = x.rows();
    let inv_b = if batch > 0 { 1.0 / batch as f32 } else { 0.0 };
    match targets {
        Targets::Classes(labels) => {
            assert_eq!(labels.len(), batch, "label count");
            for (i, &y) in labels.iter().enumerate() {
                let v = delta.get(i, y as usize) - 1.0;
                delta.set(i, y as usize, v);
            }
        }
        Targets::MultiHot(y) => ops::sub_assign(&mut delta, y),
    }
    ops::scale(inv_b, delta.as_mut_slice());

    for l in (0..n_layers).rev() {
        if l == 0 {
            // Sparse weight gradient: ∇W₁ = δᵀ·X.
            grad.layers_mut()[0].w = x.spmm_tn(&delta);
            grad.layers_mut()[0].b = ops::col_sum(&delta);
        } else {
            let input = &pass.activations[l - 1];
            {
                let gw = &mut grad.layers_mut()[l].w;
                if parallel {
                    hetero_tensor::gemm::par_gemm_tn(1.0, &delta, input, 0.0, gw);
                } else {
                    hetero_tensor::gemm::gemm_tn(1.0, &delta, input, 0.0, gw);
                }
            }
            grad.layers_mut()[l].b = ops::col_sum(&delta);
            let w = &model.layers()[l].w;
            let mut prev = Matrix::zeros(delta.rows(), w.cols());
            if parallel {
                hetero_tensor::gemm::par_gemm_nn(1.0, &delta, w, 0.0, &mut prev);
            } else {
                hetero_tensor::gemm::gemm_nn(1.0, &delta, w, 0.0, &mut prev);
            }
            model
                .spec()
                .activation
                .mul_derivative(&pass.activations[l - 1], &mut prev);
            delta = prev;
        }
    }
    (batch_loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backward::loss_and_gradient;
    use crate::init::InitScheme;
    use crate::spec::MlpSpec;

    fn sparse_batch(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if state.is_multiple_of(5) {
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn sparse_forward_matches_dense() {
        let spec = MlpSpec::tiny(12, 3);
        let model = Model::new(spec, InitScheme::Xavier, 8);
        let dense = sparse_batch(7, 12, 3);
        let csr = CsrMatrix::from_dense(&dense, 0.0);
        let a = crate::forward(&model, &dense, false);
        let b = forward_sparse(&model, &csr, false);
        assert!(a.probs().approx_eq(b.probs(), 1e-5));
    }

    #[test]
    fn sparse_gradient_matches_dense() {
        let spec = MlpSpec::tiny(10, 2);
        let model = Model::new(spec, InitScheme::Xavier, 4);
        let dense = sparse_batch(6, 10, 9);
        let csr = CsrMatrix::from_dense(&dense, 0.0);
        let labels: Vec<u32> = (0..6).map(|i| (i % 2) as u32).collect();
        let (l1, g1) = loss_and_gradient(&model, &dense, Targets::Classes(&labels), false);
        let (l2, g2) = loss_and_gradient_sparse(&model, &csr, Targets::Classes(&labels), false);
        assert!((l1 - l2).abs() < 1e-5, "{l1} vs {l2}");
        for (a, b) in g1.flatten().iter().zip(g2.flatten().iter()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn sparse_training_reduces_loss() {
        let spec = MlpSpec::tiny(10, 2);
        let mut model = Model::new(spec, InitScheme::Xavier, 1);
        let dense = sparse_batch(40, 10, 17);
        let csr = CsrMatrix::from_dense(&dense, 0.0);
        let labels: Vec<u32> = (0..40)
            .map(|i| if dense.row(i)[0] > 0.0 { 1 } else { 0 })
            .collect();
        let (first, _) = loss_and_gradient_sparse(&model, &csr, Targets::Classes(&labels), false);
        let mut last = first;
        for _ in 0..60 {
            let (l, g) = loss_and_gradient_sparse(&model, &csr, Targets::Classes(&labels), false);
            model.apply_gradient(&g, 0.8);
            last = l;
        }
        assert!(last < first, "{first} -> {last}");
    }

    #[test]
    fn single_layer_network_sparse() {
        // No hidden layers: the sparse path must handle the output layer
        // being the first layer.
        let spec = MlpSpec {
            input_dim: 8,
            hidden: vec![],
            classes: 3,
            activation: crate::Activation::Sigmoid,
            loss: LossKind::SoftmaxCrossEntropy,
        };
        let model = Model::new(spec, InitScheme::Xavier, 2);
        let dense = sparse_batch(5, 8, 21);
        let csr = CsrMatrix::from_dense(&dense, 0.0);
        let labels = vec![0u32, 1, 2, 0, 1];
        let (l1, g1) = loss_and_gradient(&model, &dense, Targets::Classes(&labels), false);
        let (l2, g2) = loss_and_gradient_sparse(&model, &csr, Targets::Classes(&labels), false);
        assert!((l1 - l2).abs() < 1e-5);
        for (a, b) in g1.flatten().iter().zip(g2.flatten().iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "input_dim")]
    fn wrong_width_panics() {
        let spec = MlpSpec::tiny(10, 2);
        let model = Model::new(spec, InitScheme::Xavier, 1);
        let csr = CsrMatrix::from_dense(&Matrix::zeros(2, 7), 0.0);
        forward_sparse(&model, &csr, false);
    }
}
