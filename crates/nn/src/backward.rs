//! Back-propagation (Eq. 2 of the paper) — exact gradients for the MLP.
//!
//! For both output configurations the gradient of the loss w.r.t. the
//! output pre-activation has the same convenient form `(p − y)/B`:
//! softmax+CE and sigmoid+BCE are the canonical link/loss pairs. From there
//! each layer needs two GEMMs:
//!
//! - weight gradient: `∇Wˡ = δˡᵀ · aˡ⁻¹`  (TN kernel)
//! - backprop:        `δˡ⁻¹ = (δˡ · Wˡ) ⊙ f'(aˡ⁻¹)`  (NN kernel)
//!
//! plus a column sum for the bias gradient.

use hetero_tensor::{gemm, ops, Matrix};

use crate::forward::{forward, loss, ForwardPass, Targets};
use crate::model::Model;
use crate::spec::LossKind;

/// A gradient has exactly the shape of the model it differentiates.
pub type Gradient = Model;

/// Compute `∂loss/∂z_out = (p − y)/B` into a caller-owned buffer.
fn output_delta_into(probs: &Matrix, targets: Targets<'_>, kind: LossKind, delta: &mut Matrix) {
    let batch = probs.rows();
    let inv_b = if batch > 0 { 1.0 / batch as f32 } else { 0.0 };
    delta.copy_from(probs);
    match (kind, targets) {
        (LossKind::SoftmaxCrossEntropy, Targets::Classes(labels)) => {
            assert_eq!(labels.len(), batch, "label count != batch size");
            for (i, &y) in labels.iter().enumerate() {
                let v = delta.get(i, y as usize) - 1.0;
                delta.set(i, y as usize, v);
            }
        }
        (LossKind::MultiLabelBce, Targets::MultiHot(y)) => {
            assert_eq!(y.shape(), probs.shape(), "multi-hot shape mismatch");
            ops::sub_assign(delta, y);
        }
        _ => panic!("targets kind does not match the loss kind"),
    }
    ops::scale(inv_b, delta.as_mut_slice());
}

/// Back-propagate through `model` given a completed forward `pass`.
///
/// Returns the exact mean-loss gradient for the batch `x`. Allocates the
/// gradient and scratch; steady-state loops use
/// [`crate::workspace::Workspace`], which shares this exact code path.
pub fn backward(
    model: &Model,
    x: &Matrix,
    pass: &ForwardPass,
    targets: Targets<'_>,
    parallel: bool,
) -> Gradient {
    let mut grad = Model::zeros_like(model.spec());
    let mut delta = Matrix::zeros(0, 0);
    let mut delta_next = Matrix::zeros(0, 0);
    backward_with_scratch(
        model,
        x,
        pass,
        targets,
        parallel,
        &mut delta,
        &mut delta_next,
        &mut grad,
    );
    grad
}

/// Core backward pass writing into caller-owned buffers.
///
/// `delta`/`delta_next` are the ping-pong δ buffers (any shape; reshaped
/// with [`Matrix::resize`]); `grad` must have the model's shape and is
/// fully overwritten. Warmed buffers make this allocation-free.
#[allow(clippy::too_many_arguments)]
pub(crate) fn backward_with_scratch(
    model: &Model,
    x: &Matrix,
    pass: &ForwardPass,
    targets: Targets<'_>,
    parallel: bool,
    delta: &mut Matrix,
    delta_next: &mut Matrix,
    grad: &mut Gradient,
) {
    let n_layers = model.layers().len();
    assert_eq!(pass.activations.len(), n_layers, "stale forward pass");

    // The ping-pong below swaps the two scratch buffers once per hidden
    // layer. With an odd layer count the swap count is odd and the buffers
    // would exchange identities across calls — the buffer only ever sized
    // batch×hidden would suddenly need batch×classes on the *next* call,
    // reallocating in steady state. Count the swaps and undo the residual
    // one at the end so each buffer sees the same size sequence every call.
    let mut swapped = false;

    output_delta_into(pass.probs(), targets, model.spec().loss, delta);
    for l in (0..n_layers).rev() {
        // Input to layer l: the previous layer's activation, or the batch.
        let input: &Matrix = if l == 0 { x } else { &pass.activations[l - 1] };

        // ∇W = δᵀ · input  — δ is batch×out, input is batch×in → out×in.
        {
            let gw = &mut grad.layers_mut()[l].w;
            if parallel {
                gemm::par_gemm_tn(1.0, delta, input, 0.0, gw);
            } else {
                gemm::gemm_tn(1.0, delta, input, 0.0, gw);
            }
        }
        // ∇b = column sum of δ, into the gradient's existing bias buffer.
        ops::col_sum_into(delta, &mut grad.layers_mut()[l].b);

        if l > 0 {
            // δ_prev = (δ · W) ⊙ f'(a_prev)
            let w = &model.layers()[l].w;
            delta_next.resize(delta.rows(), w.cols());
            if parallel {
                gemm::par_gemm_nn(1.0, delta, w, 0.0, delta_next);
            } else {
                gemm::gemm_nn(1.0, delta, w, 0.0, delta_next);
            }
            model
                .spec()
                .activation
                .mul_derivative(&pass.activations[l - 1], delta_next);
            std::mem::swap(delta, delta_next);
            swapped = !swapped;
        }
    }
    if swapped {
        std::mem::swap(delta, delta_next);
    }
}

/// One-call loss + gradient for a batch — the worker-side "compute the
/// gradient" step of Algorithm 1/2.
pub fn loss_and_gradient(
    model: &Model,
    x: &Matrix,
    targets: Targets<'_>,
    parallel: bool,
) -> (f32, Gradient) {
    let pass = forward(model, x, parallel);
    let l = loss(pass.probs(), targets, model.spec().loss);
    let g = backward(model, x, &pass, targets, parallel);
    (l, g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::InitScheme;
    use crate::spec::MlpSpec;
    use crate::Activation;

    /// Central-difference gradient check: perturb every parameter of a tiny
    /// network and compare with the analytic gradient.
    fn gradient_check(spec: MlpSpec, targets_kind: LossKind) {
        let model = Model::new(spec.clone(), InitScheme::Xavier, 11);
        let batch = 5;
        let x = Matrix::from_fn(batch, spec.input_dim, |i, j| {
            ((i * spec.input_dim + j) as f32 * 0.7).sin()
        });
        let class_labels: Vec<u32> = (0..batch as u32).map(|i| i % spec.classes as u32).collect();
        let multi_hot = Matrix::from_fn(batch, spec.classes, |i, j| {
            if (i + j) % 3 == 0 {
                1.0
            } else {
                0.0
            }
        });
        let targets = match targets_kind {
            LossKind::SoftmaxCrossEntropy => Targets::Classes(&class_labels),
            LossKind::MultiLabelBce => Targets::MultiHot(&multi_hot),
        };

        let (_, grad) = loss_and_gradient(&model, &x, targets, false);

        let flat_model = model.flatten();
        let flat_grad = grad.flatten();
        let h = 1e-3f32;
        // Check a deterministic spread of parameters (all of them for small nets).
        let n = flat_model.len();
        let stride = (n / 64).max(1);
        for p in (0..n).step_by(stride) {
            let mut plus = flat_model.clone();
            plus[p] += h;
            let m_plus = Model::unflatten(&spec, &plus);
            let pass = forward(&m_plus, &x, false);
            let l_plus = loss(pass.probs(), targets, spec.loss);

            let mut minus = flat_model.clone();
            minus[p] -= h;
            let m_minus = Model::unflatten(&spec, &minus);
            let pass = forward(&m_minus, &x, false);
            let l_minus = loss(pass.probs(), targets, spec.loss);

            let numeric = (l_plus - l_minus) / (2.0 * h);
            let analytic = flat_grad[p];
            assert!(
                (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs().max(analytic.abs())),
                "param {p}: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn gradcheck_softmax_ce_two_hidden() {
        gradient_check(
            MlpSpec {
                input_dim: 4,
                hidden: vec![6, 5],
                classes: 3,
                activation: Activation::Sigmoid,
                loss: LossKind::SoftmaxCrossEntropy,
            },
            LossKind::SoftmaxCrossEntropy,
        );
    }

    #[test]
    fn gradcheck_softmax_ce_tanh() {
        gradient_check(
            MlpSpec {
                input_dim: 3,
                hidden: vec![7],
                classes: 2,
                activation: Activation::Tanh,
                loss: LossKind::SoftmaxCrossEntropy,
            },
            LossKind::SoftmaxCrossEntropy,
        );
    }

    #[test]
    fn gradcheck_multilabel_bce() {
        gradient_check(
            MlpSpec {
                input_dim: 4,
                hidden: vec![5],
                classes: 6,
                activation: Activation::Sigmoid,
                loss: LossKind::MultiLabelBce,
            },
            LossKind::MultiLabelBce,
        );
    }

    #[test]
    fn gradcheck_no_hidden_layers() {
        gradient_check(
            MlpSpec {
                input_dim: 5,
                hidden: vec![],
                classes: 3,
                activation: Activation::Sigmoid,
                loss: LossKind::SoftmaxCrossEntropy,
            },
            LossKind::SoftmaxCrossEntropy,
        );
    }

    #[test]
    fn parallel_gradient_matches_serial() {
        let spec = MlpSpec::tiny(8, 3);
        let model = Model::new(spec.clone(), InitScheme::Xavier, 5);
        let x = Matrix::from_fn(32, 8, |i, j| ((i + j) as f32 * 0.3).cos());
        let labels: Vec<u32> = (0..32).map(|i| (i % 3) as u32).collect();
        let (l1, g1) = loss_and_gradient(&model, &x, Targets::Classes(&labels), false);
        let (l2, g2) = loss_and_gradient(&model, &x, Targets::Classes(&labels), true);
        assert!((l1 - l2).abs() < 1e-6);
        let (f1, f2) = (g1.flatten(), g2.flatten());
        for (a, b) in f1.iter().zip(&f2) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn sgd_steps_reduce_loss_on_toy_problem() {
        // Two separable Gaussian-ish blobs; loss must drop monotonically-ish.
        let spec = MlpSpec::tiny(2, 2);
        let mut model = Model::new(spec, InitScheme::Xavier, 3);
        let x = Matrix::from_fn(40, 2, |i, j| {
            let sign = if i < 20 { 1.0 } else { -1.0 };
            sign * (1.0 + 0.1 * ((i * 2 + j) as f32).sin())
        });
        let labels: Vec<u32> = (0..40).map(|i| if i < 20 { 0 } else { 1 }).collect();
        let (first, _) = loss_and_gradient(&model, &x, Targets::Classes(&labels), false);
        let mut last = first;
        for _ in 0..60 {
            let (l, g) = loss_and_gradient(&model, &x, Targets::Classes(&labels), false);
            model.apply_gradient(&g, 1.0);
            last = l;
        }
        assert!(
            last < first * 0.5,
            "loss did not drop: first {first}, last {last}"
        );
    }

    #[test]
    fn gradient_of_zero_batch_is_zero() {
        let spec = MlpSpec::tiny(3, 2);
        let model = Model::new(spec, InitScheme::Xavier, 1);
        let x = Matrix::zeros(0, 3);
        let (l, g) = loss_and_gradient(&model, &x, Targets::Classes(&[]), false);
        assert_eq!(l, 0.0);
        assert_eq!(g.param_norm(), 0.0);
    }
}
