//! Atomic-primitive facade for the shared (Hogwild) model storage.
//!
//! [`crate::shared`] imports its atomics from here instead of
//! `std::sync::atomic`. Normal builds re-export the std types unchanged;
//! `--features loom` swaps in the vendored loom model checker so the racy
//! and CAS update paths of [`crate::SharedModel`] can be exhaustively
//! interleaved (`crates/nn/tests/loom_shared.rs`, DESIGN.md §4e).

#[cfg(feature = "loom")]
pub use loom::sync::atomic::{AtomicU32, AtomicU64, Ordering};

#[cfg(not(feature = "loom"))]
pub use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
