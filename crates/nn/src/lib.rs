//! # hetero-nn
//!
//! Fully-connected deep neural networks (MLPs) for the hetero-sgd
//! workspace — the model class the paper trains (§III, §VII-A):
//! fully-connected hidden layers with sigmoid activation, a softmax +
//! cross-entropy output for single-label datasets, and a sigmoid +
//! binary-cross-entropy output for the multi-label `delicious` dataset.
//!
//! The crate provides:
//! - [`MlpSpec`] — network shape and loss configuration, with the paper's
//!   per-dataset presets (512 units/hidden layer; 4/6/8 hidden layers).
//! - [`Model`] — the dense parameters (row-major `W[out][in]` plus biases),
//!   initialization schemes, flatten/unflatten.
//! - [`mod@forward`]/[`mod@backward`] — batch forward pass, loss, and exact
//!   back-propagated gradients (Eq. 1–3 of the paper).
//! - [`SharedModel`] — the *global model* of the framework: a flat
//!   `Vec<AtomicU32>` (f32 bits) that CPU workers update Hogwild-style
//!   (racy read–modify–write, relaxed ordering) while GPU workers take deep
//!   snapshots and merge back, exactly the two replica modes of §V.
//!
//! Gradient correctness is enforced by finite-difference checks in the
//! test-suite.

#![warn(missing_docs)]

pub mod activation;
pub mod backward;
pub mod forward;
pub mod init;
pub mod model;
pub mod optim;
pub mod scan;
pub mod shared;
pub mod sparse_input;
pub mod spec;
pub mod sync;
pub mod workspace;

pub use activation::Activation;
pub use backward::{backward, loss_and_gradient, Gradient};
pub use forward::{accuracy, forward, loss, predict_probs, ForwardPass, Targets};
pub use init::InitScheme;
pub use model::Model;
pub use optim::{Optimizer, OptimizerKind};
pub use scan::{scan_model, LayerScan, MergeScan};
pub use shared::SharedModel;
pub use sparse_input::{forward_sparse, loss_and_gradient_sparse};
pub use spec::{LossKind, MlpSpec};
pub use workspace::Workspace;
