//! Hidden-layer activation functions.
//!
//! The paper uses sigmoid in all hidden layers (§VII-A). ReLU and tanh are
//! provided as well so the framework can serve as the "generic testbed" the
//! paper advertises.

use hetero_tensor::{ops, Matrix};
use serde::{Deserialize, Serialize};

/// Element-wise activation applied to a layer's pre-activation output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Activation {
    /// Logistic sigmoid — the paper's hidden activation.
    #[default]
    Sigmoid,
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Identity (no non-linearity); useful for linear probes and tests.
    Identity,
}

impl Activation {
    /// Apply the activation in place (SIMD-dispatched via `hetero-tensor`).
    pub fn apply(&self, m: &mut Matrix) {
        match self {
            Activation::Sigmoid => ops::sigmoid_inplace(m),
            Activation::Relu => ops::relu_inplace(m),
            Activation::Tanh => ops::tanh_inplace(m),
            Activation::Identity => {}
        }
    }

    /// Derivative expressed **in terms of the activation output** `a = f(z)`.
    ///
    /// All four supported activations admit this form, which lets the
    /// backward pass avoid storing pre-activations:
    /// σ' = a(1-a), relu' = 1 if a>0 else 0, tanh' = 1-a², id' = 1.
    pub fn derivative_from_output(&self, a: f32) -> f32 {
        match self {
            Activation::Sigmoid => a * (1.0 - a),
            Activation::Relu => {
                if a > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - a * a,
            Activation::Identity => 1.0,
        }
    }

    /// Multiply `delta` in place by `f'(z)` computed from the stored output
    /// (fused, SIMD-dispatched kernels — no temporary derivative matrix).
    pub fn mul_derivative(&self, output: &Matrix, delta: &mut Matrix) {
        assert_eq!(output.shape(), delta.shape(), "activation shape mismatch");
        match self {
            Activation::Sigmoid => ops::mul_sigmoid_derivative(output, delta),
            Activation::Relu => ops::mul_relu_derivative(output, delta),
            Activation::Tanh => ops::mul_tanh_derivative(output, delta),
            Activation::Identity => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff(act: Activation, x: f32) -> f32 {
        let h = 1e-3;
        let mut lo = Matrix::from_rows(&[&[x - h]]);
        let mut hi = Matrix::from_rows(&[&[x + h]]);
        act.apply(&mut lo);
        act.apply(&mut hi);
        (hi.get(0, 0) - lo.get(0, 0)) / (2.0 * h)
    }

    #[test]
    fn derivatives_match_finite_difference() {
        for act in [Activation::Sigmoid, Activation::Tanh, Activation::Identity] {
            for &x in &[-2.0f32, -0.5, 0.1, 1.7] {
                let mut m = Matrix::from_rows(&[&[x]]);
                act.apply(&mut m);
                let analytic = act.derivative_from_output(m.get(0, 0));
                let numeric = finite_diff(act, x);
                assert!(
                    (analytic - numeric).abs() < 1e-3,
                    "{act:?} at {x}: {analytic} vs {numeric}"
                );
            }
        }
        // ReLU away from the kink.
        for &x in &[-1.0f32, 1.0] {
            let mut m = Matrix::from_rows(&[&[x]]);
            Activation::Relu.apply(&mut m);
            let analytic = Activation::Relu.derivative_from_output(m.get(0, 0));
            assert_eq!(analytic, if x > 0.0 { 1.0 } else { 0.0 });
        }
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut m = Matrix::from_rows(&[&[-3.0, 0.0, 2.0]]);
        Activation::Relu.apply(&mut m);
        assert_eq!(m, Matrix::from_rows(&[&[0.0, 0.0, 2.0]]));
    }

    #[test]
    fn sigmoid_outputs_in_unit_interval() {
        let mut m = Matrix::from_rows(&[&[-10.0, 0.0, 10.0]]);
        Activation::Sigmoid.apply(&mut m);
        assert!(m.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn mul_derivative_identity_is_noop() {
        let out = Matrix::full(2, 2, 0.3);
        let mut delta = Matrix::full(2, 2, 5.0);
        Activation::Identity.mul_derivative(&out, &mut delta);
        assert_eq!(delta, Matrix::full(2, 2, 5.0));
    }

    #[test]
    fn mul_derivative_sigmoid_scales() {
        let out = Matrix::full(1, 1, 0.5);
        let mut delta = Matrix::full(1, 1, 4.0);
        Activation::Sigmoid.mul_derivative(&out, &mut delta);
        assert!((delta.get(0, 0) - 1.0).abs() < 1e-6); // 4 * 0.25
    }
}
