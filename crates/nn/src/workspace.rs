//! Reusable per-worker training buffers — allocation-free steady state.
//!
//! [`forward`](crate::forward::forward) / [`backward`](crate::backward::backward)
//! allocate fresh activation, delta, and gradient matrices on every call,
//! which is fine for tests but dominates small-batch step time and churns
//! the allocator from every worker thread. [`Workspace`] owns all of those
//! buffers and exposes `_into` variants that reuse them: after the first
//! call at a given batch size (the *warm-up*), subsequent steps at the same
//! or a smaller batch size perform **zero heap allocations**.
//!
//! ## Ownership and threading rules
//!
//! A `Workspace` belongs to exactly **one worker** (thread / lane / device
//! pipeline) and is never shared: it is `Send` but deliberately offers no
//! interior mutability or cloning-on-use, so concurrent access does not
//! typecheck. Engines keep one workspace per worker lane alive across the
//! whole run. The allocation-free guarantee is monitored at runtime: any
//! buffer growth is counted in [`Workspace::growth_events`], and growth at
//! a batch size the workspace has already served trips a `debug_assert` —
//! the "no allocation in steady state" check used by the test suite and the
//! bench harness.
//!
//! Both the wrapper APIs and the `_into` forms run the exact same kernel
//! sequence, so `loss_and_gradient_into` is bit-identical to
//! [`loss_and_gradient`](crate::backward::loss_and_gradient).

use hetero_tensor::Matrix;

use crate::backward::{backward_with_scratch, Gradient};
use crate::forward::{forward_into_buffers, loss, ForwardPass, Targets};
use crate::model::Model;
use crate::spec::MlpSpec;

/// Reusable forward/backward buffers for one worker (see module docs).
#[derive(Debug)]
pub struct Workspace {
    spec: MlpSpec,
    /// Per-layer activations, reused across steps (last = probabilities).
    pass: ForwardPass,
    /// Backprop δ ping-pong buffers.
    delta: Matrix,
    delta_next: Matrix,
    /// Gradient accumulator, shaped like the model once and overwritten
    /// in place every step.
    grad: Gradient,
    /// Largest batch size this workspace has already served.
    warmed_batch: usize,
    /// Number of calls that grew any internal buffer.
    growth_events: u64,
}

impl Workspace {
    /// Create an empty workspace for models of shape `spec`.
    ///
    /// Buffers are sized lazily on first use; use
    /// [`with_batch_capacity`](Self::with_batch_capacity) to pre-warm.
    pub fn new(spec: &MlpSpec) -> Self {
        Workspace {
            spec: spec.clone(),
            pass: ForwardPass {
                activations: Vec::new(),
            },
            delta: Matrix::zeros(0, 0),
            delta_next: Matrix::zeros(0, 0),
            grad: Model::zeros_like(spec),
            warmed_batch: 0,
            growth_events: 0,
        }
    }

    /// Create a workspace pre-sized for batches up to `batch` rows, so the
    /// first training step is already allocation-free.
    pub fn with_batch_capacity(spec: &MlpSpec, batch: usize) -> Self {
        let mut ws = Self::new(spec);
        let dims = spec.layer_dims();
        ws.pass
            .activations
            .resize_with(dims.len(), || Matrix::zeros(0, 0));
        let mut widest = 0;
        for (a, &(_, out_dim)) in ws.pass.activations.iter_mut().zip(&dims) {
            a.resize(batch, out_dim);
            widest = widest.max(out_dim);
        }
        ws.delta.resize(batch, widest);
        ws.delta_next.resize(batch, widest);
        ws.warmed_batch = batch;
        ws
    }

    /// The model spec this workspace is shaped for.
    pub fn spec(&self) -> &MlpSpec {
        &self.spec
    }

    /// The gradient produced by the most recent backward pass.
    pub fn grad(&self) -> &Gradient {
        &self.grad
    }

    /// Mutable access to the stored gradient — for in-place post-processing
    /// (clipping, SVRG correction) before the gradient is applied.
    pub fn grad_mut(&mut self) -> &mut Gradient {
        &mut self.grad
    }

    /// The activations of the most recent forward pass.
    pub fn pass(&self) -> &ForwardPass {
        &self.pass
    }

    /// Number of calls that had to grow an internal buffer. Stable across
    /// steps at a fixed batch size once warmed — the bench harness asserts
    /// this stays flat in steady state.
    pub fn growth_events(&self) -> u64 {
        self.growth_events
    }

    /// Sum of buffer capacities — a fingerprint that changes iff some
    /// buffer reallocated or a new one appeared.
    fn capacity_fingerprint(&self) -> usize {
        self.pass
            .activations
            .iter()
            .map(Matrix::capacity)
            .sum::<usize>()
            + self.pass.activations.capacity()
            + self.delta.capacity()
            + self.delta_next.capacity()
    }

    fn check_spec(&self, model: &Model) {
        assert_eq!(
            *model.spec(),
            self.spec,
            "workspace was built for a different model spec"
        );
    }

    /// Track buffer growth around a forward/backward call and enforce the
    /// steady-state no-allocation invariant in debug builds.
    fn track<R>(&mut self, batch: usize, f: impl FnOnce(&mut Self) -> R) -> R {
        let before = self.capacity_fingerprint();
        let out = f(self);
        if self.capacity_fingerprint() != before {
            self.growth_events += 1;
            debug_assert!(
                batch > self.warmed_batch,
                "workspace buffers grew at batch {batch} although batch \
                 {} was already served — steady state must be allocation-free",
                self.warmed_batch
            );
        }
        self.warmed_batch = self.warmed_batch.max(batch);
        out
    }

    /// Forward pass into the reused activation stack.
    ///
    /// Same kernels as [`forward`](crate::forward::forward) — results are
    /// bit-identical; only the buffer ownership differs.
    pub fn forward_into(&mut self, model: &Model, x: &Matrix, parallel: bool) -> &ForwardPass {
        self.check_spec(model);
        self.track(x.rows(), |ws| {
            forward_into_buffers(model, x, parallel, &mut ws.pass.activations);
        });
        &self.pass
    }

    /// Backward pass into the reused δ/gradient buffers; requires a forward
    /// pass for the same batch already stored in this workspace (via
    /// [`forward_into`](Self::forward_into)).
    pub fn backward_into(
        &mut self,
        model: &Model,
        x: &Matrix,
        targets: Targets<'_>,
        parallel: bool,
    ) -> &Gradient {
        self.check_spec(model);
        self.track(x.rows(), |ws| {
            backward_with_scratch(
                model,
                x,
                &ws.pass,
                targets,
                parallel,
                &mut ws.delta,
                &mut ws.delta_next,
                &mut ws.grad,
            );
        });
        &self.grad
    }

    /// One-call loss + gradient — the allocation-free counterpart of
    /// [`loss_and_gradient`](crate::backward::loss_and_gradient), and
    /// bit-identical to it (both run the same kernel sequence).
    pub fn loss_and_gradient_into(
        &mut self,
        model: &Model,
        x: &Matrix,
        targets: Targets<'_>,
        parallel: bool,
    ) -> (f32, &Gradient) {
        self.check_spec(model);
        let l = self.track(x.rows(), |ws| {
            forward_into_buffers(model, x, parallel, &mut ws.pass.activations);
            let l = loss(ws.pass.probs(), targets, model.spec().loss);
            backward_with_scratch(
                model,
                x,
                &ws.pass,
                targets,
                parallel,
                &mut ws.delta,
                &mut ws.delta_next,
                &mut ws.grad,
            );
            l
        });
        (l, &self.grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backward::loss_and_gradient;
    use crate::init::InitScheme;

    fn setup() -> (Model, Matrix, Vec<u32>) {
        let spec = MlpSpec::tiny(6, 3);
        let model = Model::new(spec, InitScheme::Xavier, 42);
        let x = Matrix::from_fn(9, 6, |i, j| ((i * 6 + j) as f32 * 0.31).sin());
        let labels: Vec<u32> = (0..9).map(|i| (i % 3) as u32).collect();
        (model, x, labels)
    }

    #[test]
    fn into_variant_bit_matches_allocating_variant() {
        let (model, x, labels) = setup();
        let (l_ref, g_ref) = loss_and_gradient(&model, &x, Targets::Classes(&labels), false);
        let mut ws = Workspace::new(model.spec());
        let (l, g) = ws.loss_and_gradient_into(&model, &x, Targets::Classes(&labels), false);
        assert_eq!(l.to_bits(), l_ref.to_bits());
        for (a, b) in g.flatten().iter().zip(g_ref.flatten().iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn forward_into_matches_forward() {
        let (model, x, _) = setup();
        let reference = crate::forward::forward(&model, &x, false);
        let mut ws = Workspace::new(model.spec());
        let pass = ws.forward_into(&model, &x, false);
        assert_eq!(pass.activations.len(), reference.activations.len());
        for (a, b) in pass.activations.iter().zip(&reference.activations) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn steady_state_does_not_grow_buffers() {
        let (model, x, labels) = setup();
        let mut ws = Workspace::new(model.spec());
        ws.loss_and_gradient_into(&model, &x, Targets::Classes(&labels), false);
        let warm = ws.growth_events();
        for _ in 0..10 {
            ws.loss_and_gradient_into(&model, &x, Targets::Classes(&labels), false);
        }
        assert_eq!(ws.growth_events(), warm, "steady state reallocated");

        // A smaller batch must also be allocation-free.
        let x_small = x.slice_rows(0, 4);
        ws.loss_and_gradient_into(&model, &x_small, Targets::Classes(&labels[..4]), false);
        assert_eq!(ws.growth_events(), warm, "smaller batch reallocated");
    }

    #[test]
    fn pre_warmed_workspace_never_grows() {
        let (model, x, labels) = setup();
        let mut ws = Workspace::with_batch_capacity(model.spec(), x.rows());
        ws.loss_and_gradient_into(&model, &x, Targets::Classes(&labels), false);
        assert_eq!(ws.growth_events(), 0, "pre-warmed workspace allocated");
    }

    #[test]
    fn workspace_survives_batch_growth() {
        let (model, x, labels) = setup();
        let mut ws = Workspace::with_batch_capacity(model.spec(), 4);
        // Larger than the warmed capacity: allowed to grow (not steady state).
        let (l, _) = ws.loss_and_gradient_into(&model, &x, Targets::Classes(&labels), false);
        let (l_ref, _) = loss_and_gradient(&model, &x, Targets::Classes(&labels), false);
        assert_eq!(l.to_bits(), l_ref.to_bits());
    }

    #[test]
    fn odd_layer_count_wide_output_stays_allocation_free() {
        // Regression: with an odd δ ping-pong swap count (even layer count)
        // the scratch buffers used to exchange identities across calls, so
        // a classes ≫ hidden spec reallocated on the *second* call at the
        // same batch size.
        use crate::spec::LossKind;
        let spec = MlpSpec {
            input_dim: 6,
            hidden: vec![4],
            classes: 50,
            activation: crate::activation::Activation::Sigmoid,
            loss: LossKind::MultiLabelBce,
        };
        let model = Model::new(spec.clone(), InitScheme::Xavier, 3);
        let x = Matrix::from_fn(9, 6, |i, j| ((i * 6 + j) as f32 * 0.17).cos());
        let y = Matrix::from_fn(9, 50, |i, j| ((i + j) % 7 == 0) as u8 as f32);
        let mut ws = Workspace::new(&spec);
        ws.loss_and_gradient_into(&model, &x, Targets::MultiHot(&y), false);
        let warm = ws.growth_events();
        for _ in 0..4 {
            ws.loss_and_gradient_into(&model, &x, Targets::MultiHot(&y), false);
        }
        assert_eq!(ws.growth_events(), warm, "steady state reallocated");
    }

    #[test]
    #[should_panic(expected = "different model spec")]
    fn spec_mismatch_panics() {
        let (model, x, labels) = setup();
        let mut ws = Workspace::new(&MlpSpec::tiny(4, 2));
        ws.loss_and_gradient_into(&model, &x, Targets::Classes(&labels), false);
    }
}
