//! Dense MLP parameters.

use hetero_tensor::{ops, Matrix};
use serde::{Deserialize, Serialize};

use crate::init::InitScheme;
use crate::spec::MlpSpec;

/// One fully-connected layer: row-major weights `w[out][in]` plus a bias
/// vector of length `out`.
///
/// Storing `W` as `out×in` makes the forward product `A·Wᵀ` an NT GEMM
/// (contiguous dot products) and the backprop product `δ·W` an NN GEMM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    /// Weight matrix, shape `(out, in)`.
    pub w: Matrix,
    /// Bias vector, length `out`.
    pub b: Vec<f32>,
}

/// A complete MLP parameter set — the paper's model `W = {W¹, …, Wᴾ}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Model {
    spec: MlpSpec,
    layers: Vec<Layer>,
}

impl Model {
    /// Allocate and initialize a model for `spec`.
    ///
    /// Each layer gets an independent deterministic stream derived from
    /// `seed`, so models are reproducible across runs and across replica
    /// deep-copies.
    pub fn new(spec: MlpSpec, scheme: InitScheme, seed: u64) -> Self {
        spec.validate().expect("invalid MlpSpec");
        let layers = spec
            .layer_dims()
            .iter()
            .enumerate()
            .map(|(l, &(fan_in, fan_out))| {
                let mut w = Matrix::zeros(fan_out, fan_in);
                scheme.fill(
                    fan_in,
                    fan_out,
                    seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(l as u64 + 1)),
                    w.as_mut_slice(),
                );
                Layer {
                    w,
                    b: vec![0.0; fan_out],
                }
            })
            .collect();
        Model { spec, layers }
    }

    /// Zero-valued model with the same shape (used for gradients/accumulators).
    pub fn zeros_like(spec: &MlpSpec) -> Self {
        let layers = spec
            .layer_dims()
            .iter()
            .map(|&(fan_in, fan_out)| Layer {
                w: Matrix::zeros(fan_out, fan_in),
                b: vec![0.0; fan_out],
            })
            .collect();
        Model {
            spec: spec.clone(),
            layers,
        }
    }

    /// The network specification.
    pub fn spec(&self) -> &MlpSpec {
        &self.spec
    }

    /// Layers in forward order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to layers (the SGD update path).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Total number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.spec.num_params()
    }

    /// Serialize all parameters into one flat vector
    /// (layer order: `w₀, b₀, w₁, b₁, …`) — the layout [`crate::SharedModel`]
    /// stores atomically.
    pub fn flatten(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        for layer in &self.layers {
            out.extend_from_slice(layer.w.as_slice());
            out.extend_from_slice(&layer.b);
        }
        out
    }

    /// Rebuild a model from a flat parameter vector (inverse of [`flatten`]).
    ///
    /// # Panics
    /// Panics if `params.len() != spec.num_params()`.
    ///
    /// [`flatten`]: Model::flatten
    pub fn unflatten(spec: &MlpSpec, params: &[f32]) -> Self {
        assert_eq!(params.len(), spec.num_params(), "flat parameter length");
        let mut model = Model::zeros_like(spec);
        let mut off = 0;
        for layer in &mut model.layers {
            let wlen = layer.w.len();
            layer
                .w
                .as_mut_slice()
                .copy_from_slice(&params[off..off + wlen]);
            off += wlen;
            let blen = layer.b.len();
            layer.b.copy_from_slice(&params[off..off + blen]);
            off += blen;
        }
        model
    }

    /// Overwrite this model's parameters from another model of the same
    /// spec, reusing all existing buffers (no allocation).
    pub fn copy_from(&mut self, other: &Model) {
        assert_eq!(self.spec, other.spec, "copy_from spec mismatch");
        for (layer, o) in self.layers.iter_mut().zip(&other.layers) {
            layer.w.as_mut_slice().copy_from_slice(o.w.as_slice());
            layer.b.copy_from_slice(&o.b);
        }
    }

    /// In-place SGD update: `self ← self - eta · grad`.
    pub fn apply_gradient(&mut self, grad: &Model, eta: f32) {
        assert_eq!(self.spec, grad.spec, "gradient for a different spec");
        for (layer, g) in self.layers.iter_mut().zip(&grad.layers) {
            ops::axpy(-eta, g.w.as_slice(), layer.w.as_mut_slice());
            ops::axpy(-eta, &g.b, &mut layer.b);
        }
    }

    /// `self ← self + alpha · other` (gradient accumulation).
    pub fn scaled_add(&mut self, other: &Model, alpha: f32) {
        assert_eq!(self.spec, other.spec, "shape mismatch");
        for (layer, o) in self.layers.iter_mut().zip(&other.layers) {
            ops::axpy(alpha, o.w.as_slice(), layer.w.as_mut_slice());
            ops::axpy(alpha, &o.b, &mut layer.b);
        }
    }

    /// Scale every parameter (e.g. averaging accumulated gradients).
    pub fn scale(&mut self, alpha: f32) {
        for layer in &mut self.layers {
            ops::scale(alpha, layer.w.as_mut_slice());
            ops::scale(alpha, &mut layer.b);
        }
    }

    /// Scale all parameters so the global L2 norm does not exceed
    /// `max_norm` (gradient clipping). Returns the factor applied (1.0 when
    /// already within the bound).
    pub fn clip_to_norm(&mut self, max_norm: f32) -> f32 {
        assert!(max_norm > 0.0, "max_norm must be positive");
        let norm = self.param_norm();
        if norm <= max_norm || norm == 0.0 {
            return 1.0;
        }
        let factor = max_norm / norm;
        self.scale(factor);
        factor
    }

    /// L2 norm over all parameters.
    pub fn param_norm(&self) -> f32 {
        self.layers
            .iter()
            .map(|l| {
                l.w.as_slice().iter().map(|v| v * v).sum::<f32>()
                    + l.b.iter().map(|v| v * v).sum::<f32>()
            })
            .sum::<f32>()
            .sqrt()
    }

    /// True iff every parameter is finite.
    pub fn all_finite(&self) -> bool {
        self.layers
            .iter()
            .all(|l| l.w.all_finite() && l.b.iter().all(|v| v.is_finite()))
    }

    /// Save the model as JSON (spec + parameters) to `path`.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let json = serde_json::to_string(self).map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Load a model previously written by [`Model::save`].
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Model> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(std::io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::LossKind;

    fn spec() -> MlpSpec {
        MlpSpec {
            input_dim: 3,
            hidden: vec![4, 5],
            classes: 2,
            activation: crate::Activation::Sigmoid,
            loss: LossKind::SoftmaxCrossEntropy,
        }
    }

    #[test]
    fn new_model_has_spec_shapes() {
        let m = Model::new(spec(), InitScheme::PaperNormal, 0);
        assert_eq!(m.layers().len(), 3);
        assert_eq!(m.layers()[0].w.shape(), (4, 3));
        assert_eq!(m.layers()[1].w.shape(), (5, 4));
        assert_eq!(m.layers()[2].w.shape(), (2, 5));
        assert_eq!(m.layers()[2].b.len(), 2);
        assert!(m.all_finite());
    }

    #[test]
    fn init_deterministic_and_seed_sensitive() {
        let a = Model::new(spec(), InitScheme::PaperNormal, 7);
        let b = Model::new(spec(), InitScheme::PaperNormal, 7);
        let c = Model::new(spec(), InitScheme::PaperNormal, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn layers_have_distinct_weights() {
        // Each layer draws from its own stream — identical dims must not
        // produce identical weights.
        let s = MlpSpec {
            input_dim: 4,
            hidden: vec![4, 4],
            classes: 4,
            activation: crate::Activation::Sigmoid,
            loss: LossKind::SoftmaxCrossEntropy,
        };
        let m = Model::new(s, InitScheme::PaperNormal, 0);
        assert_ne!(m.layers()[0].w, m.layers()[1].w);
    }

    #[test]
    fn flatten_unflatten_roundtrip() {
        let m = Model::new(spec(), InitScheme::Xavier, 3);
        let flat = m.flatten();
        assert_eq!(flat.len(), m.num_params());
        let back = Model::unflatten(m.spec(), &flat);
        assert_eq!(m, back);
    }

    #[test]
    #[should_panic(expected = "flat parameter length")]
    fn unflatten_wrong_len_panics() {
        let s = spec();
        Model::unflatten(&s, &[0.0; 3]);
    }

    #[test]
    fn apply_gradient_moves_parameters() {
        let mut m = Model::new(spec(), InitScheme::Constant(1.0), 0);
        let mut g = Model::zeros_like(m.spec());
        g.layers_mut()[0].w.set(0, 0, 2.0);
        g.layers_mut()[0].b[1] = 4.0;
        m.apply_gradient(&g, 0.5);
        assert_eq!(m.layers()[0].w.get(0, 0), 0.0); // 1 - 0.5*2
        assert_eq!(m.layers()[0].b[1], -2.0);
        assert_eq!(m.layers()[1].w.get(0, 0), 1.0); // untouched
    }

    #[test]
    fn scaled_add_and_scale() {
        let s = spec();
        let mut acc = Model::zeros_like(&s);
        let ones = Model::new(s.clone(), InitScheme::Constant(1.0), 0);
        acc.scaled_add(&ones, 2.0);
        acc.scaled_add(&ones, 1.0);
        acc.scale(1.0 / 3.0);
        // Weights converge to 1.0; biases stay 0 (constant-init biases are 0).
        assert!((acc.layers()[0].w.get(0, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn param_norm_zero_for_zero_model() {
        assert_eq!(Model::zeros_like(&spec()).param_norm(), 0.0);
    }

    #[test]
    fn clip_to_norm_caps_large_gradients() {
        let s = spec();
        let mut g = Model::new(s.clone(), InitScheme::Constant(1.0), 0);
        let norm = g.param_norm();
        assert!(norm > 2.0);
        let f = g.clip_to_norm(2.0);
        assert!((g.param_norm() - 2.0).abs() < 1e-4);
        assert!((f - 2.0 / norm).abs() < 1e-6);
        // Already-small gradients are untouched.
        let before = g.clone();
        assert_eq!(g.clip_to_norm(100.0), 1.0);
        assert_eq!(g, before);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("hetero_nn_ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let m = Model::new(spec(), InitScheme::Xavier, 99);
        m.save(&path).unwrap();
        let back = Model::load(&path).unwrap();
        assert_eq!(m, back);
        assert!(Model::load(dir.join("missing.json")).is_err());
    }
}
