//! First-order optimizers.
//!
//! The paper's framework is "a generic testbed to evaluate existing SGD
//! algorithms and develop new ones" (§V), and its reference list spans the
//! classic optimizer family. This module provides the standard update
//! rules over [`Model`] parameters; the asynchronous Hogbatch engines use
//! plain SGD (as the paper does), while the optimizers here power the
//! sequential baselines, the SVRG implementation, and the testbed role.
//!
//! All state is stored flat (aligned with [`Model::flatten`]) so an
//! optimizer can be checkpointed alongside the model.

use serde::{Deserialize, Serialize};

use crate::model::Model;

/// Which update rule to apply.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Vanilla SGD: `w ← w − η·g` (what the paper's algorithms use).
    Sgd,
    /// Heavy-ball momentum: `v ← µ·v + g; w ← w − η·v`.
    Momentum {
        /// Momentum coefficient µ (typically 0.9).
        mu: f32,
    },
    /// Nesterov accelerated gradient (PyTorch-style formulation):
    /// `v ← µ·v + g; w ← w − η·(g + µ·v)`.
    Nesterov {
        /// Momentum coefficient µ.
        mu: f32,
    },
    /// Adagrad: per-parameter rates `w ← w − η·g/√(Σg² + ε)`.
    Adagrad {
        /// Numerical-stability floor ε.
        eps: f32,
    },
    /// Adam (Kingma & Ba): bias-corrected first/second moments.
    Adam {
        /// First-moment decay β₁ (typically 0.9).
        beta1: f32,
        /// Second-moment decay β₂ (typically 0.999).
        beta2: f32,
        /// Numerical-stability floor ε.
        eps: f32,
    },
}

impl OptimizerKind {
    /// Reasonable defaults for each rule.
    pub fn momentum() -> Self {
        OptimizerKind::Momentum { mu: 0.9 }
    }

    /// Nesterov with µ = 0.9.
    pub fn nesterov() -> Self {
        OptimizerKind::Nesterov { mu: 0.9 }
    }

    /// Adagrad with ε = 1e-8.
    pub fn adagrad() -> Self {
        OptimizerKind::Adagrad { eps: 1e-8 }
    }

    /// Adam with the canonical (0.9, 0.999, 1e-8).
    pub fn adam() -> Self {
        OptimizerKind::Adam {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

/// Stateful optimizer over one model's parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Optimizer {
    kind: OptimizerKind,
    /// Velocity / first moment, flat.
    m: Vec<f32>,
    /// Second moment (Adam) or squared-gradient accumulator (Adagrad).
    v: Vec<f32>,
    /// Steps taken (Adam bias correction).
    t: u64,
}

impl Optimizer {
    /// Optimizer for a model with `num_params` scalars.
    pub fn new(kind: OptimizerKind, num_params: usize) -> Self {
        let needs_m = !matches!(kind, OptimizerKind::Sgd | OptimizerKind::Adagrad { .. });
        let needs_v = matches!(
            kind,
            OptimizerKind::Adagrad { .. } | OptimizerKind::Adam { .. }
        );
        Optimizer {
            kind,
            m: if needs_m {
                vec![0.0; num_params]
            } else {
                Vec::new()
            },
            v: if needs_v {
                vec![0.0; num_params]
            } else {
                Vec::new()
            },
            t: 0,
        }
    }

    /// The update rule in use.
    pub fn kind(&self) -> OptimizerKind {
        self.kind
    }

    /// Steps applied so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Apply one update: `model ← model - η·direction(grad)`.
    ///
    /// # Panics
    /// Panics if `grad` has a different spec than `model`, or if the
    /// optimizer was sized for a different parameter count.
    pub fn step(&mut self, model: &mut Model, grad: &Model, eta: f32) {
        assert_eq!(model.spec(), grad.spec(), "gradient spec mismatch");
        self.t += 1;
        match self.kind {
            OptimizerKind::Sgd => {
                model.apply_gradient(grad, eta);
            }
            OptimizerKind::Momentum { mu } => {
                let g = grad.flatten();
                assert_eq!(g.len(), self.m.len(), "optimizer sized for another model");
                let mut w = model.flatten();
                for ((wi, gi), mi) in w.iter_mut().zip(&g).zip(self.m.iter_mut()) {
                    *mi = mu * *mi + gi;
                    *wi -= eta * *mi;
                }
                *model = Model::unflatten(model.spec(), &w);
            }
            OptimizerKind::Nesterov { mu } => {
                let g = grad.flatten();
                assert_eq!(g.len(), self.m.len(), "optimizer sized for another model");
                let mut w = model.flatten();
                for ((wi, gi), mi) in w.iter_mut().zip(&g).zip(self.m.iter_mut()) {
                    *mi = mu * *mi + gi;
                    *wi -= eta * (gi + mu * *mi);
                }
                *model = Model::unflatten(model.spec(), &w);
            }
            OptimizerKind::Adagrad { eps } => {
                let g = grad.flatten();
                assert_eq!(g.len(), self.v.len(), "optimizer sized for another model");
                let mut w = model.flatten();
                for ((wi, gi), vi) in w.iter_mut().zip(&g).zip(self.v.iter_mut()) {
                    *vi += gi * gi;
                    *wi -= eta * gi / (vi.sqrt() + eps);
                }
                *model = Model::unflatten(model.spec(), &w);
            }
            OptimizerKind::Adam { beta1, beta2, eps } => {
                let g = grad.flatten();
                assert_eq!(g.len(), self.m.len(), "optimizer sized for another model");
                let mut w = model.flatten();
                let bc1 = 1.0 - beta1.powi(self.t as i32);
                let bc2 = 1.0 - beta2.powi(self.t as i32);
                for (((wi, gi), mi), vi) in w
                    .iter_mut()
                    .zip(&g)
                    .zip(self.m.iter_mut())
                    .zip(self.v.iter_mut())
                {
                    *mi = beta1 * *mi + (1.0 - beta1) * gi;
                    *vi = beta2 * *vi + (1.0 - beta2) * gi * gi;
                    let m_hat = *mi / bc1;
                    let v_hat = *vi / bc2;
                    *wi -= eta * m_hat / (v_hat.sqrt() + eps);
                }
                *model = Model::unflatten(model.spec(), &w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backward::loss_and_gradient;
    use crate::forward::Targets;
    use crate::init::InitScheme;
    use crate::spec::MlpSpec;
    use hetero_tensor::Matrix;

    fn toy_problem() -> (Model, Matrix, Vec<u32>) {
        let spec = MlpSpec::tiny(2, 2);
        let model = Model::new(spec, InitScheme::Xavier, 4);
        let x = Matrix::from_fn(30, 2, |i, j| {
            let s = if i < 15 { 1.0 } else { -1.0 };
            s * (1.0 + 0.1 * ((i + j) as f32).sin())
        });
        let y: Vec<u32> = (0..30).map(|i| if i < 15 { 0 } else { 1 }).collect();
        (model, x, y)
    }

    fn train_loss(kind: OptimizerKind, eta: f32, steps: usize) -> (f32, f32) {
        let (mut model, x, y) = toy_problem();
        let mut opt = Optimizer::new(kind, model.num_params());
        let (first, _) = loss_and_gradient(&model, &x, Targets::Classes(&y), false);
        let mut last = first;
        for _ in 0..steps {
            let (l, g) = loss_and_gradient(&model, &x, Targets::Classes(&y), false);
            opt.step(&mut model, &g, eta);
            last = l;
        }
        (first, last)
    }

    #[test]
    fn sgd_matches_apply_gradient() {
        let (mut a, x, y) = toy_problem();
        let mut b = a.clone();
        let mut opt = Optimizer::new(OptimizerKind::Sgd, a.num_params());
        let (_, g) = loss_and_gradient(&a, &x, Targets::Classes(&y), false);
        opt.step(&mut a, &g, 0.1);
        b.apply_gradient(&g, 0.1);
        assert_eq!(a, b);
        assert_eq!(opt.steps(), 1);
    }

    #[test]
    fn every_optimizer_converges_on_toy_problem() {
        for (kind, eta) in [
            (OptimizerKind::Sgd, 0.5),
            (OptimizerKind::momentum(), 0.1),
            (OptimizerKind::nesterov(), 0.1),
            (OptimizerKind::adagrad(), 0.5),
            (OptimizerKind::adam(), 0.05),
        ] {
            let (first, last) = train_loss(kind, eta, 120);
            assert!(
                last < first * 0.6,
                "{kind:?}: {first} -> {last} did not converge"
            );
            assert!(last.is_finite());
        }
    }

    #[test]
    fn momentum_accumulates_velocity() {
        // Two steps with a constant gradient must move farther than 2×
        // a single step (velocity compounds).
        let spec = MlpSpec::tiny(2, 2);
        let mut m = Model::new(spec.clone(), InitScheme::Constant(0.0), 0);
        let mut g = Model::zeros_like(&spec);
        g.layers_mut()[0].w.set(0, 0, 1.0);
        let mut opt = Optimizer::new(OptimizerKind::Momentum { mu: 0.9 }, m.num_params());
        opt.step(&mut m, &g, 0.1);
        opt.step(&mut m, &g, 0.1);
        let moved = -m.layers()[0].w.get(0, 0);
        // Plain SGD would move 0.2; momentum moves 0.1·(1 + 1.9) = 0.29.
        assert!((moved - 0.29).abs() < 1e-6, "moved {moved}");
    }

    #[test]
    fn adagrad_shrinks_effective_rate() {
        let spec = MlpSpec::tiny(2, 2);
        let mut m = Model::new(spec.clone(), InitScheme::Constant(0.0), 0);
        let mut g = Model::zeros_like(&spec);
        g.layers_mut()[0].w.set(0, 0, 2.0);
        let mut opt = Optimizer::new(OptimizerKind::Adagrad { eps: 1e-8 }, m.num_params());
        opt.step(&mut m, &g, 0.1);
        let step1 = -m.layers()[0].w.get(0, 0);
        opt.step(&mut m, &g, 0.1);
        let step2 = -m.layers()[0].w.get(0, 0) - step1;
        assert!(
            step2 < step1,
            "adagrad steps must shrink: {step1} then {step2}"
        );
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, Adam's first step ≈ η regardless of
        // gradient magnitude.
        let spec = MlpSpec::tiny(2, 2);
        for scale in [0.01f32, 1.0, 100.0] {
            let mut m = Model::new(spec.clone(), InitScheme::Constant(0.0), 0);
            let mut g = Model::zeros_like(&spec);
            g.layers_mut()[0].w.set(0, 0, scale);
            let mut opt = Optimizer::new(OptimizerKind::adam(), m.num_params());
            opt.step(&mut m, &g, 0.1);
            let moved = -m.layers()[0].w.get(0, 0);
            assert!((moved - 0.1).abs() < 1e-3, "scale {scale}: moved {moved}");
        }
    }

    #[test]
    #[should_panic(expected = "sized for another model")]
    fn wrong_size_state_panics() {
        let spec = MlpSpec::tiny(2, 2);
        let mut m = Model::new(spec.clone(), InitScheme::Xavier, 0);
        let g = Model::zeros_like(&spec);
        let mut opt = Optimizer::new(OptimizerKind::momentum(), 3);
        opt.step(&mut m, &g, 0.1);
    }
}
