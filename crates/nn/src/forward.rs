//! Batch forward pass, loss evaluation, and prediction (Eq. 1 of the paper).

use hetero_tensor::{gemm, ops, Matrix};

use crate::model::Model;
use crate::spec::LossKind;

/// Floor applied inside `log` to keep the loss finite.
const EPS: f32 = 1e-12;

/// Ground-truth labels for a batch.
#[derive(Debug, Clone, Copy)]
pub enum Targets<'a> {
    /// One class index per example (softmax + cross-entropy datasets).
    Classes(&'a [u32]),
    /// Multi-hot `batch×classes` 0/1 matrix (multi-label BCE datasets).
    MultiHot(&'a Matrix),
}

impl Targets<'_> {
    /// Number of examples the targets describe.
    pub fn len(&self) -> usize {
        match self {
            Targets::Classes(c) => c.len(),
            Targets::MultiHot(m) => m.rows(),
        }
    }

    /// True when no examples are present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// All per-layer activations of one forward pass.
///
/// `activations[l]` is the post-activation output of layer `l`
/// (`batch×width`); the final entry holds the output probabilities
/// (softmax or sigmoid, depending on the loss). The backward pass consumes
/// this to avoid recomputation.
#[derive(Debug, Clone)]
pub struct ForwardPass {
    /// Post-activation outputs per layer, ending with the probabilities.
    pub activations: Vec<Matrix>,
}

impl ForwardPass {
    /// The output probabilities (`batch×classes`).
    pub fn probs(&self) -> &Matrix {
        self.activations.last().expect("non-empty network")
    }
}

/// Run the network on a batch `x` (`batch×input_dim`).
///
/// Uses the rayon-parallel GEMM kernels; pass `parallel = false` from
/// contexts that manage their own thread-level parallelism (e.g. Hogwild
/// threads each processing a sub-batch).
///
/// Allocates a fresh activation stack per call; the steady-state training
/// loops reuse buffers via [`crate::workspace::Workspace`]. Both paths run
/// through the same kernel sequence, so their results are bit-identical.
pub fn forward(model: &Model, x: &Matrix, parallel: bool) -> ForwardPass {
    let mut activations = Vec::new();
    forward_into_buffers(model, x, parallel, &mut activations);
    ForwardPass { activations }
}

/// Core forward pass writing into caller-owned activation buffers.
///
/// `activations` is resized to one matrix per layer; each matrix is
/// reshaped with [`Matrix::resize`], so a warmed buffer set incurs no
/// allocation. The bias-add is fused into the NT GEMM epilogue
/// ([`gemm::gemm_nt_bias`]) — one pass over each pre-activation.
pub(crate) fn forward_into_buffers(
    model: &Model,
    x: &Matrix,
    parallel: bool,
    activations: &mut Vec<Matrix>,
) {
    assert_eq!(
        x.cols(),
        model.spec().input_dim,
        "batch feature width {} != input_dim {}",
        x.cols(),
        model.spec().input_dim
    );
    let batch = x.rows();
    let n_layers = model.layers().len();
    activations.resize_with(n_layers, || Matrix::zeros(0, 0));
    for (l, layer) in model.layers().iter().enumerate() {
        let out_dim = layer.w.rows();
        // Split so we can read the previous activation while writing this one.
        let (head, tail) = activations.split_at_mut(l);
        let z = &mut tail[0];
        z.resize(batch, out_dim);
        let input: &Matrix = if l == 0 { x } else { &head[l - 1] };
        if parallel {
            gemm::par_gemm_nt_bias(1.0, input, &layer.w, &layer.b, z);
        } else {
            gemm::gemm_nt_bias(1.0, input, &layer.w, &layer.b, z);
        }
        if l + 1 == n_layers {
            match model.spec().loss {
                LossKind::SoftmaxCrossEntropy => ops::softmax_rows(&mut *z),
                LossKind::MultiLabelBce => ops::sigmoid_inplace(&mut *z),
            }
        } else {
            model.spec().activation.apply(&mut *z);
        }
    }
}

/// Mean loss of predicted probabilities against the targets.
///
/// - Softmax CE: `-(1/B) Σ log p[yᵢ]`
/// - Multi-label BCE: `-(1/B) Σᵢ Σⱼ [yᵢⱼ log pᵢⱼ + (1-yᵢⱼ) log (1-pᵢⱼ)]`
pub fn loss(probs: &Matrix, targets: Targets<'_>, kind: LossKind) -> f32 {
    let batch = probs.rows();
    if batch == 0 {
        return 0.0;
    }
    match (kind, targets) {
        (LossKind::SoftmaxCrossEntropy, Targets::Classes(labels)) => {
            assert_eq!(labels.len(), batch, "label count != batch size");
            let mut total = 0.0f64;
            for (i, &y) in labels.iter().enumerate() {
                let p = probs.get(i, y as usize).max(EPS);
                total -= (p as f64).ln();
            }
            (total / batch as f64) as f32
        }
        (LossKind::MultiLabelBce, Targets::MultiHot(y)) => {
            assert_eq!(y.shape(), probs.shape(), "multi-hot shape mismatch");
            let mut total = 0.0f64;
            for (p, t) in probs.as_slice().iter().zip(y.as_slice()) {
                let p = (*p).clamp(EPS, 1.0 - EPS) as f64;
                total -= if *t > 0.5 { p.ln() } else { (1.0 - p).ln() };
            }
            (total / batch as f64) as f32
        }
        _ => panic!("targets kind does not match the loss kind"),
    }
}

/// Convenience: forward pass returning only the probabilities.
pub fn predict_probs(model: &Model, x: &Matrix, parallel: bool) -> Matrix {
    let mut pass = forward(model, x, parallel);
    pass.activations.pop().expect("non-empty network")
}

/// Classification accuracy.
///
/// Single-label: fraction of examples whose argmax matches the label.
/// Multi-label: fraction whose argmax is one of the positive labels
/// (precision@1, a standard multi-label proxy).
pub fn accuracy(probs: &Matrix, targets: Targets<'_>) -> f32 {
    let batch = probs.rows();
    if batch == 0 {
        return 0.0;
    }
    let hits = match targets {
        Targets::Classes(labels) => {
            assert_eq!(labels.len(), batch);
            (0..batch)
                .filter(|&i| ops::argmax(probs.row(i)) == labels[i] as usize)
                .count()
        }
        Targets::MultiHot(y) => {
            assert_eq!(y.shape(), probs.shape());
            (0..batch)
                .filter(|&i| y.get(i, ops::argmax(probs.row(i))) > 0.5)
                .count()
        }
    };
    hits as f32 / batch as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::InitScheme;
    use crate::spec::MlpSpec;
    use crate::Activation;

    fn model() -> Model {
        Model::new(MlpSpec::tiny(3, 2), InitScheme::Xavier, 1)
    }

    #[test]
    fn forward_output_is_distribution() {
        let m = model();
        let x = Matrix::from_rows(&[&[0.1, -0.2, 0.3], &[1.0, 1.0, 1.0]]);
        let pass = forward(&m, &x, false);
        assert_eq!(pass.activations.len(), 3);
        let probs = pass.probs();
        assert_eq!(probs.shape(), (2, 2));
        for i in 0..2 {
            let s: f32 = probs.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn parallel_matches_serial_forward() {
        let m = model();
        let x = Matrix::from_fn(40, 3, |i, j| ((i * 3 + j) as f32).sin());
        let a = forward(&m, &x, false);
        let b = forward(&m, &x, true);
        assert!(a.probs().approx_eq(b.probs(), 1e-6));
    }

    #[test]
    fn loss_perfect_prediction_near_zero() {
        let probs = Matrix::from_rows(&[&[1.0 - 1e-7, 1e-7], &[1e-7, 1.0 - 1e-7]]);
        let l = loss(
            &probs,
            Targets::Classes(&[0, 1]),
            LossKind::SoftmaxCrossEntropy,
        );
        assert!(l < 1e-5, "loss {l}");
    }

    #[test]
    fn loss_uniform_prediction_is_log_classes() {
        let probs = Matrix::full(4, 2, 0.5);
        let l = loss(
            &probs,
            Targets::Classes(&[0, 1, 0, 1]),
            LossKind::SoftmaxCrossEntropy,
        );
        assert!((l - (2.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn loss_handles_zero_probability_without_inf() {
        let probs = Matrix::from_rows(&[&[0.0, 1.0]]);
        let l = loss(
            &probs,
            Targets::Classes(&[0]),
            LossKind::SoftmaxCrossEntropy,
        );
        assert!(l.is_finite() && l > 10.0);
    }

    #[test]
    fn multilabel_bce_loss() {
        let probs = Matrix::from_rows(&[&[0.9, 0.1, 0.8]]);
        let y = Matrix::from_rows(&[&[1.0, 0.0, 1.0]]);
        let l = loss(&probs, Targets::MultiHot(&y), LossKind::MultiLabelBce);
        let expect = -(0.9f32.ln() + 0.9f32.ln() + 0.8f32.ln());
        assert!((l - expect).abs() < 1e-4, "{l} vs {expect}");
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_targets_panic() {
        let probs = Matrix::full(1, 2, 0.5);
        loss(&probs, Targets::Classes(&[0]), LossKind::MultiLabelBce);
    }

    #[test]
    fn accuracy_single_label() {
        let probs = Matrix::from_rows(&[&[0.9, 0.1], &[0.2, 0.8], &[0.6, 0.4]]);
        let acc = accuracy(&probs, Targets::Classes(&[0, 1, 1]));
        assert!((acc - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn accuracy_multilabel_precision_at_1() {
        let probs = Matrix::from_rows(&[&[0.9, 0.1, 0.3], &[0.1, 0.8, 0.3]]);
        let y = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[1.0, 0.0, 1.0]]);
        let acc = accuracy(&probs, Targets::MultiHot(&y));
        assert!((acc - 0.5).abs() < 1e-6);
    }

    #[test]
    fn empty_batch_loss_and_accuracy_are_zero() {
        let probs = Matrix::zeros(0, 2);
        assert_eq!(
            loss(&probs, Targets::Classes(&[]), LossKind::SoftmaxCrossEntropy),
            0.0
        );
        assert_eq!(accuracy(&probs, Targets::Classes(&[])), 0.0);
    }

    #[test]
    fn multilabel_forward_uses_sigmoid_output() {
        let spec = MlpSpec {
            input_dim: 3,
            hidden: vec![4],
            classes: 5,
            activation: Activation::Sigmoid,
            loss: LossKind::MultiLabelBce,
        };
        let m = Model::new(spec, InitScheme::Xavier, 2);
        let x = Matrix::from_rows(&[&[0.5, -0.5, 1.0]]);
        let probs = predict_probs(&m, &x, false);
        // Sigmoid outputs are independent — they need not sum to 1.
        assert!(probs.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    #[should_panic(expected = "input_dim")]
    fn wrong_feature_width_panics() {
        forward(&model(), &Matrix::zeros(1, 7), false);
    }
}
