//! Weight-initialization schemes.
//!
//! The paper initializes weights from a normal distribution whose standard
//! deviation is tied to the layer width (§VII-A); [`InitScheme::PaperNormal`]
//! implements that (σ = 1/units, the scaling that keeps sigmoid
//! pre-activations in range). Xavier/Glorot and a fixed-σ normal are also
//! provided for the testbed role.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// How to draw initial weights. Biases always start at zero.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum InitScheme {
    /// Normal with σ = 1 / fan_out — the paper's width-scaled initializer.
    #[default]
    PaperNormal,
    /// Glorot/Xavier: σ = sqrt(2 / (fan_in + fan_out)).
    Xavier,
    /// Xavier with the logistic-sigmoid gain of 4 — the correction that
    /// keeps signal variance stable through deep σ stacks (σ'(0) = 1/4).
    /// Required for the paper's 4–8-hidden-layer sigmoid networks to
    /// escape the uniform-prediction plateau.
    XavierSigmoid,
    /// Normal with an explicit σ.
    Normal(f32),
    /// All weights equal to a constant (degenerate; for tests only).
    Constant(f32),
}

impl InitScheme {
    /// Standard deviation used for a layer of shape `(fan_in, fan_out)`.
    pub fn sigma(&self, fan_in: usize, fan_out: usize) -> f32 {
        match self {
            InitScheme::PaperNormal => 1.0 / fan_out.max(1) as f32,
            InitScheme::Xavier => (2.0 / (fan_in + fan_out).max(1) as f32).sqrt(),
            InitScheme::XavierSigmoid => 4.0 * (2.0 / (fan_in + fan_out).max(1) as f32).sqrt(),
            InitScheme::Normal(s) => *s,
            InitScheme::Constant(_) => 0.0,
        }
    }

    /// Fill a weight buffer for a layer of shape `(fan_in, fan_out)`.
    pub fn fill(&self, fan_in: usize, fan_out: usize, seed: u64, buf: &mut [f32]) {
        match self {
            InitScheme::Constant(c) => buf.iter_mut().for_each(|v| *v = *c),
            _ => {
                let sigma = self.sigma(fan_in, fan_out).max(f32::MIN_POSITIVE);
                let normal = Normal::new(0.0f32, sigma).expect("valid sigma");
                let mut rng = StdRng::seed_from_u64(seed);
                buf.iter_mut().for_each(|v| *v = normal.sample(&mut rng));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sigma_scales_with_width() {
        assert!((InitScheme::PaperNormal.sigma(100, 512) - 1.0 / 512.0).abs() < 1e-9);
    }

    #[test]
    fn xavier_sigma() {
        let s = InitScheme::Xavier.sigma(100, 100);
        assert!((s - (2.0f32 / 200.0).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn fill_is_deterministic_per_seed() {
        let mut a = vec![0.0; 64];
        let mut b = vec![0.0; 64];
        InitScheme::PaperNormal.fill(8, 8, 42, &mut a);
        InitScheme::PaperNormal.fill(8, 8, 42, &mut b);
        assert_eq!(a, b);
        InitScheme::PaperNormal.fill(8, 8, 43, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn constant_fill() {
        let mut a = vec![0.0; 4];
        InitScheme::Constant(0.5).fill(2, 2, 0, &mut a);
        assert_eq!(a, vec![0.5; 4]);
    }

    #[test]
    fn sample_std_close_to_requested() {
        let mut buf = vec![0.0f32; 20_000];
        InitScheme::Normal(0.1).fill(10, 10, 7, &mut buf);
        let mean: f32 = buf.iter().sum::<f32>() / buf.len() as f32;
        let var: f32 = buf.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / buf.len() as f32;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var.sqrt() - 0.1).abs() < 0.01, "std {}", var.sqrt());
    }
}
