//! Model-checking of the SharedModel update paths under `--features loom`:
//! the CAS merge must never lose an update in any interleaving, and the
//! racy Hogwild path must stay inside its documented lost-update envelope
//! (values from a feasible serialization, never corruption).
#![cfg(feature = "loom")]

use std::sync::Arc;

use hetero_nn::{Activation, InitScheme, LossKind, MlpSpec, Model, SharedModel};
use loom::thread;

/// Smallest possible network (one 1×1 weight + one bias = 2 parameters) so
/// the model checker's schedule space stays tractable.
fn scalar_spec() -> MlpSpec {
    MlpSpec {
        input_dim: 1,
        hidden: vec![],
        classes: 1,
        activation: Activation::Sigmoid,
        loss: LossKind::SoftmaxCrossEntropy,
    }
}

#[test]
fn concurrent_merge_delta_loses_nothing() {
    loom::model(|| {
        let base = Model::new(scalar_spec(), InitScheme::Constant(0.0), 0);
        let shared = Arc::new(SharedModel::new(&base));
        let mut replica = base.clone();
        replica.layers_mut()[0].w.set(0, 0, 1.0);
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let s = Arc::clone(&shared);
                let (b, r) = (base.clone(), replica.clone());
                thread::spawn(move || s.merge_delta(&b, &r))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.update_count(), 2);
        let w = shared.snapshot().layers()[0].w.get(0, 0);
        assert!((w - 2.0).abs() < 1e-6, "CAS merge lost an update: {w}");
    });
}

#[test]
fn concurrent_atomic_gradients_all_applied() {
    loom::model(|| {
        let base = Model::new(scalar_spec(), InitScheme::Constant(0.0), 0);
        let shared = Arc::new(SharedModel::new(&base));
        let mut grad = Model::zeros_like(base.spec());
        grad.layers_mut()[0].w.set(0, 0, 1.0);
        let grad = Arc::new(grad);
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let s = Arc::clone(&shared);
                let g = Arc::clone(&grad);
                thread::spawn(move || s.apply_gradient_atomic(&g, 1.0))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let w = shared.snapshot().layers()[0].w.get(0, 0);
        assert!(
            (w - (-2.0)).abs() < 1e-6,
            "atomic gradient path lost an update: {w}"
        );
        assert_eq!(shared.update_count(), 2);
    });
}

#[test]
fn racy_hogwild_updates_stay_in_feasible_envelope() {
    loom::model(|| {
        let base = Model::new(scalar_spec(), InitScheme::Constant(0.0), 0);
        let shared = Arc::new(SharedModel::new(&base));
        let mut grad = Model::zeros_like(base.spec());
        grad.layers_mut()[0].w.set(0, 0, 1.0);
        let grad = Arc::new(grad);
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let s = Arc::clone(&shared);
                let g = Arc::clone(&grad);
                thread::spawn(move || s.apply_gradient_racy(&g, 1.0))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Hogwild: anywhere between "one overwrote the other" and "both
        // landed" is a feasible serialization; anything else is corruption.
        let w = shared.snapshot().layers()[0].w.get(0, 0);
        assert!(
            w == -1.0 || w == -2.0,
            "racy result {w} outside the feasible envelope"
        );
        assert_eq!(shared.update_count(), 2);
    });
}
