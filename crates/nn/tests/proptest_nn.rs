//! Property-based tests on the network's mathematical invariants.

// The loom build swaps SharedModel's atomics for model-checked versions that
// require a loom context; these std tests are compiled out there.
#![cfg(not(feature = "loom"))]

use hetero_nn::{
    backward, forward, loss, loss_and_gradient, Activation, InitScheme, LossKind, MlpSpec, Model,
    SharedModel, Targets,
};
use hetero_tensor::Matrix;
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = MlpSpec> {
    (
        1usize..6,
        prop::collection::vec(1usize..10, 0..3),
        2usize..5,
    )
        .prop_map(|(input, hidden, classes)| MlpSpec {
            input_dim: input,
            hidden,
            classes,
            activation: Activation::Sigmoid,
            loss: LossKind::SoftmaxCrossEntropy,
        })
}

fn arb_batch(spec: &MlpSpec, rows: usize, seed: u64) -> (Matrix, Vec<u32>) {
    let d = spec.input_dim;
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
    };
    let x = Matrix::from_fn(rows, d, |_, _| next());
    let y = (0..rows).map(|i| (i % spec.classes) as u32).collect();
    (x, y)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Softmax forward output is a probability distribution per row for
    /// any architecture and any input.
    #[test]
    fn forward_outputs_distributions(spec in arb_spec(), seed in any::<u64>()) {
        let model = Model::new(spec.clone(), InitScheme::Xavier, seed);
        let (x, _) = arb_batch(&spec, 7, seed);
        let pass = forward(&model, &x, false);
        let probs = pass.probs();
        for i in 0..probs.rows() {
            let s: f32 = probs.row(i).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4, "row {i} sums {s}");
            prop_assert!(probs.row(i).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    /// Cross-entropy loss is non-negative and finite everywhere.
    #[test]
    fn loss_nonnegative_finite(spec in arb_spec(), seed in any::<u64>()) {
        let model = Model::new(spec.clone(), InitScheme::PaperNormal, seed);
        let (x, y) = arb_batch(&spec, 5, seed);
        let pass = forward(&model, &x, false);
        let l = loss(pass.probs(), Targets::Classes(&y), spec.loss);
        prop_assert!(l >= 0.0 && l.is_finite(), "loss {l}");
    }

    /// Gradient of a doubled batch equals the gradient of the batch
    /// (mean-loss normalization): duplicating every example is a no-op.
    #[test]
    fn gradient_invariant_to_duplication(spec in arb_spec(), seed in any::<u64>()) {
        let model = Model::new(spec.clone(), InitScheme::Xavier, seed);
        let (x, y) = arb_batch(&spec, 4, seed);
        let mut x2 = Matrix::zeros(8, spec.input_dim);
        let mut y2 = Vec::with_capacity(8);
        for i in 0..8 {
            x2.row_mut(i).copy_from_slice(x.row(i % 4));
            y2.push(y[i % 4]);
        }
        let (l1, g1) = loss_and_gradient(&model, &x, Targets::Classes(&y), false);
        let (l2, g2) = loss_and_gradient(&model, &x2, Targets::Classes(&y2), false);
        prop_assert!((l1 - l2).abs() < 1e-5);
        for (a, b) in g1.flatten().iter().zip(g2.flatten().iter()) {
            prop_assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    /// A gradient step with small enough η decreases the batch loss
    /// (descent direction property).
    #[test]
    fn gradient_is_descent_direction(spec in arb_spec(), seed in any::<u64>()) {
        let mut model = Model::new(spec.clone(), InitScheme::Xavier, seed);
        let (x, y) = arb_batch(&spec, 6, seed);
        let (l0, g) = loss_and_gradient(&model, &x, Targets::Classes(&y), false);
        // Skip degenerate zero gradients (perfectly predicted random init
        // is effectively impossible, but stay safe).
        prop_assume!(g.param_norm() > 1e-9);
        model.apply_gradient(&g, 1e-3 / (1.0 + g.param_norm()));
        let pass = forward(&model, &x, false);
        let l1 = loss(pass.probs(), Targets::Classes(&y), spec.loss);
        prop_assert!(l1 <= l0 + 1e-6, "loss rose {l0} -> {l1}");
    }

    /// backward() on a recomputed pass equals loss_and_gradient's output.
    #[test]
    fn backward_consistent_with_combined_call(spec in arb_spec(), seed in any::<u64>()) {
        let model = Model::new(spec.clone(), InitScheme::Xavier, seed);
        let (x, y) = arb_batch(&spec, 3, seed);
        let pass = forward(&model, &x, false);
        let g1 = backward(&model, &x, &pass, Targets::Classes(&y), false);
        let (_, g2) = loss_and_gradient(&model, &x, Targets::Classes(&y), false);
        prop_assert_eq!(g1.flatten(), g2.flatten());
    }

    /// SharedModel snapshot/store round-trips arbitrary models.
    #[test]
    fn shared_model_roundtrip(spec in arb_spec(), seed in any::<u64>()) {
        let m1 = Model::new(spec.clone(), InitScheme::Xavier, seed);
        let m2 = Model::new(spec, InitScheme::PaperNormal, seed ^ 1);
        let shared = SharedModel::new(&m1);
        prop_assert_eq!(shared.snapshot(), m1);
        shared.store(&m2);
        prop_assert_eq!(shared.snapshot(), m2);
    }

    /// Flatten/unflatten is a bijection for random parameter vectors.
    #[test]
    fn flatten_bijection(spec in arb_spec()) {
        let n = spec.num_params();
        let params: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
        let model = Model::unflatten(&spec, &params);
        prop_assert_eq!(model.flatten(), params);
    }
}
