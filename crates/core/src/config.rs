//! Training configuration: algorithm choice and hyperparameters.

use serde::{Deserialize, Serialize};

/// Which SGD algorithm to run (paper §VI–VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlgorithmKind {
    /// Hogbatch CPU: CPU-only, one example per thread — pure Hogwild \[16\].
    HogwildCpu,
    /// CPU-only Hogbatch with a configurable per-thread sub-batch size.
    HogbatchCpu,
    /// Hogbatch GPU: GPU-only large-batch mini-batch SGD.
    MiniBatchGpu,
    /// TensorFlow comparator: synchronous mini-batch with per-op dispatch
    /// overhead and a slow multi-label loss path (§II, §VII-B).
    TensorFlow,
    /// CPU+GPU Hogbatch (§VI-B): static small CPU batches + static large
    /// GPU batches updating one shared model asynchronously.
    CpuGpuHogbatch,
    /// Omnivore-style comparator (§II): batch sizes **proportional to
    /// device speed**, computed once before execution and kept constant —
    /// the goal being synchronized completion across devices. The paper's
    /// criticism (runtime speed differs from the estimate) is observable
    /// by comparing this against `AdaptiveHogbatch`.
    StaticProportional,
    /// Adaptive Hogbatch (§VI-C, Algorithm 2): batch sizes continuously
    /// doubled/halved to bound the update-count gap between workers.
    AdaptiveHogbatch,
    /// Hybrid SVRG — the paper's §II intuition made literal: the GPU's
    /// accurate large-batch gradients serve as *variance-reduction anchors*
    /// ("rare jumps using a compass") while CPU Hogwild steps apply the
    /// SVRG-corrected direction `∇f_i(w) − ∇f_i(ŵ) + μ̂` against the most
    /// recent anchor. A new algorithm developed on the testbed, as §V
    /// invites. Simulation engine only.
    HybridSvrg,
}

impl AlgorithmKind {
    /// All algorithms in the paper's presentation order.
    pub fn all() -> [AlgorithmKind; 5] {
        [
            AlgorithmKind::HogwildCpu,
            AlgorithmKind::MiniBatchGpu,
            AlgorithmKind::TensorFlow,
            AlgorithmKind::CpuGpuHogbatch,
            AlgorithmKind::AdaptiveHogbatch,
        ]
    }

    /// All algorithms including the comparators and extensions beyond the
    /// paper's five.
    pub fn all_extended() -> [AlgorithmKind; 7] {
        [
            AlgorithmKind::HogwildCpu,
            AlgorithmKind::MiniBatchGpu,
            AlgorithmKind::TensorFlow,
            AlgorithmKind::CpuGpuHogbatch,
            AlgorithmKind::StaticProportional,
            AlgorithmKind::AdaptiveHogbatch,
            AlgorithmKind::HybridSvrg,
        ]
    }

    /// Whether the algorithm uses the CPU worker.
    pub fn uses_cpu(&self) -> bool {
        !matches!(
            self,
            AlgorithmKind::MiniBatchGpu | AlgorithmKind::TensorFlow
        )
    }

    /// Whether the algorithm uses GPU worker(s).
    pub fn uses_gpu(&self) -> bool {
        !matches!(self, AlgorithmKind::HogwildCpu | AlgorithmKind::HogbatchCpu)
    }

    /// Whether batch sizes evolve at runtime.
    pub fn is_adaptive(&self) -> bool {
        matches!(self, AlgorithmKind::AdaptiveHogbatch)
    }

    /// Display name matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            AlgorithmKind::HogwildCpu => "Hogbatch CPU",
            AlgorithmKind::HogbatchCpu => "Hogbatch CPU (sub-batched)",
            AlgorithmKind::MiniBatchGpu => "Hogbatch GPU",
            AlgorithmKind::TensorFlow => "TensorFlow",
            AlgorithmKind::CpuGpuHogbatch => "CPU+GPU Hogbatch",
            AlgorithmKind::StaticProportional => "Omnivore-static",
            AlgorithmKind::AdaptiveHogbatch => "Adaptive Hogbatch",
            AlgorithmKind::HybridSvrg => "Hybrid SVRG",
        }
    }
}

/// How the learning rate scales with the batch a gradient was computed on.
///
/// The paper sets "the learning rate to be proportional with the batch
/// size" (§VI-B, after Goyal et al. \[7\]), so accurate large-batch gradients
/// move the model further than noisy single-example ones.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LrScaling {
    /// Same learning rate for every worker regardless of batch.
    None,
    /// `eta = base · (batch / ref_batch)`, clamped to `max_lr`.
    Linear {
        /// Batch size at which `eta == base`.
        ref_batch: usize,
        /// Upper clamp preventing divergence at huge batches.
        max_lr: f32,
    },
    /// `eta = base · sqrt(batch / ref_batch)`, clamped to `max_lr`.
    Sqrt {
        /// Batch size at which `eta == base`.
        ref_batch: usize,
        /// Upper clamp preventing divergence at huge batches.
        max_lr: f32,
    },
}

impl LrScaling {
    /// Effective learning rate for a gradient computed over `batch` examples.
    pub fn eta(&self, base: f32, batch: usize) -> f32 {
        match self {
            LrScaling::None => base,
            LrScaling::Linear { ref_batch, max_lr } => {
                (base * batch as f32 / (*ref_batch).max(1) as f32).min(*max_lr)
            }
            LrScaling::Sqrt { ref_batch, max_lr } => {
                (base * (batch as f32 / (*ref_batch).max(1) as f32).sqrt()).min(*max_lr)
            }
        }
    }
}

/// Parameters of the Adaptive Hogbatch controller (Algorithm 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveParams {
    /// Batch-size scaling factor α (default 2: double/halve).
    pub alpha: f64,
    /// Fraction β of CPU sub-updates assumed to survive conflicts
    /// (default 1).
    pub beta: f64,
    /// Lower batch-size threshold for the CPU worker (per worker, total
    /// examples — the paper starts the CPU at 1/thread).
    pub cpu_min_batch: usize,
    /// Upper batch-size threshold for the CPU worker.
    pub cpu_max_batch: usize,
    /// Lower batch-size threshold for GPU workers (≈50% utilization).
    pub gpu_min_batch: usize,
    /// Upper batch-size threshold for GPU workers (≈100% utilization).
    pub gpu_max_batch: usize,
}

impl Default for AdaptiveParams {
    fn default() -> Self {
        AdaptiveParams {
            alpha: 2.0,
            beta: 1.0,
            cpu_min_batch: 56,      // 1 example × 56 threads
            cpu_max_batch: 56 * 64, // 64 examples per thread (§VII-A)
            gpu_min_batch: 512,
            gpu_max_batch: 8192,
        }
    }
}

impl AdaptiveParams {
    /// Validate parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.alpha <= 1.0 {
            return Err("alpha must exceed 1".into());
        }
        if !(0.0..=1.0).contains(&self.beta) {
            return Err("beta must be in [0,1]".into());
        }
        if self.cpu_min_batch == 0 || self.gpu_min_batch == 0 {
            return Err("min batches must be positive".into());
        }
        if self.cpu_min_batch > self.cpu_max_batch || self.gpu_min_batch > self.gpu_max_batch {
            return Err("min batch exceeds max batch".into());
        }
        Ok(())
    }
}

/// Full training configuration shared by both engines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Which algorithm to run.
    pub algorithm: AlgorithmKind,
    /// Weight initialization. Defaults to Xavier — the width-scaled normal
    /// the paper describes (§VII-A) reads as σ ∝ layer width, and Xavier is
    /// the variant that keeps deep sigmoid stacks trainable.
    pub init: hetero_nn::InitScheme,
    /// Base learning rate (grid-searched in powers of 10, §VII-A).
    pub lr: f32,
    /// Batch-dependent learning-rate scaling.
    pub lr_scaling: LrScaling,
    /// Examples per CPU thread in the static algorithms (paper: 1–64).
    pub cpu_batch_per_thread: usize,
    /// GPU batch size in the static algorithms (paper: 64–8192).
    pub gpu_batch: usize,
    /// Adaptive-controller parameters.
    pub adaptive: AdaptiveParams,
    /// Stop after this much (virtual or wall) time, in seconds.
    pub time_budget: f64,
    /// Optional epoch cap (the paper stops on time instead).
    pub max_epochs: Option<usize>,
    /// Optional global-L2 gradient clipping bound applied to every
    /// gradient before it reaches the model (testbed stabilizer; `None`
    /// matches the paper's plain SGD).
    pub grad_clip: Option<f32>,
    /// L2 weight decay λ: every update also applies `w ← (1 − ηλ)·w`
    /// (0 = off, matching the paper).
    pub weight_decay: f32,
    /// Staleness compensation κ (§VI-B: "the learning rate can be
    /// decreased to compensate for the stale gradient"). A gradient whose
    /// snapshot is `s` model-updates old is applied with
    /// `eta / (1 + κ·s)`; κ = 0 (default) disables compensation.
    pub staleness_discount: f32,
    /// Rayon pool size for intra-op (GEMM) parallelism: forward/backward
    /// passes run with `parallel = true` (coordinator evals, GPU kernel
    /// emulation) fan out to at most this many threads. `0` = one thread
    /// per available host core. Pinning this below the core count leaves
    /// headroom for the Hogwild lanes; requesting more threads than the
    /// host has is detected at engine start and reported on the
    /// `engine.pool_oversubscription` trace counter.
    pub rayon_threads: usize,
    /// Measure the surviving-update fraction β instead of assuming
    /// [`AdaptiveParams::beta`]. When on, CPU workers apply gradients
    /// through `SharedModel::apply_gradient_racy_sampled` (identical
    /// Hogwild dynamics plus sparse conflict probes) and the adaptive
    /// controller credits CPU batches with `t·β̂` from the live estimate.
    /// **Default off** to preserve paper parity: the paper fixes β = 1
    /// (DESIGN.md §4g documents the semantics and the caveat).
    pub measured_beta: bool,
    /// Seconds between loss evaluations (plus one at every epoch end).
    pub eval_interval: f64,
    /// Max examples used per loss evaluation (subsampled for speed).
    pub eval_subsample: usize,
    /// Seconds between crash-consistency checkpoints when a checkpointer
    /// is attached via the engines' `run_ckpt` entry points (virtual
    /// seconds in the simulation/PS engines, wall seconds in the threaded
    /// engine). `None` disables periodic checkpointing even when a
    /// checkpoint directory is configured.
    pub ckpt_interval: Option<f64>,
    /// How many checkpoint generations to keep on disk. Older generations
    /// are pruned after each successful write; at least one previous
    /// generation survives so a torn final write can fall back.
    pub ckpt_retain: usize,
    /// RNG seed for model init and shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            algorithm: AlgorithmKind::AdaptiveHogbatch,
            init: hetero_nn::InitScheme::Xavier,
            lr: 0.01,
            lr_scaling: LrScaling::Linear {
                ref_batch: 1,
                max_lr: 1.0,
            },
            cpu_batch_per_thread: 1,
            gpu_batch: 8192,
            adaptive: AdaptiveParams::default(),
            time_budget: 1.0,
            max_epochs: None,
            grad_clip: None,
            weight_decay: 0.0,
            staleness_discount: 0.0,
            rayon_threads: 0,
            measured_beta: false,
            eval_interval: 0.05,
            eval_subsample: 2048,
            ckpt_interval: None,
            ckpt_retain: 2,
            seed: 42,
        }
    }
}

impl TrainConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.lr <= 0.0 || !self.lr.is_finite() {
            return Err("lr must be positive and finite".into());
        }
        if self.cpu_batch_per_thread == 0 || self.gpu_batch == 0 {
            return Err("batch sizes must be positive".into());
        }
        if self.time_budget <= 0.0 {
            return Err("time budget must be positive".into());
        }
        if self.eval_interval <= 0.0 {
            return Err("eval interval must be positive".into());
        }
        if self.staleness_discount < 0.0 || !self.staleness_discount.is_finite() {
            return Err("staleness discount must be finite and non-negative".into());
        }
        if let Some(c) = self.grad_clip {
            if c <= 0.0 || !c.is_finite() {
                return Err("grad clip must be positive and finite".into());
            }
        }
        if self.weight_decay < 0.0 || !self.weight_decay.is_finite() {
            return Err("weight decay must be finite and non-negative".into());
        }
        if let Some(i) = self.ckpt_interval {
            if i <= 0.0 || !i.is_finite() {
                return Err("checkpoint interval must be positive and finite".into());
            }
        }
        if self.ckpt_retain == 0 {
            return Err("checkpoint retention must keep at least one generation".into());
        }
        self.adaptive.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_device_usage() {
        assert!(AlgorithmKind::HogwildCpu.uses_cpu());
        assert!(!AlgorithmKind::HogwildCpu.uses_gpu());
        assert!(!AlgorithmKind::MiniBatchGpu.uses_cpu());
        assert!(AlgorithmKind::MiniBatchGpu.uses_gpu());
        assert!(AlgorithmKind::CpuGpuHogbatch.uses_cpu());
        assert!(AlgorithmKind::CpuGpuHogbatch.uses_gpu());
        assert!(AlgorithmKind::AdaptiveHogbatch.is_adaptive());
        assert!(!AlgorithmKind::CpuGpuHogbatch.is_adaptive());
    }

    #[test]
    fn lr_scaling_rules() {
        let lin = LrScaling::Linear {
            ref_batch: 1,
            max_lr: 0.5,
        };
        assert_eq!(lin.eta(0.01, 1), 0.01);
        assert!((lin.eta(0.01, 10) - 0.1).abs() < 1e-7);
        assert_eq!(lin.eta(0.01, 1000), 0.5); // clamped
        let sq = LrScaling::Sqrt {
            ref_batch: 4,
            max_lr: 10.0,
        };
        assert!((sq.eta(0.1, 16) - 0.2).abs() < 1e-6);
        assert_eq!(LrScaling::None.eta(0.3, 9999), 0.3);
    }

    #[test]
    fn adaptive_params_validation() {
        assert!(AdaptiveParams::default().validate().is_ok());
        let p = AdaptiveParams {
            alpha: 1.0,
            ..AdaptiveParams::default()
        };
        assert!(p.validate().is_err());
        let p = AdaptiveParams {
            beta: 1.5,
            ..AdaptiveParams::default()
        };
        assert!(p.validate().is_err());
        let p = AdaptiveParams {
            gpu_min_batch: 10_000,
            ..AdaptiveParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn train_config_validation() {
        assert!(TrainConfig::default().validate().is_ok());
        let c = TrainConfig {
            lr: 0.0,
            ..TrainConfig::default()
        };
        assert!(c.validate().is_err());
        let c = TrainConfig {
            time_budget: -1.0,
            ..TrainConfig::default()
        };
        assert!(c.validate().is_err());
        let c = TrainConfig {
            gpu_batch: 0,
            ..TrainConfig::default()
        };
        assert!(c.validate().is_err());
        let c = TrainConfig {
            ckpt_interval: Some(0.0),
            ..TrainConfig::default()
        };
        assert!(c.validate().is_err());
        let c = TrainConfig {
            ckpt_retain: 0,
            ..TrainConfig::default()
        };
        assert!(c.validate().is_err());
        let c = TrainConfig {
            ckpt_interval: Some(0.5),
            ..TrainConfig::default()
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn labels_match_paper_naming() {
        assert_eq!(AlgorithmKind::HogwildCpu.label(), "Hogbatch CPU");
        assert_eq!(AlgorithmKind::AdaptiveHogbatch.label(), "Adaptive Hogbatch");
        assert_eq!(AlgorithmKind::all().len(), 5);
    }

    #[test]
    fn serde_roundtrip() {
        let c = TrainConfig::default();
        let s = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<TrainConfig>(&s).unwrap(), c);
    }
}
