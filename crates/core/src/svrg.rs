//! Stochastic Variance-Reduced Gradient (SVRG).
//!
//! §II of the paper motivates heterogeneous Hogbatch with exactly this
//! family: *"we can think of the CPU updates as many small steps in a
//! guessed direction, while the GPU updates are rare jumps using a compass.
//! This combination of updates – albeit sequential – is theoretically
//! proven to enhance SGD convergence and is at the origin of the SVRG
//! family of algorithms."*
//!
//! This module provides that sequential reference point:
//! [`train_svrg`] — the classic Johnson–Zhang loop (periodic full-gradient
//! anchors + variance-corrected stochastic steps) — and
//! [`train_sgd_baseline`] with the same access pattern, so the variance
//! reduction is measurable. The asynchronous analogue, where the GPU's
//! accurate large-batch gradients play the anchor role *concurrently* with
//! CPU Hogwild steps, is the paper's Hogbatch itself.

use hetero_data::DenseDataset;
use hetero_nn::{loss_and_gradient, Model};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// SVRG hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvrgConfig {
    /// Learning rate η.
    pub eta: f32,
    /// Inner (corrected stochastic) steps per outer anchor refresh.
    pub inner_steps: usize,
    /// Mini-batch size of the inner steps.
    pub batch: usize,
    /// Outer iterations (anchor refreshes).
    pub outer_iters: usize,
    /// RNG seed for batch selection.
    pub seed: u64,
}

impl Default for SvrgConfig {
    fn default() -> Self {
        SvrgConfig {
            eta: 0.05,
            inner_steps: 50,
            batch: 8,
            outer_iters: 5,
            seed: 17,
        }
    }
}

/// Full-dataset loss + gradient (the "compass" the anchor provides).
fn full_gradient(model: &Model, dataset: &DenseDataset) -> (f32, Model) {
    let (x, labels) = dataset.batch(0, dataset.len());
    loss_and_gradient(model, &x, labels.as_targets(), true)
}

/// Run SVRG; returns the full-dataset loss after each outer iteration
/// (index 0 is the initial loss).
pub fn train_svrg(model: &mut Model, dataset: &DenseDataset, cfg: &SvrgConfig) -> Vec<f32> {
    assert!(
        cfg.batch > 0 && cfg.batch <= dataset.len(),
        "bad batch size"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut losses = Vec::with_capacity(cfg.outer_iters + 1);
    let (l0, _) = full_gradient(model, dataset);
    losses.push(l0);

    for _ in 0..cfg.outer_iters {
        // Anchor: snapshot + full gradient μ = ∇F(ŵ).
        let anchor = model.clone();
        let (_, mu) = full_gradient(&anchor, dataset);

        for _ in 0..cfg.inner_steps {
            let start = rng.gen_range(0..=dataset.len() - cfg.batch);
            let (x, labels) = dataset.batch(start, start + cfg.batch);
            // Corrected direction: ∇f_i(w) − ∇f_i(ŵ) + μ.
            let (_, g_live) = loss_and_gradient(model, &x, labels.as_targets(), false);
            let (_, g_anchor) = loss_and_gradient(&anchor, &x, labels.as_targets(), false);
            let mut direction = g_live;
            direction.scaled_add(&g_anchor, -1.0);
            direction.scaled_add(&mu, 1.0);
            model.apply_gradient(&direction, cfg.eta);
        }
        let (l, _) = full_gradient(model, dataset);
        losses.push(l);
    }
    losses
}

/// Plain mini-batch SGD with the identical sampling pattern and step count
/// (the fair baseline for measuring SVRG's variance reduction).
pub fn train_sgd_baseline(model: &mut Model, dataset: &DenseDataset, cfg: &SvrgConfig) -> Vec<f32> {
    assert!(
        cfg.batch > 0 && cfg.batch <= dataset.len(),
        "bad batch size"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut losses = Vec::with_capacity(cfg.outer_iters + 1);
    let (l0, _) = full_gradient(model, dataset);
    losses.push(l0);
    for _ in 0..cfg.outer_iters {
        for _ in 0..cfg.inner_steps {
            let start = rng.gen_range(0..=dataset.len() - cfg.batch);
            let (x, labels) = dataset.batch(start, start + cfg.batch);
            let (_, g) = loss_and_gradient(model, &x, labels.as_targets(), false);
            model.apply_gradient(&g, cfg.eta);
        }
        let (l, _) = full_gradient(model, dataset);
        losses.push(l);
    }
    losses
}

/// Gradient-direction variance of the two estimators at the current model:
/// mean squared distance of per-batch directions from the full gradient.
/// Diagnostic used in tests and the ablation bench.
pub fn direction_variance(
    model: &Model,
    anchor: &Model,
    dataset: &DenseDataset,
    batch: usize,
    samples: usize,
    seed: u64,
) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (_, mu) = full_gradient(anchor, dataset);
    let (_, full) = full_gradient(model, dataset);
    let full_flat = full.flatten();
    let mu_flat = mu.flatten();
    let mut var_sgd = 0.0f64;
    let mut var_svrg = 0.0f64;
    for _ in 0..samples {
        let start = rng.gen_range(0..=dataset.len() - batch);
        let (x, labels) = dataset.batch(start, start + batch);
        let (_, g_live) = loss_and_gradient(model, &x, labels.as_targets(), false);
        let (_, g_anchor) = loss_and_gradient(anchor, &x, labels.as_targets(), false);
        let live = g_live.flatten();
        let anch = g_anchor.flatten();
        for i in 0..live.len() {
            let sgd_dir = live[i];
            let svrg_dir = live[i] - anch[i] + mu_flat[i];
            var_sgd += (sgd_dir - full_flat[i]).powi(2) as f64;
            var_svrg += (svrg_dir - full_flat[i]).powi(2) as f64;
        }
    }
    let n = (samples * full_flat.len()) as f64;
    (var_sgd / n, var_svrg / n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_data::SynthConfig;
    use hetero_nn::{InitScheme, MlpSpec};

    fn setup() -> (Model, DenseDataset) {
        let mut synth = SynthConfig::small(200, 6, 2, 21);
        synth.separability = 2.5;
        let mut d = synth.generate();
        d.standardize();
        let model = Model::new(MlpSpec::tiny(6, 2), InitScheme::Xavier, 5);
        (model, d)
    }

    #[test]
    fn svrg_loss_decreases() {
        let (mut model, data) = setup();
        let losses = train_svrg(&mut model, &data, &SvrgConfig::default());
        assert_eq!(losses.len(), 6);
        assert!(losses.last().unwrap() < &(losses[0] * 0.8), "{losses:?}");
        assert!(losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn svrg_not_worse_than_sgd_at_same_budget() {
        let (model, data) = setup();
        let cfg = SvrgConfig {
            eta: 0.3,
            inner_steps: 80,
            batch: 4,
            outer_iters: 4,
            seed: 9,
        };
        let mut m_svrg = model.clone();
        let mut m_sgd = model;
        let l_svrg = *train_svrg(&mut m_svrg, &data, &cfg).last().unwrap();
        let l_sgd = *train_sgd_baseline(&mut m_sgd, &data, &cfg).last().unwrap();
        // With a small batch and aggressive rate, variance reduction should
        // leave SVRG at or below the SGD loss (allowing 15% slack — these
        // are stochastic trajectories).
        assert!(l_svrg <= l_sgd * 1.15, "SVRG {l_svrg} vs SGD {l_sgd}");
    }

    #[test]
    fn corrected_direction_has_lower_variance_near_anchor() {
        // At the anchor itself the corrected estimator equals the full
        // gradient exactly: variance must be ~0 and far below plain SGD.
        let (model, data) = setup();
        let (var_sgd, var_svrg) = direction_variance(&model, &model, &data, 4, 16, 3);
        assert!(
            var_svrg < var_sgd * 0.05,
            "svrg {var_svrg} vs sgd {var_sgd}"
        );
        assert!(var_svrg < 1e-9, "at the anchor the correction is exact");
    }

    #[test]
    #[should_panic(expected = "bad batch size")]
    fn zero_batch_panics() {
        let (mut model, data) = setup();
        let cfg = SvrgConfig {
            batch: 0,
            ..SvrgConfig::default()
        };
        train_svrg(&mut model, &data, &cfg);
    }
}
