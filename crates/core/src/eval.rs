//! Shared evaluation-subset helpers.
//!
//! Both engines evaluate the loss curve on the *same* seeded random
//! subsample at every eval point: a fixed prefix would bias the curve
//! toward whatever ordering the dataset shipped with, and re-drawing per
//! eval point would add noise between points.

use hetero_data::DenseDataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Deterministic evaluation subset: `k` rows sampled without replacement.
pub(crate) fn eval_subset(n: usize, k: usize, seed: u64) -> Vec<usize> {
    let k = k.min(n);
    let mut rows: Vec<usize> = (0..n).collect();
    rows.shuffle(&mut StdRng::seed_from_u64(seed ^ 0xe7a1));
    rows.truncate(k);
    rows.sort_unstable();
    rows
}

/// Gather scattered rows into a dense eval batch.
pub(crate) fn gather_rows(
    dataset: &DenseDataset,
    rows: &[usize],
) -> (hetero_tensor::Matrix, hetero_data::Labels) {
    let d = dataset.features();
    let mut x = hetero_tensor::Matrix::zeros(rows.len(), d);
    for (i, &r) in rows.iter().enumerate() {
        x.row_mut(i).copy_from_slice(dataset.x.row(r));
    }
    let labels = match &dataset.labels {
        hetero_data::Labels::Classes(v) => {
            hetero_data::Labels::Classes(rows.iter().map(|&r| v[r]).collect())
        }
        hetero_data::Labels::MultiHot(m) => {
            let mut y = hetero_tensor::Matrix::zeros(rows.len(), m.cols());
            for (i, &r) in rows.iter().enumerate() {
                y.row_mut(i).copy_from_slice(m.row(r));
            }
            hetero_data::Labels::MultiHot(y)
        }
    };
    (x, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_data::SynthConfig;

    #[test]
    fn subset_is_deterministic_and_sorted() {
        let a = eval_subset(100, 10, 7);
        let b = eval_subset(100, 10, 7);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(a.len(), 10);
        assert!(a.iter().all(|&r| r < 100));
    }

    #[test]
    fn subset_is_not_a_prefix() {
        // The whole point: a seeded shuffle, not `0..k`.
        let rows = eval_subset(10_000, 64, 3);
        assert_ne!(rows, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn subset_caps_at_dataset_len() {
        let rows = eval_subset(5, 64, 0);
        assert_eq!(rows, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn gather_matches_source_rows() {
        let d = SynthConfig::small(50, 6, 2, 3).generate();
        let rows = eval_subset(d.len(), 8, 11);
        let (x, labels) = gather_rows(&d, &rows);
        assert_eq!(x.rows(), 8);
        for (i, &r) in rows.iter().enumerate() {
            assert_eq!(x.row(i), d.x.row(r));
        }
        match (&labels, &d.labels) {
            (hetero_data::Labels::Classes(got), hetero_data::Labels::Classes(src)) => {
                for (i, &r) in rows.iter().enumerate() {
                    assert_eq!(got[i], src[r]);
                }
            }
            _ => panic!("synthetic dataset should be class-labelled"),
        }
    }
}
