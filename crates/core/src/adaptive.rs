//! The Adaptive Hogbatch batch-size controller — Algorithm 2's
//! `ScheduleWork` message handler, extracted so both engines share it and
//! it can be unit-tested in isolation.
//!
//! On every work request from worker `E` the coordinator compares `E`'s
//! cumulative update count `uᴱ` with the min/max update counts of all
//! *other* workers and rescales `E`'s batch by the factor α:
//!
//! - `uᴱ < min(u_others)` → `E` is behind → *speed it up* by shrinking its
//!   batch: `bᴱ ← max(bᴱ/α, min_bᴱ)`;
//! - `uᴱ > max(u_others)` → `E` is ahead → *slow it down* by growing its
//!   batch: `bᴱ ← min(bᴱ·α, max_bᴱ)`.
//!
//! The thresholds `[min_bᴱ, max_bᴱ]` enforce the paper's second criterion —
//! a floor on device utilization — so adaptation trades *bounded* GPU
//! utilization for a balanced update distribution (Figures 7 and 8).

use hetero_trace::{EventKind, ResizeReason, TraceSink};
use serde::{Deserialize, Serialize};

/// Updates to credit a CPU worker for `t` Hogwild batch updates —
/// Algorithm 2's `uᴱ ← uᴱ + t·β` rule.
///
/// `β` discounts racy CPU updates by the fraction that survive write
/// collisions. The paper fixes it as a constant (`configured`); when
/// `TrainConfig::measured_beta` is on the engines pass the live estimate
/// from [`hetero_nn::SharedModel::beta_estimate`] as `measured`, which
/// takes precedence. The estimate is clamped to `[0, 1]` — β is a
/// survival fraction by definition, and clamping keeps a pathological
/// estimate from ever crediting more than `t` or negative updates.
pub fn credit_updates(t: u64, configured: f64, measured: Option<f64>) -> f64 {
    t as f64 * measured.unwrap_or(configured).clamp(0.0, 1.0)
}

/// Per-worker adaptation state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerBatchState {
    /// Cumulative update count `uᴱ` (CPU batches contribute `t·β`).
    pub updates: f64,
    /// Current batch size `bᴱ`.
    pub batch: usize,
    /// Lower batch threshold (utilization floor).
    pub min_batch: usize,
    /// Upper batch threshold (memory/latency ceiling).
    pub max_batch: usize,
}

impl WorkerBatchState {
    /// State starting at `initial` within `[min_batch, max_batch]`.
    pub fn new(initial: usize, min_batch: usize, max_batch: usize) -> Self {
        assert!(min_batch > 0 && min_batch <= max_batch, "bad thresholds");
        assert!(
            (min_batch..=max_batch).contains(&initial),
            "initial batch outside thresholds"
        );
        WorkerBatchState {
            updates: 0.0,
            batch: initial,
            min_batch,
            max_batch,
        }
    }
}

/// Shared-state implementation of Algorithm 2's coordinator logic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveController {
    alpha: f64,
    /// When false the controller never changes batch sizes — this is the
    /// static CPU+GPU Hogbatch configuration reusing the same plumbing.
    adapt: bool,
    workers: Vec<WorkerBatchState>,
}

impl AdaptiveController {
    /// Controller over the given worker states.
    ///
    /// `alpha` is the batch rescale factor (paper default 2.0); `adapt`
    /// false freezes every batch at its initial value.
    pub fn new(alpha: f64, adapt: bool, workers: Vec<WorkerBatchState>) -> Self {
        assert!(alpha > 1.0, "alpha must exceed 1");
        assert!(!workers.is_empty(), "need at least one worker");
        AdaptiveController {
            alpha,
            adapt,
            workers,
        }
    }

    /// Algorithm 2, lines 1–5: recompute worker `w`'s batch size and return
    /// it. Call on every `ScheduleWork` request.
    pub fn on_request(&mut self, w: usize) -> usize {
        self.on_request_traced(w, &TraceSink::disabled())
    }

    /// [`AdaptiveController::on_request`] that additionally emits a
    /// [`EventKind::BatchResized`] event through `sink` whenever the batch
    /// size actually changes. The reason distinguishes the controller's
    /// `÷α` (behind) and `×α` (ahead) branches from threshold clamping —
    /// a resize that would have crossed a threshold but landed exactly on
    /// it is reported as `Clamped`.
    pub fn on_request_traced(&mut self, w: usize, sink: &TraceSink) -> usize {
        let n = self.workers.len();
        if self.adapt && n > 1 {
            let u_e = self.workers[w].updates;
            let mut min_u = f64::INFINITY;
            let mut max_u = f64::NEG_INFINITY;
            for (i, s) in self.workers.iter().enumerate() {
                if i != w {
                    min_u = min_u.min(s.updates);
                    max_u = max_u.max(s.updates);
                }
            }
            let state = &mut self.workers[w];
            let old = state.batch;
            let mut reason = None;
            if u_e < min_u {
                // Behind every other worker: shrink the batch to speed up.
                let shrunk = (state.batch as f64 / self.alpha).floor() as usize;
                state.batch = shrunk.max(state.min_batch);
                reason = Some(if shrunk < state.min_batch {
                    ResizeReason::Clamped
                } else {
                    ResizeReason::Behind
                });
            } else if u_e > max_u {
                // Ahead of every other worker: grow the batch to slow down.
                let grown = (state.batch as f64 * self.alpha).ceil() as usize;
                state.batch = grown.min(state.max_batch);
                reason = Some(if grown > state.max_batch {
                    ResizeReason::Clamped
                } else {
                    ResizeReason::Ahead
                });
            }
            let new = state.batch;
            if new != old && sink.enabled() {
                if let Some(reason) = reason {
                    sink.emit(w as u32, EventKind::BatchResized { old, new, reason });
                }
            }
        }
        self.workers[w].batch
    }

    /// Worker `w` reports `delta` completed updates (Algorithm 2, worker
    /// side: `uᴱ ← uᴱ + t·β`).
    pub fn report_updates(&mut self, w: usize, delta: f64) {
        assert!(delta >= 0.0, "negative update report");
        self.workers[w].updates += delta;
    }

    /// Clamp worker `w`'s upper batch threshold to `limit` (floored at 1).
    ///
    /// Called when the worker's device OOMed at its current size: the
    /// adaptive loop must never re-request a size the device already
    /// rejected, so the ceiling moves down to the size that fit. A limit
    /// at or above the current ceiling is a no-op.
    pub fn clamp_max_batch(&mut self, w: usize, limit: usize) {
        let limit = limit.max(1);
        let s = &mut self.workers[w];
        if limit < s.max_batch {
            s.max_batch = limit;
            s.min_batch = s.min_batch.min(limit);
            s.batch = s.batch.min(limit);
        }
    }

    /// Current batch size of worker `w` (without adaptation).
    pub fn batch(&self, w: usize) -> usize {
        self.workers[w].batch
    }

    /// Cumulative updates of worker `w`.
    pub fn updates(&self, w: usize) -> f64 {
        self.workers[w].updates
    }

    /// Largest minus smallest cumulative update count across workers.
    pub fn update_gap(&self) -> f64 {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for s in &self.workers {
            lo = lo.min(s.updates);
            hi = hi.max(s.updates);
        }
        hi - lo
    }

    /// Number of workers managed.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_workers() -> AdaptiveController {
        AdaptiveController::new(
            2.0,
            true,
            vec![
                WorkerBatchState::new(56, 56, 3584),    // CPU: starts at min
                WorkerBatchState::new(8192, 512, 8192), // GPU: starts at max
            ],
        )
    }

    #[test]
    fn no_adaptation_when_balanced() {
        let mut c = two_workers();
        // Equal update counts: neither strictly behind nor ahead.
        c.report_updates(0, 10.0);
        c.report_updates(1, 10.0);
        assert_eq!(c.on_request(0), 56);
        assert_eq!(c.on_request(1), 8192);
    }

    #[test]
    fn lagging_worker_gets_smaller_batches() {
        let mut c = two_workers();
        c.report_updates(0, 5.0);
        c.report_updates(1, 100.0); // GPU far ahead
                                    // GPU asks: it is ahead → batch would grow but is already at max.
        assert_eq!(c.on_request(1), 8192);
        // CPU asks: it is behind → shrink, clamped at min.
        assert_eq!(c.on_request(0), 56);
    }

    #[test]
    fn leading_worker_gets_larger_batches() {
        let mut c = AdaptiveController::new(
            2.0,
            true,
            vec![
                WorkerBatchState::new(512, 56, 4096),
                WorkerBatchState::new(1024, 512, 8192),
            ],
        );
        c.report_updates(0, 100.0);
        c.report_updates(1, 5.0);
        // Worker 0 ahead → doubles (512→1024).
        assert_eq!(c.on_request(0), 1024);
        // Worker 1 behind → halves (1024→512, at min).
        assert_eq!(c.on_request(1), 512);
        // Repeated requests keep growing/shrinking toward the bounds.
        assert_eq!(c.on_request(0), 2048);
        assert_eq!(c.on_request(0), 4096);
        assert_eq!(c.on_request(0), 4096); // clamped at max
    }

    #[test]
    fn static_mode_never_changes() {
        let mut c = AdaptiveController::new(
            2.0,
            false,
            vec![
                WorkerBatchState::new(56, 56, 3584),
                WorkerBatchState::new(8192, 512, 8192),
            ],
        );
        c.report_updates(0, 1000.0);
        for _ in 0..10 {
            assert_eq!(c.on_request(0), 56);
            assert_eq!(c.on_request(1), 8192);
        }
    }

    #[test]
    fn closed_loop_bounds_update_gap() {
        // Simulate a GPU 20× faster than the CPU and check the controller
        // keeps the update-count gap bounded (the algorithm's whole point).
        let mut c = AdaptiveController::new(
            2.0,
            true,
            vec![
                WorkerBatchState::new(56, 56, 3584),
                WorkerBatchState::new(8192, 512, 8192),
            ],
        );
        // Simple time-stepped model: CPU processes 1 batch per tick
        // yielding 56 updates; GPU processes `speed` batches per tick of
        // its current size, yielding 1 update each; bigger batches → fewer
        // batches per tick.
        let mut gap_after_warmup = Vec::new();
        for tick in 0..200 {
            let b_cpu = c.on_request(0);
            let _ = b_cpu;
            c.report_updates(0, 56.0);
            // GPU batches per tick shrink as its batch grows (fixed
            // throughput in examples/tick).
            let b_gpu = c.on_request(1);
            let gpu_batches_per_tick = (160_000 / b_gpu).max(1);
            c.report_updates(1, gpu_batches_per_tick as f64);
            if tick > 50 {
                gap_after_warmup.push(c.update_gap());
            }
        }
        let max_gap = gap_after_warmup.iter().cloned().fold(0.0, f64::max);
        // Without adaptation the GPU would run away by ~20 batches/tick ×
        // 150 ticks; with it, the gap must stay within a few batches' worth.
        assert!(
            max_gap < 2000.0,
            "update gap {max_gap} not bounded by the controller"
        );
    }

    #[test]
    fn three_workers_min_max_over_others() {
        let mut c = AdaptiveController::new(
            2.0,
            true,
            vec![
                WorkerBatchState::new(100, 10, 1000),
                WorkerBatchState::new(100, 10, 1000),
                WorkerBatchState::new(100, 10, 1000),
            ],
        );
        c.report_updates(0, 50.0);
        c.report_updates(1, 10.0);
        c.report_updates(2, 30.0);
        // Worker 1: u=10 < min(50, 30) → shrink.
        assert_eq!(c.on_request(1), 50);
        // Worker 0: u=50 > max(10, 30) → grow.
        assert_eq!(c.on_request(0), 200);
        // Worker 2: u=30 between others → unchanged.
        assert_eq!(c.on_request(2), 100);
    }

    #[test]
    fn batch_always_within_thresholds() {
        let mut c = two_workers();
        for i in 0..100 {
            c.report_updates(i % 2, (i * 7 % 13) as f64);
            let b0 = c.on_request(0);
            let b1 = c.on_request(1);
            assert!((56..=3584).contains(&b0));
            assert!((512..=8192).contains(&b1));
        }
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn alpha_leq_one_panics() {
        AdaptiveController::new(1.0, true, vec![WorkerBatchState::new(1, 1, 2)]);
    }

    #[test]
    #[should_panic(expected = "initial batch")]
    fn initial_outside_thresholds_panics() {
        WorkerBatchState::new(10_000, 512, 8192);
    }

    #[test]
    fn traced_requests_emit_resize_events() {
        let sink = hetero_trace::TraceSink::wall(64);
        let mut c = AdaptiveController::new(
            2.0,
            true,
            vec![
                WorkerBatchState::new(512, 56, 4096),
                WorkerBatchState::new(1024, 512, 8192),
            ],
        );
        c.report_updates(0, 100.0);
        c.report_updates(1, 5.0);
        assert_eq!(c.on_request_traced(0, &sink), 1024); // ahead: 512→1024
        assert_eq!(c.on_request_traced(1, &sink), 512); // behind: 1024→512
        assert_eq!(c.on_request_traced(0, &sink), 2048);
        assert_eq!(c.on_request_traced(0, &sink), 4096);
        // Already at max: no change, no event.
        assert_eq!(c.on_request_traced(0, &sink), 4096);
        let events = sink.drain().events_sorted();
        let resizes: Vec<_> = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::BatchResized { old, new, reason } => Some((e.worker, old, new, reason)),
                _ => None,
            })
            .collect();
        assert_eq!(
            resizes,
            vec![
                (0, 512, 1024, ResizeReason::Ahead),
                (1, 1024, 512, ResizeReason::Behind),
                (0, 1024, 2048, ResizeReason::Ahead),
                (0, 2048, 4096, ResizeReason::Ahead),
            ]
        );
    }

    #[test]
    fn clamped_resize_is_labelled() {
        let sink = hetero_trace::TraceSink::wall(64);
        let mut c = AdaptiveController::new(
            2.0,
            true,
            vec![
                WorkerBatchState::new(100, 80, 150),
                WorkerBatchState::new(100, 80, 150),
            ],
        );
        c.report_updates(0, 50.0);
        // Worker 0 ahead: 100×2=200 exceeds max 150 → clamped.
        assert_eq!(c.on_request_traced(0, &sink), 150);
        // Worker 1 behind: 100/2=50 under min 80 → clamped.
        assert_eq!(c.on_request_traced(1, &sink), 80);
        let events = sink.drain().events_sorted();
        let reasons: Vec<_> = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::BatchResized { reason, .. } => Some(reason),
                _ => None,
            })
            .collect();
        assert_eq!(reasons, vec![ResizeReason::Clamped, ResizeReason::Clamped]);
    }

    #[test]
    fn clamp_max_batch_pins_the_ceiling() {
        let mut c = AdaptiveController::new(
            2.0,
            true,
            vec![
                WorkerBatchState::new(8192, 512, 8192),
                WorkerBatchState::new(56, 56, 3584),
            ],
        );
        // Device OOMed at 8192; 2048 fit.
        c.clamp_max_batch(0, 2048);
        assert_eq!(c.batch(0), 2048);
        // Even when far ahead, the grow branch can no longer cross 2048.
        c.report_updates(0, 1000.0);
        for _ in 0..5 {
            assert!(c.on_request(0) <= 2048);
        }
        // Clamping below the floor drags the floor down too.
        c.clamp_max_batch(0, 100);
        assert_eq!(c.on_request(0), 100);
        // Raising the limit is a no-op.
        c.clamp_max_batch(0, 100_000);
        assert_eq!(c.batch(0), 100);
    }

    #[test]
    fn credit_updates_prefers_measured_beta() {
        // No measurement: the configured constant applies.
        assert!((credit_updates(10, 0.5, None) - 5.0).abs() < 1e-12);
        // Measurement present: it replaces the constant.
        assert!((credit_updates(10, 0.5, Some(0.9)) - 9.0).abs() < 1e-12);
        // Pathological estimates are clamped to the unit interval.
        assert!((credit_updates(10, 0.5, Some(1.5)) - 10.0).abs() < 1e-12);
        assert_eq!(credit_updates(10, 0.5, Some(-0.1)), 0.0);
    }

    #[test]
    fn single_worker_never_adapts() {
        let mut c = AdaptiveController::new(2.0, true, vec![WorkerBatchState::new(100, 10, 1000)]);
        c.report_updates(0, 1e9);
        assert_eq!(c.on_request(0), 100);
    }
}
