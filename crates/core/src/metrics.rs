//! Training metrics: loss curves, update distributions, utilization.
//!
//! Everything the paper's figures plot comes out of [`TrainResult`]:
//! Figure 5 uses `loss_curve` against time, Figure 6 against epochs,
//! Figure 7 the per-worker utilization timelines, Figure 8 the per-worker
//! update counts.

use hetero_metrics::Summary;
use hetero_sim::UtilizationTimeline;
use serde::{Deserialize, Serialize};

/// One point on the loss curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossPoint {
    /// Seconds since training started (virtual or wall, engine-dependent).
    pub time: f64,
    /// Fractional epochs elapsed (examples served / dataset size).
    pub epochs: f64,
    /// Full/subsampled training loss at this instant.
    pub loss: f32,
    /// Classification accuracy on the evaluation subset (argmax match for
    /// single-label, precision@1 for multi-label).
    pub accuracy: f32,
}

/// What hardware a worker drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkerKind {
    /// CPU-socket worker performing Hogwild/Hogbatch updates.
    Cpu,
    /// GPU worker with a deep-copy replica.
    Gpu,
}

/// Serializable digest of a [`UtilizationTimeline`].
///
/// The raw timeline (every busy interval) is `#[serde(skip)]`ped on
/// [`WorkerStats`] — it can hold millions of segments — so serialized
/// `TrainResult`s used to silently lose all utilization data. This summary
/// is what `results/*.json` keeps instead, enough to round-trip the
/// Figure 7 per-worker utilization inputs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TimelineSummary {
    /// Total busy seconds across all recorded intervals.
    pub busy_secs: f64,
    /// End of the last recorded interval (seconds since run start).
    pub horizon: f64,
    /// `busy_secs / horizon` (0 when nothing was recorded).
    pub busy_fraction: f64,
    /// Number of recorded busy intervals.
    pub intervals: u64,
}

impl TimelineSummary {
    /// Digest a timeline.
    pub fn from_timeline(timeline: &UtilizationTimeline) -> Self {
        let busy_secs = timeline.busy_time();
        let horizon = timeline.horizon();
        TimelineSummary {
            busy_secs,
            horizon,
            busy_fraction: if horizon > 0.0 {
                busy_secs / horizon
            } else {
                0.0
            },
            intervals: timeline.segments().len() as u64,
        }
    }
}

/// Per-worker accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerStats {
    /// Device class.
    pub kind: WorkerKind,
    /// Model updates credited to this worker (CPU batches count `t·β`).
    pub updates: f64,
    /// Batches processed.
    pub batches: u64,
    /// Examples processed.
    pub examples: u64,
    /// Final batch size when training stopped (shows adaptation).
    pub final_batch: usize,
    /// Why this worker was quarantined mid-run, if it was (`"oom"`,
    /// `"panic"`, `"disconnected"`, or an injected-fault description).
    /// `None` for a worker that survived to the end.
    pub retired: Option<String>,
    /// Busy-interval record for utilization plots.
    #[serde(skip)]
    pub timeline: UtilizationTimeline,
    /// Serialized digest of `timeline` (busy fraction + interval count);
    /// what survives a `results/*.json` round trip. The engines fill it in
    /// via [`WorkerStats::summarize_timeline`] before returning.
    pub timeline_summary: TimelineSummary,
}

impl WorkerStats {
    /// Fresh stats for a worker of the given kind.
    pub fn new(kind: WorkerKind) -> Self {
        WorkerStats {
            kind,
            updates: 0.0,
            batches: 0,
            examples: 0,
            final_batch: 0,
            retired: None,
            timeline: UtilizationTimeline::new(),
            timeline_summary: TimelineSummary::default(),
        }
    }

    /// Refresh `timeline_summary` from the current raw timeline.
    pub fn summarize_timeline(&mut self) {
        self.timeline_summary = TimelineSummary::from_timeline(&self.timeline);
    }
}

/// Complete record of one training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainResult {
    /// Algorithm label (paper naming).
    pub algorithm: String,
    /// Dataset name.
    pub dataset: String,
    /// Loss samples over the run (always ≥ 1: the initial loss).
    pub loss_curve: Vec<LossPoint>,
    /// Per-worker accounting, CPU first then GPUs.
    pub workers: Vec<WorkerStats>,
    /// Total run duration (seconds).
    pub duration: f64,
    /// Fractional epochs completed.
    pub epochs: f64,
    /// Path of the exported trace file, when the caller ran with tracing
    /// attached and wrote one (e.g. `hetero-train --trace`).
    pub trace_path: Option<String>,
    /// Batch ranges that were dispatched, lost to a worker fault, and
    /// re-queued to a surviving worker. Zero on a fault-free run.
    pub requeued_batches: u64,
    /// Set when training could not run to its budget — e.g. every worker
    /// was retired by faults. The run still returns whatever progress was
    /// made; this records why it stopped short.
    pub aborted: Option<String>,
    /// Measured serialization rate `β̂` from sampled CAS probes on the
    /// shared model (see `TrainConfig::measured_beta` and DESIGN.md §4g).
    /// `None` when the run did not measure β (the paper-parity default).
    pub measured_beta: Option<f64>,
    /// Distribution of per-update gradient staleness (model versions
    /// applied between an update's read and its merge). `None` when the
    /// run had no metrics hub attached.
    pub staleness: Option<Summary>,
    /// Training-health record from the `hetero-flight` watchdog: NaN/Inf
    /// events, peak per-layer gradient norms, divergence/stall flags, and
    /// the postmortem bundle path when one was dumped. `None` when the run
    /// had no flight recorder attached.
    pub health: Option<hetero_flight::HealthSummary>,
}

impl TrainResult {
    /// The smallest loss observed.
    pub fn min_loss(&self) -> f32 {
        self.loss_curve
            .iter()
            .map(|p| p.loss)
            .fold(f32::INFINITY, f32::min)
    }

    /// The last loss observed.
    pub fn final_loss(&self) -> f32 {
        self.loss_curve.last().map_or(f32::INFINITY, |p| p.loss)
    }

    /// The initial loss.
    pub fn initial_loss(&self) -> f32 {
        self.loss_curve.first().map_or(f32::INFINITY, |p| p.loss)
    }

    /// Earliest time at which the loss reached `target` (the paper's
    /// "time to convergence" metric — which algorithm reaches a given
    /// normalized loss first). `None` if never reached.
    pub fn time_to_loss(&self, target: f32) -> Option<f64> {
        self.loss_curve
            .iter()
            .find(|p| p.loss <= target)
            .map(|p| p.time)
    }

    /// Earliest epoch count at which the loss reached `target`
    /// (statistical efficiency, Figure 6).
    pub fn epochs_to_loss(&self, target: f32) -> Option<f64> {
        self.loss_curve
            .iter()
            .find(|p| p.loss <= target)
            .map(|p| p.epochs)
    }

    /// Total updates across workers.
    pub fn total_updates(&self) -> f64 {
        self.workers.iter().map(|w| w.updates).sum()
    }

    /// Fraction of updates performed by CPU workers (Figure 8).
    pub fn cpu_update_fraction(&self) -> f64 {
        let total = self.total_updates();
        if total == 0.0 {
            return 0.0;
        }
        let cpu: f64 = self
            .workers
            .iter()
            .filter(|w| w.kind == WorkerKind::Cpu)
            .map(|w| w.updates)
            .sum();
        cpu / total
    }

    /// Loss curve normalized by a basis (the paper normalizes every curve
    /// to the minimum loss across all algorithms).
    pub fn normalized_curve(&self, basis: f32) -> Vec<LossPoint> {
        assert!(basis > 0.0, "normalization basis must be positive");
        self.loss_curve
            .iter()
            .map(|p| LossPoint {
                time: p.time,
                epochs: p.epochs,
                loss: p.loss / basis,
                accuracy: p.accuracy,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> TrainResult {
        TrainResult {
            algorithm: "test".into(),
            dataset: "toy".into(),
            loss_curve: vec![
                LossPoint {
                    time: 0.0,
                    epochs: 0.0,
                    loss: 1.0,
                    accuracy: 0.0,
                },
                LossPoint {
                    time: 1.0,
                    epochs: 0.5,
                    loss: 0.6,
                    accuracy: 0.0,
                },
                LossPoint {
                    time: 2.0,
                    epochs: 1.0,
                    loss: 0.4,
                    accuracy: 0.0,
                },
                LossPoint {
                    time: 3.0,
                    epochs: 1.5,
                    loss: 0.45,
                    accuracy: 0.0,
                },
            ],
            workers: vec![
                WorkerStats {
                    kind: WorkerKind::Cpu,
                    updates: 300.0,
                    batches: 10,
                    examples: 560,
                    final_batch: 56,
                    retired: None,
                    timeline: UtilizationTimeline::new(),
                    timeline_summary: TimelineSummary::default(),
                },
                WorkerStats {
                    kind: WorkerKind::Gpu,
                    updates: 100.0,
                    batches: 100,
                    examples: 819_200,
                    final_batch: 8192,
                    retired: None,
                    timeline: UtilizationTimeline::new(),
                    timeline_summary: TimelineSummary::default(),
                },
            ],
            duration: 3.0,
            epochs: 1.5,
            trace_path: None,
            requeued_batches: 0,
            aborted: None,
            measured_beta: None,
            staleness: None,
            health: None,
        }
    }

    #[test]
    fn loss_summaries() {
        let r = result();
        assert_eq!(r.initial_loss(), 1.0);
        assert_eq!(r.min_loss(), 0.4);
        assert_eq!(r.final_loss(), 0.45);
    }

    #[test]
    fn time_and_epochs_to_loss() {
        let r = result();
        assert_eq!(r.time_to_loss(0.6), Some(1.0));
        assert_eq!(r.time_to_loss(0.41), Some(2.0));
        assert_eq!(r.time_to_loss(0.1), None);
        assert_eq!(r.epochs_to_loss(0.6), Some(0.5));
    }

    #[test]
    fn update_distribution() {
        let r = result();
        assert_eq!(r.total_updates(), 400.0);
        assert!((r.cpu_update_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn normalization() {
        let r = result();
        let n = r.normalized_curve(0.4);
        assert!((n[0].loss - 2.5).abs() < 1e-6);
        assert!((n[2].loss - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "basis")]
    fn zero_basis_panics() {
        result().normalized_curve(0.0);
    }

    #[test]
    fn empty_result_edge_cases() {
        let r = TrainResult {
            algorithm: "x".into(),
            dataset: "y".into(),
            loss_curve: vec![],
            workers: vec![],
            duration: 0.0,
            epochs: 0.0,
            trace_path: None,
            requeued_batches: 0,
            aborted: None,
            measured_beta: None,
            staleness: None,
            health: None,
        };
        assert_eq!(r.min_loss(), f32::INFINITY);
        assert_eq!(r.cpu_update_fraction(), 0.0);
        assert_eq!(r.time_to_loss(1.0), None);
    }

    #[test]
    fn timeline_summary_survives_serde_roundtrip() {
        let mut r = result();
        let w = &mut r.workers[0];
        w.timeline.record(0.0, 1.0, 1.0);
        w.timeline.record(2.0, 3.0, 1.0);
        w.summarize_timeline();
        assert_eq!(w.timeline_summary.intervals, 2);
        assert!((w.timeline_summary.busy_secs - 2.0).abs() < 1e-12);
        assert!((w.timeline_summary.horizon - 3.0).abs() < 1e-12);
        assert!((w.timeline_summary.busy_fraction - 2.0 / 3.0).abs() < 1e-12);

        let json = serde_json::to_string(&r).expect("serialize");
        let back: TrainResult = serde_json::from_str(&json).expect("deserialize");
        // The raw timeline is skipped, but its digest round-trips.
        assert!(back.workers[0].timeline.segments().is_empty());
        assert_eq!(
            back.workers[0].timeline_summary,
            r.workers[0].timeline_summary
        );
    }

    #[test]
    fn new_fields_tolerate_missing_keys() {
        // Results written before measured β / staleness existed must still
        // load: the serde shim maps missing keys to `None` for Options.
        let json = serde_json::to_string(&result()).expect("serialize");
        let back: TrainResult = serde_json::from_str(&json).expect("deserialize");
        assert!(back.measured_beta.is_none());
        assert!(back.staleness.is_none());
    }
}
