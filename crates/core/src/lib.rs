//! # hetero-core
//!
//! The paper's primary contribution: a deep-learning training framework for
//! heterogeneous CPU+GPU architectures, and the two adaptive asynchronous
//! SGD algorithms built on it (CPU+GPU Hogbatch and Adaptive Hogbatch).
//!
//! ## Architecture (paper §V)
//!
//! A *coordinator* owns the global model, the training data, and the batch
//! schedule. One *worker* per device (CPU socket / GPU) repeatedly asks for
//! work (`ScheduleWork`), receives a batch (`ExecuteWork`), computes a
//! gradient, and applies it to the global model asynchronously. CPU workers
//! access the model by reference and update it Hogwild-style; GPU workers
//! train a deep-copy replica on the device and merge the delta back.
//!
//! ## Algorithms (paper §VI)
//!
//! | [`AlgorithmKind`] | description |
//! |---|---|
//! | `HogwildCpu` | Hogbatch CPU — 1 example/thread (pure Hogwild) |
//! | `MiniBatchGpu` | Hogbatch GPU — large-batch mini-batch SGD |
//! | `TensorFlow` | comparator: synchronous mini-batch with op-granularity dispatch overhead and a slow multi-label path |
//! | `CpuGpuHogbatch` | static small CPU batches + static large GPU batches, one shared model |
//! | `AdaptiveHogbatch` | Algorithm 2: batch sizes doubled/halved at runtime to bound the update-count gap |
//!
//! ## Engines
//!
//! - [`engine_sim::SimEngine`] — deterministic discrete-event execution on
//!   calibrated V100/Xeon device models (regenerates the paper's figures).
//! - [`engine_threads::ThreadedEngine`] — real OS threads, the custom
//!   message queue, a [`hetero_nn::SharedModel`] updated Hogwild-style and
//!   a software-GPU worker; wall-clock time.
//!
//! Both engines implement the same algorithm set and produce the same
//! [`metrics::TrainResult`] shape.

#![warn(missing_docs)]

pub mod adaptive;
pub mod config;
pub mod engine_ps;
pub mod engine_sim;
pub mod engine_threads;
mod eval;
pub mod fault;
pub mod metrics;
pub mod svrg;

pub use adaptive::{credit_updates, AdaptiveController};
pub use config::{AdaptiveParams, AlgorithmKind, LrScaling, TrainConfig};
pub use engine_ps::{NetworkModel, PsEngine, PsEngineConfig};
pub use engine_sim::{SimEngine, SimEngineConfig};
pub use engine_threads::{ThreadedEngine, ThreadedEngineConfig};
pub use fault::{FaultKind, FaultPlan, WorkerError};
pub use metrics::{LossPoint, TimelineSummary, TrainResult, WorkerKind, WorkerStats};
pub use svrg::{train_sgd_baseline, train_svrg, SvrgConfig};
