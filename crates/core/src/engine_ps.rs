//! Distributed parameter-server comparator (§II, reference \[10\]).
//!
//! The paper contrasts its centralized shared-memory architecture with the
//! distributed parameter-server setting: *"training data are statically
//! partitioned to workers. Moving data between workers incurs expensive
//! network traffic and is not viable. Instead, the applied solution uses
//! different learning rates across workers … the learning rate is computed
//! based on the number of model updates."*
//!
//! This module is that comparator, simulated on the same virtual clock:
//!
//! - data is **statically partitioned** across heterogeneous workers
//!   (no coordinator-side batch reassignment is possible);
//! - every gradient crosses a **network model** (latency + bandwidth) both
//!   ways: pull the model, push the gradient — the cost centralized
//!   CPU+GPU avoids entirely;
//! - batch sizes are fixed; heterogeneity is handled with **per-worker
//!   learning rates** `ηᵉ = η · (mean_updates / uᵉ)^p`, throttling workers
//!   that race ahead (the \[10\]-style compensation).
//!
//! Comparing [`PsEngine`] against [`crate::SimEngine`] with
//! `CpuGpuHogbatch`/`AdaptiveHogbatch` reproduces the paper's argument for
//! the centralized design.

use hetero_ckpt::Checkpointer;
use hetero_data::{BatchScheduler, DenseDataset, Labels};
use hetero_flight::{FlightRecorder, Provenance, WatchdogState};
use hetero_metrics::MetricsHub;
use hetero_nn::{scan_model, MergeScan, Model, Workspace};
use hetero_sim::{CpuModel, DeviceModel, EventQueue, GpuModel};
use hetero_tensor::Matrix;
use hetero_trace::{EventKind, TimeDomain, COORDINATOR};
use serde::{Deserialize, Serialize};

use crate::config::TrainConfig;
use crate::metrics::{LossPoint, TrainResult, WorkerKind, WorkerStats};

/// Network model between workers and the parameter server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// One-way message latency (seconds).
    pub latency: f64,
    /// Link bandwidth (bytes/second).
    pub bandwidth: f64,
}

impl NetworkModel {
    /// Datacenter-grade 10 GbE defaults.
    pub fn ten_gbe() -> Self {
        NetworkModel {
            latency: 50e-6,
            bandwidth: 1.25e9,
        }
    }

    /// Seconds to move `bytes` one way.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }
}

/// One parameter-server worker: a device plus its static data shard.
enum PsDevice {
    Cpu(CpuModel),
    Gpu(GpuModel),
}

impl PsDevice {
    fn kind(&self) -> WorkerKind {
        match self {
            PsDevice::Cpu(_) => WorkerKind::Cpu,
            PsDevice::Gpu(_) => WorkerKind::Gpu,
        }
    }

    fn batch_time(&self, fpe: u64, batch: usize) -> f64 {
        match self {
            PsDevice::Cpu(c) => c.batch_time(fpe, batch),
            PsDevice::Gpu(g) => g.batch_time(fpe, batch),
        }
    }

    fn busy_utilization(&self, batch: usize) -> f64 {
        match self {
            PsDevice::Cpu(c) => c.busy_utilization(batch),
            PsDevice::Gpu(g) => g.busy_utilization(batch),
        }
    }
}

/// Parameter-server engine configuration.
#[derive(Debug, Clone)]
pub struct PsEngineConfig {
    /// Network to train.
    pub spec: hetero_nn::MlpSpec,
    /// Base hyperparameters (lr, budget, eval cadence; the algorithm field
    /// is ignored — this engine *is* the algorithm).
    pub train: TrainConfig,
    /// Heterogeneous CPU workers (each gets a shard).
    pub cpu_workers: Vec<CpuModel>,
    /// Heterogeneous GPU workers (each gets a shard).
    pub gpu_workers: Vec<GpuModel>,
    /// Per-worker batch size (static — repartitioning is "not viable").
    pub batch: usize,
    /// Worker↔server network.
    pub network: NetworkModel,
    /// Exponent `p` of the update-count learning-rate compensation
    /// (`0` disables it; \[10\] uses update-count-derived rates).
    pub lr_compensation: f64,
}

/// Discrete-event parameter-server trainer.
pub struct PsEngine {
    cfg: PsEngineConfig,
}

struct Pending {
    worker: usize,
    snapshot: Model,
    range: (usize, usize),
}

/// One in-flight gradient at its arrival time, as frozen in a checkpoint.
#[derive(Serialize, Deserialize)]
struct PsPendingCkpt {
    at: f64,
    worker: usize,
    snapshot: Model,
    range: (usize, usize),
}

/// Per-worker counters a resumed run continues from (the lr compensation
/// is computed from `updates`, so restoring them exactly preserves the
/// learning-rate trajectory).
#[derive(Serialize, Deserialize)]
struct PsWorkerCkpt {
    updates: f64,
    batches: u64,
    examples: u64,
}

/// Full state of a [`PsEngine`] run at one virtual instant. The engine is
/// serial on a deterministic clock, so — like the simulation engine — a
/// restored run continues bit-identically.
#[derive(Serialize, Deserialize)]
struct PsCkptState {
    schema: String,
    t: f64,
    model: Model,
    shard_schedulers: Vec<BatchScheduler>,
    curve: Vec<LossPoint>,
    last_eval: f64,
    workers: Vec<PsWorkerCkpt>,
    pending: Vec<PsPendingCkpt>,
    watchdog: WatchdogState,
}

/// Schema tag rejecting checkpoints from other engines or layouts.
const PS_CKPT_SCHEMA: &str = "hetero-ps-ckpt/v1";

impl PsEngine {
    /// Build the engine.
    pub fn new(cfg: PsEngineConfig) -> Result<Self, String> {
        cfg.train.validate()?;
        cfg.spec.validate()?;
        if cfg.cpu_workers.is_empty() && cfg.gpu_workers.is_empty() {
            return Err("need at least one worker".into());
        }
        if cfg.batch == 0 {
            return Err("batch must be positive".into());
        }
        Ok(PsEngine { cfg })
    }

    /// Train on `dataset`; shards are contiguous equal splits.
    pub fn run(&self, dataset: &DenseDataset) -> TrainResult {
        self.run_flight(dataset, &FlightRecorder::disabled())
    }

    /// [`PsEngine::run`] with a black-box flight recorder attached.
    ///
    /// The recorder's watchdog scans every server-applied gradient for
    /// per-layer norms and NaN/±Inf and watches the loss curve at every
    /// eval. This engine has no adaptive controller, so a
    /// [`hetero_flight::HealthAction::Clamp`] has nothing to clamp — the
    /// request is recorded in the health summary and otherwise ignored; an
    /// abort stops the run with a postmortem bundle. A disabled recorder
    /// reduces this to exactly [`PsEngine::run`].
    pub fn run_flight(&self, dataset: &DenseDataset, flight: &FlightRecorder) -> TrainResult {
        self.run_ckpt(dataset, flight, &Checkpointer::disabled())
    }

    /// [`PsEngine::run_flight`] with crash-consistent checkpointing.
    ///
    /// Between virtual events the coordinator state plus the queue's
    /// pending set is the complete run state; when a checkpoint is due the
    /// engine freezes both through `hetero-ckpt`'s atomic-publish path. The
    /// engine is serial on a deterministic clock, so a checkpointer with
    /// `resume: true` continues the loss curve **bit-identically** — the
    /// same property the simulation engine has. A disabled checkpointer
    /// reduces this to exactly [`PsEngine::run_flight`].
    pub fn run_ckpt(
        &self,
        dataset: &DenseDataset,
        flight: &FlightRecorder,
        ckpt: &Checkpointer,
    ) -> TrainResult {
        let watchdog = flight.watchdog();
        // This engine takes no caller sink; the recorder's bounded ring
        // retains the eval/health event window for postmortems.
        let sink = flight.make_sink(TimeDomain::Virtual);
        let cfg = &self.cfg;
        let spec = &cfg.spec;
        assert_eq!(dataset.features(), spec.input_dim, "feature width");
        let devices: Vec<PsDevice> = cfg
            .cpu_workers
            .iter()
            .cloned()
            .map(PsDevice::Cpu)
            .chain(cfg.gpu_workers.iter().cloned().map(PsDevice::Gpu))
            .collect();
        let w = devices.len();
        let n = dataset.len();
        // Static shard boundaries.
        let shard = |i: usize| -> (usize, usize) { (i * n / w, (i + 1) * n / w) };
        let mut shard_schedulers: Vec<BatchScheduler> = (0..w)
            .map(|i| {
                let (s, e) = shard(i);
                BatchScheduler::new((e - s).max(1), cfg.train.max_epochs)
            })
            .collect();

        let mut model = Model::new(spec.clone(), cfg.train.init, cfg.train.seed);
        watchdog.ensure_layers(model.layers().len());
        if flight.enabled() {
            flight.set_provenance(Provenance {
                engine: "ps".into(),
                algorithm: "Parameter Server".into(),
                dataset: dataset.name.clone(),
                workers: w,
                config_json: serde_json::to_string(&cfg.train).unwrap_or_default(),
                git_sha: hetero_flight::read_git_sha(),
                simd_level: format!("{:?}", hetero_tensor::simd::active_level()),
            });
        }
        let mut health_scan = MergeScan::for_model(&model);
        let mut stats: Vec<WorkerStats> =
            devices.iter().map(|d| WorkerStats::new(d.kind())).collect();
        let mut queue: EventQueue<Pending> = EventQueue::new();
        let mut curve: Vec<LossPoint> = Vec::new();
        let fpe = spec.train_flops_per_example();
        let grad_bytes = spec.param_bytes();
        let budget = cfg.train.time_budget;
        let eval_n = cfg.train.eval_subsample.min(n);

        // GEMM fan-out pinned to `train.rayon_threads` (0 = host cores);
        // both the eval forward pass and the per-batch gradient run inside.
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(cfg.train.rayon_threads)
            .build()
            .expect("ps gemm pool");
        // The eval batch is the same fixed prefix every time — extract once.
        let (eval_x, eval_labels) = dataset.batch(0, eval_n);
        let eval = |model: &Model, t: f64, epochs: f64, curve: &mut Vec<LossPoint>| -> f32 {
            let pass = pool.install(|| hetero_nn::forward(model, &eval_x, true));
            let loss = hetero_nn::loss(pass.probs(), eval_labels.as_targets(), spec.loss);
            curve.push(LossPoint {
                time: t,
                epochs,
                loss,
                accuracy: hetero_nn::accuracy(pass.probs(), eval_labels.as_targets()),
            });
            if sink.enabled() {
                sink.emit_at(t, COORDINATOR, EventKind::EvalPoint { loss: loss as f64 });
            }
            loss
        };
        let mut last_eval = 0.0f64;

        // --- Resume from the newest valid checkpoint ----------------------------
        // Replaces the freshly initialized state wholesale. The worker-count
        // guard rejects a checkpoint from a differently shaped run (the
        // schema tag already rejects other engines' checkpoints).
        let resume: Option<PsCkptState> = ckpt
            .resume_state::<PsCkptState>()
            .filter(|s| s.schema == PS_CKPT_SCHEMA && s.workers.len() == w);
        let resumed = resume.is_some();
        if let Some(s) = resume {
            model = s.model;
            shard_schedulers = s.shard_schedulers;
            curve = s.curve;
            last_eval = s.last_eval;
            for (stat, wc) in stats.iter_mut().zip(&s.workers) {
                stat.updates = wc.updates;
                stat.batches = wc.batches;
                stat.examples = wc.examples;
            }
            watchdog.restore_state(&s.watchdog);
            // Re-schedule the in-flight gradients in pop order: fresh
            // monotone sequence numbers preserve the original tie-breaking,
            // so the continuation is bit-identical to the uninterrupted run.
            for p in s.pending {
                queue.schedule_at(
                    p.at,
                    Pending {
                        worker: p.worker,
                        snapshot: p.snapshot,
                        range: p.range,
                    },
                );
            }
            ckpt.resume_mark(s.t);
            sink.counter("ckpt.resumes").add(1);
        } else {
            // The initial loss seeds the watchdog's divergence/stall baseline.
            let l0 = eval(&model, 0.0, 0.0, &mut curve);
            watchdog.observe_eval(l0 as f64);
        }

        // Reused per-completion buffers: the server processes one gradient
        // at a time, so one workspace serves every worker's batches.
        let mut ws = Workspace::new(spec);
        let mut batch_x = Matrix::zeros(0, 0);
        let mut batch_labels = Labels::Classes(Vec::new());

        // Kick off: each worker pulls the model (network cost) and starts.
        let assign = |worker: usize,
                      model: &Model,
                      queue: &mut EventQueue<Pending>,
                      schedulers: &mut [BatchScheduler],
                      stats: &mut [WorkerStats]| {
            if queue.now() >= budget {
                return;
            }
            let Some(local) = schedulers[worker].next_batch(cfg.batch) else {
                return;
            };
            if local.is_empty() {
                return;
            }
            let (s0, _) = shard(worker);
            let range = (s0 + local.start, s0 + local.end);
            // Pull model + compute + push gradient.
            let cost = cfg.network.transfer_time(grad_bytes)
                + devices[worker].batch_time(fpe, range.1 - range.0)
                + cfg.network.transfer_time(grad_bytes);
            let start = queue.now();
            stats[worker].timeline.record(
                start,
                start + cost,
                devices[worker].busy_utilization(range.1 - range.0),
            );
            queue.schedule_after(
                cost,
                Pending {
                    worker,
                    snapshot: model.clone(),
                    range,
                },
            );
        };
        // A resumed run's workers are already in flight (their completion
        // events came back with the checkpoint): kickoff is fresh starts only.
        if !resumed {
            for i in 0..w {
                assign(i, &model, &mut queue, &mut shard_schedulers, &mut stats);
            }
        }

        let total_served = |ss: &[BatchScheduler]| -> f64 {
            ss.iter().map(|s| s.examples_served() as f64).sum::<f64>() / n as f64
        };

        // Checkpoint observability (no-ops when the recorder is disabled;
        // this engine has no MetricsHub, so the write-latency distribution
        // lives in the threaded/sim engines only).
        let g_ckpt_gen = sink.gauge("ckpt.generation");
        let g_ckpt_bytes = sink.gauge("ckpt.bytes");
        let g_ckpt_age = sink.gauge("ckpt.age_secs");

        loop {
            // Periodic crash-consistency checkpoint, captured *between*
            // events — the only instants at which the queue's pending set
            // plus the server state is the complete run state. The capture
            // reads everything and mutates nothing, so the schedule and the
            // math are untouched whether or not a checkpoint is written.
            if ckpt.due(queue.now()) {
                let state = PsCkptState {
                    schema: PS_CKPT_SCHEMA.to_string(),
                    t: queue.now(),
                    model: model.clone(),
                    shard_schedulers: shard_schedulers.clone(),
                    curve: curve.clone(),
                    last_eval,
                    workers: stats
                        .iter()
                        .map(|s| PsWorkerCkpt {
                            updates: s.updates,
                            batches: s.batches,
                            examples: s.examples,
                        })
                        .collect(),
                    pending: queue
                        .pending_in_order()
                        .into_iter()
                        .map(|(at, p)| PsPendingCkpt {
                            at,
                            worker: p.worker,
                            snapshot: p.snapshot.clone(),
                            range: p.range,
                        })
                        .collect(),
                    watchdog: watchdog.export_state(),
                };
                if let Some(report) = ckpt.save(state.t, &state) {
                    g_ckpt_gen.set(report.generation as f64);
                    g_ckpt_bytes.set(report.bytes as f64);
                    flight.set_resumable_from(report.path.display().to_string());
                }
            }
            let Some((t, p)) = queue.pop() else { break };
            if t > budget {
                break;
            }
            // Health abort raised by a previous gradient scan or eval
            // observation stops the run here.
            if let Some(reason) = watchdog.tripped() {
                if sink.enabled() {
                    sink.emit_at(
                        t,
                        COORDINATOR,
                        EventKind::HealthEvent {
                            action: "abort".to_string(),
                            detail: reason,
                        },
                    );
                }
                break;
            }
            // Gradient on the stale snapshot; server applies it with the
            // update-count-compensated learning rate.
            dataset.batch_into(p.range.0, p.range.1, &mut batch_x, &mut batch_labels);
            pool.install(|| {
                ws.loss_and_gradient_into(&p.snapshot, &batch_x, batch_labels.as_targets(), true);
            });
            if watchdog.enabled() {
                health_scan.reset();
                scan_model(ws.grad(), &mut health_scan);
                for (l, ls) in health_scan.layers().iter().enumerate() {
                    watchdog.observe_layer(
                        p.worker as u32,
                        l,
                        stats[p.worker].batches,
                        ls.sumsq,
                        ls.nonfinite,
                    );
                }
            }
            let mean_updates = (stats.iter().map(|s| s.updates).sum::<f64>() / w as f64).max(1.0);
            let own = stats[p.worker].updates.max(1.0);
            let comp = (mean_updates / own).powf(cfg.lr_compensation);
            let eta = cfg
                .train
                .lr_scaling
                .eta(cfg.train.lr, p.range.1 - p.range.0)
                * comp as f32;
            model.apply_gradient(ws.grad(), eta);
            stats[p.worker].updates += 1.0;
            stats[p.worker].batches += 1;
            stats[p.worker].examples += (p.range.1 - p.range.0) as u64;

            if t - last_eval >= cfg.train.eval_interval {
                last_eval = t;
                if ckpt.enabled() {
                    g_ckpt_age.set(t - ckpt.last_saved_at().unwrap_or(0.0));
                }
                let loss = eval(&model, t, total_served(&shard_schedulers), &mut curve);
                // No adaptive controller here: a Clamp action has nothing
                // to act on, so the request is drained and only recorded.
                watchdog.observe_eval(loss as f64);
                let _ = watchdog.take_clamp_request();
                if flight.enabled() {
                    flight.record_snapshot(hetero_flight::HealthSnapshot {
                        t,
                        loss: loss as f64,
                        epochs: total_served(&shard_schedulers),
                        batches: vec![cfg.batch; w],
                        beta: None,
                        staleness_p50: None,
                        staleness_p99: None,
                        grad_peak_norm: watchdog.summary().peak_grad_norm,
                    });
                }
            }
            assign(
                p.worker,
                &model,
                &mut queue,
                &mut shard_schedulers,
                &mut stats,
            );
        }
        eval(&model, budget, total_served(&shard_schedulers), &mut curve);

        for (i, s) in stats.iter_mut().enumerate() {
            s.final_batch = cfg.batch.min(shard(i).1 - shard(i).0);
        }
        for s in &mut stats {
            s.summarize_timeline();
        }
        let aborted = watchdog.tripped().map(|r| format!("health watchdog: {r}"));
        let mut health = watchdog.enabled().then(|| watchdog.summary());
        if flight.enabled() && aborted.is_some() {
            let reason = aborted.clone().unwrap_or_default();
            let path = flight.dump(&reason, sink.capture(), &MetricsHub::disabled());
            if let (Some(h), Some(p)) = (health.as_mut(), path) {
                h.postmortem = Some(p);
            }
        }
        TrainResult {
            algorithm: "Parameter Server".into(),
            dataset: dataset.name.clone(),
            loss_curve: curve,
            workers: stats,
            duration: budget,
            epochs: total_served(&shard_schedulers),
            trace_path: None,
            requeued_batches: 0,
            aborted,
            measured_beta: None,
            staleness: None,
            health,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AlgorithmKind;
    use crate::engine_sim::{SimEngine, SimEngineConfig};
    use hetero_data::SynthConfig;
    use hetero_nn::MlpSpec;

    fn hardware() -> (CpuModel, GpuModel) {
        (
            CpuModel {
                name: "ps-cpu".into(),
                threads: 4,
                hw_threads: 4,
                flops_small: 1e9,
                flops_large: 8e9,
                batch_half: 8.0,
                dispatch_overhead: 20e-6,
                memory: 1 << 30,
            },
            GpuModel {
                name: "ps-gpu".into(),
                peak_flops: 1e12,
                occupancy_half_batch: 64.0,
                launch_overhead: 20e-6,
                transfer_latency: 5e-6,
                transfer_bandwidth: 12e9,
                memory: 1 << 30,
            },
        )
    }

    fn dataset() -> DenseDataset {
        let mut cfg = SynthConfig::small(600, 10, 2, 3);
        cfg.separability = 3.0;
        let mut d = cfg.generate();
        d.standardize();
        d
    }

    fn ps_config(budget: f64, lr_comp: f64) -> PsEngineConfig {
        let (cpu, gpu) = hardware();
        PsEngineConfig {
            spec: MlpSpec::tiny(10, 2),
            train: TrainConfig {
                time_budget: budget,
                rayon_threads: 0,
                eval_interval: budget / 8.0,
                eval_subsample: 512,
                lr: 0.05,
                ..TrainConfig::default()
            },
            cpu_workers: vec![cpu],
            gpu_workers: vec![gpu],
            batch: 64,
            network: NetworkModel::ten_gbe(),
            lr_compensation: lr_comp,
        }
    }

    #[test]
    fn ps_training_converges() {
        let data = dataset();
        let r = PsEngine::new(ps_config(0.05, 1.0)).unwrap().run(&data);
        assert!(
            r.final_loss() < r.initial_loss(),
            "{:?}",
            r.loss_curve.len()
        );
        assert_eq!(r.algorithm, "Parameter Server");
        for w in &r.workers {
            assert!(w.batches > 0, "{:?} starved", w.kind);
        }
    }

    #[test]
    fn static_partitioning_bounds_each_worker_to_its_shard() {
        // With an epoch cap, each worker serves at most max_epochs passes
        // over its *own* 300-example shard — the fast GPU cannot steal the
        // CPU's data the way the centralized coordinator reassigns batches.
        let data = dataset();
        let mut cfg = ps_config(10.0, 0.0);
        cfg.train.max_epochs = Some(2);
        let r = PsEngine::new(cfg).unwrap().run(&data);
        for w in &r.workers {
            assert!(
                w.examples <= 2 * 300,
                "{:?} escaped its shard: {} examples",
                w.kind,
                w.examples
            );
        }
        // The GPU exhausts its shard; the CPU may not finish in budget.
        let gpu = r
            .workers
            .iter()
            .find(|w| w.kind == WorkerKind::Gpu)
            .unwrap();
        assert_eq!(gpu.examples, 600, "GPU should finish its 2 shard-epochs");
    }

    #[test]
    fn lr_compensation_throttles_fast_worker() {
        // With p = 1 the racing GPU worker gets a discounted rate; the
        // updates of the slow CPU worker carry relatively more weight. We
        // check the mechanism: compensation on ⇒ identical update counts
        // but different trajectory than compensation off.
        let data = dataset();
        let off = PsEngine::new(ps_config(0.05, 0.0)).unwrap().run(&data);
        let on = PsEngine::new(ps_config(0.05, 1.0)).unwrap().run(&data);
        assert_eq!(off.workers[0].batches, on.workers[0].batches);
        assert_eq!(off.workers[1].batches, on.workers[1].batches);
        assert_ne!(off.final_loss(), on.final_loss());
    }

    #[test]
    fn network_costs_slow_ps_below_shared_memory() {
        // The paper's §II argument: the PS pays 2 model-sized transfers per
        // batch over the network; centralized CPU+GPU does not. Same
        // devices, same data ⇒ PS completes fewer epochs per virtual
        // second.
        let data = dataset();
        let ps = PsEngine::new(ps_config(0.05, 1.0)).unwrap().run(&data);

        let (cpu, gpu) = hardware();
        let shared = SimEngine::new(SimEngineConfig {
            spec: MlpSpec::tiny(10, 2),
            train: TrainConfig {
                algorithm: AlgorithmKind::CpuGpuHogbatch,
                gpu_batch: 64,
                cpu_batch_per_thread: 16,
                time_budget: 0.05,
                rayon_threads: 0,
                eval_interval: 0.01,
                eval_subsample: 512,
                lr: 0.05,
                ..TrainConfig::default()
            },
            cpu: cpu.clone(),
            gpus: vec![gpu.clone()],
            tf_op_overhead: 20e-6,
            tf_multilabel_penalty: 3.0,
            fault_plan: crate::fault::FaultPlan::none(),
        })
        .unwrap()
        .run(&data);
        assert!(
            ps.epochs < shared.epochs,
            "PS ({:.2} epochs) should trail shared memory ({:.2})",
            ps.epochs,
            shared.epochs
        );
    }

    #[test]
    fn ps_checkpointed_run_is_untouched_and_resume_is_bit_identical() {
        use hetero_ckpt::CkptConfig;
        let data = dataset();
        let cfg = ps_config(0.05, 1.0);
        let dir = std::env::temp_dir().join(format!("hetero-ps-ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Reference: the uninterrupted run.
        let baseline = PsEngine::new(cfg.clone()).unwrap().run(&data);

        // Checkpointing on: the run itself must be bit-identical to the
        // baseline (observation never feeds back into the schedule).
        let writer = Checkpointer::new(CkptConfig {
            dir: dir.clone(),
            interval: 0.01,
            retain: 3,
            resume: false,
        })
        .unwrap();
        let checked = PsEngine::new(cfg.clone()).unwrap().run_ckpt(
            &data,
            &FlightRecorder::disabled(),
            &writer,
        );
        assert_eq!(baseline.loss_curve, checked.loss_curve);
        assert!(writer.latest_path().is_some(), "no checkpoint written");

        // Resume from the newest mid-run generation: the continued curve
        // must equal the uninterrupted one bit-for-bit.
        let reader = Checkpointer::new(CkptConfig {
            dir: dir.clone(),
            interval: 0.01,
            retain: 3,
            resume: true,
        })
        .unwrap();
        let resumed =
            PsEngine::new(cfg)
                .unwrap()
                .run_ckpt(&data, &FlightRecorder::disabled(), &reader);
        assert_eq!(baseline.loss_curve, resumed.loss_curve);
        assert_eq!(baseline.epochs, resumed.epochs);
        for (a, b) in baseline.workers.iter().zip(&resumed.workers) {
            assert_eq!(a.batches, b.batches);
            assert_eq!(a.examples, b.examples);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_empty_worker_set() {
        let mut cfg = ps_config(0.1, 0.0);
        cfg.cpu_workers.clear();
        cfg.gpu_workers.clear();
        assert!(PsEngine::new(cfg).is_err());
    }
}
