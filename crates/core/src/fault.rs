//! Fault model shared by the engines: deterministic fault injection for
//! tests and the typed errors workers report instead of panicking.
//!
//! The supervision layer (see `DESIGN.md`, "Failure model & supervision")
//! needs faults it can *schedule*: "kill worker 2 after 5 batches", "fail
//! the 3rd device allocation". [`FaultPlan`] carries those instructions
//! into an engine run; [`WorkerError`] is what a faulting worker sends back
//! to the coordinator in place of a panic.

use serde::{Deserialize, Serialize};

/// What kind of fault to inject into one worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The worker dies (panics) after completing `k` batches — exercises
    /// the catch-unwind + quarantine path.
    DieAfterBatches(u64),
    /// The worker's device fails its `n`th allocation attempt (0-based,
    /// counted from device creation) with OOM — exercises the batch-halving
    /// retry path. Threaded engine only (the sim has no device allocator).
    OomOnAlloc(u64),
    /// The worker's device rejects the very first model upload — exercises
    /// the unrecoverable-OOM retirement path. Threaded engine only.
    OomOnUpload,
    /// The worker's `k`th completed batch (0-based) produces a gradient /
    /// replica delta poisoned with NaN — exercises the training-health
    /// watchdog's non-finite detection and abort-with-postmortem path.
    PoisonGradientAt(u64),
}

/// One scheduled fault: which worker, and what happens to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerFault {
    /// Worker slot index (coordinator numbering: CPU workers first, then
    /// GPU workers).
    pub worker: usize,
    /// The fault to inject.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults to inject into an engine run.
///
/// The default plan is empty: no faults, identical behavior to an
/// un-instrumented run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Scheduled faults, at most one per worker slot honored per kind.
    pub faults: Vec<WorkerFault>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Schedule worker `w` to die after `k` completed batches.
    pub fn die_after(mut self, w: usize, k: u64) -> Self {
        self.faults.push(WorkerFault {
            worker: w,
            kind: FaultKind::DieAfterBatches(k),
        });
        self
    }

    /// Schedule worker `w`'s device to OOM on its `n`th allocation attempt.
    pub fn oom_on_alloc(mut self, w: usize, n: u64) -> Self {
        self.faults.push(WorkerFault {
            worker: w,
            kind: FaultKind::OomOnAlloc(n),
        });
        self
    }

    /// Schedule worker `w`'s device to reject the initial model upload.
    pub fn oom_on_upload(mut self, w: usize) -> Self {
        self.faults.push(WorkerFault {
            worker: w,
            kind: FaultKind::OomOnUpload,
        });
        self
    }

    /// Schedule worker `w`'s `step`th batch (0-based) to produce a
    /// NaN-poisoned gradient.
    pub fn poison_gradient_at(mut self, w: usize, step: u64) -> Self {
        self.faults.push(WorkerFault {
            worker: w,
            kind: FaultKind::PoisonGradientAt(step),
        });
        self
    }

    /// Whether the plan schedules any fault at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Batch count after which worker `w` is scheduled to die, if any.
    pub fn death_after(&self, w: usize) -> Option<u64> {
        self.faults.iter().find_map(|f| match f.kind {
            FaultKind::DieAfterBatches(k) if f.worker == w => Some(k),
            _ => None,
        })
    }

    /// Allocation index at which worker `w`'s device should OOM, if any.
    pub fn oom_alloc_index(&self, w: usize) -> Option<u64> {
        self.faults.iter().find_map(|f| match f.kind {
            FaultKind::OomOnAlloc(n) if f.worker == w => Some(n),
            _ => None,
        })
    }

    /// Whether worker `w`'s initial upload is scheduled to fail.
    pub fn upload_oom(&self, w: usize) -> bool {
        self.faults
            .iter()
            .any(|f| f.worker == w && f.kind == FaultKind::OomOnUpload)
    }

    /// Batch index at which worker `w`'s gradient is scheduled to be
    /// NaN-poisoned, if any.
    pub fn poison_at(&self, w: usize) -> Option<u64> {
        self.faults.iter().find_map(|f| match f.kind {
            FaultKind::PoisonGradientAt(k) if f.worker == w => Some(k),
            _ => None,
        })
    }
}

/// Why a worker could not continue. Sent to the coordinator over the
/// result channel in place of a panic; the coordinator quarantines the
/// worker and re-queues its in-flight work.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkerError {
    /// Device out of memory and the retry loop could not recover (e.g. the
    /// model itself does not fit).
    Oom(String),
    /// The worker body panicked; the payload is the panic message.
    Panic(String),
    /// The worker's channel to the coordinator disconnected.
    Disconnected(String),
}

impl WorkerError {
    /// Short stable label for counters and per-worker retirement records.
    pub fn label(&self) -> &'static str {
        match self {
            WorkerError::Oom(_) => "oom",
            WorkerError::Panic(_) => "panic",
            WorkerError::Disconnected(_) => "disconnected",
        }
    }
}

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerError::Oom(msg) => write!(f, "device OOM: {msg}"),
            WorkerError::Panic(msg) => write!(f, "worker panicked: {msg}"),
            WorkerError::Disconnected(msg) => write!(f, "channel disconnected: {msg}"),
        }
    }
}

impl std::error::Error for WorkerError {}

/// Render a caught panic payload as a message string.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_schedules_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.death_after(0), None);
        assert_eq!(plan.oom_alloc_index(3), None);
        assert!(!plan.upload_oom(1));
    }

    #[test]
    fn builder_targets_the_right_worker() {
        let plan = FaultPlan::none()
            .die_after(1, 5)
            .oom_on_alloc(2, 7)
            .oom_on_upload(3)
            .poison_gradient_at(4, 2);
        assert!(!plan.is_empty());
        assert_eq!(plan.death_after(1), Some(5));
        assert_eq!(plan.death_after(2), None);
        assert_eq!(plan.oom_alloc_index(2), Some(7));
        assert!(plan.upload_oom(3));
        assert!(!plan.upload_oom(2));
        assert_eq!(plan.poison_at(4), Some(2));
        assert_eq!(plan.poison_at(1), None);
    }

    #[test]
    fn worker_error_labels_and_display() {
        let e = WorkerError::Oom("requested 4096 B".into());
        assert_eq!(e.label(), "oom");
        assert!(e.to_string().contains("OOM"));
        assert_eq!(WorkerError::Panic("x".into()).label(), "panic");
        assert_eq!(
            WorkerError::Disconnected("x".into()).label(),
            "disconnected"
        );
    }

    #[test]
    fn panic_message_downcasts_common_payloads() {
        let r = std::panic::catch_unwind(|| panic!("static message"));
        assert_eq!(panic_message(&*r.unwrap_err()), "static message");
        let r = std::panic::catch_unwind(|| panic!("formatted {}", 42));
        assert_eq!(panic_message(&*r.unwrap_err()), "formatted 42");
    }
}
