//! Real-thread training engine — the paper's implementation architecture
//! on actual OS threads.
//!
//! One coordinator plus one stand-alone worker thread per device,
//! communicating over the custom asynchronous message queue
//! ([`hetero_mq::channel()`]); the global model is a
//! [`hetero_nn::SharedModel`] that CPU threads update Hogwild-style (racy
//! read–modify–write) while the GPU worker trains a deep-copy replica on
//! the software GPU ([`hetero_gpu::GpuDevice`]) and merges the delta back.
//!
//! This engine runs on wall-clock time and real concurrency — it
//! demonstrates that the algorithms are implementable exactly as §V
//! describes. The deterministic counterpart for reproducing the paper's
//! figures is [`crate::engine_sim::SimEngine`].
//!
//! ## Supervision (see `DESIGN.md`, "Failure model & supervision")
//!
//! Workers never panic the process. Each worker body runs under
//! `catch_unwind` and reports typed [`WorkerError`] faults to the
//! coordinator instead:
//!
//! - a **device OOM** during a training step triggers a bounded retry loop
//!   that halves the batch until the step fits; the size that fit clamps
//!   the adaptive controller's ceiling so the OOMed size is never
//!   re-requested, and the unprocessed tail of the range is re-queued;
//! - an **unrecoverable fault** (model doesn't fit at upload, a panic, a
//!   dead channel) retires the worker: its slot is quarantined, its
//!   in-flight batch is re-queued to survivors, and training degrades
//!   gracefully to the remaining devices;
//! - when **every** worker is gone the run stops early and reports why in
//!   [`TrainResult::aborted`] instead of hanging.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hetero_ckpt::Checkpointer;
use hetero_data::batch::BatchRange;
use hetero_data::{BatchScheduler, DenseDataset, Labels};
use hetero_flight::{
    FlightRecorder, HealthAction, HealthSnapshot, Provenance, Watchdog, WatchdogState,
};
use hetero_gpu::{GpuDevice, GpuMlp};
use hetero_metrics::{Metric, MetricsHub, GLOBAL_WORKER};
use hetero_mq::{channel_traced, Receiver, RecvTimeoutError, Sender};
use hetero_nn::{scan_model, MergeScan, MlpSpec, Model, SharedModel, Workspace};
use hetero_sim::{DeviceModel, GpuModel};
use hetero_tensor::Matrix;
use hetero_trace::{CounterHandle, EventKind, TraceSink, COORDINATOR};
use serde::{Deserialize, Serialize};

use crate::adaptive::{credit_updates, AdaptiveController, WorkerBatchState};
use crate::config::{AlgorithmKind, TrainConfig};
use crate::eval::{eval_subset, gather_rows};
use crate::fault::{panic_message, FaultPlan, WorkerError};
use crate::metrics::{LossPoint, TrainResult, WorkerKind, WorkerStats};

/// Configuration of the threaded engine.
#[derive(Debug, Clone)]
pub struct ThreadedEngineConfig {
    /// Network to train.
    pub spec: MlpSpec,
    /// Algorithm + hyperparameters. `time_budget` is wall-clock seconds.
    pub train: TrainConfig,
    /// Hogwild threads inside the CPU worker.
    pub cpu_threads: usize,
    /// Performance model for the software GPU (memory bound + occupancy).
    pub gpu_perf: GpuModel,
    /// Number of GPU workers to spawn (the paper's future work is scaling
    /// to multi-GPU; each worker gets its own software device + replica).
    pub gpu_workers: usize,
    /// Deterministic fault injection (empty = fault-free run).
    pub fault_plan: FaultPlan,
}

#[derive(Debug)]
enum CoordMsg {
    Execute(BatchRange),
    Stop,
}

struct Ready {
    worker: usize,
    updates: f64,
    examples: u64,
    busy_start: f64,
    busy_end: f64,
    batch: usize,
    /// When a device OOM forced the step smaller, the batch size that
    /// actually fit — the coordinator clamps the controller's ceiling to it.
    shrunk_to: Option<usize>,
    /// The unprocessed tail of the dispatched range after an OOM shrink;
    /// the coordinator re-queues it.
    leftover: Option<BatchRange>,
}

/// What a worker sends the coordinator: a completed batch, or a typed
/// fault in place of a panic.
enum WorkerMsg {
    Ready(Ready),
    Fault { worker: usize, error: WorkerError },
}

/// Coordinator-side supervision state threaded through the helpers below.
struct Supervision<'a> {
    active: &'a mut [bool],
    stats: &'a mut [WorkerStats],
    in_flight: &'a mut [Option<BatchRange>],
    requeue: &'a mut VecDeque<BatchRange>,
    requeued_batches: &'a mut u64,
    faults_ctr: &'a CounterHandle,
    requeues_ctr: &'a CounterHandle,
}

impl Supervision<'_> {
    /// Quarantine worker `w`: mark the slot inactive, record why, and
    /// return its in-flight batch (if any) to the dispatch queue.
    fn retire(&mut self, w: usize, error: &WorkerError, sink: &TraceSink) {
        if let Some(existing) = &self.stats[w].retired {
            // Already quarantined — but a typed fault that lost the race to
            // the generic disconnect sweep still carries the real reason.
            if existing.starts_with("channel disconnected")
                && !matches!(error, WorkerError::Disconnected(_))
            {
                self.stats[w].retired = Some(error.to_string());
            }
            return;
        }
        self.active[w] = false;
        let reason = error.to_string();
        self.stats[w].retired = Some(reason.clone());
        self.faults_ctr.add(1);
        if sink.enabled() {
            sink.emit(
                w as u32,
                EventKind::WorkerFault {
                    reason: reason.clone(),
                },
            );
            sink.emit(w as u32, EventKind::WorkerRetired { reason });
        }
        if let Some(range) = self.in_flight[w].take() {
            self.push_requeue(range, sink);
        }
    }

    /// Return a batch range to the dispatch queue (in-flight work of a dead
    /// worker, or the tail an OOM shrink left behind).
    fn push_requeue(&mut self, range: BatchRange, sink: &TraceSink) {
        *self.requeued_batches += 1;
        self.requeues_ctr.add(1);
        if sink.enabled() {
            sink.emit(COORDINATOR, EventKind::BatchRequeued { batch: range.len() });
        }
        self.requeue.push_back(range);
    }
}

/// Per-worker counters a resumed run continues from.
#[derive(Serialize, Deserialize)]
struct ThreadedWorkerCkpt {
    updates: f64,
    batches: u64,
    examples: u64,
}

/// Wall-clock engine state frozen at one instant. Unlike the virtual-clock
/// engines this cannot be bit-identical — workers race the capture — so the
/// checkpoint holds the *statistically sufficient* state: a racy-read model
/// image, the schedule cursor, the adaptive controller, and every range
/// that was in flight (re-queued on resume so no example is silently
/// dropped). A resumed run is a fresh set of threads continuing the same
/// optimization trajectory, so its loss curve is statistically — not
/// bit-for-bit — indistinguishable from an uninterrupted run.
#[derive(Serialize, Deserialize)]
struct ThreadedCkptState {
    schema: String,
    /// Training wall-seconds consumed before this checkpoint, summed
    /// across incarnations; the resumed run offsets its clock and shrinks
    /// its budget by this.
    t: f64,
    model: Model,
    controller: AdaptiveController,
    scheduler: BatchScheduler,
    curve: Vec<LossPoint>,
    workers: Vec<ThreadedWorkerCkpt>,
    requeue: Vec<BatchRange>,
    requeued_batches: u64,
    watchdog: WatchdogState,
}

/// Schema tag rejecting checkpoints from other engines or layouts.
const THREADED_CKPT_SCHEMA: &str = "hetero-threaded-ckpt/v1";

/// The wall-clock engine.
pub struct ThreadedEngine {
    cfg: ThreadedEngineConfig,
}

impl ThreadedEngine {
    /// Build the engine; the TensorFlow comparator only exists in the
    /// simulation engine and is rejected here.
    pub fn new(cfg: ThreadedEngineConfig) -> Result<Self, String> {
        cfg.train.validate()?;
        cfg.spec.validate()?;
        if matches!(
            cfg.train.algorithm,
            AlgorithmKind::TensorFlow | AlgorithmKind::HybridSvrg
        ) {
            return Err(format!(
                "{} is simulation-only",
                cfg.train.algorithm.label()
            ));
        }
        if cfg.cpu_threads == 0 {
            return Err("cpu_threads must be positive".into());
        }
        if cfg.train.algorithm.uses_gpu() && cfg.gpu_workers == 0 {
            return Err("algorithm needs a GPU but gpu_workers is 0".into());
        }
        Ok(ThreadedEngine { cfg })
    }

    /// Train on `dataset` until the wall-clock budget expires.
    pub fn run(&self, dataset: Arc<DenseDataset>) -> TrainResult {
        self.run_traced(dataset, &TraceSink::disabled())
    }

    /// [`ThreadedEngine::run`] with structured tracing attached.
    ///
    /// Every batch dispatch/completion, adaptive resize, queue operation,
    /// GPU transfer/kernel, model merge, eval point, and worker fault flows
    /// through `sink`, stamped with wall seconds since the sink was
    /// created. The sink should be in the wall-clock domain
    /// ([`TraceSink::wall`]); with a disabled sink this is exactly
    /// [`ThreadedEngine::run`].
    pub fn run_traced(&self, dataset: Arc<DenseDataset>, sink: &TraceSink) -> TrainResult {
        self.run_observed(dataset, sink, &MetricsHub::disabled())
    }

    /// [`ThreadedEngine::run_traced`] with a metrics hub attached.
    ///
    /// Workers fill per-worker histograms (batch latency, queue wait,
    /// H2D/D2H transfer time, merge wait/retries, gradient staleness) and
    /// the coordinator publishes the live dashboard gauges
    /// (`worker.<w>.*`, `engine.loss`, …) through `sink` so
    /// [`hetero_metrics::DashboardFrame::collect`] and the OpenMetrics
    /// exporter see a consistent picture. A disabled hub reduces this to
    /// exactly [`ThreadedEngine::run_traced`].
    pub fn run_observed(
        &self,
        dataset: Arc<DenseDataset>,
        sink: &TraceSink,
        hub: &MetricsHub,
    ) -> TrainResult {
        self.run_flight(dataset, sink, hub, &FlightRecorder::disabled())
    }

    /// [`ThreadedEngine::run_observed`] with a black-box flight recorder
    /// attached.
    ///
    /// The recorder's watchdog observes per-layer gradient norms and
    /// NaN/±Inf counts from every worker hot path (fused into the SIMD
    /// merge/scan — no extra pass over the model) and loss health at every
    /// eval point, enforcing its [`hetero_flight::HealthPolicy`]: warnings
    /// are traced as health events, clamps freeze the adaptive controller
    /// at the current batch sizes, and an abort stops the run with the
    /// reason in [`TrainResult::aborted`]. Any abnormal end (watchdog trip,
    /// worker retirement, all-workers-dead abort) dumps a self-contained
    /// postmortem bundle; its path lands in the result's
    /// [`hetero_flight::HealthSummary::postmortem`]. When the caller's
    /// `sink` is disabled, the recorder supplies its own bounded
    /// drop-oldest sink so a postmortem always embeds the recent-event
    /// window. A disabled recorder reduces this to exactly
    /// [`ThreadedEngine::run_observed`].
    pub fn run_flight(
        &self,
        dataset: Arc<DenseDataset>,
        sink: &TraceSink,
        hub: &MetricsHub,
        flight: &FlightRecorder,
    ) -> TrainResult {
        self.run_ckpt(dataset, sink, hub, flight, &Checkpointer::disabled())
    }

    /// [`ThreadedEngine::run_flight`] with crash-consistent checkpointing.
    ///
    /// When a checkpoint comes due the coordinator captures the model via a
    /// racy [`SharedModel::snapshot_into`] read — the Hogwild lanes and the
    /// GPU CAS-merge loop never stall — plus the schedule cursor, adaptive
    /// controller, loss curve, in-flight ranges, and watchdog tallies, and
    /// publishes them through `hetero-ckpt`'s atomic-rename path. A
    /// checkpointer with `resume: true` restores that state, offsets the
    /// wall clock by the consumed training time, and finishes the remaining
    /// budget with fresh threads; the continued loss curve is statistically
    /// indistinguishable from an uninterrupted run (real concurrency makes
    /// bit-identity impossible here — the virtual-clock engines provide
    /// that property). A disabled checkpointer reduces this to exactly
    /// [`ThreadedEngine::run_flight`].
    pub fn run_ckpt(
        &self,
        dataset: Arc<DenseDataset>,
        sink: &TraceSink,
        hub: &MetricsHub,
        flight: &FlightRecorder,
        ckpt: &Checkpointer,
    ) -> TrainResult {
        // The retention window needs *some* sink; prefer the caller's, fall
        // back to the recorder's bounded ring.
        let flight_sink;
        let sink = if flight.enabled() && !sink.enabled() {
            flight_sink = flight.make_sink(hetero_trace::TimeDomain::Wall);
            &flight_sink
        } else {
            sink
        };
        let watchdog = flight.watchdog();
        let cfg = &self.cfg;
        let train = cfg.train.clone();
        let algo = train.algorithm;
        let spec = cfg.spec.clone();
        assert_eq!(dataset.features(), spec.input_dim, "feature width");

        // Worker slots: CPU first (if used), then GPU. Built before the
        // model so the resume guard below can check the run shape.
        let mut kinds = Vec::new();
        if algo.uses_cpu() {
            kinds.push(WorkerKind::Cpu);
        }
        if algo.uses_gpu() {
            for _ in 0..cfg.gpu_workers.max(1) {
                kinds.push(WorkerKind::Gpu);
            }
        }

        // --- Resume from the newest valid checkpoint ----------------------------
        // The worker-count guard rejects a checkpoint from a differently
        // shaped run (the schema tag already rejects other engines').
        let resume: Option<ThreadedCkptState> = ckpt
            .resume_state::<ThreadedCkptState>()
            .filter(|s| s.schema == THREADED_CKPT_SCHEMA && s.workers.len() == kinds.len());
        let t_base = resume.as_ref().map_or(0.0, |s| s.t);

        let init = match &resume {
            Some(s) => s.model.clone(),
            None => Model::new(spec.clone(), train.init, train.seed),
        };
        watchdog.ensure_layers(init.layers().len());
        let shared = Arc::new(SharedModel::new(&init));
        let t0 = Instant::now();

        if flight.enabled() {
            flight.set_provenance(Provenance {
                engine: "threaded".into(),
                algorithm: algo.label().to_string(),
                dataset: dataset.name.clone(),
                workers: kinds.len(),
                config_json: serde_json::to_string(&train).unwrap_or_default(),
                git_sha: hetero_flight::read_git_sha(),
                simd_level: format!("{:?}", hetero_tensor::simd::active_level()),
            });
        }

        let (ready_tx, ready_rx) = channel_traced::<WorkerMsg>(sink, "ready", COORDINATOR);
        let mut exec_txs: Vec<Sender<CoordMsg>> = Vec::new();
        let mut handles = Vec::new();
        for (slot, kind) in kinds.iter().enumerate() {
            let (tx, rx) = channel_traced::<CoordMsg>(sink, &format!("exec{slot}"), slot as u32);
            exec_txs.push(tx);
            let h = match kind {
                WorkerKind::Cpu => self.spawn_cpu_worker(
                    slot,
                    Arc::clone(&dataset),
                    Arc::clone(&shared),
                    rx,
                    ready_tx.clone(),
                    t0,
                    train.clone(),
                    sink.clone(),
                    hub.clone(),
                    watchdog.clone(),
                ),
                WorkerKind::Gpu => self.spawn_gpu_worker(
                    slot,
                    Arc::clone(&dataset),
                    Arc::clone(&shared),
                    rx,
                    ready_tx.clone(),
                    t0,
                    train.clone(),
                    sink.clone(),
                    hub.clone(),
                    watchdog.clone(),
                ),
            };
            handles.push(h);
        }
        drop(ready_tx);

        // --- Coordinator loop ---------------------------------------------------
        let mut stats: Vec<WorkerStats> = kinds.iter().map(|k| WorkerStats::new(*k)).collect();
        let mut controller = self.build_controller(&kinds, dataset.len());
        let mut scheduler = BatchScheduler::new(dataset.len(), train.max_epochs);
        let mut curve: Vec<LossPoint> = Vec::new();

        let timeline_rejects = sink.counter("engine.timeline_rejects");
        let faults_ctr = sink.counter("engine.faults");
        let requeues_ctr = sink.counter("engine.requeues");

        // Live dashboard gauges (`worker.<w>.*`, `engine.*`): resolved once
        // here, refreshed on every completion/eval so a concurrent
        // dashboard or scrape endpoint always reads a fresh picture.
        struct WorkerGauges {
            updates: hetero_trace::GaugeHandle,
            batch: hetero_trace::GaugeHandle,
            examples: hetero_trace::GaugeHandle,
            busy_secs: hetero_trace::GaugeHandle,
        }
        let worker_gauges: Vec<WorkerGauges> = kinds
            .iter()
            .enumerate()
            .map(|(w, k)| {
                sink.gauge(&format!("worker.{w}.kind")).set(match k {
                    WorkerKind::Cpu => 0.0,
                    WorkerKind::Gpu => 1.0,
                });
                WorkerGauges {
                    updates: sink.gauge(&format!("worker.{w}.updates")),
                    batch: sink.gauge(&format!("worker.{w}.batch")),
                    examples: sink.gauge(&format!("worker.{w}.examples")),
                    busy_secs: sink.gauge(&format!("worker.{w}.busy_secs")),
                }
            })
            .collect();
        let g_loss = sink.gauge("engine.loss");
        let g_epochs = sink.gauge("engine.epochs");
        // Created only when β is actually measured, so dashboards can tell
        // "off" (gauge absent) from "measured 0".
        let g_beta_measured = train
            .measured_beta
            .then(|| sink.gauge("engine.beta_measured"));

        // Coordinator-side GEMM pool, pinned to `train.rayon_threads`
        // (0 = one thread per host core): loss evaluations fan their
        // parallel forward pass out to this pool instead of whatever
        // `available_parallelism` says, so evals don't steal every core
        // from the Hogwild lanes. Report how far the run as a whole
        // oversubscribes the host: lanes plus per-GPU-worker GEMM fan-out
        // can all be runnable at once.
        let gemm_pool = rayon::ThreadPoolBuilder::new()
            .num_threads(train.rayon_threads)
            .build()
            .expect("coordinator gemm pool");
        let host_threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let cpu_lanes = if algo.uses_cpu() { cfg.cpu_threads } else { 0 };
        let gpu_slots = kinds.iter().filter(|k| **k == WorkerKind::Gpu).count();
        let requested = cpu_lanes + gpu_slots * gemm_pool.current_num_threads();
        sink.counter("engine.pool_oversubscription")
            .add(requested.saturating_sub(host_threads) as u64);

        // Evaluation subset: the same seeded random subsample at every eval
        // point (a fixed prefix would bias the curve toward the dataset's
        // shipped ordering).
        let eval_rows = eval_subset(dataset.len(), train.eval_subsample, train.seed);
        let (eval_x, eval_labels) = gather_rows(&dataset, &eval_rows);

        let eval = |shared: &SharedModel, scheduler: &BatchScheduler, t0: Instant| -> LossPoint {
            let model = shared.snapshot();
            let pass = gemm_pool.install(|| hetero_nn::forward(&model, &eval_x, true));
            let point = LossPoint {
                // `t_base` splices a resumed incarnation's curve onto the
                // restored prefix's time axis.
                time: t_base + t0.elapsed().as_secs_f64(),
                epochs: scheduler.epochs_elapsed(),
                loss: hetero_nn::loss(pass.probs(), eval_labels.as_targets(), spec.loss),
                accuracy: hetero_nn::accuracy(pass.probs(), eval_labels.as_targets()),
            };
            g_loss.set(point.loss as f64);
            g_epochs.set(point.epochs);
            if let (Some(g), Some(beta)) = (&g_beta_measured, shared.beta_estimate()) {
                g.set(beta);
            }
            if sink.enabled() {
                sink.emit(
                    COORDINATOR,
                    EventKind::EvalPoint {
                        loss: point.loss as f64,
                    },
                );
            }
            point
        };
        // The remaining budget is what the original run had not yet spent.
        let budget = Duration::from_secs_f64((train.time_budget - t_base).max(0.0));
        let mut active = vec![true; kinds.len()];
        let mut in_flight: Vec<Option<BatchRange>> = vec![None; kinds.len()];
        let mut requeue: VecDeque<BatchRange> = VecDeque::new();
        let mut requeued_batches: u64 = 0;

        if let Some(s) = resume {
            controller = s.controller;
            scheduler = s.scheduler;
            curve = s.curve;
            for (stat, wc) in stats.iter_mut().zip(&s.workers) {
                stat.updates = wc.updates;
                stat.batches = wc.batches;
                stat.examples = wc.examples;
            }
            // Ranges that were in flight (or re-queued) when the
            // checkpoint froze go back to the front of the queue: they were
            // already counted by the scheduler, so serving them from the
            // requeue keeps `examples_served`/`epochs_elapsed` exact.
            requeue.extend(s.requeue);
            requeued_batches = s.requeued_batches;
            watchdog.restore_state(&s.watchdog);
            ckpt.resume_mark(t_base);
            sink.counter("ckpt.resumes").add(1);
        } else {
            let first = eval(&shared, &scheduler, t0);
            // Seed the watchdog's divergence/stall baseline with the
            // initial loss (the first observation never reacts).
            watchdog.observe_eval(first.loss as f64);
            curve.push(first);
        }

        // Checkpoint observability: generation/bytes/age gauges plus the
        // write-latency histogram (no-ops when sink/hub are disabled). The
        // capture buffer is reused so a checkpoint allocates nothing on the
        // coordinator's steady path beyond the serialized payload.
        let g_ckpt_gen = sink.gauge("ckpt.generation");
        let g_ckpt_bytes = sink.gauge("ckpt.bytes");
        let g_ckpt_age = sink.gauge("ckpt.age_secs");
        let ckpt_hist = hub.histogram(Metric::CkptWrite, GLOBAL_WORKER);
        let mut ckpt_model: Option<Model> =
            ckpt.enabled().then(|| Model::zeros_like(shared.spec()));

        macro_rules! sup {
            () => {
                Supervision {
                    active: &mut active,
                    stats: &mut stats,
                    in_flight: &mut in_flight,
                    requeue: &mut requeue,
                    requeued_batches: &mut requeued_batches,
                    faults_ctr: &faults_ctr,
                    requeues_ctr: &requeues_ctr,
                }
            };
        }

        /// Re-queued ranges are served before the scheduler so they are
        /// never re-counted in `examples_served`/`epochs_elapsed` (the
        /// scheduler counted them when it first handed them out).
        fn next_range(
            requeue: &mut VecDeque<BatchRange>,
            scheduler: &mut BatchScheduler,
            size: usize,
        ) -> Option<BatchRange> {
            if let Some(r) = requeue.pop_front() {
                return Some(r);
            }
            scheduler.next_batch(size).filter(|r| !r.is_empty())
        }

        macro_rules! dispatch {
            ($w:expr) => {{
                let w: usize = $w;
                let size = controller.on_request_traced(w, sink);
                match next_range(&mut requeue, &mut scheduler, size) {
                    Some(range) => {
                        if sink.enabled() {
                            sink.emit(w as u32, EventKind::BatchDispatched { batch: range.len() });
                        }
                        match exec_txs[w].send(CoordMsg::Execute(range)) {
                            Ok(()) => in_flight[w] = Some(range),
                            Err(_) => {
                                // The worker died without a fault message:
                                // the range never left, put it back and
                                // quarantine the slot.
                                requeue.push_front(range);
                                sup!().retire(
                                    w,
                                    &WorkerError::Disconnected("exec channel closed".into()),
                                    sink,
                                );
                            }
                        }
                    }
                    None => {
                        let _ = exec_txs[w].send(CoordMsg::Stop);
                        active[w] = false;
                    }
                }
            }};
        }

        // Health reactions need the controller, which the `dispatch!` macro
        // also borrows — macros keep both lexical, where a closure could
        // not.
        macro_rules! freeze_batches {
            () => {{
                for w in 0..kinds.len() {
                    controller.clamp_max_batch(w, controller.batch(w));
                }
                watchdog.note_clamp();
            }};
        }
        macro_rules! health_event {
            ($action:expr, $detail:expr) => {
                if sink.enabled() {
                    sink.emit(
                        COORDINATOR,
                        EventKind::HealthEvent {
                            action: $action.to_string(),
                            detail: $detail,
                        },
                    );
                }
            };
        }

        // Kick off every worker.
        for w in 0..kinds.len() {
            dispatch!(w);
        }
        let eval_interval = Duration::from_secs_f64(train.eval_interval);
        let mut next_eval = eval_interval;
        let mut tripped: Option<String> = None;

        while active.iter().any(|&a| a) {
            // Health policy enforcement between messages: an abort raised
            // from any worker hot path (or a prior eval) stops the run; a
            // clamp request freezes the adaptive controller at the current
            // batch sizes.
            if let Some(reason) = watchdog.tripped() {
                health_event!("abort", reason.clone());
                tripped = Some(format!("health watchdog: {reason}"));
                break;
            }
            if watchdog.take_clamp_request() {
                freeze_batches!();
                health_event!(
                    "clamp",
                    "batch growth frozen on worker health report".to_string()
                );
            }
            // Periodic crash-consistency checkpoint. The model image is a
            // racy `snapshot_into` read — workers keep merging throughout —
            // so the capture never stalls the hot path; everything else
            // captured here is coordinator-owned state.
            let t_train = t_base + t0.elapsed().as_secs_f64();
            if ckpt.due(t_train) {
                if let Some(m) = ckpt_model.as_mut() {
                    shared.snapshot_into(m);
                    let state = ThreadedCkptState {
                        schema: THREADED_CKPT_SCHEMA.to_string(),
                        t: t_train,
                        model: m.clone(),
                        controller: controller.clone(),
                        scheduler: scheduler.clone(),
                        curve: curve.clone(),
                        workers: stats
                            .iter()
                            .map(|s| ThreadedWorkerCkpt {
                                updates: s.updates,
                                batches: s.batches,
                                examples: s.examples,
                            })
                            .collect(),
                        requeue: requeue
                            .iter()
                            .copied()
                            .chain(in_flight.iter().flatten().copied())
                            .collect(),
                        requeued_batches,
                        watchdog: watchdog.export_state(),
                    };
                    if let Some(report) = ckpt.save(t_train, &state) {
                        g_ckpt_gen.set(report.generation as f64);
                        g_ckpt_bytes.set(report.bytes as f64);
                        ckpt_hist.record_secs(report.write_secs);
                        flight.set_resumable_from(report.path.display().to_string());
                    }
                }
            }
            let now = t0.elapsed();
            if now >= next_eval {
                if ckpt.enabled() {
                    g_ckpt_age.set(t_train - ckpt.last_saved_at().unwrap_or(0.0));
                }
                let point = eval(&shared, &scheduler, t0);
                match watchdog.observe_eval(point.loss as f64) {
                    HealthAction::Ignore => {}
                    HealthAction::Warn => {
                        health_event!(
                            "warn",
                            format!("eval health warning at loss {:.4}", point.loss)
                        );
                    }
                    HealthAction::Clamp => {
                        freeze_batches!();
                        health_event!(
                            "clamp",
                            format!("batch growth frozen at loss {:.4}", point.loss)
                        );
                    }
                    // The trip flag is already set; the loop-top check
                    // turns it into the abort.
                    HealthAction::Abort => {}
                }
                if flight.enabled() {
                    let stale = hub.summary(Metric::Staleness);
                    let h = watchdog.summary();
                    flight.record_snapshot(HealthSnapshot {
                        t: point.time,
                        loss: point.loss as f64,
                        epochs: point.epochs,
                        batches: (0..kinds.len()).map(|w| controller.batch(w)).collect(),
                        beta: if train.measured_beta {
                            shared.beta_estimate()
                        } else {
                            None
                        },
                        staleness_p50: stale.as_ref().map(|s| s.p50),
                        staleness_p99: stale.as_ref().map(|s| s.p99),
                        grad_peak_norm: h.peak_grad_norm,
                    });
                    // Per-layer gradient-norm gauges for the dashboard /
                    // OpenMetrics endpoint.
                    if sink.enabled() {
                        for (l, n) in h.layer_peak_norms.iter().enumerate() {
                            sink.gauge(&format!("health.layer.{l}.grad_norm")).set(*n);
                        }
                        sink.gauge("health.nonfinite")
                            .set(h.nonfinite_events as f64);
                    }
                }
                curve.push(point);
                // Advance past `now` in whole intervals: a stall longer
                // than one interval must not leave `next_eval` behind the
                // wall clock (which would starve batch dispatch with
                // back-to-back evals until it caught up).
                let behind = (now - next_eval).as_secs_f64() / eval_interval.as_secs_f64();
                next_eval += eval_interval * (behind.floor() as u32 + 1);
                continue;
            }
            let wait = (next_eval - now).min(Duration::from_millis(50));
            match ready_rx.recv_timeout(wait) {
                Ok(WorkerMsg::Ready(r)) => {
                    in_flight[r.worker] = None;
                    controller.report_updates(r.worker, r.updates);
                    if let Some(fit) = r.shrunk_to {
                        // The device OOMed above `fit`: the adaptive loop
                        // must never re-request a size it already rejected.
                        controller.clamp_max_batch(r.worker, fit);
                    }
                    if let Some(tail) = r.leftover {
                        sup!().push_requeue(tail, sink);
                    }
                    let s = &mut stats[r.worker];
                    s.updates += r.updates;
                    s.batches += 1;
                    s.examples += r.examples;
                    let level = match s.kind {
                        WorkerKind::Cpu => {
                            (r.batch.min(self.cfg.cpu_threads) as f64) / self.cfg.cpu_threads as f64
                        }
                        WorkerKind::Gpu => self.cfg.gpu_perf.busy_utilization(r.batch),
                    };
                    // Wall-clock segments from a racing worker can jitter;
                    // clamp monotonic.
                    let start = r.busy_start.max(s.timeline.horizon());
                    let end = r.busy_end.max(start);
                    if s.timeline.try_record(start, end, level).is_err() {
                        timeline_rejects.add(1);
                    }
                    let g = &worker_gauges[r.worker];
                    g.updates.set(s.updates);
                    g.batch.set(r.batch as f64);
                    g.examples.set(s.examples as f64);
                    g.busy_secs.set(s.timeline.busy_time());

                    if t0.elapsed() < budget {
                        dispatch!(r.worker);
                    } else {
                        let _ = exec_txs[r.worker].send(CoordMsg::Stop);
                        active[r.worker] = false;
                    }
                }
                Ok(WorkerMsg::Fault { worker, error }) => {
                    sup!().retire(worker, &error, sink);
                }
                Err(RecvTimeoutError::Timeout) => {
                    // Sweep for workers that died without managing to send
                    // a fault (their exec receiver is gone).
                    for w in 0..kinds.len() {
                        if active[w] && exec_txs[w].is_disconnected() {
                            sup!().retire(
                                w,
                                &WorkerError::Disconnected("exec channel closed".into()),
                                sink,
                            );
                        }
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }

        // Shut down: every surviving worker already got Stop when its slot
        // went inactive; dropping the senders unblocks any straggler.
        drop(exec_txs);
        for h in handles {
            let _ = h.join();
        }
        // Faults that raced the shutdown still deserve a retirement record.
        while let Ok(msg) = ready_rx.try_recv() {
            if let WorkerMsg::Fault { worker, error } = msg {
                sup!().retire(worker, &error, sink);
            }
        }
        let aborted = tripped.or_else(|| {
            stats
                .iter()
                .all(|s| s.retired.is_some())
                .then(|| "all workers retired by faults".to_string())
        });

        curve.push(eval(&shared, &scheduler, t0));

        for (w, s) in stats.iter_mut().enumerate() {
            s.final_batch = controller.batch(w);
            s.summarize_timeline();
        }
        // Total training time across incarnations, not just this one.
        let duration = t_base + t0.elapsed().as_secs_f64();
        if sink.enabled() {
            let examples: u64 = stats.iter().map(|s| s.examples).sum();
            sink.gauge("engine.examples_per_sec")
                .set(examples as f64 / duration.max(1e-9));
            sink.gauge("engine.beta").set(train.adaptive.beta);
        }
        let measured_beta = if train.measured_beta {
            shared.beta_estimate()
        } else {
            None
        };
        // Black-box dump on any abnormal end: watchdog trip, a retired
        // worker, or the all-dead abort. `capture` copies the retained
        // window without draining, so the caller's own `drain` still sees
        // the full trace.
        let mut health = watchdog.enabled().then(|| watchdog.summary());
        if flight.enabled() && (aborted.is_some() || stats.iter().any(|s| s.retired.is_some())) {
            let reason = aborted
                .clone()
                .unwrap_or_else(|| "worker retirement".to_string());
            let path = flight.dump(&reason, sink.capture(), hub);
            if let (Some(h), Some(p)) = (health.as_mut(), path) {
                h.postmortem = Some(p);
            }
        }
        TrainResult {
            algorithm: algo.label().to_string(),
            dataset: dataset.name.clone(),
            loss_curve: curve,
            workers: stats,
            duration,
            epochs: scheduler.epochs_elapsed(),
            trace_path: None,
            requeued_batches,
            aborted,
            measured_beta,
            staleness: hub.summary(Metric::Staleness),
            health,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn spawn_cpu_worker(
        &self,
        slot: usize,
        dataset: Arc<DenseDataset>,
        shared: Arc<SharedModel>,
        rx: Receiver<CoordMsg>,
        tx: Sender<WorkerMsg>,
        t0: Instant,
        train: TrainConfig,
        sink: TraceSink,
        hub: MetricsHub,
        watchdog: Watchdog,
    ) -> std::thread::JoinHandle<()> {
        let threads = self.cfg.cpu_threads;
        let plan = self.cfg.fault_plan.clone();
        std::thread::Builder::new()
            .name(format!("cpu-worker-{slot}"))
            .spawn(move || {
                let body = || -> Result<(), WorkerError> {
                    let pool = rayon::ThreadPoolBuilder::new()
                        .num_threads(threads)
                        .thread_name(|i| format!("hogwild-{i}"))
                        .build()
                        .map_err(|e| WorkerError::Panic(format!("cpu worker pool: {e}")))?;
                    // One persistent scratch set per Hogwild lane — model
                    // snapshot, batch staging, and forward/backward
                    // workspace all reused across batches, so a
                    // steady-state lane performs zero heap allocations.
                    struct Lane {
                        local: Model,
                        ws: Workspace,
                        x: Matrix,
                        labels: Labels,
                        /// Watchdog scratch: per-layer sumsq / non-finite
                        /// counts of the lane's own gradient, reused every
                        /// batch (lane-local, so no synchronization).
                        scan: MergeScan,
                    }
                    let mut lanes: Vec<Lane> = (0..threads)
                        .map(|_| {
                            let local = shared.snapshot();
                            let scan = MergeScan::for_model(&local);
                            Lane {
                                local,
                                ws: Workspace::new(shared.spec()),
                                x: Matrix::zeros(0, 0),
                                labels: Labels::Classes(Vec::new()),
                                scan,
                            }
                        })
                        .collect();
                    let poison_step = plan.poison_at(slot);
                    // Histogram handles resolved once; recording is a few
                    // relaxed atomic adds, so the zero-alloc steady state
                    // of the lanes is preserved.
                    let lat_hist = hub.histogram(Metric::BatchLatency, slot as u32);
                    let queue_hist = hub.histogram(Metric::QueueWait, slot as u32);
                    let stale_hist = hub.histogram(Metric::Staleness, slot as u32);
                    let mut batches_done = 0u64;
                    loop {
                        let (msg, waited) = rx.recv_timed();
                        let Ok(msg) = msg else { break };
                        queue_hist.record_secs(waited.as_secs_f64());
                        let range = match msg {
                            CoordMsg::Execute(r) => r,
                            CoordMsg::Stop => break,
                        };
                        if plan.death_after(slot) == Some(batches_done) {
                            panic!(
                                "injected fault: worker {slot} died after {batches_done} batches"
                            );
                        }
                        let busy_start = t0.elapsed().as_secs_f64();
                        let total = range.len();
                        let sub = total.div_ceil(threads);
                        let sub_ranges: Vec<(usize, usize)> = (0..threads)
                            .map(|i| {
                                let s = range.start + i * sub;
                                (s, (s + sub).min(range.end))
                            })
                            .filter(|(s, e)| e > s)
                            .collect();
                        let n_updates = sub_ranges.len();
                        // Each Hogwild lane: read the live shared model (racy
                        // snapshot), compute its sub-gradient, apply racily.
                        // Lane i owns lanes[i] exclusively (chunk size 1), so
                        // every buffer is reused without synchronization.
                        pool.install(|| {
                            use rayon::prelude::*;
                            lanes[..n_updates].par_chunks_mut(1).enumerate().for_each(
                                |(i, lane)| {
                                    let lane = &mut lane[0];
                                    let (s, e) = sub_ranges[i];
                                    // Staleness = global updates applied
                                    // between this lane's read and its own
                                    // write landing (minus the write itself).
                                    let stale_at =
                                        (!stale_hist.is_disabled()).then(|| shared.update_count());
                                    shared.snapshot_into(&mut lane.local);
                                    dataset.batch_into(s, e, &mut lane.x, &mut lane.labels);
                                    lane.ws.loss_and_gradient_into(
                                        &lane.local,
                                        &lane.x,
                                        lane.labels.as_targets(),
                                        false,
                                    );
                                    if let Some(c) = train.grad_clip {
                                        lane.ws.grad_mut().clip_to_norm(c);
                                    }
                                    // Injected fault: one NaN into this
                                    // worker's gradient at the planned step
                                    // (lane 0 only — one poisoned update is
                                    // enough, and it keeps the site exact).
                                    if i == 0 && poison_step == Some(batches_done) {
                                        lane.ws.grad_mut().layers_mut()[0].b[0] = f32::NAN;
                                    }
                                    if watchdog.enabled() {
                                        lane.scan.reset();
                                        scan_model(lane.ws.grad(), &mut lane.scan);
                                        for (l, ls) in lane.scan.layers().iter().enumerate() {
                                            watchdog.observe_layer(
                                                slot as u32,
                                                l,
                                                batches_done,
                                                ls.sumsq,
                                                ls.nonfinite,
                                            );
                                        }
                                    }
                                    let eta = train.lr_scaling.eta(train.lr, e - s);
                                    if train.measured_beta {
                                        shared.apply_gradient_racy_sampled(lane.ws.grad(), eta);
                                    } else {
                                        shared.apply_gradient_racy(lane.ws.grad(), eta);
                                    }
                                    if let Some(at) = stale_at {
                                        let now = shared.update_count();
                                        stale_hist.record(now.saturating_sub(at + 1));
                                    }
                                },
                            );
                        });
                        let busy_end = t0.elapsed().as_secs_f64();
                        lat_hist.record_secs(busy_end - busy_start);
                        batches_done += 1;
                        if sink.enabled() {
                            sink.emit(
                                slot as u32,
                                EventKind::BatchCompleted {
                                    batch: total,
                                    updates: n_updates,
                                },
                            );
                        }
                        // `t·β` crediting: the configured constant by
                        // default; the live CAS-probe estimate when the run
                        // opted into measured β (DESIGN.md §4g).
                        let credited = if train.measured_beta {
                            credit_updates(
                                n_updates as u64,
                                train.adaptive.beta,
                                shared.beta_estimate(),
                            )
                        } else {
                            n_updates as f64 * train.adaptive.beta
                        };
                        let sent = tx.send(WorkerMsg::Ready(Ready {
                            worker: slot,
                            updates: credited,
                            examples: total as u64,
                            busy_start,
                            busy_end,
                            batch: total,
                            shrunk_to: None,
                            leftover: None,
                        }));
                        if sent.is_err() {
                            break; // coordinator gone: nothing left to tell
                        }
                    }
                    Ok(())
                };
                report_worker_exit(slot, catch_unwind(AssertUnwindSafe(body)), &tx);
            })
            .expect("spawn cpu worker")
    }

    #[allow(clippy::too_many_arguments)]
    fn spawn_gpu_worker(
        &self,
        slot: usize,
        dataset: Arc<DenseDataset>,
        shared: Arc<SharedModel>,
        rx: Receiver<CoordMsg>,
        tx: Sender<WorkerMsg>,
        t0: Instant,
        train: TrainConfig,
        sink: TraceSink,
        hub: MetricsHub,
        watchdog: Watchdog,
    ) -> std::thread::JoinHandle<()> {
        let perf = self.cfg.gpu_perf.clone();
        let plan = self.cfg.fault_plan.clone();
        std::thread::Builder::new()
            .name(format!("gpu-worker-{slot}"))
            .spawn(move || {
                let body = || -> Result<(), WorkerError> {
                    // The observed device feeds H2D/D2H transfer
                    // histograms on top of the trace events.
                    let device = GpuDevice::new_observed(perf, &sink, slot as u32, &hub);
                    let lat_hist = hub.histogram(Metric::BatchLatency, slot as u32);
                    let queue_hist = hub.histogram(Metric::QueueWait, slot as u32);
                    let stale_hist = hub.histogram(Metric::Staleness, slot as u32);
                    let merge_hist = hub.histogram(Metric::MergeWait, slot as u32);
                    let retries_hist = hub.histogram(Metric::MergeRetries, slot as u32);
                    if plan.upload_oom(slot) {
                        device.inject_oom_at(0);
                    }
                    if let Some(n) = plan.oom_alloc_index(slot) {
                        device.inject_oom_at(n);
                    }
                    // Kernel-emulation GEMMs fan out to this pinned pool
                    // instead of grabbing every host core.
                    let gemm_pool = rayon::ThreadPoolBuilder::new()
                        .num_threads(train.rayon_threads)
                        .build()
                        .map_err(|e| WorkerError::Panic(format!("gpu gemm pool: {e}")))?;
                    // Persistent host-side staging, reused across batches:
                    // snapshot/replica models and the batch buffers make the
                    // steady-state step loop allocation-free on the host
                    // (the device side reuses `GpuMlp`'s scratch pool).
                    let mut snapshot = shared.snapshot();
                    let mut replica = Model::zeros_like(shared.spec());
                    let mut x = Matrix::zeros(0, 0);
                    let mut labels = Labels::Classes(Vec::new());
                    // Watchdog scratch: per-layer sumsq / non-finite counts
                    // of the merged delta, filled *inside* the merge's
                    // element loop (no extra pass over the model).
                    let mut merge_scan = MergeScan::for_model(&snapshot);
                    let poison_step = plan.poison_at(slot);
                    // An OOM here is unrecoverable — there is no batch to
                    // shrink when the parameters themselves don't fit.
                    let mut mlp = GpuMlp::upload(&device, &snapshot)
                        .map_err(|e| WorkerError::Oom(format!("model upload failed: {e}")))?;
                    let mut batches_done = 0u64;
                    loop {
                        let (msg, waited) = rx.recv_timed();
                        let Ok(msg) = msg else { break };
                        queue_hist.record_secs(waited.as_secs_f64());
                        let range = match msg {
                            CoordMsg::Execute(r) => r,
                            CoordMsg::Stop => break,
                        };
                        if plan.death_after(slot) == Some(batches_done) {
                            panic!(
                                "injected fault: worker {slot} died after {batches_done} batches"
                            );
                        }
                        let busy_start = t0.elapsed().as_secs_f64();
                        // Deep-copy replica of the current global model (§V).
                        let updates_at_snapshot = shared.update_count();
                        shared.snapshot_into(&mut snapshot);
                        // Bounded retry: halve the batch until the step fits
                        // on the device (a mid-step OOM leaves the replica
                        // partially updated, so refresh before every try).
                        let mut len = range.len();
                        let mut shrunk_to = None;
                        loop {
                            mlp.refresh(&snapshot);
                            dataset.batch_into(range.start, range.start + len, &mut x, &mut labels);
                            let eta = train.lr_scaling.eta(train.lr, len);
                            match gemm_pool.install(|| mlp.train_step(&x, labels.as_targets(), eta))
                            {
                                Ok(_) => break,
                                Err(e) if len > 1 => {
                                    len /= 2;
                                    shrunk_to = Some(len);
                                    let _ = e;
                                }
                                Err(e) => {
                                    return Err(WorkerError::Oom(format!(
                                        "single-example step failed: {e}"
                                    )));
                                }
                            }
                        }
                        let leftover = (len < range.len()).then_some(BatchRange {
                            start: range.start + len,
                            end: range.end,
                            epoch: range.epoch,
                        });
                        // Merge the replica's delta into the global model
                        // without clobbering concurrent CPU updates. §VI-B:
                        // the delta is discounted by how stale its base
                        // snapshot became while the device was computing.
                        let staleness = shared.update_count().saturating_sub(updates_at_snapshot);
                        let scale = 1.0 / (1.0 + train.staleness_discount * staleness as f32);
                        stale_hist.record(staleness);
                        mlp.download_into(&mut replica);
                        // Injected fault: one NaN into this worker's delta
                        // at the planned step (the merge carries it into
                        // the shared model — detection is the watchdog's
                        // job, not the merge's).
                        if poison_step == Some(batches_done) {
                            replica.layers_mut()[0].b[0] = f32::NAN;
                        }
                        let merge_start = Instant::now();
                        let retries = if watchdog.enabled() {
                            merge_scan.reset();
                            let r = shared.merge_delta_scaled_scanned(
                                &snapshot,
                                &replica,
                                scale,
                                &mut merge_scan,
                            );
                            for (l, ls) in merge_scan.layers().iter().enumerate() {
                                watchdog.observe_layer(
                                    slot as u32,
                                    l,
                                    batches_done,
                                    ls.sumsq,
                                    ls.nonfinite,
                                );
                            }
                            r
                        } else {
                            shared.merge_delta_scaled_observed(&snapshot, &replica, scale)
                        };
                        merge_hist.record_secs(merge_start.elapsed().as_secs_f64());
                        retries_hist.record(retries);
                        let busy_end = t0.elapsed().as_secs_f64();
                        lat_hist.record_secs(busy_end - busy_start);
                        batches_done += 1;
                        if sink.enabled() {
                            sink.emit(
                                slot as u32,
                                EventKind::ModelMerge {
                                    scale: scale as f64,
                                },
                            );
                            sink.emit(
                                slot as u32,
                                EventKind::BatchCompleted {
                                    batch: len,
                                    updates: 1,
                                },
                            );
                        }
                        let sent = tx.send(WorkerMsg::Ready(Ready {
                            worker: slot,
                            updates: 1.0,
                            examples: len as u64,
                            busy_start,
                            busy_end,
                            batch: len,
                            shrunk_to,
                            leftover,
                        }));
                        if sent.is_err() {
                            break; // coordinator gone: nothing left to tell
                        }
                    }
                    Ok(())
                    // `mlp` (and its device buffers) drop here — and on any
                    // unwind path above, via GpuMlp's Drop impl.
                };
                report_worker_exit(slot, catch_unwind(AssertUnwindSafe(body)), &tx);
            })
            .expect("spawn gpu worker")
    }

    fn build_controller(&self, kinds: &[WorkerKind], n: usize) -> AdaptiveController {
        let train = &self.cfg.train;
        let p = &train.adaptive;
        let adapt = train.algorithm.is_adaptive();
        let states = kinds
            .iter()
            .map(|k| match k {
                WorkerKind::Cpu => {
                    if adapt {
                        let min_b = p.cpu_min_batch.max(self.cfg.cpu_threads).min(n.max(1));
                        WorkerBatchState::new(min_b, min_b, p.cpu_max_batch.max(min_b))
                    } else {
                        let b = (train.cpu_batch_per_thread * self.cfg.cpu_threads)
                            .min(n.max(1))
                            .max(1);
                        WorkerBatchState::new(b, b, b)
                    }
                }
                WorkerKind::Gpu => {
                    if adapt {
                        let max_b = p.gpu_max_batch.max(1);
                        let min_b = p.gpu_min_batch.min(max_b).max(1);
                        WorkerBatchState::new(max_b, min_b, max_b)
                    } else {
                        let b = train.gpu_batch.max(1);
                        WorkerBatchState::new(b, b, b)
                    }
                }
            })
            .collect();
        AdaptiveController::new(p.alpha, adapt, states)
    }
}

/// Convert a worker body's exit into a [`WorkerMsg::Fault`] when it did not
/// end cleanly. A clean exit (coordinator said Stop, or the schedule ran
/// dry) sends nothing.
fn report_worker_exit(
    slot: usize,
    exit: std::thread::Result<Result<(), WorkerError>>,
    tx: &Sender<WorkerMsg>,
) {
    let error = match exit {
        Ok(Ok(())) => return,
        Ok(Err(e)) => e,
        Err(payload) => WorkerError::Panic(panic_message(&*payload)),
    };
    // If the coordinator is already gone there is nobody left to tell.
    let _ = tx.send(WorkerMsg::Fault {
        worker: slot,
        error,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AdaptiveParams, LrScaling};
    use hetero_data::SynthConfig;

    fn dataset() -> Arc<DenseDataset> {
        let mut cfg = SynthConfig::small(400, 8, 2, 5);
        cfg.separability = 3.0;
        let mut d = cfg.generate();
        d.standardize();
        Arc::new(d)
    }

    fn config(algo: AlgorithmKind, secs: f64) -> ThreadedEngineConfig {
        ThreadedEngineConfig {
            spec: MlpSpec::tiny(8, 2),
            train: TrainConfig {
                init: hetero_nn::InitScheme::Xavier,
                algorithm: algo,
                lr: 0.05,
                lr_scaling: LrScaling::Sqrt {
                    ref_batch: 1,
                    max_lr: 0.3,
                },
                cpu_batch_per_thread: 1,
                gpu_batch: 64,
                adaptive: AdaptiveParams {
                    alpha: 2.0,
                    beta: 1.0,
                    cpu_min_batch: 4,
                    cpu_max_batch: 64,
                    gpu_min_batch: 16,
                    gpu_max_batch: 64,
                },
                time_budget: secs,
                max_epochs: None,
                grad_clip: None,
                weight_decay: 0.0,
                staleness_discount: 0.0,
                rayon_threads: 0,
                measured_beta: false,
                eval_interval: secs / 4.0,
                eval_subsample: 200,
                ckpt_interval: None,
                ckpt_retain: 2,
                seed: 3,
            },
            cpu_threads: 4,
            gpu_perf: GpuModel::v100(),
            gpu_workers: 1,
            fault_plan: FaultPlan::none(),
        }
    }

    #[test]
    fn cpu_only_run_converges() {
        let r = ThreadedEngine::new(config(AlgorithmKind::HogwildCpu, 0.4))
            .unwrap()
            .run(dataset());
        assert!(r.final_loss() < r.initial_loss(), "{:?}", r.loss_curve);
        assert_eq!(r.cpu_update_fraction(), 1.0);
        assert!(r.workers[0].batches > 0);
    }

    #[test]
    fn gpu_only_run_converges() {
        let r = ThreadedEngine::new(config(AlgorithmKind::MiniBatchGpu, 0.4))
            .unwrap()
            .run(dataset());
        assert!(r.final_loss() < r.initial_loss());
        assert_eq!(r.cpu_update_fraction(), 0.0);
    }

    #[test]
    fn heterogeneous_run_uses_both_workers() {
        let r = ThreadedEngine::new(config(AlgorithmKind::CpuGpuHogbatch, 0.5))
            .unwrap()
            .run(dataset());
        assert!(r.final_loss() < r.initial_loss());
        let frac = r.cpu_update_fraction();
        assert!(frac > 0.0 && frac < 1.0, "cpu fraction {frac}");
        for w in &r.workers {
            assert!(w.batches > 0, "{:?} idle", w.kind);
        }
    }

    #[test]
    fn adaptive_run_completes_and_adapts() {
        let r = ThreadedEngine::new(config(AlgorithmKind::AdaptiveHogbatch, 0.5))
            .unwrap()
            .run(dataset());
        assert!(r.final_loss() < r.initial_loss());
        assert!(r.loss_curve.len() >= 3);
        // Update distribution must be less skewed than all-CPU/all-GPU.
        let frac = r.cpu_update_fraction();
        assert!(frac > 0.02 && frac < 0.98, "cpu fraction {frac}");
    }

    #[test]
    fn traced_run_emits_batch_lifecycle() {
        let sink = TraceSink::wall(8192);
        let r = ThreadedEngine::new(config(AlgorithmKind::AdaptiveHogbatch, 0.4))
            .unwrap()
            .run_traced(dataset(), &sink);
        assert!(r.final_loss().is_finite());
        assert!(
            r.trace_path.is_none(),
            "engine never writes the file itself"
        );
        let trace = sink.drain();
        let events = trace.events_sorted();
        let (mut dispatched, mut completed, mut evals, mut merges) = (0u64, 0u64, 0u64, 0u64);
        for e in &events {
            match e.kind {
                EventKind::BatchDispatched { batch } => {
                    assert!(batch > 0);
                    dispatched += 1;
                }
                EventKind::BatchCompleted { .. } => completed += 1,
                EventKind::EvalPoint { .. } => {
                    assert_eq!(e.worker, COORDINATOR);
                    evals += 1;
                }
                EventKind::ModelMerge { scale } => {
                    assert!(scale > 0.0 && scale <= 1.0);
                    merges += 1;
                }
                EventKind::WorkerFault { ref reason } | EventKind::WorkerRetired { ref reason } => {
                    panic!("fault-free run traced a fault: {reason}")
                }
                EventKind::BatchRequeued { .. } => {
                    panic!("fault-free run re-queued a batch")
                }
                _ => {}
            }
        }
        assert!(dispatched > 0, "no dispatches traced");
        assert!(completed > 0, "no completions traced");
        assert!(merges > 0, "GPU merges not traced");
        assert!(evals >= 2, "expected initial + final eval, got {evals}");
        // Both worker slots (CPU=0, GPU=1) completed work.
        let workers: std::collections::HashSet<u32> = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::BatchCompleted { .. }))
            .map(|e| e.worker)
            .collect();
        assert!(workers.contains(&0) && workers.contains(&1), "{workers:?}");
        let counters: std::collections::HashMap<String, f64> =
            trace.counters.iter().cloned().collect();
        assert!(
            counters
                .get("engine.examples_per_sec")
                .copied()
                .unwrap_or(0.0)
                > 0.0
        );
        assert_eq!(counters.get("engine.beta"), Some(&1.0));
        // Fault-free run: supervision counters must stay untouched.
        assert_eq!(r.requeued_batches, 0);
        assert!(r.aborted.is_none());
        assert!(r.workers.iter().all(|w| w.retired.is_none()));
    }

    #[test]
    fn observed_run_fills_histograms_and_dashboard_gauges() {
        let sink = TraceSink::wall(8192);
        let hub = MetricsHub::new();
        let mut cfg = config(AlgorithmKind::AdaptiveHogbatch, 0.4);
        cfg.train.measured_beta = true;
        let r = ThreadedEngine::new(cfg)
            .unwrap()
            .run_observed(dataset(), &sink, &hub);
        assert!(r.final_loss().is_finite());
        // Measured β: the run opted in, so the estimate must be present
        // and a valid survival fraction.
        let beta = r.measured_beta.expect("measured β missing");
        assert!((0.0..=1.0).contains(&beta), "β̂ = {beta}");
        // Staleness summary comes from the hub.
        let stale = r.staleness.expect("staleness summary missing");
        assert!(stale.count > 0);
        assert!(stale.p50 <= stale.p99);
        // Both workers filled latency + queue-wait histograms; the GPU
        // additionally filled transfer + merge series.
        let snap = hub.snapshot();
        for w in [0u32, 1u32] {
            for m in [Metric::BatchLatency, Metric::QueueWait] {
                let s = snap.series_for(m, w).expect("series missing");
                assert!(s.count() > 0, "{m:?} empty for worker {w}");
            }
        }
        for m in [
            Metric::H2d,
            Metric::D2h,
            Metric::MergeWait,
            Metric::MergeRetries,
        ] {
            let s = snap.merged(m).expect("gpu series missing");
            assert!(s.count() > 0, "{m:?} empty");
        }
        // Dashboard gauges were published through the sink.
        let typed = sink.snapshot_typed();
        let gauge = |name: &str| {
            typed
                .gauges
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
        };
        assert_eq!(gauge("worker.0.kind"), Some(0.0));
        assert_eq!(gauge("worker.1.kind"), Some(1.0));
        assert!(gauge("worker.0.updates").unwrap_or(0.0) > 0.0);
        assert!(gauge("worker.1.batch").unwrap_or(0.0) > 0.0);
        assert!(gauge("engine.loss").unwrap_or(f64::NAN).is_finite());
        assert!(gauge("engine.beta_measured").is_some());
        // Timeline digests were filled in before returning.
        for w in &r.workers {
            assert!(w.timeline_summary.intervals > 0);
            assert!(w.timeline_summary.busy_fraction > 0.0);
        }
    }

    #[test]
    fn paper_parity_run_reports_no_measured_beta() {
        let r = ThreadedEngine::new(config(AlgorithmKind::CpuGpuHogbatch, 0.3))
            .unwrap()
            .run(dataset());
        // Default config: β stays the configured constant and the result
        // carries no estimate (and no hub → no staleness summary).
        assert!(r.measured_beta.is_none());
        assert!(r.staleness.is_none());
    }

    #[test]
    fn pool_oversubscription_counter_reports_excess_threads() {
        // Deliberately request far more GEMM threads than any host has:
        // the counter must report the excess (lanes + GPU GEMM fan-out
        // beyond the host's cores).
        let mut cfg = config(AlgorithmKind::CpuGpuHogbatch, 0.2);
        cfg.train.rayon_threads = 1024;
        let sink = TraceSink::wall(4096);
        let _ = ThreadedEngine::new(cfg)
            .unwrap()
            .run_traced(dataset(), &sink);
        let counters: std::collections::HashMap<String, f64> =
            sink.drain().counters.iter().cloned().collect();
        let over = counters
            .get("engine.pool_oversubscription")
            .copied()
            .expect("counter missing");
        assert!(over >= 512.0, "oversubscription not reported: {over}");
    }

    #[test]
    fn multi_gpu_threaded_workers() {
        // The paper's future work: scale the framework to multi-GPU.
        let mut cfg = config(AlgorithmKind::CpuGpuHogbatch, 0.5);
        cfg.gpu_workers = 2;
        let r = ThreadedEngine::new(cfg).unwrap().run(dataset());
        let gpu_workers: Vec<_> = r
            .workers
            .iter()
            .filter(|w| w.kind == WorkerKind::Gpu)
            .collect();
        assert_eq!(gpu_workers.len(), 2);
        assert!(
            gpu_workers.iter().all(|w| w.batches > 0),
            "an idle GPU worker"
        );
        assert!(r.final_loss() < r.initial_loss());
    }

    #[test]
    fn zero_gpu_workers_rejected_for_gpu_algorithms() {
        let mut cfg = config(AlgorithmKind::MiniBatchGpu, 0.1);
        cfg.gpu_workers = 0;
        assert!(ThreadedEngine::new(cfg).is_err());
        // CPU-only algorithms don't care.
        let mut cfg = config(AlgorithmKind::HogwildCpu, 0.1);
        cfg.gpu_workers = 0;
        assert!(ThreadedEngine::new(cfg).is_ok());
    }

    #[test]
    fn tensorflow_rejected() {
        assert!(ThreadedEngine::new(config(AlgorithmKind::TensorFlow, 0.1)).is_err());
    }

    #[test]
    fn checkpoint_and_resume_continues_the_run() {
        use hetero_ckpt::CkptConfig;
        let data = dataset();
        let dir = std::env::temp_dir().join(format!("hetero-thr-ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // First incarnation: train 0.4s of a 0.8s budget, checkpointing
        // every 50ms, then stop (simulating a crash after the last save).
        let mut cfg = config(AlgorithmKind::CpuGpuHogbatch, 0.4);
        cfg.train.time_budget = 0.4;
        let writer = Checkpointer::new(CkptConfig {
            dir: dir.clone(),
            interval: 0.05,
            retain: 2,
            resume: false,
        })
        .unwrap();
        let first = ThreadedEngine::new(cfg.clone()).unwrap().run_ckpt(
            data.clone(),
            &TraceSink::disabled(),
            &MetricsHub::disabled(),
            &FlightRecorder::disabled(),
            &writer,
        );
        assert!(writer.latest_path().is_some(), "no checkpoint written");
        assert!(first.final_loss() < first.initial_loss());

        // Second incarnation: same config with a larger budget resumes
        // from the newest generation and finishes the remaining time.
        cfg.train.time_budget = 0.7;
        let reader = Checkpointer::new(CkptConfig {
            dir: dir.clone(),
            interval: 0.05,
            retain: 2,
            resume: true,
        })
        .unwrap();
        let resumed = ThreadedEngine::new(cfg).unwrap().run_ckpt(
            data,
            &TraceSink::disabled(),
            &MetricsHub::disabled(),
            &FlightRecorder::disabled(),
            &reader,
        );
        // The restored curve is a literal prefix of the first run's curve
        // (it was captured from that run), and the resumed incarnation
        // appends new points beyond it on the same time axis.
        let n_prefix = resumed
            .loss_curve
            .iter()
            .zip(&first.loss_curve)
            .take_while(|(a, b)| a.time == b.time && a.loss == b.loss)
            .count();
        assert!(n_prefix >= 1, "resumed curve lost the original prefix");
        assert!(
            resumed.loss_curve.len() > n_prefix,
            "resume added no new eval points"
        );
        let t_ck = resumed.loss_curve[n_prefix - 1].time;
        assert!(
            resumed.loss_curve[n_prefix..].iter().all(|p| p.time > t_ck),
            "resumed points must continue past the checkpoint"
        );
        // The resumed run spent the restored time plus the remainder.
        assert!(resumed.duration > 0.5, "duration {}", resumed.duration);
        assert!(resumed.final_loss().is_finite());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_roughly_respected() {
        let r = ThreadedEngine::new(config(AlgorithmKind::MiniBatchGpu, 0.3))
            .unwrap()
            .run(dataset());
        // Generous upper bound: budget + one batch + eval slack.
        assert!(r.duration < 3.0, "ran {}s", r.duration);
    }
}
