//! Discrete-event training engine.
//!
//! Executes any [`AlgorithmKind`] against calibrated device models
//! ([`hetero_sim::CpuModel`], [`hetero_sim::GpuModel`]) on a **virtual
//! clock**: every gradient is computed for real on the host, but the
//! *instant it lands* on the global model is decided by the device
//! performance models. This captures the two things the paper's evaluation
//! depends on — the CPU/GPU speed gap and asynchronous staleness (gradients
//! are computed on the model **snapshot taken at batch-assignment time**
//! and applied at completion time) — while remaining exactly reproducible.
//!
//! Workflow per worker (paper Figure 4):
//! 1. coordinator computes the worker's batch size (the
//!    [`AdaptiveController`] is Algorithm 2; static algorithms freeze it),
//! 2. extracts a contiguous range from the data (the [`BatchScheduler`]),
//! 3. snapshots the model (reference for CPU, deep copy for GPU — in the
//!    simulation both are snapshots, but GPU workers additionally pay the
//!    H2D/D2H transfer cost of a deep copy),
//! 4. at `now + batch_time`, the gradient(s) computed on the snapshot are
//!    applied to the live model, update counts are credited, and the worker
//!    immediately requests more work.

use hetero_ckpt::Checkpointer;
use hetero_data::batch::BatchRange;
use hetero_data::{BatchScheduler, DenseDataset, Labels};
use hetero_flight::{
    FlightRecorder, HealthAction, HealthSnapshot, Provenance, Watchdog, WatchdogState,
};
use hetero_metrics::{HistHandle, Metric, MetricsHub, GLOBAL_WORKER};
use hetero_nn::{scan_model, Gradient, MergeScan, MlpSpec, Model, Workspace};
use hetero_sim::{CpuModel, DeviceModel, EventQueue, GpuModel, UtilizationTimeline};
use hetero_tensor::Matrix;
use hetero_trace::{CounterHandle, EventKind, TraceSink, COORDINATOR};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::adaptive::{AdaptiveController, WorkerBatchState};
use crate::config::{AlgorithmKind, TrainConfig};
use crate::eval::{eval_subset, gather_rows};
use crate::fault::FaultPlan;
use crate::metrics::{LossPoint, TimelineSummary, TrainResult, WorkerKind, WorkerStats};

/// Hardware and comparator parameters for a simulated run.
#[derive(Debug, Clone)]
pub struct SimEngineConfig {
    /// Network to train.
    pub spec: MlpSpec,
    /// Algorithm + hyperparameters.
    pub train: TrainConfig,
    /// Host CPU model.
    pub cpu: CpuModel,
    /// GPU models; the paper evaluates with one V100, more are supported
    /// (the paper's multi-GPU future work).
    pub gpus: Vec<GpuModel>,
    /// TensorFlow comparator: per-primitive dispatch overhead (§II —
    /// "scheduling primitives instead of the complete SGD has more
    /// overhead").
    pub tf_op_overhead: f64,
    /// TensorFlow comparator: slowdown factor on multi-label losses
    /// (§VII-B: delicious "is much slower in TensorFlow").
    pub tf_multilabel_penalty: f64,
    /// Deterministic fault injection (empty = fault-free run). The sim
    /// honours [`crate::FaultKind::DieAfterBatches`]; the OOM kinds need a
    /// real device allocator and only apply to the threaded engine.
    pub fault_plan: FaultPlan,
}

impl SimEngineConfig {
    /// Paper hardware: 2×Xeon host + one V100.
    pub fn paper_hardware(spec: MlpSpec, train: TrainConfig) -> Self {
        SimEngineConfig {
            spec,
            train,
            cpu: CpuModel::xeon_pair(),
            gpus: vec![GpuModel::v100()],
            tf_op_overhead: 20e-6,
            tf_multilabel_penalty: 3.0,
            fault_plan: FaultPlan::none(),
        }
    }
}

enum Device {
    Cpu(CpuModel),
    Gpu(GpuModel),
}

impl Device {
    fn kind(&self) -> WorkerKind {
        match self {
            Device::Cpu(_) => WorkerKind::Cpu,
            Device::Gpu(_) => WorkerKind::Gpu,
        }
    }
}

/// Persistent scratch for one gradient lane: batch staging, the main
/// forward/backward workspace, and (for Hybrid SVRG) a second workspace
/// plus a direction buffer for the anchor correction. Reused across every
/// event, so steady-state gradient computation allocates nothing.
struct SimLane {
    ws: Workspace,
    anchor_ws: Workspace,
    dir: Gradient,
    x: Matrix,
    labels: Labels,
}

impl SimLane {
    fn new(spec: &MlpSpec) -> Self {
        SimLane {
            ws: Workspace::new(spec),
            anchor_ws: Workspace::new(spec),
            dir: Model::zeros_like(spec),
            x: Matrix::zeros(0, 0),
            labels: Labels::Classes(Vec::new()),
        }
    }
}

/// Per-run scratch shared by every [`SimEngine::apply_batch`] call: one
/// lane per concurrent Hogwild sub-batch, the wave base model, and a
/// dedicated GPU lane.
struct SimScratch {
    lanes: Vec<SimLane>,
    base: Model,
    gpu: SimLane,
}

impl SimScratch {
    fn new(spec: &MlpSpec) -> Self {
        SimScratch {
            lanes: Vec::new(),
            base: Model::zeros_like(spec),
            gpu: SimLane::new(spec),
        }
    }
}

/// Pre-resolved per-worker histogram handles for an observed run. Every
/// handle is a no-op when the hub is disabled, so the unobserved path pays
/// one branch per record. The sim has no queue wait — workers are
/// re-assigned the instant they complete — so that series is left to the
/// threaded engine.
struct SimObs {
    lat: Vec<HistHandle>,
    stale: Vec<HistHandle>,
    h2d: Vec<HistHandle>,
    d2h: Vec<HistHandle>,
}

impl SimObs {
    fn new(hub: &MetricsHub, workers: usize) -> Self {
        let per = |m: Metric| -> Vec<HistHandle> {
            (0..workers).map(|w| hub.histogram(m, w as u32)).collect()
        };
        SimObs {
            lat: per(Metric::BatchLatency),
            stale: per(Metric::Staleness),
            h2d: per(Metric::H2d),
            d2h: per(Metric::D2h),
        }
    }
}

enum Ev {
    Complete {
        worker: usize,
        range: BatchRange,
        snapshot: Model,
        /// Global update count when the snapshot was taken — the gradient's
        /// staleness is measured against this (§VI-B).
        updates_at_snapshot: u64,
    },
    Eval,
}

/// Serializable mirror of [`Ev`] for checkpoints. In-flight completion
/// events carry their full model snapshot: the gradient a resumed run
/// computes for them must come from the exact same weights the original
/// schedule assigned, or bit-identity is lost.
#[derive(Serialize, Deserialize)]
enum EvState {
    /// Mirror of [`Ev::Complete`].
    Complete {
        worker: usize,
        range: BatchRange,
        snapshot: Model,
        updates_at_snapshot: u64,
    },
    /// Mirror of [`Ev::Eval`].
    Eval,
}

impl EvState {
    fn capture(ev: &Ev) -> Self {
        match ev {
            Ev::Complete {
                worker,
                range,
                snapshot,
                updates_at_snapshot,
            } => EvState::Complete {
                worker: *worker,
                range: *range,
                snapshot: snapshot.clone(),
                updates_at_snapshot: *updates_at_snapshot,
            },
            Ev::Eval => EvState::Eval,
        }
    }

    fn restore(self) -> Ev {
        match self {
            EvState::Complete {
                worker,
                range,
                snapshot,
                updates_at_snapshot,
            } => Ev::Complete {
                worker,
                range,
                snapshot,
                updates_at_snapshot,
            },
            EvState::Eval => Ev::Eval,
        }
    }
}

/// One pending event at its scheduled virtual time. Stored in pop order;
/// re-scheduling in this order reproduces the queue's tie-breaking exactly
/// (see [`EventQueue::pending_in_order`]).
#[derive(Serialize, Deserialize)]
struct PendingEv {
    at: f64,
    ev: EvState,
}

/// Per-worker counters a resumed run must continue from (the watchdog's
/// per-layer step numbers and the fault plan's `death_after`/`poison_at`
/// sites key off `batches`).
#[derive(Serialize, Deserialize)]
struct SimWorkerCkpt {
    updates: f64,
    batches: u64,
    examples: u64,
    retired: Option<String>,
}

/// Everything a [`SimEngine`] run is, frozen at one virtual instant.
///
/// Deliberately exhaustive: model weights, the adaptive controller, the
/// batch-schedule cursor, the SVRG anchor pair, the loss curve so far,
/// eval cadence state, per-worker counters, watchdog tallies, and every
/// in-flight event (with its model snapshot). Restoring this state and
/// re-running the event loop continues the original run bit-identically —
/// the property `crates/ckpt/tests` locks in.
#[derive(Serialize, Deserialize)]
struct SimCkptState {
    schema: String,
    t: f64,
    model: Model,
    controller: AdaptiveController,
    scheduler: BatchScheduler,
    global_updates: u64,
    anchor: Option<(Model, Model)>,
    curve: Vec<LossPoint>,
    last_epoch_evaled: usize,
    last_eval_time: f64,
    workers: Vec<SimWorkerCkpt>,
    pending: Vec<PendingEv>,
    watchdog: WatchdogState,
}

/// Schema tag sanity-checked at restore so a checkpoint from a different
/// engine (or a future incompatible layout) is rejected instead of
/// half-applied.
const SIM_CKPT_SCHEMA: &str = "hetero-sim-ckpt/v1";

/// The discrete-event engine.
pub struct SimEngine {
    cfg: SimEngineConfig,
}

impl SimEngine {
    /// Build an engine; validates the configuration.
    pub fn new(cfg: SimEngineConfig) -> Result<Self, String> {
        cfg.train.validate()?;
        cfg.spec.validate()?;
        if cfg.train.algorithm.uses_gpu() && cfg.gpus.is_empty() {
            return Err("algorithm needs a GPU but none configured".into());
        }
        Ok(SimEngine { cfg })
    }

    /// Train on `dataset`, returning the full metrics record.
    pub fn run(&self, dataset: &DenseDataset) -> TrainResult {
        self.run_traced(dataset, &TraceSink::disabled())
    }

    /// [`SimEngine::run`] with structured tracing attached.
    ///
    /// Events are stamped with **virtual** simulation seconds: the engine
    /// publishes its clock to the sink at every event-loop step, and
    /// dispatch events carry their exact schedule time. The sink should be
    /// in the virtual domain ([`TraceSink::virtual_time`]); with a disabled
    /// sink this is exactly [`SimEngine::run`] — determinism is untouched
    /// because tracing never feeds back into the schedule.
    pub fn run_traced(&self, dataset: &DenseDataset, sink: &TraceSink) -> TrainResult {
        self.run_observed(dataset, sink, &MetricsHub::disabled())
    }

    /// [`SimEngine::run_traced`] with a metrics hub attached: per-worker
    /// batch-latency, transfer, and staleness histograms (virtual-time
    /// durations) plus the live dashboard gauges flow out while the run
    /// progresses. A disabled hub reduces this to exactly
    /// [`SimEngine::run_traced`]; the schedule and the math are untouched
    /// either way.
    pub fn run_observed(
        &self,
        dataset: &DenseDataset,
        sink: &TraceSink,
        hub: &MetricsHub,
    ) -> TrainResult {
        self.run_flight(dataset, sink, hub, &FlightRecorder::disabled())
    }

    /// [`SimEngine::run_observed`] with a black-box flight recorder
    /// attached.
    ///
    /// The recorder's watchdog scans every applied gradient for per-layer
    /// norms and NaN/±Inf, watches the loss curve for divergence/stall at
    /// every eval, and enforces its [`hetero_flight::HealthPolicy`] (warn /
    /// clamp the adaptive controller / abort-with-postmortem). Observation
    /// never feeds back into the virtual schedule, so an enabled recorder
    /// leaves the simulated timeline and the math bit-identical — only an
    /// explicit policy *action* (clamp, abort) changes the run, exactly as
    /// it would on the threaded engine. A disabled recorder reduces this
    /// to exactly [`SimEngine::run_observed`].
    pub fn run_flight(
        &self,
        dataset: &DenseDataset,
        sink: &TraceSink,
        hub: &MetricsHub,
        flight: &FlightRecorder,
    ) -> TrainResult {
        self.run_ckpt(dataset, sink, hub, flight, &Checkpointer::disabled())
    }

    /// [`SimEngine::run_flight`] with crash-consistent checkpointing
    /// attached.
    ///
    /// At the checkpointer's cadence (virtual seconds) the engine freezes
    /// its complete state — model, adaptive controller, schedule cursor,
    /// SVRG anchor, loss curve, per-worker counters, watchdog tallies, and
    /// every in-flight event with its model snapshot — and publishes it
    /// atomically (temp file + fsync + rename + CRC32 footer; see
    /// `hetero-ckpt`). A checkpointer configured with `resume: true` loads
    /// the newest valid generation before training and **continues the
    /// original run bit-identically**: the event queue's pending events
    /// are re-scheduled in pop order, so even same-instant ties break as
    /// they would have. Checkpoint observation never feeds back into the
    /// schedule; a disabled checkpointer reduces this to exactly
    /// [`SimEngine::run_flight`].
    pub fn run_ckpt(
        &self,
        dataset: &DenseDataset,
        sink: &TraceSink,
        hub: &MetricsHub,
        flight: &FlightRecorder,
        ckpt: &Checkpointer,
    ) -> TrainResult {
        // The retention window needs *some* sink; prefer the caller's, fall
        // back to the recorder's bounded ring.
        let flight_sink;
        let sink = if flight.enabled() && !sink.enabled() {
            flight_sink = flight.make_sink(hetero_trace::TimeDomain::Virtual);
            &flight_sink
        } else {
            sink
        };
        // Pin the GEMM fan-out to `train.rayon_threads` (0 = host cores)
        // for the whole run; the sim is single-coordinator, so the only
        // oversubscription possible is the pool itself exceeding the host.
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(self.cfg.train.rayon_threads)
            .build()
            .expect("sim gemm pool");
        let host = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        sink.counter("engine.pool_oversubscription")
            .add(pool.current_num_threads().saturating_sub(host) as u64);
        pool.install(|| self.run_traced_inner(dataset, sink, hub, flight, ckpt))
    }

    fn run_traced_inner(
        &self,
        dataset: &DenseDataset,
        sink: &TraceSink,
        hub: &MetricsHub,
        flight: &FlightRecorder,
        ckpt: &Checkpointer,
    ) -> TrainResult {
        let cfg = &self.cfg;
        let train = &cfg.train;
        let algo = train.algorithm;
        let spec = &cfg.spec;
        assert_eq!(
            dataset.features(),
            spec.input_dim,
            "dataset features != network input_dim"
        );

        // --- Devices & workers -------------------------------------------------
        let mut devices: Vec<Device> = Vec::new();
        if algo.uses_cpu() {
            devices.push(Device::Cpu(cfg.cpu.clone()));
        }
        if algo.uses_gpu() {
            for g in &cfg.gpus {
                devices.push(Device::Gpu(g.clone()));
            }
        }
        let mut stats: Vec<WorkerStats> =
            devices.iter().map(|d| WorkerStats::new(d.kind())).collect();
        let mut eval_timeline = UtilizationTimeline::new();
        let obs = SimObs::new(hub, devices.len());

        // Live dashboard gauges, mirroring the threaded engine's naming so
        // one dashboard renders either engine.
        struct WorkerGauges {
            updates: hetero_trace::GaugeHandle,
            batch: hetero_trace::GaugeHandle,
            examples: hetero_trace::GaugeHandle,
            busy_secs: hetero_trace::GaugeHandle,
        }
        let worker_gauges: Vec<WorkerGauges> = devices
            .iter()
            .enumerate()
            .map(|(w, d)| {
                sink.gauge(&format!("worker.{w}.kind")).set(match d.kind() {
                    WorkerKind::Cpu => 0.0,
                    WorkerKind::Gpu => 1.0,
                });
                WorkerGauges {
                    updates: sink.gauge(&format!("worker.{w}.updates")),
                    batch: sink.gauge(&format!("worker.{w}.batch")),
                    examples: sink.gauge(&format!("worker.{w}.examples")),
                    busy_secs: sink.gauge(&format!("worker.{w}.busy_secs")),
                }
            })
            .collect();
        let g_loss = sink.gauge("engine.loss");
        let g_epochs = sink.gauge("engine.epochs");

        // --- Batch-size controller ---------------------------------------------
        let example_bytes = 4 * spec.input_dim as u64;
        let param_bytes = spec.param_bytes();
        let mut controller =
            self.build_controller(&devices, dataset.len(), example_bytes, param_bytes);

        // --- Model, schedule, eval subset --------------------------------------
        let mut model = Model::new(spec.clone(), train.init, train.seed);
        let watchdog = flight.watchdog();
        watchdog.ensure_layers(model.layers().len());
        if flight.enabled() {
            flight.set_provenance(Provenance {
                engine: "sim".into(),
                algorithm: algo.label().to_string(),
                dataset: dataset.name.clone(),
                workers: devices.len(),
                config_json: serde_json::to_string(train).unwrap_or_default(),
                git_sha: hetero_flight::read_git_sha(),
                simd_level: format!("{:?}", hetero_tensor::simd::active_level()),
            });
        }
        // Watchdog scratch: per-layer sumsq / non-finite counts of each
        // applied gradient, reused across every event.
        let mut health_scan = MergeScan::for_model(&model);
        let mut scheduler = BatchScheduler::new(dataset.len(), train.max_epochs);
        let eval_rows = eval_subset(dataset.len(), train.eval_subsample, train.seed);
        let (eval_x, eval_labels) = gather_rows(dataset, &eval_rows);

        let mut queue: EventQueue<Ev> = EventQueue::new();
        let mut curve = Vec::new();
        let mut global_updates: u64 = 0;
        // Hybrid SVRG anchor: the latest GPU large-batch (model, gradient)
        // pair — the "compass" CPU updates correct against (§II).
        let mut anchor: Option<(Model, Model)> = None;
        // Reused gradient-lane buffers (see `SimScratch`): warmed during
        // the first events, allocation-free thereafter.
        let mut scratch = SimScratch::new(spec);
        let budget = train.time_budget;
        let timeline_rejects = sink.counter("engine.timeline_rejects");

        let record_eval = |t: f64,
                           epochs: f64,
                           model: &Model,
                           curve: &mut Vec<LossPoint>,
                           eval_tl: &mut UtilizationTimeline|
         -> f32 {
            let pass = hetero_nn::forward(model, &eval_x, true);
            let l = hetero_nn::loss(pass.probs(), eval_labels.as_targets(), model.spec().loss);
            let acc = hetero_nn::accuracy(pass.probs(), eval_labels.as_targets());
            curve.push(LossPoint {
                time: t,
                epochs,
                loss: l,
                accuracy: acc,
            });
            g_loss.set(l as f64);
            g_epochs.set(epochs);
            if sink.enabled() {
                sink.emit_at(t, COORDINATOR, EventKind::EvalPoint { loss: l as f64 });
            }
            // The paper runs the loss evaluation on the GPU at epoch end,
            // which shows up as a utilization spike (Figure 7). Account it
            // on a dedicated timeline to avoid perturbing worker schedules.
            if let Some(g) = self.cfg.gpus.first() {
                let fwd = model.spec().forward_flops_per_example();
                let dur = g.batch_time(fwd, eval_x.rows());
                let start = t.max(eval_tl.horizon());
                if eval_tl.try_record(start, start + dur, 1.0).is_err() {
                    timeline_rejects.add(1);
                }
            }
            l
        };

        let mut last_epoch_evaled = 0usize;
        let mut last_eval_time = 0.0f64;

        // --- Resume from the newest valid checkpoint ----------------------------
        // Replaces the freshly initialized state wholesale. The worker-count
        // guard rejects a checkpoint from a differently shaped run (the
        // schema tag already rejects other engines' checkpoints).
        let resume: Option<SimCkptState> = ckpt
            .resume_state::<SimCkptState>()
            .filter(|s| s.schema == SIM_CKPT_SCHEMA && s.workers.len() == devices.len());
        let resumed = resume.is_some();
        if let Some(s) = resume {
            model = s.model;
            controller = s.controller;
            scheduler = s.scheduler;
            global_updates = s.global_updates;
            anchor = s.anchor;
            curve = s.curve;
            last_epoch_evaled = s.last_epoch_evaled;
            last_eval_time = s.last_eval_time;
            for (stat, w) in stats.iter_mut().zip(&s.workers) {
                stat.updates = w.updates;
                stat.batches = w.batches;
                stat.examples = w.examples;
                stat.retired = w.retired.clone();
            }
            watchdog.restore_state(&s.watchdog);
            // Re-schedule the in-flight events in pop order: fresh monotone
            // sequence numbers preserve the original tie-breaking, so the
            // continuation is bit-identical to the uninterrupted run.
            for p in s.pending {
                queue.schedule_at(p.at, p.ev.restore());
            }
            ckpt.resume_mark(s.t);
            sink.counter("ckpt.resumes").add(1);
        } else {
            // Initial loss (identical across algorithms per §VII-A); it
            // seeds the watchdog's divergence/stall baseline (never reacts).
            let l0 = record_eval(0.0, 0.0, &model, &mut curve, &mut eval_timeline);
            watchdog.observe_eval(l0 as f64);
        }

        // Health reactions need the controller and scheduler, which the
        // event loop also borrows — macros keep everything lexical.
        macro_rules! health_event {
            ($t:expr, $action:expr, $detail:expr) => {
                if sink.enabled() {
                    sink.emit_at(
                        $t,
                        COORDINATOR,
                        EventKind::HealthEvent {
                            action: $action.to_string(),
                            detail: $detail,
                        },
                    );
                }
            };
        }
        macro_rules! freeze_batches {
            () => {{
                for w in 0..devices.len() {
                    controller.clamp_max_batch(w, controller.batch(w));
                }
                watchdog.note_clamp();
            }};
        }
        macro_rules! handle_health {
            ($loss:expr, $t:expr) => {{
                let loss: f64 = $loss;
                match watchdog.observe_eval(loss) {
                    HealthAction::Ignore => {}
                    HealthAction::Warn => {
                        health_event!($t, "warn", format!("eval health warning at loss {loss:.4}"));
                    }
                    HealthAction::Clamp => {
                        freeze_batches!();
                        health_event!(
                            $t,
                            "clamp",
                            format!("batch growth frozen at loss {loss:.4}")
                        );
                    }
                    // The trip flag is set; the event loop's next pop turns
                    // it into the abort.
                    HealthAction::Abort => {}
                }
                if watchdog.take_clamp_request() {
                    freeze_batches!();
                    health_event!(
                        $t,
                        "clamp",
                        "batch growth frozen on worker health report".to_string()
                    );
                }
                if flight.enabled() {
                    let stale = hub.summary(Metric::Staleness);
                    let h = watchdog.summary();
                    flight.record_snapshot(HealthSnapshot {
                        t: $t,
                        loss,
                        epochs: scheduler.epochs_elapsed(),
                        batches: (0..devices.len()).map(|w| controller.batch(w)).collect(),
                        // The sim's β̂ is the idealized 1.0, known only at
                        // the end of the run; snapshots leave it unset.
                        beta: None,
                        staleness_p50: stale.as_ref().map(|s| s.p50),
                        staleness_p99: stale.as_ref().map(|s| s.p99),
                        grad_peak_norm: h.peak_grad_norm,
                    });
                    if sink.enabled() {
                        for (l, n) in h.layer_peak_norms.iter().enumerate() {
                            sink.gauge(&format!("health.layer.{l}.grad_norm")).set(*n);
                        }
                        sink.gauge("health.nonfinite")
                            .set(h.nonfinite_events as f64);
                    }
                }
            }};
        }

        // --- Kick off every worker ---------------------------------------------
        // A resumed run's workers are already in flight (their completion
        // events came back with the checkpoint), so the kickoff is fresh
        // starts only.
        if !resumed {
            for (w, device) in devices.iter().enumerate() {
                self.assign(
                    w,
                    device,
                    &mut controller,
                    &mut scheduler,
                    &model,
                    &mut queue,
                    &mut stats,
                    budget,
                    global_updates,
                    sink,
                    &timeline_rejects,
                    &obs,
                );
            }
            queue.schedule_at(train.eval_interval.min(budget), Ev::Eval);
        }

        // Evaluations are throttled so that datasets small enough to finish
        // an epoch every few events do not flood the curve.
        let min_eval_spacing = train.eval_interval * 0.25;

        // Checkpoint observability: generation/bytes gauges plus the
        // write-latency histogram (all no-ops when sink/hub are disabled).
        let g_ckpt_gen = sink.gauge("ckpt.generation");
        let g_ckpt_bytes = sink.gauge("ckpt.bytes");
        let g_ckpt_age = sink.gauge("ckpt.age_secs");
        let ckpt_hist = hub.histogram(Metric::CkptWrite, GLOBAL_WORKER);

        // --- Event loop ---------------------------------------------------------
        loop {
            // Periodic crash-consistency checkpoint, captured *between*
            // events — the only instants at which the queue's pending set
            // plus the coordinator state is the complete run state. The
            // capture reads everything and mutates nothing, so the
            // schedule and the math are untouched whether or not a
            // checkpoint is written.
            if ckpt.due(queue.now()) {
                let state = SimCkptState {
                    schema: SIM_CKPT_SCHEMA.to_string(),
                    t: queue.now(),
                    model: model.clone(),
                    controller: controller.clone(),
                    scheduler: scheduler.clone(),
                    global_updates,
                    anchor: anchor.clone(),
                    curve: curve.clone(),
                    last_epoch_evaled,
                    last_eval_time,
                    workers: stats
                        .iter()
                        .map(|s| SimWorkerCkpt {
                            updates: s.updates,
                            batches: s.batches,
                            examples: s.examples,
                            retired: s.retired.clone(),
                        })
                        .collect(),
                    pending: queue
                        .pending_in_order()
                        .into_iter()
                        .map(|(at, ev)| PendingEv {
                            at,
                            ev: EvState::capture(ev),
                        })
                        .collect(),
                    watchdog: watchdog.export_state(),
                };
                if let Some(report) = ckpt.save(state.t, &state) {
                    g_ckpt_gen.set(report.generation as f64);
                    g_ckpt_bytes.set(report.bytes as f64);
                    ckpt_hist.record_secs(report.write_secs);
                    flight.set_resumable_from(report.path.display().to_string());
                }
            }
            let Some((t, ev)) = queue.pop() else { break };
            if t > budget {
                break;
            }
            // Health abort raised by a previous event's gradient scan or
            // eval observation stops the virtual run here.
            if let Some(reason) = watchdog.tripped() {
                sink.set_virtual_now(t);
                health_event!(t, "abort", reason);
                break;
            }
            // Publish the virtual clock so events emitted while handling
            // this step (merges, resizes, completions) are stamped at `t`.
            sink.set_virtual_now(t);
            match ev {
                Ev::Eval => {
                    let loss = record_eval(
                        t,
                        scheduler.epochs_elapsed(),
                        &model,
                        &mut curve,
                        &mut eval_timeline,
                    );
                    handle_health!(loss as f64, t);
                    last_eval_time = t;
                    if ckpt.enabled() {
                        g_ckpt_age.set(t - ckpt.last_saved_at().unwrap_or(0.0));
                    }
                    let next = t + train.eval_interval;
                    if next <= budget {
                        queue.schedule_at(next, Ev::Eval);
                    }
                }
                Ev::Complete {
                    worker,
                    range,
                    snapshot,
                    updates_at_snapshot,
                } => {
                    let staleness = global_updates.saturating_sub(updates_at_snapshot);
                    obs.stale[worker].record(staleness);
                    global_updates += self.apply_batch(
                        worker,
                        &devices[worker],
                        &range,
                        &snapshot,
                        dataset,
                        &mut model,
                        &mut controller,
                        &mut stats,
                        staleness,
                        &mut anchor,
                        &mut scratch,
                        sink,
                        &watchdog,
                        &mut health_scan,
                    );
                    // Epoch-boundary loss evaluation (paper: "loss
                    // computation is always performed on the GPU at the
                    // end of the epoch").
                    if range.epoch >= last_epoch_evaled
                        && scheduler.epoch() > range.epoch
                        && t - last_eval_time >= min_eval_spacing
                    {
                        last_epoch_evaled = range.epoch + 1;
                        last_eval_time = t;
                        let loss = record_eval(
                            t,
                            scheduler.epochs_elapsed(),
                            &model,
                            &mut curve,
                            &mut eval_timeline,
                        );
                        handle_health!(loss as f64, t);
                    }
                    if sink.enabled() {
                        let g = &worker_gauges[worker];
                        g.updates.set(stats[worker].updates);
                        g.batch.set(controller.batch(worker) as f64);
                        g.examples.set(stats[worker].examples as f64);
                        g.busy_secs.set(stats[worker].timeline.busy_time());
                    }
                    self.assign(
                        worker,
                        &devices[worker],
                        &mut controller,
                        &mut scheduler,
                        &model,
                        &mut queue,
                        &mut stats,
                        budget,
                        global_updates,
                        sink,
                        &timeline_rejects,
                        &obs,
                    );
                }
            }
        }

        // Final loss at the budget boundary.
        record_eval(
            budget,
            scheduler.epochs_elapsed(),
            &model,
            &mut curve,
            &mut eval_timeline,
        );

        for (w, s) in stats.iter_mut().enumerate() {
            s.final_batch = controller.batch(w);
            s.summarize_timeline();
        }
        // The sim applies every update serially on the virtual clock, so no
        // Hogwild write is ever lost: the measured serialization rate is
        // exactly 1 (the paper's idealized β).
        let measured_beta = train.measured_beta.then_some(1.0);
        if sink.enabled() {
            sink.set_virtual_now(budget);
            let examples: u64 = stats.iter().map(|s| s.examples).sum();
            sink.gauge("engine.examples_per_sec")
                .set(examples as f64 / budget.max(1e-9));
            sink.gauge("engine.beta").set(train.adaptive.beta);
            if let Some(beta) = measured_beta {
                sink.gauge("engine.beta_measured").set(beta);
            }
        }
        let aborted = watchdog
            .tripped()
            .map(|r| format!("health watchdog: {r}"))
            .or_else(|| {
                stats
                    .iter()
                    .all(|s| s.retired.is_some())
                    .then(|| "all workers retired by faults".to_string())
            });
        // Black-box dump on any abnormal end (see the threaded engine for
        // the full story); `capture` leaves the caller's trace intact.
        let mut health = watchdog.enabled().then(|| watchdog.summary());
        if flight.enabled() && (aborted.is_some() || stats.iter().any(|s| s.retired.is_some())) {
            let reason = aborted
                .clone()
                .unwrap_or_else(|| "worker retirement".to_string());
            let path = flight.dump(&reason, sink.capture(), hub);
            if let (Some(h), Some(p)) = (health.as_mut(), path) {
                h.postmortem = Some(p);
            }
        }
        let mut result = TrainResult {
            algorithm: algo.label().to_string(),
            dataset: dataset.name.clone(),
            loss_curve: curve,
            workers: stats,
            duration: budget,
            epochs: scheduler.epochs_elapsed(),
            trace_path: None,
            // The sim loses no in-flight work on an injected death (the
            // worker dies at assignment time), so nothing is re-queued.
            requeued_batches: 0,
            aborted,
            measured_beta,
            staleness: hub.summary(Metric::Staleness),
            health,
        };
        // The epoch-end loss evaluations run on the GPU (§VII-B) but must
        // not perturb the worker schedules, so they live on a dedicated
        // timeline appended as a zero-update pseudo-worker.
        let eval_summary = TimelineSummary::from_timeline(&eval_timeline);
        result.workers.push(WorkerStats {
            kind: WorkerKind::Gpu,
            updates: 0.0,
            batches: 0,
            examples: 0,
            final_batch: 0,
            retired: None,
            timeline: eval_timeline,
            timeline_summary: eval_summary,
        });
        result
    }

    /// Coordinator `ScheduleWork`: compute the batch size, extract a range,
    /// snapshot the model, and schedule the completion event.
    #[allow(clippy::too_many_arguments)]
    fn assign(
        &self,
        worker: usize,
        device: &Device,
        controller: &mut AdaptiveController,
        scheduler: &mut BatchScheduler,
        model: &Model,
        queue: &mut EventQueue<Ev>,
        stats: &mut [WorkerStats],
        budget: f64,
        global_updates: u64,
        sink: &TraceSink,
        timeline_rejects: &CounterHandle,
        obs: &SimObs,
    ) {
        if queue.now() >= budget {
            return;
        }
        if stats[worker].retired.is_some() {
            return;
        }
        // Injected death: the worker completed its allotted batches and
        // never asks for work again — the simulated analogue of the
        // threaded engine's quarantine (survivors keep the run alive).
        if let Some(k) = self.cfg.fault_plan.death_after(worker) {
            if stats[worker].batches >= k {
                let reason = format!("injected death after {k} batches");
                if sink.enabled() {
                    sink.emit(
                        worker as u32,
                        EventKind::WorkerFault {
                            reason: reason.clone(),
                        },
                    );
                    sink.emit(
                        worker as u32,
                        EventKind::WorkerRetired {
                            reason: reason.clone(),
                        },
                    );
                }
                sink.counter("engine.faults").add(1);
                stats[worker].retired = Some(reason);
                return;
            }
        }
        let size = controller.on_request_traced(worker, sink);
        let Some(range) = scheduler.next_batch(size) else {
            return; // epoch budget exhausted
        };
        if range.is_empty() {
            return;
        }
        let cost = self.batch_cost(device, range.len());
        let start = queue.now();
        // The virtual clock decides latency, so the histogram is filled at
        // assignment time with the modeled cost; GPU transfer components
        // use the same formulas as `batch_cost`.
        obs.lat[worker].record_secs(cost);
        if let Device::Gpu(g) = device {
            let batch_bytes = (4 * self.cfg.spec.input_dim * range.len()) as u64;
            let model_bytes = self.cfg.spec.param_bytes();
            obs.h2d[worker]
                .record_secs(g.transfer_time(batch_bytes) + g.transfer_time(model_bytes));
            obs.d2h[worker].record_secs(g.transfer_time(model_bytes));
        }
        if sink.enabled() {
            sink.emit_at(
                start,
                worker as u32,
                EventKind::BatchDispatched { batch: range.len() },
            );
        }
        if stats[worker]
            .timeline
            .try_record(
                start,
                start + cost,
                match device {
                    Device::Cpu(c) => c.busy_utilization(range.len()),
                    Device::Gpu(g) => g.busy_utilization(range.len()),
                },
            )
            .is_err()
        {
            timeline_rejects.add(1);
        }
        queue.schedule_after(
            cost,
            Ev::Complete {
                worker,
                range,
                snapshot: model.clone(),
                updates_at_snapshot: global_updates,
            },
        );
    }

    /// Virtual cost of one batch on a device, including the GPU deep-copy
    /// replica transfers and the TensorFlow comparator overheads.
    fn batch_cost(&self, device: &Device, batch: usize) -> f64 {
        let spec = &self.cfg.spec;
        let fpe = spec.train_flops_per_example();
        match device {
            Device::Cpu(c) => {
                let t = c.batch_time(fpe, batch);
                if self.cfg.train.algorithm == AlgorithmKind::HybridSvrg {
                    // SVRG correction doubles the CPU gradient work:
                    // ∇f_i(w) and ∇f_i(ŵ) per sub-batch.
                    2.0 * t
                } else {
                    t
                }
            }
            Device::Gpu(g) => {
                let batch_bytes = (4 * spec.input_dim * batch) as u64;
                // Deep-copy replica: model in (H2D) + model out (D2H), §VI-B.
                let model_bytes = spec.param_bytes();
                let mut t = g.batch_time(fpe, batch)
                    + g.transfer_time(batch_bytes)
                    + 2.0 * g.transfer_time(model_bytes);
                if self.cfg.train.algorithm == AlgorithmKind::TensorFlow {
                    // Op-granularity scheduling: ~8 primitives per layer
                    // per step, each paying a dispatch overhead.
                    let ops = 8.0 * spec.num_layers() as f64;
                    t += ops * self.cfg.tf_op_overhead;
                    if spec.loss == hetero_nn::LossKind::MultiLabelBce {
                        t *= self.cfg.tf_multilabel_penalty;
                    }
                }
                t
            }
        }
    }

    /// `ExecuteWork` completion: compute the gradient(s) on the snapshot
    /// and apply them to the live model. Returns the number of raw updates
    /// applied (for global staleness accounting).
    #[allow(clippy::too_many_arguments)]
    fn apply_batch(
        &self,
        worker: usize,
        device: &Device,
        range: &BatchRange,
        snapshot: &Model,
        dataset: &DenseDataset,
        model: &mut Model,
        controller: &mut AdaptiveController,
        stats: &mut [WorkerStats],
        staleness: u64,
        anchor: &mut Option<(Model, Model)>,
        scratch: &mut SimScratch,
        sink: &TraceSink,
        watchdog: &Watchdog,
        scan: &mut MergeScan,
    ) -> u64 {
        let train = &self.cfg.train;
        // Injected fault: one NaN into this worker's first applied gradient
        // at the planned step (0-based batch counter, like `death_after`).
        let mut poison_pending =
            self.cfg.fault_plan.poison_at(worker) == Some(stats[worker].batches);
        // §VI-B staleness compensation: discount the learning rate for
        // gradients computed on an old snapshot.
        let discount = 1.0 / (1.0 + train.staleness_discount * staleness as f32);
        match device {
            Device::Cpu(c) => {
                // Algorithm 2 CPU worker: split into t sub-batches, one
                // Hogwild update each, all computed on the snapshot
                // (maximum intra-batch staleness — the conservative model).
                let t = c.threads;
                let total = range.len();
                let sub = total.div_ceil(t);
                let sub_ranges: Vec<(usize, usize)> = (0..t)
                    .map(|i| {
                        let s = range.start + i * sub;
                        let e = (s + sub).min(range.end);
                        (s, e.max(s))
                    })
                    .filter(|(s, e)| e > s)
                    .collect();
                let svrg_anchor = if train.algorithm == AlgorithmKind::HybridSvrg {
                    anchor.as_ref()
                } else {
                    None
                };
                // Hogwild threads read the live model *during* their
                // sub-batch, so the effective staleness is far finer than
                // one whole coordinator batch. Model that by processing the
                // sub-batches in waves: each wave's gradients are computed
                // on the model as updated by the previous waves (the first
                // wave sees the batch snapshot), bounding the intra-batch
                // divergence by a wave rather than the full batch.
                const WAVE: usize = 8;
                let mut n_updates = 0usize;
                scratch.base.copy_from(snapshot);
                for wave in sub_ranges.chunks(WAVE) {
                    // Lanes are created during warm-up only; afterwards
                    // every buffer in them is reused (chunk size 1 gives
                    // lane i exclusive ownership of lanes[i]).
                    while scratch.lanes.len() < wave.len() {
                        scratch.lanes.push(SimLane::new(model.spec()));
                    }
                    let base = &scratch.base;
                    scratch.lanes[..wave.len()]
                        .par_chunks_mut(1)
                        .enumerate()
                        .for_each(|(i, lane)| {
                            let lane = &mut lane[0];
                            let (s, e) = wave[i];
                            dataset.batch_into(s, e, &mut lane.x, &mut lane.labels);
                            lane.ws.loss_and_gradient_into(
                                base,
                                &lane.x,
                                lane.labels.as_targets(),
                                false,
                            );
                            if let Some((anchor_model, mu)) = svrg_anchor {
                                // SVRG-corrected direction against the
                                // most recent GPU anchor:
                                // ∇f_i(w) − ∇f_i(ŵ) + μ̂.
                                lane.anchor_ws.loss_and_gradient_into(
                                    anchor_model,
                                    &lane.x,
                                    lane.labels.as_targets(),
                                    false,
                                );
                                lane.dir.copy_from(lane.ws.grad());
                                lane.dir.scaled_add(lane.anchor_ws.grad(), -1.0);
                                lane.dir.scaled_add(mu, 1.0);
                            }
                        });
                    n_updates += wave.len();
                    for (i, &(s, e)) in wave.iter().enumerate() {
                        let lane = &mut scratch.lanes[i];
                        let eta = train.lr_scaling.eta(train.lr, e - s) * discount;
                        let g: &mut Gradient = if svrg_anchor.is_some() {
                            &mut lane.dir
                        } else {
                            lane.ws.grad_mut()
                        };
                        if let Some(c) = train.grad_clip {
                            g.clip_to_norm(c);
                        }
                        if poison_pending {
                            poison_pending = false;
                            g.layers_mut()[0].b[0] = f32::NAN;
                        }
                        if watchdog.enabled() {
                            scan.reset();
                            scan_model(g, scan);
                            for (l, ls) in scan.layers().iter().enumerate() {
                                watchdog.observe_layer(
                                    worker as u32,
                                    l,
                                    stats[worker].batches,
                                    ls.sumsq,
                                    ls.nonfinite,
                                );
                            }
                        }
                        if train.weight_decay > 0.0 {
                            model.scale(1.0 - eta * train.weight_decay);
                        }
                        model.apply_gradient(g, eta);
                    }
                    scratch.base.copy_from(model);
                }
                if sink.enabled() {
                    sink.emit(
                        worker as u32,
                        EventKind::BatchCompleted {
                            batch: total,
                            updates: n_updates,
                        },
                    );
                }
                let credited = n_updates as f64 * train.adaptive.beta;
                controller.report_updates(worker, credited);
                stats[worker].updates += credited;
                stats[worker].batches += 1;
                stats[worker].examples += total as u64;
                n_updates as u64
            }
            Device::Gpu(_) => {
                let lane = &mut scratch.gpu;
                dataset.batch_into(range.start, range.end, &mut lane.x, &mut lane.labels);
                lane.ws
                    .loss_and_gradient_into(snapshot, &lane.x, lane.labels.as_targets(), true);
                if let Some(c) = train.grad_clip {
                    lane.ws.grad_mut().clip_to_norm(c);
                }
                if poison_pending {
                    lane.ws.grad_mut().layers_mut()[0].b[0] = f32::NAN;
                }
                if watchdog.enabled() {
                    scan.reset();
                    scan_model(lane.ws.grad(), scan);
                    for (l, ls) in scan.layers().iter().enumerate() {
                        watchdog.observe_layer(
                            worker as u32,
                            l,
                            stats[worker].batches,
                            ls.sumsq,
                            ls.nonfinite,
                        );
                    }
                }
                let eta = train.lr_scaling.eta(train.lr, range.len()) * discount;
                if train.weight_decay > 0.0 {
                    model.scale(1.0 - eta * train.weight_decay);
                }
                model.apply_gradient(lane.ws.grad(), eta);
                if train.algorithm == AlgorithmKind::HybridSvrg {
                    // The accurate large-batch gradient becomes the new
                    // variance-reduction anchor for CPU workers.
                    *anchor = Some((snapshot.clone(), lane.ws.grad().clone()));
                }
                if sink.enabled() {
                    // The simulated GPU merge is the staleness-discounted
                    // apply of the deep-copy replica's gradient (§VI-B).
                    sink.emit(
                        worker as u32,
                        EventKind::ModelMerge {
                            scale: discount as f64,
                        },
                    );
                    sink.emit(
                        worker as u32,
                        EventKind::BatchCompleted {
                            batch: range.len(),
                            updates: 1,
                        },
                    );
                }
                controller.report_updates(worker, 1.0);
                stats[worker].updates += 1.0;
                stats[worker].batches += 1;
                stats[worker].examples += range.len() as u64;
                1
            }
        }
    }

    /// Build the per-algorithm batch-size controller.
    fn build_controller(
        &self,
        devices: &[Device],
        n: usize,
        example_bytes: u64,
        param_bytes: u64,
    ) -> AdaptiveController {
        let train = &self.cfg.train;
        let p = &train.adaptive;
        let adapt = train.algorithm.is_adaptive();
        // Omnivore-style sizing (§II): pick the CPU batch so that, per the
        // *pre-execution estimate*, the CPU finishes a batch in the same
        // time the GPU takes for its configured batch. Computed once here
        // and frozen thereafter — exactly the criticism the paper levels.
        let proportional_cpu_batch = |c: &CpuModel| -> usize {
            let fpe = self.cfg.spec.train_flops_per_example();
            let t_gpu = self
                .cfg
                .gpus
                .first()
                .map(|g| g.batch_time(fpe, train.gpu_batch.min(n.max(1))))
                .unwrap_or(0.0);
            let mut b = c.threads.max(1);
            while b < n.max(1) && c.batch_time(fpe, b * 2) <= t_gpu {
                b *= 2;
            }
            b.min(n.max(1))
        };
        let states: Vec<WorkerBatchState> = devices
            .iter()
            .map(|d| match d {
                Device::Cpu(c) => {
                    if adapt {
                        // Paper: CPU starts at the lower threshold
                        // (1 example per thread = Hogwild).
                        let min_b = p.cpu_min_batch.max(c.threads).min(n.max(1));
                        let max_b = p.cpu_max_batch.max(min_b);
                        WorkerBatchState::new(min_b, min_b, max_b)
                    } else if train.algorithm == AlgorithmKind::StaticProportional {
                        let b = proportional_cpu_batch(c).max(1);
                        WorkerBatchState::new(b, b, b)
                    } else {
                        let b = (train.cpu_batch_per_thread * c.threads)
                            .min(n.max(1))
                            .max(1);
                        WorkerBatchState::new(b, b, b)
                    }
                }
                Device::Gpu(g) => {
                    // §VI-B: device memory bounds the batch size.
                    let mem_cap = g
                        .max_batch(
                            example_bytes + 8 * self.cfg.spec.hidden.iter().sum::<usize>() as u64,
                            param_bytes,
                        )
                        .max(1);
                    if adapt {
                        let max_b = p.gpu_max_batch.min(mem_cap).max(1);
                        let min_b = p.gpu_min_batch.min(max_b).max(1);
                        // Paper: GPU starts at the upper threshold.
                        WorkerBatchState::new(max_b, min_b, max_b)
                    } else {
                        let b = train.gpu_batch.min(mem_cap).max(1);
                        WorkerBatchState::new(b, b, b)
                    }
                }
            })
            .collect();
        AdaptiveController::new(p.alpha, adapt, states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AdaptiveParams, LrScaling};
    use hetero_data::SynthConfig;

    /// Small hardware so tests run fast: 4-thread CPU, toy GPU 100× faster.
    fn tiny_hardware() -> (CpuModel, GpuModel) {
        let cpu = CpuModel {
            name: "tiny-cpu".into(),
            threads: 4,
            hw_threads: 4,
            flops_small: 1e9,
            flops_large: 8e9,
            batch_half: 8.0,
            dispatch_overhead: 20e-6,
            memory: 1 << 30,
        };
        let gpu = GpuModel {
            name: "tiny-gpu".into(),
            peak_flops: 1e12,
            occupancy_half_batch: 64.0,
            launch_overhead: 20e-6,
            transfer_latency: 5e-6,
            transfer_bandwidth: 12e9,
            memory: 1 << 30,
        };
        (cpu, gpu)
    }

    fn tiny_config(algo: AlgorithmKind, budget: f64) -> SimEngineConfig {
        let (cpu, gpu) = tiny_hardware();
        let spec = MlpSpec::tiny(10, 2);
        let train = TrainConfig {
            init: hetero_nn::InitScheme::Xavier,
            algorithm: algo,
            lr: 0.05,
            lr_scaling: LrScaling::Sqrt {
                ref_batch: 1,
                max_lr: 0.5,
            },
            cpu_batch_per_thread: 1,
            gpu_batch: 256,
            adaptive: AdaptiveParams {
                alpha: 2.0,
                beta: 1.0,
                cpu_min_batch: 4,
                cpu_max_batch: 256,
                gpu_min_batch: 32,
                gpu_max_batch: 256,
            },
            time_budget: budget,
            max_epochs: None,
            grad_clip: None,
            weight_decay: 0.0,
            staleness_discount: 0.0,
            rayon_threads: 0,
            measured_beta: false,
            eval_interval: budget / 10.0,
            eval_subsample: 256,
            ckpt_interval: None,
            ckpt_retain: 2,
            seed: 7,
        };
        SimEngineConfig {
            spec,
            train,
            cpu,
            gpus: vec![gpu],
            tf_op_overhead: 20e-6,
            tf_multilabel_penalty: 3.0,
            fault_plan: FaultPlan::none(),
        }
    }

    fn tiny_dataset() -> DenseDataset {
        let mut cfg = SynthConfig::small(600, 10, 2, 3);
        cfg.separability = 3.0;
        let mut d = cfg.generate();
        d.standardize();
        d
    }

    #[test]
    fn deterministic_runs() {
        let data = tiny_dataset();
        let cfg = tiny_config(AlgorithmKind::AdaptiveHogbatch, 0.02);
        let r1 = SimEngine::new(cfg.clone()).unwrap().run(&data);
        let r2 = SimEngine::new(cfg).unwrap().run(&data);
        assert_eq!(r1.loss_curve.len(), r2.loss_curve.len());
        for (a, b) in r1.loss_curve.iter().zip(&r2.loss_curve) {
            assert_eq!(a.loss, b.loss);
            assert_eq!(a.time, b.time);
        }
        assert_eq!(r1.total_updates(), r2.total_updates());
    }

    #[test]
    fn checkpointed_run_is_untouched_and_resume_is_bit_identical() {
        use hetero_ckpt::CkptConfig;
        let data = tiny_dataset();
        let cfg = tiny_config(AlgorithmKind::AdaptiveHogbatch, 0.02);
        let dir = std::env::temp_dir().join(format!("hetero-sim-ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Reference: the uninterrupted run.
        let baseline = SimEngine::new(cfg.clone()).unwrap().run(&data);

        // Checkpointing on: the run itself must be bit-identical to the
        // baseline (observation never feeds back into the schedule).
        let writer = Checkpointer::new(CkptConfig {
            dir: dir.clone(),
            interval: 0.004,
            retain: 3,
            resume: false,
        })
        .unwrap();
        let checked = SimEngine::new(cfg.clone()).unwrap().run_ckpt(
            &data,
            &TraceSink::disabled(),
            &MetricsHub::disabled(),
            &FlightRecorder::disabled(),
            &writer,
        );
        assert_eq!(baseline.loss_curve, checked.loss_curve);
        assert!(writer.latest_path().is_some(), "no checkpoint written");

        // Resume from the newest mid-run generation: the continued curve
        // must equal the uninterrupted one bit-for-bit.
        let reader = Checkpointer::new(CkptConfig {
            dir: dir.clone(),
            interval: 0.004,
            retain: 3,
            resume: true,
        })
        .unwrap();
        let resumed = SimEngine::new(cfg).unwrap().run_ckpt(
            &data,
            &TraceSink::disabled(),
            &MetricsHub::disabled(),
            &FlightRecorder::disabled(),
            &reader,
        );
        assert_eq!(baseline.loss_curve, resumed.loss_curve);
        assert_eq!(baseline.epochs, resumed.epochs);
        // Worker counters continue, not restart.
        for (a, b) in baseline.workers.iter().zip(&resumed.workers) {
            assert_eq!(a.batches, b.batches);
            assert_eq!(a.examples, b.examples);
            assert_eq!(a.updates, b.updates);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_algorithm_reduces_loss() {
        let data = tiny_dataset();
        for algo in AlgorithmKind::all() {
            let budget = if algo == AlgorithmKind::HogwildCpu {
                0.1
            } else {
                0.05
            };
            let cfg = tiny_config(algo, budget);
            let r = SimEngine::new(cfg).unwrap().run(&data);
            assert!(
                r.final_loss() < r.initial_loss(),
                "{}: {} -> {}",
                algo.label(),
                r.initial_loss(),
                r.final_loss()
            );
            assert!(r.loss_curve.iter().all(|p| p.loss.is_finite()));
        }
    }

    #[test]
    fn gpu_only_algorithms_have_no_cpu_updates() {
        let data = tiny_dataset();
        let r = SimEngine::new(tiny_config(AlgorithmKind::MiniBatchGpu, 0.02))
            .unwrap()
            .run(&data);
        assert_eq!(r.cpu_update_fraction(), 0.0);
        assert!(r.total_updates() > 0.0);
    }

    #[test]
    fn cpu_only_algorithm_has_only_cpu_updates() {
        let data = tiny_dataset();
        let r = SimEngine::new(tiny_config(AlgorithmKind::HogwildCpu, 0.05))
            .unwrap()
            .run(&data);
        assert_eq!(r.cpu_update_fraction(), 1.0);
    }

    #[test]
    fn cpu_gpu_hogbatch_cpu_dominates_updates() {
        // Figure 8: with static small CPU / large GPU batches, CPU updates
        // dominate (many cheap sub-updates vs few big batches).
        let data = tiny_dataset();
        let r = SimEngine::new(tiny_config(AlgorithmKind::CpuGpuHogbatch, 0.05))
            .unwrap()
            .run(&data);
        assert!(
            r.cpu_update_fraction() > 0.5,
            "cpu fraction {}",
            r.cpu_update_fraction()
        );
    }

    #[test]
    fn adaptive_balances_updates_vs_static() {
        let data = tiny_dataset();
        let stat = SimEngine::new(tiny_config(AlgorithmKind::CpuGpuHogbatch, 0.05))
            .unwrap()
            .run(&data);
        let adap = SimEngine::new(tiny_config(AlgorithmKind::AdaptiveHogbatch, 0.05))
            .unwrap()
            .run(&data);
        // Adaptive moves the distribution toward uniform (Figure 8).
        let d_static = (stat.cpu_update_fraction() - 0.5).abs();
        let d_adaptive = (adap.cpu_update_fraction() - 0.5).abs();
        assert!(
            d_adaptive <= d_static + 0.05,
            "adaptive {} static {}",
            adap.cpu_update_fraction(),
            stat.cpu_update_fraction()
        );
    }

    #[test]
    fn adaptive_gpu_batch_shrinks_below_max() {
        // Figure 7: the adaptive GPU batch decreases toward the lower
        // threshold, reducing utilization.
        let data = tiny_dataset();
        let r = SimEngine::new(tiny_config(AlgorithmKind::AdaptiveHogbatch, 0.05))
            .unwrap()
            .run(&data);
        let gpu = r
            .workers
            .iter()
            .find(|w| w.kind == WorkerKind::Gpu && w.batches > 0)
            .expect("gpu worker");
        assert!(
            gpu.final_batch < 256,
            "gpu batch stayed at max ({})",
            gpu.final_batch
        );
    }

    #[test]
    fn tf_slower_than_plain_gpu_per_epoch() {
        let data = tiny_dataset();
        let gpu = SimEngine::new(tiny_config(AlgorithmKind::MiniBatchGpu, 0.02))
            .unwrap()
            .run(&data);
        let tf = SimEngine::new(tiny_config(AlgorithmKind::TensorFlow, 0.02))
            .unwrap()
            .run(&data);
        assert!(
            tf.epochs < gpu.epochs,
            "TF epochs {} !< GPU epochs {}",
            tf.epochs,
            gpu.epochs
        );
    }

    #[test]
    fn utilization_timelines_recorded() {
        let data = tiny_dataset();
        let r = SimEngine::new(tiny_config(AlgorithmKind::CpuGpuHogbatch, 0.02))
            .unwrap()
            .run(&data);
        for w in &r.workers {
            if w.batches > 0 {
                assert!(
                    w.timeline.busy_time() > 0.0,
                    "{:?} has empty timeline",
                    w.kind
                );
                // Busy time cannot exceed the run duration.
                assert!(w.timeline.horizon() <= r.duration * 1.5);
            }
        }
    }

    #[test]
    fn loss_curve_time_monotone() {
        let data = tiny_dataset();
        let r = SimEngine::new(tiny_config(AlgorithmKind::AdaptiveHogbatch, 0.03))
            .unwrap()
            .run(&data);
        for pair in r.loss_curve.windows(2) {
            assert!(pair[1].time >= pair[0].time);
            assert!(pair[1].epochs >= pair[0].epochs);
        }
        assert!(r.loss_curve.len() >= 3);
    }

    #[test]
    fn max_epochs_caps_training() {
        let data = tiny_dataset();
        let mut cfg = tiny_config(AlgorithmKind::MiniBatchGpu, 10.0);
        cfg.train.max_epochs = Some(2);
        let r = SimEngine::new(cfg).unwrap().run(&data);
        assert!(r.epochs <= 2.01, "epochs {}", r.epochs);
    }

    #[test]
    fn rejects_gpu_algorithm_without_gpu() {
        let mut cfg = tiny_config(AlgorithmKind::MiniBatchGpu, 1.0);
        cfg.gpus.clear();
        assert!(SimEngine::new(cfg).is_err());
    }

    #[test]
    fn static_proportional_solves_for_equal_batch_times() {
        // Omnivore-style sizing: the engine must pick the largest
        // power-of-two-scaled CPU batch whose estimated time still fits
        // within the GPU's batch time, frozen for the whole run.
        let data = tiny_dataset();
        let cfg = tiny_config(AlgorithmKind::StaticProportional, 0.05);
        // Replicate the solve with the same models.
        let fpe = cfg.spec.train_flops_per_example();
        let t_gpu = cfg.gpus[0].batch_time(fpe, cfg.train.gpu_batch.min(data.len()));
        let mut expected = cfg.cpu.threads;
        while expected < data.len() && cfg.cpu.batch_time(fpe, expected * 2) <= t_gpu {
            expected *= 2;
        }
        let r = SimEngine::new(cfg.clone()).unwrap().run(&data);
        assert!(r.final_loss() < r.initial_loss());
        let cpu = r
            .workers
            .iter()
            .find(|w| w.kind == WorkerKind::Cpu)
            .unwrap();
        let gpu = r
            .workers
            .iter()
            .find(|w| w.kind == WorkerKind::Gpu && w.batches > 0)
            .unwrap();
        assert!(cpu.batches > 0 && gpu.batches > 0);
        assert_eq!(
            cpu.final_batch,
            expected.min(data.len()),
            "proportional solve mismatch"
        );
        // Maximality: doubling the chosen batch would overshoot the GPU's
        // time (unless already capped by the dataset). The floor of one
        // example per thread may itself exceed t_gpu — that is allowed.
        if cpu.final_batch * 2 <= data.len() {
            assert!(
                cfg.cpu.batch_time(fpe, cpu.final_batch * 2) > t_gpu,
                "solve was not maximal"
            );
        }
    }

    #[test]
    fn staleness_discount_shrinks_stale_steps() {
        // With a huge κ every stale gradient is nearly nulled; training
        // still runs, stays finite, and makes less progress than κ = 0.
        let data = tiny_dataset();
        let base = SimEngine::new(tiny_config(AlgorithmKind::CpuGpuHogbatch, 0.05))
            .unwrap()
            .run(&data);
        let mut cfg = tiny_config(AlgorithmKind::CpuGpuHogbatch, 0.05);
        cfg.train.staleness_discount = 1000.0;
        let damped = SimEngine::new(cfg).unwrap().run(&data);
        assert!(damped.final_loss().is_finite());
        assert!(
            damped.final_loss() >= base.final_loss(),
            "huge staleness discount should not speed up convergence: {} vs {}",
            damped.final_loss(),
            base.final_loss()
        );
        // And it should visibly slow progress relative to no discount.
        assert!(
            damped.final_loss() > base.final_loss() * 1.01
                || damped.initial_loss() - damped.final_loss()
                    < (base.initial_loss() - base.final_loss()) * 0.9,
            "discount had no visible effect"
        );
    }

    #[test]
    fn hybrid_svrg_converges_and_uses_anchors() {
        let data = tiny_dataset();
        let r = SimEngine::new(tiny_config(AlgorithmKind::HybridSvrg, 0.05))
            .unwrap()
            .run(&data);
        assert!(
            r.final_loss() < r.initial_loss(),
            "{} -> {}",
            r.initial_loss(),
            r.final_loss()
        );
        // Both worker kinds participate (GPU provides anchors, CPU the
        // corrected walk).
        let frac = r.cpu_update_fraction();
        assert!(frac > 0.0 && frac < 1.0, "cpu fraction {frac}");
        assert!(r.loss_curve.iter().all(|p| p.loss.is_finite()));
    }

    #[test]
    fn hybrid_svrg_cpu_batches_cost_double() {
        // The SVRG correction doubles CPU gradient work; the virtual cost
        // model must reflect it.
        let cfg_plain = tiny_config(AlgorithmKind::CpuGpuHogbatch, 0.05);
        let cfg_svrg = tiny_config(AlgorithmKind::HybridSvrg, 0.05);
        let e_plain = SimEngine::new(cfg_plain).unwrap();
        let e_svrg = SimEngine::new(cfg_svrg).unwrap();
        let cpu = Device::Cpu(tiny_hardware().0);
        let t_plain = e_plain.batch_cost(&cpu, 64);
        let t_svrg = e_svrg.batch_cost(&cpu, 64);
        assert!((t_svrg - 2.0 * t_plain).abs() < 1e-12);
    }

    #[test]
    fn traced_sim_run_is_virtual_time_and_deterministic() {
        let data = tiny_dataset();
        let cfg = tiny_config(AlgorithmKind::AdaptiveHogbatch, 0.05);

        let sink = TraceSink::virtual_time(1 << 14);
        let traced = SimEngine::new(cfg.clone())
            .unwrap()
            .run_traced(&data, &sink);
        let plain = SimEngine::new(cfg.clone()).unwrap().run(&data);
        // Tracing must not feed back into the schedule or the math.
        assert_eq!(traced.loss_curve.len(), plain.loss_curve.len());
        for (a, b) in traced.loss_curve.iter().zip(&plain.loss_curve) {
            assert_eq!(a.loss, b.loss);
            assert_eq!(a.time, b.time);
        }

        let trace = sink.drain();
        assert_eq!(trace.domain, hetero_trace::TimeDomain::Virtual);
        let events = trace.events_sorted();
        assert!(!events.is_empty());
        // Virtual stamps live inside the budget (final eval lands on it).
        for e in &events {
            assert!(
                e.t >= 0.0 && e.t <= cfg.train.time_budget + 1e-9,
                "t={}",
                e.t
            );
        }
        let has = |f: &dyn Fn(&EventKind) -> bool| events.iter().any(|e| f(&e.kind));
        assert!(has(&|k| matches!(k, EventKind::BatchDispatched { .. })));
        assert!(has(&|k| matches!(k, EventKind::BatchCompleted { .. })));
        assert!(has(&|k| matches!(k, EventKind::ModelMerge { .. })));
        assert!(
            has(&|k| matches!(k, EventKind::BatchResized { .. })),
            "adaptive run resized no batch"
        );
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::EvalPoint { .. }) && e.worker == COORDINATOR));

        // Same run again: identical virtual event stream (determinism).
        let sink2 = TraceSink::virtual_time(1 << 14);
        let _ = SimEngine::new(cfg).unwrap().run_traced(&data, &sink2);
        let events2 = sink2.drain().events_sorted();
        assert_eq!(events.len(), events2.len());
        for (a, b) in events.iter().zip(&events2) {
            assert_eq!(a.t, b.t);
            assert_eq!(a.worker, b.worker);
            assert_eq!(a.kind, b.kind);
        }
    }

    #[test]
    fn observed_sim_run_fills_histograms_without_perturbing_the_schedule() {
        let data = tiny_dataset();
        let cfg = tiny_config(AlgorithmKind::AdaptiveHogbatch, 0.03);
        let hub = MetricsHub::new();
        let sink = TraceSink::virtual_time(1 << 14);
        let observed = SimEngine::new(cfg.clone())
            .unwrap()
            .run_observed(&data, &sink, &hub);
        let plain = SimEngine::new(cfg).unwrap().run(&data);
        // Observation must not feed back into the schedule or the math.
        assert_eq!(observed.loss_curve.len(), plain.loss_curve.len());
        for (a, b) in observed.loss_curve.iter().zip(&plain.loss_curve) {
            assert_eq!(a.loss, b.loss);
            assert_eq!(a.time, b.time);
        }
        let snap = hub.snapshot();
        // CPU (0) and GPU (1) both filled latency; GPU filled transfers.
        for w in [0u32, 1u32] {
            assert!(snap.series_for(Metric::BatchLatency, w).unwrap().count() > 0);
        }
        assert!(snap.series_for(Metric::H2d, 1).unwrap().count() > 0);
        assert!(snap.series_for(Metric::D2h, 1).unwrap().count() > 0);
        assert!(snap.merged(Metric::Staleness).unwrap().count() > 0);
        // Latency histograms hold the modeled virtual costs (sub-second ns
        // values, never zero).
        let lat = snap.merged(Metric::BatchLatency).unwrap();
        assert!(lat.max() > 0 && lat.max() < 1_000_000_000);
        assert!(observed.staleness.is_some());
        // The per-worker digests round-trip what the raw timelines say.
        for w in &observed.workers {
            if w.batches > 0 {
                assert!(w.timeline_summary.busy_secs > 0.0);
                assert_eq!(
                    w.timeline_summary.intervals,
                    w.timeline.segments().len() as u64
                );
            }
        }
    }

    #[test]
    fn sim_measured_beta_is_exactly_one() {
        // Serial virtual-clock application loses no update, so the
        // measured serialization rate is the idealized β = 1.
        let data = tiny_dataset();
        let mut cfg = tiny_config(AlgorithmKind::CpuGpuHogbatch, 0.02);
        cfg.train.measured_beta = true;
        let r = SimEngine::new(cfg).unwrap().run(&data);
        assert_eq!(r.measured_beta, Some(1.0));
    }

    #[test]
    fn injected_death_degrades_to_survivors() {
        let data = tiny_dataset();
        let mut cfg = tiny_config(AlgorithmKind::CpuGpuHogbatch, 0.05);
        // Kill the GPU worker (slot 1) after 3 batches.
        cfg.fault_plan = FaultPlan::none().die_after(1, 3);
        let sink = TraceSink::virtual_time(1 << 14);
        let r = SimEngine::new(cfg).unwrap().run_traced(&data, &sink);
        let gpu = &r.workers[1];
        assert_eq!(gpu.kind, WorkerKind::Gpu);
        assert!(gpu.retired.as_deref().unwrap().contains("injected death"));
        assert_eq!(gpu.batches, 3, "worker kept working after its death");
        // The CPU survivor kept training and the run still converged.
        assert!(r.workers[0].retired.is_none());
        assert!(r.workers[0].batches > 3);
        assert!(r.final_loss() < r.initial_loss());
        assert!(r.aborted.is_none());
        let trace = sink.drain();
        let events = trace.events_sorted();
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::WorkerFault { .. }) && e.worker == 1));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::WorkerRetired { .. }) && e.worker == 1));
        let counters: std::collections::HashMap<String, f64> =
            trace.counters.iter().cloned().collect();
        assert_eq!(counters.get("engine.faults"), Some(&1.0));
    }

    #[test]
    fn all_workers_dead_marks_run_aborted() {
        let data = tiny_dataset();
        let mut cfg = tiny_config(AlgorithmKind::CpuGpuHogbatch, 0.05);
        cfg.fault_plan = FaultPlan::none().die_after(0, 1).die_after(1, 1);
        let r = SimEngine::new(cfg).unwrap().run(&data);
        assert!(r.aborted.as_deref().unwrap().contains("all workers"));
        for w in &r.workers[..2] {
            assert!(w.retired.is_some());
            assert_eq!(w.batches, 1);
        }
    }

    #[test]
    fn fault_free_run_emits_no_fault_events() {
        let data = tiny_dataset();
        let cfg = tiny_config(AlgorithmKind::AdaptiveHogbatch, 0.03);
        let sink = TraceSink::virtual_time(1 << 14);
        let r = SimEngine::new(cfg).unwrap().run_traced(&data, &sink);
        assert!(r.aborted.is_none());
        assert_eq!(r.requeued_batches, 0);
        assert!(r.workers.iter().all(|w| w.retired.is_none()));
        assert!(!sink.drain().events_sorted().iter().any(|e| matches!(
            e.kind,
            EventKind::WorkerFault { .. }
                | EventKind::WorkerRetired { .. }
                | EventKind::BatchRequeued { .. }
        )));
    }

    #[test]
    fn multi_gpu_workers_supported() {
        // The paper's future work: scale to multi-GPU.
        let data = tiny_dataset();
        let mut cfg = tiny_config(AlgorithmKind::CpuGpuHogbatch, 0.02);
        let g = cfg.gpus[0].clone();
        cfg.gpus.push(g);
        let r = SimEngine::new(cfg).unwrap().run(&data);
        let gpu_workers = r
            .workers
            .iter()
            .filter(|w| w.kind == WorkerKind::Gpu && w.batches > 0)
            .count();
        assert_eq!(gpu_workers, 2);
        assert!(r.final_loss() < r.initial_loss());
    }
}
