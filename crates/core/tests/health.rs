//! End-to-end tests for the flight recorder + training-health watchdog:
//! fault paths must leave a renderable postmortem bundle, poisoned
//! gradients must abort naming the culprit, stalls must clamp the adaptive
//! controller, and the watchdog must never perturb the training math.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use hetero_core::{
    AdaptiveParams, AlgorithmKind, FaultPlan, LrScaling, SimEngine, SimEngineConfig,
    ThreadedEngine, ThreadedEngineConfig, TrainConfig,
};
use hetero_data::{DenseDataset, SynthConfig};
use hetero_flight::{render_report, FlightConfig, FlightRecorder, HealthPolicy, PostmortemBundle};
use hetero_metrics::MetricsHub;
use hetero_nn::MlpSpec;
use hetero_sim::GpuModel;
use hetero_trace::TraceSink;

/// Per-test watchdog thread (same rationale as `fault_tolerance.rs`).
fn with_timeout<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(v) => {
            let _ = handle.join();
            v
        }
        Err(_) => panic!("watchdog: test exceeded {secs}s — supervision deadlock?"),
    }
}

fn dataset() -> DenseDataset {
    let mut cfg = SynthConfig::small(400, 8, 2, 5);
    cfg.separability = 3.0;
    let mut d = cfg.generate();
    d.standardize();
    d
}

fn train(algo: AlgorithmKind, secs: f64) -> TrainConfig {
    TrainConfig {
        init: hetero_nn::InitScheme::Xavier,
        algorithm: algo,
        lr: 0.05,
        lr_scaling: LrScaling::Sqrt {
            ref_batch: 1,
            max_lr: 0.3,
        },
        cpu_batch_per_thread: 1,
        gpu_batch: 64,
        adaptive: AdaptiveParams {
            alpha: 2.0,
            beta: 1.0,
            cpu_min_batch: 4,
            cpu_max_batch: 64,
            gpu_min_batch: 16,
            gpu_max_batch: 64,
        },
        time_budget: secs,
        max_epochs: None,
        grad_clip: None,
        weight_decay: 0.0,
        staleness_discount: 0.0,
        rayon_threads: 0,
        measured_beta: false,
        eval_interval: secs / 8.0,
        eval_subsample: 200,
        ckpt_interval: None,
        ckpt_retain: 2,
        seed: 3,
    }
}

/// A recorder dumping into a unique temp dir; returns it with the dir so
/// tests can clean up after themselves.
fn recorder(tag: &str, policy: HealthPolicy) -> (FlightRecorder, PathBuf) {
    let dir = std::env::temp_dir().join(format!("hetero-health-{tag}-{}", std::process::id()));
    let flight = FlightRecorder::new(FlightConfig {
        policy,
        dir: dir.clone(),
        ..FlightConfig::default()
    });
    (flight, dir)
}

fn read_bundle(r: &hetero_core::TrainResult) -> (PostmortemBundle, String) {
    let health = r.health.as_ref().expect("flight run records health");
    let path = health
        .postmortem
        .as_ref()
        .expect("abnormal end dumps a bundle");
    let json = std::fs::read_to_string(path).expect("bundle file exists");
    let bundle = PostmortemBundle::from_json(&json).expect("bundle parses");
    (bundle, path.clone())
}

/// A worker killed mid-run (the black-box acceptance path): the run ends
/// with a postmortem bundle on disk that parses and renders.
#[test]
fn threaded_worker_death_dumps_renderable_bundle() {
    let (flight, dir) = recorder("die", HealthPolicy::default());
    let f2 = flight.clone();
    let r = with_timeout(60, move || {
        ThreadedEngine::new(ThreadedEngineConfig {
            spec: MlpSpec::tiny(8, 2),
            train: train(AlgorithmKind::CpuGpuHogbatch, 0.4),
            cpu_threads: 2,
            gpu_perf: GpuModel::v100(),
            gpu_workers: 1,
            fault_plan: FaultPlan::none().die_after(1, 2),
        })
        .unwrap()
        .run_flight(
            Arc::new(dataset()),
            &TraceSink::disabled(),
            &MetricsHub::new(),
            &f2,
        )
    });
    let (bundle, path) = read_bundle(&r);
    assert!(bundle.reason.contains("retirement"), "{}", bundle.reason);
    let prov = bundle.provenance.as_ref().expect("provenance recorded");
    assert_eq!(prov.engine, "threaded");
    assert!(prov.workers >= 2);
    assert!(
        !bundle.trace.events_sorted().is_empty(),
        "no retained events"
    );
    // The human-readable rendering (what `hetero-postmortem` prints).
    let report = render_report(&bundle);
    assert!(report.contains(&bundle.reason));
    assert!(report.contains(&prov.algorithm));
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_dir(&dir);
}

/// A poisoned gradient aborts the run via the default policy, and both the
/// result and the bundle name the poisoned worker, layer, and step.
#[test]
fn poisoned_gradient_aborts_naming_layer_and_step() {
    let (flight, dir) = recorder("poison", HealthPolicy::default());
    let f2 = flight.clone();
    let r = with_timeout(60, move || {
        let mut cfg = SimEngineConfig::paper_hardware(
            MlpSpec::tiny(8, 2),
            train(AlgorithmKind::AdaptiveHogbatch, 2.0),
        );
        cfg.fault_plan = FaultPlan::none().poison_gradient_at(0, 3);
        cfg.train.time_budget = 0.05;
        cfg.train.eval_interval = 0.01;
        SimEngine::new(cfg).unwrap().run_flight(
            &dataset(),
            &TraceSink::disabled(),
            &MetricsHub::new(),
            &f2,
        )
    });
    let aborted = r.aborted.as_deref().expect("poison must abort the run");
    assert!(aborted.contains("health watchdog"), "{aborted}");
    let health = r.health.as_ref().unwrap();
    assert!(health.nonfinite_events >= 1);
    let first = health.first_nonfinite.expect("first poison recorded");
    assert_eq!((first.worker, first.layer, first.step), (0, 0, 3));
    let tripped = health.tripped.as_deref().unwrap();
    assert!(
        tripped.contains("layer 0") && tripped.contains("step 3"),
        "trip reason must name the culprit: {tripped}"
    );
    let (bundle, path) = read_bundle(&r);
    assert!(bundle.reason.contains("layer 0"), "{}", bundle.reason);
    assert!(render_report(&bundle).contains("non-finite"));
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_dir(&dir);
}

/// A stalled run (learning rate too small to ever improve) triggers the
/// Clamp action: batch growth freezes, the run completes un-aborted, and
/// the health summary records the stall + clamp.
#[test]
fn stall_clamps_adaptive_controller_without_aborting() {
    let policy = HealthPolicy {
        stall_evals: 2,
        ..HealthPolicy::default()
    };
    let (flight, dir) = recorder("stall", policy);
    let f2 = flight.clone();
    let r = with_timeout(60, move || {
        let mut cfg = train(AlgorithmKind::AdaptiveHogbatch, 0.08);
        cfg.eval_interval = 0.01; // 8 evals: plenty past stall_evals = 2
        cfg.lr = 1e-12; // validates (> 0) but cannot move the loss
        SimEngine::new(SimEngineConfig::paper_hardware(MlpSpec::tiny(8, 2), cfg))
            .unwrap()
            .run_flight(&dataset(), &TraceSink::disabled(), &MetricsHub::new(), &f2)
    });
    assert!(
        r.aborted.is_none(),
        "stall must clamp, not abort: {:?}",
        r.aborted
    );
    let health = r.health.as_ref().unwrap();
    assert!(health.stalled, "stall not detected: {health:?}");
    assert!(health.clamps >= 1, "controller never clamped: {health:?}");
    assert!(health.tripped.is_none());
    // Healthy completion (no fault, no abort) leaves no bundle behind.
    assert!(health.postmortem.is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The watchdog observes training, it must never steer it: a healthy sim
/// run produces a bit-identical loss curve with the watchdog on and off.
#[test]
fn watchdog_does_not_perturb_training() {
    let cfg = || {
        let mut t = train(AlgorithmKind::AdaptiveHogbatch, 0.05);
        t.eval_interval = 0.01;
        SimEngineConfig::paper_hardware(MlpSpec::tiny(8, 2), t)
    };
    let plain = with_timeout(60, move || SimEngine::new(cfg()).unwrap().run(&dataset()));
    let (flight, dir) = recorder("noop", HealthPolicy::default());
    let f2 = flight.clone();
    let cfg = || {
        let mut t = train(AlgorithmKind::AdaptiveHogbatch, 0.05);
        t.eval_interval = 0.01;
        SimEngineConfig::paper_hardware(MlpSpec::tiny(8, 2), t)
    };
    let watched = with_timeout(60, move || {
        SimEngine::new(cfg()).unwrap().run_flight(
            &dataset(),
            &TraceSink::disabled(),
            &MetricsHub::new(),
            &f2,
        )
    });
    assert_eq!(plain.loss_curve.len(), watched.loss_curve.len());
    for (a, b) in plain.loss_curve.iter().zip(&watched.loss_curve) {
        assert_eq!(a.time, b.time, "eval timeline drifted");
        assert_eq!(a.loss, b.loss, "watchdog changed the training math");
    }
    assert_eq!(plain.epochs, watched.epochs);
    let health = watched.health.as_ref().unwrap();
    assert_eq!(health.nonfinite_events, 0);
    assert!(health.peak_grad_norm > 0.0, "merge scan never ran");
    let _ = std::fs::remove_dir_all(&dir);
}
