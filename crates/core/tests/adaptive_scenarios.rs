//! Closed-loop scenario tests for the Adaptive Hogbatch controller
//! (Algorithm 2) under modeled worker dynamics.

use hetero_core::adaptive::{AdaptiveController, WorkerBatchState};

/// A modeled worker: processes `throughput` examples per tick and credits
/// `updates_per_batch(batch)` updates per completed batch.
struct ModelWorker {
    throughput: f64,
    backlog: f64,
    batch: usize,
    updates_per_batch: fn(usize) -> f64,
}

impl ModelWorker {
    fn tick(&mut self, controller: &mut AdaptiveController, id: usize) {
        self.backlog += self.throughput;
        while self.backlog >= self.batch as f64 {
            self.backlog -= self.batch as f64;
            controller.report_updates(id, (self.updates_per_batch)(self.batch));
            self.batch = controller.on_request(id);
        }
    }
}

fn cpu_updates(batch: usize) -> f64 {
    // 56 Hogwild lanes regardless of batch size.
    (batch.min(56)) as f64
}

fn gpu_updates(_batch: usize) -> f64 {
    1.0
}

#[test]
fn controller_converges_to_steady_batches() {
    // CPU 400 ex/tick, GPU 40k ex/tick (100× faster device).
    let mut controller = AdaptiveController::new(
        2.0,
        true,
        vec![
            WorkerBatchState::new(56, 56, 3584),
            WorkerBatchState::new(8192, 512, 8192),
        ],
    );
    let mut cpu = ModelWorker {
        throughput: 400.0,
        backlog: 0.0,
        batch: 56,
        updates_per_batch: cpu_updates,
    };
    let mut gpu = ModelWorker {
        throughput: 40_000.0,
        backlog: 0.0,
        batch: 8192,
        updates_per_batch: gpu_updates,
    };
    let mut batch_history = Vec::new();
    for _ in 0..500 {
        cpu.tick(&mut controller, 0);
        gpu.tick(&mut controller, 1);
        batch_history.push((controller.batch(0), controller.batch(1)));
    }
    // Steady state: the last 100 ticks should not oscillate wildly — the
    // batch sizes visit at most 3 distinct values per worker (α = 2 ladder
    // neighbors).
    let tail = &batch_history[400..];
    let mut cpu_vals: Vec<usize> = tail.iter().map(|&(c, _)| c).collect();
    let mut gpu_vals: Vec<usize> = tail.iter().map(|&(_, g)| g).collect();
    cpu_vals.sort_unstable();
    cpu_vals.dedup();
    gpu_vals.sort_unstable();
    gpu_vals.dedup();
    assert!(
        cpu_vals.len() <= 3,
        "CPU batch oscillates over {cpu_vals:?}"
    );
    assert!(
        gpu_vals.len() <= 3,
        "GPU batch oscillates over {gpu_vals:?}"
    );
    // The CPU (many updates per batch) must have been slowed down relative
    // to its starting point, and the GPU must have been sped up at some
    // point (the α = 2 ladder may oscillate across the top rung, so check
    // the history, not the final instant).
    assert!(controller.batch(0) > 56, "CPU batch never grew");
    assert!(
        batch_history.iter().any(|&(_, g)| g < 8192),
        "GPU batch never shrank at any point"
    );
}

#[test]
fn update_gap_stays_bounded_relative_to_unadapted() {
    let run = |adapt: bool| -> f64 {
        let mut controller = AdaptiveController::new(
            2.0,
            adapt,
            vec![
                WorkerBatchState::new(56, 56, 3584),
                WorkerBatchState::new(8192, 512, 8192),
            ],
        );
        let mut cpu = ModelWorker {
            throughput: 200.0,
            backlog: 0.0,
            batch: 56,
            updates_per_batch: cpu_updates,
        };
        let mut gpu = ModelWorker {
            throughput: 50_000.0,
            backlog: 0.0,
            batch: 8192,
            updates_per_batch: gpu_updates,
        };
        for _ in 0..300 {
            cpu.tick(&mut controller, 0);
            gpu.tick(&mut controller, 1);
        }
        controller.update_gap()
    };
    let gap_static = run(false);
    let gap_adaptive = run(true);
    assert!(
        gap_adaptive <= gap_static,
        "adaptation failed to reduce the update gap: {gap_adaptive} vs {gap_static}"
    );
}

#[test]
fn slow_worker_recovers_after_transient_stall() {
    // Two GPU-like workers (1 update/batch). Worker 0 stalls for a while —
    // the controller must shrink its batch (speed it up) so it catches
    // back up once it resumes.
    let mut controller = AdaptiveController::new(
        2.0,
        true,
        vec![
            WorkerBatchState::new(2048, 512, 8192),
            WorkerBatchState::new(2048, 512, 8192),
        ],
    );
    let mut a = ModelWorker {
        throughput: 2000.0,
        backlog: 0.0,
        batch: 2048,
        updates_per_batch: gpu_updates,
    };
    let mut b = ModelWorker {
        throughput: 2000.0,
        backlog: 0.0,
        batch: 2048,
        updates_per_batch: gpu_updates,
    };
    // Warm-up.
    for _ in 0..50 {
        a.tick(&mut controller, 0);
        b.tick(&mut controller, 1);
    }
    // Stall: only worker 1 makes progress.
    for _ in 0..100 {
        b.tick(&mut controller, 1);
    }
    let gap_after_stall = controller.update_gap();
    assert!(gap_after_stall > 0.0);
    // The controller sees worker 0 behind: every request while behind
    // halves its batch, monotonically toward the floor.
    let pre_stall = controller.batch(0);
    let r1 = controller.on_request(0);
    let r2 = controller.on_request(0);
    let r3 = controller.on_request(0);
    assert!(
        r1 <= pre_stall && r2 <= r1 && r3 <= r2,
        "{pre_stall} {r1} {r2} {r3}"
    );
    assert!(r3 < pre_stall.max(513), "no shrink toward the floor: {r3}");
    let batch_after_stall = r3;
    // Recovery: the smaller batch lets worker 0 close the gap.
    a.batch = batch_after_stall;
    for _ in 0..300 {
        a.tick(&mut controller, 0);
        b.tick(&mut controller, 1);
    }
    assert!(
        controller.update_gap() < gap_after_stall,
        "gap did not shrink after recovery: {} vs {gap_after_stall}",
        controller.update_gap()
    );
}
