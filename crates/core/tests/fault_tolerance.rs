//! Supervision tests: deterministic fault injection ([`FaultPlan`]) against
//! the real-thread engine. Every test runs under a watchdog so a
//! supervision deadlock fails fast instead of hanging the suite.

use std::sync::Arc;
use std::time::Duration;

use hetero_core::{
    AdaptiveParams, AlgorithmKind, FaultPlan, LrScaling, ThreadedEngine, ThreadedEngineConfig,
    TrainConfig, TrainResult, WorkerKind,
};
use hetero_data::{DenseDataset, SynthConfig};
use hetero_nn::MlpSpec;
use hetero_sim::GpuModel;
use hetero_trace::{EventKind, TraceSink};

/// Per-test watchdog: run `f` on its own thread and panic if it has not
/// finished within `secs`. A hung coordinator (the exact bug class this
/// suite guards against) then fails the test instead of stalling CI.
fn with_timeout<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(v) => {
            let _ = handle.join();
            v
        }
        Err(_) => panic!("watchdog: test exceeded {secs}s — supervision deadlock?"),
    }
}

fn dataset() -> Arc<DenseDataset> {
    let mut cfg = SynthConfig::small(400, 8, 2, 5);
    cfg.separability = 3.0;
    let mut d = cfg.generate();
    d.standardize();
    Arc::new(d)
}

fn config(algo: AlgorithmKind, secs: f64, plan: FaultPlan) -> ThreadedEngineConfig {
    ThreadedEngineConfig {
        spec: MlpSpec::tiny(8, 2),
        train: TrainConfig {
            init: hetero_nn::InitScheme::Xavier,
            algorithm: algo,
            lr: 0.05,
            lr_scaling: LrScaling::Sqrt {
                ref_batch: 1,
                max_lr: 0.3,
            },
            cpu_batch_per_thread: 1,
            gpu_batch: 64,
            adaptive: AdaptiveParams {
                alpha: 2.0,
                beta: 1.0,
                cpu_min_batch: 4,
                cpu_max_batch: 64,
                gpu_min_batch: 16,
                gpu_max_batch: 64,
            },
            time_budget: secs,
            max_epochs: None,
            grad_clip: None,
            weight_decay: 0.0,
            staleness_discount: 0.0,
            rayon_threads: 0,
            measured_beta: false,
            eval_interval: secs / 4.0,
            eval_subsample: 200,
            ckpt_interval: None,
            ckpt_retain: 2,
            seed: 3,
        },
        cpu_threads: 2,
        gpu_perf: GpuModel::v100(),
        gpu_workers: 1,
        fault_plan: plan,
    }
}

fn gpu_stats(r: &TrainResult) -> &hetero_core::WorkerStats {
    r.workers
        .iter()
        .find(|w| w.kind == WorkerKind::Gpu)
        .expect("a GPU worker slot")
}

/// (a) A device OOM mid-step triggers the bounded batch-halving retry: the
/// run completes, the unprocessed tail is re-queued, and the controller's
/// ceiling is clamped so the OOMed size is never requested again.
#[test]
fn oom_retry_halves_batch_and_clamps_controller() {
    // MlpSpec::tiny has 3 layers → upload takes 12 allocations (weights,
    // biases, grad_w, grad_b per layer); attempt 14 lands inside the first
    // training step, after the batch transfer.
    let plan = FaultPlan::none().oom_on_alloc(1, 14);
    let sink = TraceSink::wall(8192);
    let r = with_timeout(60, move || {
        ThreadedEngine::new(config(AlgorithmKind::CpuGpuHogbatch, 0.4, plan))
            .unwrap()
            .run_traced(dataset(), &sink)
    });
    // The OOM is transient and recoverable: nobody gets retired.
    assert!(r.aborted.is_none());
    assert!(r.workers.iter().all(|w| w.retired.is_none()));
    // The halved prefix left a tail that was re-queued.
    assert!(r.requeued_batches >= 1, "no requeue recorded");
    // The controller ceiling is clamped to the size that fit (64 → ≤32).
    let gpu = gpu_stats(&r);
    assert!(
        gpu.final_batch <= 32,
        "controller still grants OOMed sizes: final batch {}",
        gpu.final_batch
    );
    assert!(gpu.batches > 0, "GPU worker stopped contributing");
    assert!(r.final_loss() < r.initial_loss(), "{:?}", r.loss_curve);
}

/// The trace of an OOM-retry run records the re-queue but no worker fault:
/// the fault was absorbed, not escalated.
#[test]
fn oom_retry_traces_requeue_without_fault() {
    let plan = FaultPlan::none().oom_on_alloc(1, 14);
    let sink = TraceSink::wall(8192);
    let trace = with_timeout(60, move || {
        ThreadedEngine::new(config(AlgorithmKind::CpuGpuHogbatch, 0.3, plan))
            .unwrap()
            .run_traced(dataset(), &sink);
        sink.drain()
    });
    let events = trace.events_sorted();
    let requeues = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::BatchRequeued { .. }))
        .count();
    let faults = events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::WorkerFault { .. } | EventKind::WorkerRetired { .. }
            )
        })
        .count();
    assert!(requeues >= 1, "OOM tail not traced as a requeue");
    assert_eq!(faults, 0, "recoverable OOM must not retire the worker");
}

/// (b) A worker dying mid-run (injected panic) is quarantined; training
/// degrades gracefully to the survivors and still makes progress.
#[test]
fn mid_run_worker_death_degrades_to_survivors() {
    let plan = FaultPlan::none().die_after(1, 2);
    let r = with_timeout(60, move || {
        ThreadedEngine::new(config(AlgorithmKind::CpuGpuHogbatch, 0.5, plan))
            .unwrap()
            .run(dataset())
    });
    let gpu = gpu_stats(&r);
    assert_eq!(gpu.batches, 2, "death injected after exactly 2 batches");
    let reason = gpu.retired.as_deref().expect("GPU worker retired");
    assert!(reason.contains("injected fault"), "reason: {reason}");
    // The batch in flight at death went back to the queue.
    assert!(r.requeued_batches >= 1);
    // Survivors kept training.
    assert!(r.aborted.is_none());
    let cpu = r
        .workers
        .iter()
        .find(|w| w.kind == WorkerKind::Cpu)
        .unwrap();
    assert!(cpu.retired.is_none());
    assert!(cpu.batches > gpu.batches, "survivor barely worked");
    assert!(r.final_loss() < r.initial_loss(), "{:?}", r.loss_curve);
}

/// (c) Every worker dead → the run returns promptly with
/// [`TrainResult::aborted`] set instead of hanging or panicking.
#[test]
fn all_workers_dead_aborts_instead_of_hanging() {
    let plan = FaultPlan::none().die_after(0, 1);
    let r = with_timeout(30, move || {
        // MiniBatchGpu: the lone GPU worker is the whole fleet.
        ThreadedEngine::new(config(AlgorithmKind::MiniBatchGpu, 5.0, plan))
            .unwrap()
            .run(dataset())
    });
    let reason = r.aborted.as_deref().expect("run should abort");
    assert!(reason.contains("all workers"), "reason: {reason}");
    assert!(r.workers.iter().all(|w| w.retired.is_some()));
    // It aborted long before the 5s budget.
    assert!(r.duration < 4.0, "hung for {}s", r.duration);
}

/// (c′) A model that cannot even be uploaded is an unrecoverable fault:
/// there is no batch to shrink, so the worker retires with an OOM reason.
#[test]
fn upload_oom_retires_worker_with_reason() {
    let plan = FaultPlan::none().oom_on_upload(0);
    let r = with_timeout(30, move || {
        ThreadedEngine::new(config(AlgorithmKind::MiniBatchGpu, 5.0, plan))
            .unwrap()
            .run(dataset())
    });
    let reason = r.aborted.as_deref().expect("lone worker dead → aborted");
    assert!(reason.contains("all workers"), "reason: {reason}");
    let gpu = gpu_stats(&r);
    let retired = gpu.retired.as_deref().unwrap();
    assert!(
        retired.contains("upload") && retired.contains("OOM"),
        "reason should name the upload OOM: {retired}"
    );
    assert_eq!(gpu.batches, 0);
}

/// (d) Re-queued ranges are not double-counted: the scheduler counts each
/// example once when first handed out, so the examples the workers actually
/// processed can never exceed epochs × dataset size, fault or no fault.
#[test]
fn requeued_ranges_not_double_counted_in_epoch_accounting() {
    let plan = FaultPlan::none().die_after(1, 1);
    let mut cfg = config(AlgorithmKind::CpuGpuHogbatch, 5.0, plan);
    cfg.train.max_epochs = Some(2);
    let n = 400u64; // dataset() size
    let r = with_timeout(60, move || ThreadedEngine::new(cfg).unwrap().run(dataset()));
    assert!(r.requeued_batches >= 1, "death left no in-flight work");
    let processed: u64 = r.workers.iter().map(|w| w.examples).sum();
    assert!(
        processed <= 2 * n,
        "double-counted requeues: {processed} examples processed for {} epochs of {n}",
        r.epochs
    );
    assert!(r.epochs <= 2.0 + 1e-9, "epoch count inflated: {}", r.epochs);
    // The bound is meaningful: the survivor really did chew through data.
    assert!(processed > 0);
}

/// A fault plan aimed at nonexistent worker slots is inert: the run
/// behaves exactly like a fault-free one.
#[test]
fn fault_plan_for_absent_worker_is_inert() {
    let plan = FaultPlan::none().die_after(7, 0).oom_on_alloc(9, 0);
    let r = with_timeout(60, move || {
        ThreadedEngine::new(config(AlgorithmKind::CpuGpuHogbatch, 0.3, plan))
            .unwrap()
            .run(dataset())
    });
    assert!(r.aborted.is_none());
    assert_eq!(r.requeued_batches, 0);
    assert!(r.workers.iter().all(|w| w.retired.is_none()));
    assert!(r.final_loss() < r.initial_loss());
}
