//! Engine-level invariant tests exercising the hetero-core public API
//! across algorithms and seeds.

use hetero_core::{
    AdaptiveParams, AlgorithmKind, FaultPlan, LrScaling, SimEngine, SimEngineConfig, TrainConfig,
    WorkerKind,
};
use hetero_data::SynthConfig;
use hetero_nn::MlpSpec;
use hetero_sim::{CpuModel, GpuModel};

fn hardware() -> (CpuModel, GpuModel) {
    (
        CpuModel {
            name: "inv-cpu".into(),
            threads: 4,
            hw_threads: 4,
            flops_small: 1e9,
            flops_large: 8e9,
            batch_half: 8.0,
            dispatch_overhead: 20e-6,
            memory: 1 << 30,
        },
        GpuModel {
            name: "inv-gpu".into(),
            peak_flops: 1e12,
            occupancy_half_batch: 64.0,
            launch_overhead: 20e-6,
            transfer_latency: 5e-6,
            transfer_bandwidth: 12e9,
            memory: 1 << 30,
        },
    )
}

fn config(algo: AlgorithmKind, seed: u64) -> SimEngineConfig {
    let (cpu, gpu) = hardware();
    SimEngineConfig {
        spec: MlpSpec::tiny(8, 3),
        train: TrainConfig {
            init: hetero_nn::InitScheme::Xavier,
            algorithm: algo,
            lr: 0.03,
            lr_scaling: LrScaling::Sqrt {
                ref_batch: 1,
                max_lr: 0.3,
            },
            cpu_batch_per_thread: 1,
            gpu_batch: 128,
            adaptive: AdaptiveParams {
                alpha: 2.0,
                beta: 1.0,
                cpu_min_batch: 4,
                cpu_max_batch: 256,
                gpu_min_batch: 16,
                gpu_max_batch: 128,
            },
            time_budget: 0.03,
            max_epochs: None,
            grad_clip: None,
            weight_decay: 0.0,
            staleness_discount: 0.0,
            rayon_threads: 0,
            measured_beta: false,
            eval_interval: 0.01,
            eval_subsample: 256,
            ckpt_interval: None,
            ckpt_retain: 2,
            seed,
        },
        cpu,
        gpus: vec![gpu],
        tf_op_overhead: 20e-6,
        tf_multilabel_penalty: 3.0,
        fault_plan: FaultPlan::none(),
    }
}

fn dataset(seed: u64) -> hetero_data::DenseDataset {
    let mut cfg = SynthConfig::small(500, 8, 3, seed);
    cfg.separability = 2.5;
    let mut d = cfg.generate();
    d.standardize();
    d
}

#[test]
fn every_extended_algorithm_produces_valid_metrics() {
    let data = dataset(1);
    for algo in AlgorithmKind::all_extended() {
        let r = SimEngine::new(config(algo, 1)).unwrap().run(&data);
        // Structural invariants on the result record.
        assert!(!r.loss_curve.is_empty(), "{}: empty curve", r.algorithm);
        assert!(
            r.loss_curve
                .iter()
                .all(|p| p.loss.is_finite() && p.loss >= 0.0),
            "{}: bad loss values",
            r.algorithm
        );
        assert!(r.epochs >= 0.0);
        assert!(r.total_updates() > 0.0, "{}: no updates", r.algorithm);
        // Worker kinds match the algorithm's device usage.
        let has_cpu = r
            .workers
            .iter()
            .any(|w| w.kind == WorkerKind::Cpu && w.batches > 0);
        let has_gpu = r
            .workers
            .iter()
            .any(|w| w.kind == WorkerKind::Gpu && w.batches > 0);
        assert_eq!(
            has_cpu,
            algo.uses_cpu(),
            "{}: CPU usage mismatch",
            r.algorithm
        );
        assert_eq!(
            has_gpu,
            algo.uses_gpu(),
            "{}: GPU usage mismatch",
            r.algorithm
        );
        // Examples served per worker sum to epochs × dataset, up to the
        // batches still in flight when the budget expired (assigned by the
        // scheduler but never completed).
        let served: u64 = r.workers.iter().map(|w| w.examples).sum();
        let expected = (r.epochs * data.len() as f64).round() as u64;
        assert!(
            served <= expected,
            "{}: served more than scheduled",
            r.algorithm
        );
        let in_flight = expected - served;
        let max_outstanding = (r.workers.len() as u64) * 256;
        assert!(
            in_flight <= max_outstanding,
            "{}: {in_flight} unaccounted examples",
            r.algorithm
        );
    }
}

#[test]
fn different_seeds_different_trajectories() {
    let data = dataset(2);
    let r1 = SimEngine::new(config(AlgorithmKind::CpuGpuHogbatch, 10))
        .unwrap()
        .run(&data);
    let r2 = SimEngine::new(config(AlgorithmKind::CpuGpuHogbatch, 11))
        .unwrap()
        .run(&data);
    // Different model init ⇒ different loss values (same schedule though).
    assert_ne!(r1.initial_loss(), r2.initial_loss());
}

#[test]
fn result_serde_roundtrip() {
    let data = dataset(3);
    let r = SimEngine::new(config(AlgorithmKind::AdaptiveHogbatch, 5))
        .unwrap()
        .run(&data);
    let json = serde_json::to_string(&r).expect("serialize");
    let back: hetero_core::TrainResult = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.algorithm, r.algorithm);
    assert_eq!(back.loss_curve.len(), r.loss_curve.len());
    assert_eq!(back.workers.len(), r.workers.len());
    assert_eq!(back.final_loss(), r.final_loss());
}

#[test]
fn time_budget_scales_work_linearly() {
    // Double the virtual budget ⇒ roughly double the examples processed.
    let data = dataset(4);
    let mut c1 = config(AlgorithmKind::MiniBatchGpu, 6);
    c1.train.time_budget = 0.02;
    let mut c2 = config(AlgorithmKind::MiniBatchGpu, 6);
    c2.train.time_budget = 0.04;
    let r1 = SimEngine::new(c1).unwrap().run(&data);
    let r2 = SimEngine::new(c2).unwrap().run(&data);
    let ratio = r2.epochs / r1.epochs.max(1e-9);
    assert!(
        (1.6..=2.4).contains(&ratio),
        "work did not scale with budget: {ratio}"
    );
}

#[test]
fn beta_discounts_cpu_update_credit() {
    // With β = 0.5 the CPU is credited half the updates; the controller
    // sees a slower CPU and the reported CPU share drops.
    let data = dataset(5);
    let full = SimEngine::new(config(AlgorithmKind::CpuGpuHogbatch, 7))
        .unwrap()
        .run(&data);
    let mut half_cfg = config(AlgorithmKind::CpuGpuHogbatch, 7);
    half_cfg.train.adaptive.beta = 0.5;
    let half = SimEngine::new(half_cfg).unwrap().run(&data);
    let cpu_updates = |r: &hetero_core::TrainResult| {
        r.workers
            .iter()
            .filter(|w| w.kind == WorkerKind::Cpu)
            .map(|w| w.updates)
            .sum::<f64>()
    };
    // Same schedule (static batches), so credited updates halve exactly.
    assert!(
        (cpu_updates(&half) - cpu_updates(&full) * 0.5).abs() < 1.0,
        "beta crediting: {} vs {}",
        cpu_updates(&half),
        cpu_updates(&full)
    );
}
