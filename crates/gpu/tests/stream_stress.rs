//! Stress tests for streams, events, and the device under concurrency.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use hetero_gpu::{Event, GpuDevice, Stream};

#[test]
fn many_streams_execute_independently() {
    let streams: Vec<Stream> = (0..8).map(|i| Stream::new(format!("s{i}"))).collect();
    let counter = Arc::new(AtomicUsize::new(0));
    for s in &streams {
        for _ in 0..200 {
            let c = Arc::clone(&counter);
            s.launch(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
    }
    for s in &streams {
        s.synchronize();
    }
    assert_eq!(counter.load(Ordering::Relaxed), 8 * 200);
}

#[test]
fn event_chain_enforces_total_order() {
    // Build a chain of streams where each waits on the previous one's event;
    // the counter must be strictly sequential across streams.
    let streams: Vec<Stream> = (0..5).map(|i| Stream::new(format!("chain{i}"))).collect();
    let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let mut prev_event: Option<Event> = None;
    for (i, s) in streams.iter().enumerate() {
        if let Some(e) = prev_event.take() {
            s.wait_event(e);
        }
        let log = Arc::clone(&log);
        s.launch(move || log.lock().push(i));
        prev_event = Some(s.record_event());
    }
    prev_event.unwrap().wait();
    assert_eq!(*log.lock(), vec![0, 1, 2, 3, 4]);
}

#[test]
fn events_are_shareable_across_threads() {
    let s = Stream::new("shared-events");
    let gate = Event::new();
    assert!(!gate.query());
    s.launch(|| std::thread::sleep(std::time::Duration::from_millis(30)));
    let e = s.record_event();
    let waiters: Vec<_> = (0..4)
        .map(|_| {
            let e = e.clone();
            std::thread::spawn(move || {
                e.wait();
                assert!(e.query());
            })
        })
        .collect();
    for w in waiters {
        w.join().unwrap();
    }
}

#[test]
fn concurrent_device_transfers_consistent() {
    let dev = Arc::new(GpuDevice::v100());
    let handles: Vec<_> = (0..6)
        .map(|t| {
            let dev = Arc::clone(&dev);
            std::thread::spawn(move || {
                for i in 0..100usize {
                    let data = vec![(t * 1000 + i) as f32; 64];
                    let buf = dev.h2d(&data).unwrap();
                    let back = dev.d2h(buf);
                    assert_eq!(back, data, "transfer corrupted");
                    dev.mem().free(buf).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(dev.mem().used_bytes(), 0);
    let stats = dev.transfer_stats();
    assert_eq!(stats.h2d_count, 600);
    assert_eq!(stats.d2h_count, 600);
    assert_eq!(stats.h2d_bytes, 600 * 64 * 4);
}

#[test]
fn stream_survives_panicking_free_of_foreign_buffer() {
    // Freeing an invalid buffer returns Err (not a panic) — the stream and
    // device stay usable afterwards.
    let dev = GpuDevice::v100();
    let buf = dev.mem().alloc(8).unwrap();
    dev.mem().free(buf).unwrap();
    assert!(dev.mem().free(buf).is_err());
    let buf2 = dev.mem().alloc(8).unwrap();
    assert_eq!(dev.mem().len(buf2), 8);
    dev.mem().free(buf2).unwrap();
}
