//! Property tests for the software GPU: allocator accounting, kernel/host
//! equivalence, and the on-device training step.

use hetero_gpu::{GpuDevice, GpuMlp};
use hetero_nn::{loss_and_gradient, InitScheme, MlpSpec, Model, Targets};
use hetero_sim::GpuModel;
use hetero_tensor::Matrix;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Allocator accounting is exact under arbitrary alloc/free sequences.
    #[test]
    fn allocator_accounting_exact(ops in prop::collection::vec((1usize..500, any::<bool>()), 1..100)) {
        let mem = hetero_gpu::DeviceMemory::new(1 << 22);
        let mut live: Vec<(hetero_gpu::BufferId, usize)> = Vec::new();
        let mut expected = 0u64;
        for (len, free_one) in ops {
            if free_one && !live.is_empty() {
                let (id, l) = live.swap_remove(0);
                mem.free(id).unwrap();
                expected -= 4 * l as u64;
            } else if let Ok(id) = mem.alloc(len) {
                live.push((id, len));
                expected += 4 * len as u64;
            }
            prop_assert_eq!(mem.used_bytes(), expected);
            prop_assert_eq!(mem.live_buffers(), live.len());
        }
        for (id, _) in live {
            mem.free(id).unwrap();
        }
        prop_assert_eq!(mem.used_bytes(), 0);
    }

    /// One device train step equals the host-side SGD step for arbitrary
    /// architectures and batches (the cuBLAS-replacement contract).
    #[test]
    fn device_step_equals_host_step(
        hidden in prop::collection::vec(2usize..8, 0..3),
        batch in 1usize..12,
        seed in any::<u64>(),
    ) {
        let spec = MlpSpec {
            input_dim: 5,
            hidden,
            classes: 3,
            activation: hetero_nn::Activation::Sigmoid,
            loss: hetero_nn::LossKind::SoftmaxCrossEntropy,
        };
        let mut host = Model::new(spec.clone(), InitScheme::Xavier, seed);
        let device = GpuDevice::v100();
        let mut gpu = GpuMlp::upload(&device, &host).unwrap();

        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        };
        let x = Matrix::from_fn(batch, 5, |_, _| next());
        let y: Vec<u32> = (0..batch).map(|i| (i % 3) as u32).collect();

        let gpu_loss = gpu.train_step(&x, Targets::Classes(&y), 0.1).unwrap();
        let (host_loss, g) = loss_and_gradient(&host, &x, Targets::Classes(&y), false);
        host.apply_gradient(&g, 0.1);

        prop_assert!((gpu_loss - host_loss).abs() < 1e-4, "{gpu_loss} vs {host_loss}");
        for (a, b) in gpu.download().flatten().iter().zip(host.flatten().iter()) {
            prop_assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        gpu.destroy();
        prop_assert_eq!(device.mem().used_bytes(), 0);
    }

    /// Transfer stats add up exactly across arbitrary transfer sequences.
    #[test]
    fn transfer_stats_exact(sizes in prop::collection::vec(1usize..1000, 1..20)) {
        let device = GpuDevice::new(GpuModel::v100());
        let mut h2d = 0u64;
        let mut d2h = 0u64;
        for len in sizes {
            let data = vec![0.25f32; len];
            let buf = device.h2d(&data).unwrap();
            h2d += 4 * len as u64;
            let _ = device.d2h(buf);
            d2h += 4 * len as u64;
            device.mem().free(buf).unwrap();
        }
        let stats = device.transfer_stats();
        prop_assert_eq!(stats.h2d_bytes, h2d);
        prop_assert_eq!(stats.d2h_bytes, d2h);
        prop_assert!(device.virtual_time() > 0.0);
    }
}
