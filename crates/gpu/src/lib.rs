//! # hetero-gpu
//!
//! A software GPU device — the substitute for the paper's V100 + CUDA +
//! cuBLAS stack (see DESIGN.md §2).
//!
//! The point of this crate is to preserve the *code path* of a real GPU
//! worker, not to emulate silicon: model replicas must be deep copies,
//! data must move through explicit host↔device transfers, work is issued
//! as kernels on ordered asynchronous streams, and device memory is a
//! finite tracked resource that can run out. All of those constraints
//! shape the paper's algorithms (§V "GPU Workers", §VI-B), so all of them
//! are real here:
//!
//! - [`alloc::DeviceMemory`] — a tracked allocator over the device's
//!   global-memory capacity; allocation fails with OOM exactly like
//!   `cudaMalloc`.
//! - [`stream::Stream`] / [`stream::Event`] — ordered asynchronous kernel
//!   execution on a dedicated thread, with host-visible events (the CUDA
//!   stream/event model).
//! - [`kernels`] — the linear-algebra kernels (GEMM variants, bias,
//!   activations, softmax, SGD update) executed for real on a dedicated
//!   thread pool standing in for the streaming multiprocessors.
//! - [`device::GpuDevice`] — the facade combining memory, transfers, and
//!   kernel launch, with **virtual-time accounting** from the calibrated
//!   [`hetero_sim::GpuModel`] so that a simulated V100 takes V100-like
//!   time even though the math runs on host cores.
//! - [`mlp::GpuMlp`] — a device-resident MLP replica supporting upload /
//!   download / train-step, the unit of work a GPU worker executes.

#![warn(missing_docs)]

pub mod alloc;
pub mod device;
pub mod kernels;
pub mod mlp;
pub mod pipeline;
pub mod stream;

pub use alloc::{BufferId, DeviceMemory, OomError};
pub use device::GpuDevice;
pub use mlp::GpuMlp;
pub use pipeline::BatchPipeline;
pub use stream::{Event, Stream};
