//! Double-buffered batch pipeline: overlapping transfers with compute.
//!
//! §V: the GPU worker "coordinates the memory transfers between CPU and GPU,
//! and invokes kernel execution on the GPU — all these happen asynchronously
//! and with minimal interference on the other system components", with
//! "kernel execution through asynchronous streams" isolated inside it.
//!
//! [`BatchPipeline`] is that machinery: a *copy* stream uploads batch `k+1`
//! into a staging buffer while the *compute* stream trains on batch `k`,
//! with events enforcing the cross-stream dependency. On the virtual-time
//! ledger this turns `transfer + compute` per batch into
//! `max(transfer, compute)` after the pipeline fills.

use hetero_nn::Targets;
use hetero_sim::DeviceModel;
use hetero_tensor::Matrix;

use crate::alloc::{BufferId, OomError};
use crate::device::GpuDevice;
use crate::mlp::GpuMlp;
use crate::stream::Stream;

/// Double-buffered trainer over a sequence of batches.
pub struct BatchPipeline<'d> {
    device: &'d GpuDevice,
    copy_stream: Stream,
    compute_stream: Stream,
    /// Two staging buffers, swapped per batch.
    staging: [Option<BufferId>; 2],
    /// Virtual time saved by overlap so far (seconds).
    overlap_saved: f64,
    batches_run: u64,
    /// Mirrors `overlap_saved` into the trace registry when live.
    overlap_gauge: hetero_trace::GaugeHandle,
}

impl<'d> BatchPipeline<'d> {
    /// New pipeline on `device`. Inherits the device's trace sink: the copy
    /// and compute streams report their stalls, and the cumulative overlap
    /// saving is published as `gpu.w<id>.overlap_saved_secs`.
    pub fn new(device: &'d GpuDevice) -> Self {
        let sink = device.trace_sink();
        let worker = device.trace_worker();
        BatchPipeline {
            device,
            copy_stream: Stream::new_traced("copy", sink, worker),
            compute_stream: Stream::new_traced("compute", sink, worker),
            staging: [None, None],
            overlap_saved: 0.0,
            batches_run: 0,
            overlap_gauge: if sink.enabled() {
                sink.gauge(&format!("gpu.w{worker}.overlap_saved_secs"))
            } else {
                hetero_trace::GaugeHandle::disabled()
            },
        }
    }

    /// Train over `batches` (each `(x, labels)` slice indices into
    /// `dataset`), overlapping each upload with the previous compute.
    ///
    /// Returns the per-batch losses. The replica is updated in place.
    pub fn run<'a>(
        &mut self,
        mlp: &mut GpuMlp<'d>,
        batches: impl IntoIterator<Item = (&'a Matrix, Targets<'a>)>,
        eta: f32,
    ) -> Result<Vec<f32>, OomError> {
        let mut losses = Vec::new();
        let mut iter = batches.into_iter().peekable();
        let mut slot = 0usize;

        // Prefill: upload the first batch on the copy stream.
        if let Some((x0, _)) = iter.peek() {
            let buf = self.stage(slot, x0)?;
            let _ = buf;
        }

        while let Some((x, targets)) = iter.next() {
            // The upload of THIS batch must be complete before compute.
            let upload_done = self.copy_stream.record_event();
            self.compute_stream.wait_event(upload_done);

            // Start uploading the NEXT batch concurrently.
            let next_slot = 1 - slot;
            if let Some((xn, _)) = iter.peek() {
                self.stage(next_slot, xn)?;
            }

            // Compute on the current batch. (The staged buffer guarantees
            // the transfer ordering; the actual math consumes the host
            // matrix, mirroring how GpuMlp::train_step re-uploads — the
            // staging cost is what the virtual ledger already paid.)
            self.compute_stream.synchronize();
            let loss = mlp.train_step(x, targets, eta)?;
            losses.push(loss);
            self.batches_run += 1;

            // Virtual-time credit: the staged upload of the next batch
            // overlapped this compute, so the serial transfer cost is
            // refunded (bounded by the compute time).
            if iter.peek().is_some() {
                let bytes = (4 * x.len()) as u64;
                let transfer = self.device.perf().transfer_time(bytes);
                let compute = self
                    .device
                    .perf()
                    .batch_time(mlp.spec().train_flops_per_example(), x.rows());
                // The saving is tracked on a separate ledger rather than
                // subtracted from the device's monotone busy clock.
                self.overlap_saved += transfer.min(compute);
                self.overlap_gauge.set(self.overlap_saved);
            }
            slot = next_slot;
        }
        self.copy_stream.synchronize();
        self.compute_stream.synchronize();
        Ok(losses)
    }

    /// Upload a batch into staging slot `slot` via the copy stream.
    fn stage(&mut self, slot: usize, x: &Matrix) -> Result<BufferId, OomError> {
        // (Re)allocate staging if the size changed.
        if let Some(buf) = self.staging[slot].take() {
            if self.device.mem().len(buf) == x.len() {
                self.staging[slot] = Some(buf);
            } else {
                let _ = self.device.mem().free(buf);
            }
        }
        if self.staging[slot].is_none() {
            self.staging[slot] = Some(self.device.mem().alloc(x.len())?);
        }
        let buf = self.staging[slot].expect("just ensured");
        let data = x.as_slice().to_vec();
        let dev: &GpuDevice = self.device;
        // SAFETY-free trick: we cannot move &GpuDevice into the stream
        // closure (lifetime), so perform the copy synchronously here and
        // use the stream event purely for ordering semantics. The transfer
        // cost is accounted by h2d_into either way.
        dev.h2d_into(&data, buf);
        self.copy_stream.launch_named("stage_upload", move || {
            // Ordering marker: completion of this task = upload visible.
        });
        Ok(buf)
    }

    /// Virtual seconds saved by transfer/compute overlap so far.
    pub fn overlap_saved(&self) -> f64 {
        self.overlap_saved
    }

    /// Batches trained through the pipeline.
    pub fn batches_run(&self) -> u64 {
        self.batches_run
    }

    /// Free staging buffers.
    pub fn destroy(mut self) {
        for s in self.staging.iter_mut() {
            if let Some(buf) = s.take() {
                let _ = self.device.mem().free(buf);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_nn::{InitScheme, MlpSpec, Model};

    fn setup(device: &GpuDevice) -> GpuMlp<'_> {
        let model = Model::new(MlpSpec::tiny(6, 2), InitScheme::Xavier, 3);
        GpuMlp::upload(device, &model).unwrap()
    }

    fn batches(n: usize) -> Vec<(Matrix, Vec<u32>)> {
        (0..n)
            .map(|k| {
                let x = Matrix::from_fn(16, 6, |i, j| ((k * 96 + i * 6 + j) as f32 * 0.1).sin());
                let y = (0..16).map(|i| ((i + k) % 2) as u32).collect();
                (x, y)
            })
            .collect()
    }

    #[test]
    fn pipeline_trains_all_batches() {
        let device = GpuDevice::v100();
        let mut mlp = setup(&device);
        let mut pipe = BatchPipeline::new(&device);
        let data = batches(8);
        let losses = pipe
            .run(
                &mut mlp,
                data.iter()
                    .map(|(x, y)| (x, Targets::Classes(y.as_slice()))),
                0.1,
            )
            .unwrap();
        assert_eq!(losses.len(), 8);
        assert!(losses.iter().all(|l| l.is_finite()));
        assert_eq!(pipe.batches_run(), 8);
        assert!(pipe.overlap_saved() > 0.0, "no overlap credited");
        pipe.destroy();
        mlp.destroy();
        assert_eq!(device.mem().used_bytes(), 0);
    }

    #[test]
    fn pipeline_matches_unpipelined_losses() {
        // Overlap changes timing, not math: the loss sequence must equal
        // running the same batches through plain train_step.
        let d1 = GpuDevice::v100();
        let d2 = GpuDevice::v100();
        let mut m1 = setup(&d1);
        let mut m2 = setup(&d2);
        let data = batches(5);

        let mut pipe = BatchPipeline::new(&d1);
        let piped = pipe
            .run(
                &mut m1,
                data.iter()
                    .map(|(x, y)| (x, Targets::Classes(y.as_slice()))),
                0.2,
            )
            .unwrap();
        pipe.destroy();

        let mut plain = Vec::new();
        for (x, y) in &data {
            plain.push(m2.train_step(x, Targets::Classes(y), 0.2).unwrap());
        }
        for (a, b) in piped.iter().zip(&plain) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
        m1.destroy();
        m2.destroy();
    }

    #[test]
    fn empty_batch_list_is_ok() {
        let device = GpuDevice::v100();
        let mut mlp = setup(&device);
        let mut pipe = BatchPipeline::new(&device);
        let losses = pipe
            .run(&mut mlp, std::iter::empty::<(&Matrix, Targets<'_>)>(), 0.1)
            .unwrap();
        assert!(losses.is_empty());
        pipe.destroy();
        mlp.destroy();
    }

    #[test]
    fn staging_reallocates_on_size_change() {
        let device = GpuDevice::v100();
        let mut mlp = setup(&device);
        let mut pipe = BatchPipeline::new(&device);
        let small = Matrix::from_fn(4, 6, |_, _| 0.1);
        let big = Matrix::from_fn(64, 6, |_, _| 0.1);
        let ys: Vec<u32> = vec![0; 4];
        let yb: Vec<u32> = vec![0; 64];
        let seq = vec![
            (&small, Targets::Classes(ys.as_slice())),
            (&big, Targets::Classes(yb.as_slice())),
            (&small, Targets::Classes(ys.as_slice())),
        ];
        let losses = pipe.run(&mut mlp, seq, 0.1).unwrap();
        assert_eq!(losses.len(), 3);
        pipe.destroy();
        mlp.destroy();
        assert_eq!(device.mem().used_bytes(), 0);
    }
}
