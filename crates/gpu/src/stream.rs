//! Asynchronous execution streams and events (the CUDA model).
//!
//! A [`Stream`] owns a dedicated thread that executes enqueued operations
//! strictly in order; `launch` returns immediately (asynchronous, like a
//! CUDA kernel launch), [`Stream::synchronize`] blocks until everything
//! enqueued so far has completed. [`Event`]s mark points in the stream that
//! the host — or another stream — can wait on, which is how the GPU worker
//! overlaps transfers with compute without blocking the coordinator (§V).

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{unbounded, Sender};
use hetero_trace::{EventKind, GaugeHandle, TraceSink};
use parking_lot::{Condvar, Mutex};

/// A host-visible synchronization point in a stream.
#[derive(Clone, Debug)]
pub struct Event {
    inner: Arc<(Mutex<bool>, Condvar)>,
}

impl Event {
    /// A fresh, untriggered event.
    pub fn new() -> Self {
        Event {
            inner: Arc::new((Mutex::new(false), Condvar::new())),
        }
    }

    /// Mark the event complete and wake all waiters.
    fn trigger(&self) {
        let (lock, cv) = &*self.inner;
        *lock.lock() = true;
        cv.notify_all();
    }

    /// True once the event has completed.
    pub fn query(&self) -> bool {
        *self.inner.0.lock()
    }

    /// Block until the event completes.
    pub fn wait(&self) {
        let (lock, cv) = &*self.inner;
        let mut done = lock.lock();
        while !*done {
            cv.wait(&mut done);
        }
    }
}

impl Default for Event {
    fn default() -> Self {
        Self::new()
    }
}

enum Op {
    Task(Box<dyn FnOnce() + Send>),
    Record(Event),
    Shutdown,
}

/// An ordered asynchronous work queue backed by one executor thread.
pub struct Stream {
    tx: Sender<Op>,
    handle: Option<JoinHandle<()>>,
    name: String,
    sink: TraceSink,
    /// Worker id stamped on emitted kernel events.
    worker: u32,
    /// Wall seconds the host spent blocked in [`Stream::synchronize`].
    stall_secs: GaugeHandle,
}

impl Stream {
    /// Create a stream with a named executor thread.
    pub fn new(name: impl Into<String>) -> Self {
        Self::with_trace(name, &TraceSink::disabled(), 0)
    }

    /// Create a stream whose named launches and host synchronization stalls
    /// are observable through `sink` (events stamped with `worker`).
    pub fn new_traced(name: impl Into<String>, sink: &TraceSink, worker: u32) -> Self {
        Self::with_trace(name, sink, worker)
    }

    fn with_trace(name: impl Into<String>, sink: &TraceSink, worker: u32) -> Self {
        let name = name.into();
        let stall_secs = if sink.enabled() {
            sink.gauge(&format!("gpu.w{worker}.stream.{name}.stall_secs"))
        } else {
            GaugeHandle::disabled()
        };
        let (tx, rx) = unbounded::<Op>();
        let thread_name = format!("gpu-stream-{name}");
        let handle = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || {
                while let Ok(op) = rx.recv() {
                    match op {
                        Op::Task(f) => f(),
                        Op::Record(e) => e.trigger(),
                        Op::Shutdown => break,
                    }
                }
            })
            .expect("spawn stream thread");
        Stream {
            tx,
            handle: Some(handle),
            name,
            sink: sink.clone(),
            worker,
            stall_secs,
        }
    }

    /// Stream name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Enqueue a kernel; returns immediately.
    pub fn launch(&self, f: impl FnOnce() + Send + 'static) {
        self.tx
            .send(Op::Task(Box::new(f)))
            .expect("stream thread alive");
    }

    /// Enqueue a kernel and, when tracing is live, emit a
    /// [`EventKind::KernelLaunched`] marker at launch time.
    pub fn launch_named(&self, kernel: &str, f: impl FnOnce() + Send + 'static) {
        if self.sink.enabled() {
            self.sink.emit(
                self.worker,
                EventKind::KernelLaunched {
                    name: kernel.to_string(),
                },
            );
        }
        self.launch(f);
    }

    /// Enqueue an event; it triggers when all prior work completes.
    pub fn record_event(&self) -> Event {
        let e = Event::new();
        self.tx
            .send(Op::Record(e.clone()))
            .expect("stream thread alive");
        e
    }

    /// Make this stream wait for `event` (possibly recorded on another
    /// stream) before running subsequently enqueued work.
    pub fn wait_event(&self, event: Event) {
        self.launch(move || event.wait());
    }

    /// Block the host until all enqueued work has completed. Wall seconds
    /// spent blocked here accumulate on the stream's stall gauge when
    /// tracing is live.
    pub fn synchronize(&self) {
        if self.sink.enabled() {
            let start = Instant::now();
            self.record_event().wait();
            self.stall_secs.add(start.elapsed().as_secs_f64());
        } else {
            self.record_event().wait();
        }
    }
}

impl Drop for Stream {
    fn drop(&mut self) {
        let _ = self.tx.send(Op::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for Stream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stream").field("name", &self.name).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn tasks_execute_in_order() {
        let s = Stream::new("t");
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..100 {
            let log = Arc::clone(&log);
            s.launch(move || log.lock().push(i));
        }
        s.synchronize();
        assert_eq!(*log.lock(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn launch_is_asynchronous() {
        let s = Stream::new("async");
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g2 = Arc::clone(&gate);
        // This task blocks the stream until we open the gate — launch must
        // still return immediately.
        s.launch(move || {
            let (l, cv) = &*g2;
            let mut open = l.lock();
            while !*open {
                cv.wait(&mut open);
            }
        });
        let done = Arc::new(AtomicUsize::new(0));
        let d2 = Arc::clone(&done);
        s.launch(move || {
            d2.store(1, Ordering::SeqCst);
        });
        // Second task cannot have run yet.
        assert_eq!(done.load(Ordering::SeqCst), 0);
        let (l, cv) = &*gate;
        *l.lock() = true;
        cv.notify_all();
        s.synchronize();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn event_query_and_wait() {
        let s = Stream::new("ev");
        let e0 = Event::new();
        assert!(!e0.query());
        s.launch(|| std::thread::sleep(std::time::Duration::from_millis(10)));
        let e = s.record_event();
        e.wait();
        assert!(e.query());
    }

    #[test]
    fn cross_stream_dependency() {
        let s1 = Stream::new("producer");
        let s2 = Stream::new("consumer");
        let value = Arc::new(AtomicUsize::new(0));
        let v1 = Arc::clone(&value);
        s1.launch(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            v1.store(7, Ordering::SeqCst);
        });
        let e = s1.record_event();
        s2.wait_event(e);
        let v2 = Arc::clone(&value);
        let observed = Arc::new(AtomicUsize::new(999));
        let o2 = Arc::clone(&observed);
        s2.launch(move || {
            o2.store(v2.load(Ordering::SeqCst), Ordering::SeqCst);
        });
        s2.synchronize();
        assert_eq!(observed.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn drop_joins_cleanly() {
        let s = Stream::new("drop");
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        s.launch(move || {
            d.fetch_add(1, Ordering::SeqCst);
        });
        drop(s);
        // The executor drains its queue before Shutdown (FIFO), so the task ran.
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }
}
