//! The GPU device facade: memory + transfers + virtual-time accounting.

use hetero_metrics::{HistHandle, Metric, MetricsHub};
use hetero_sim::{DeviceModel, GpuModel};
use hetero_trace::{EventKind, GaugeHandle, TraceSink};
use parking_lot::Mutex;

use crate::alloc::{BufferId, DeviceMemory, OomError};

/// Pre-resolved tracing state for one device.
struct GpuTrace {
    sink: TraceSink,
    /// Worker id stamped on emitted transfer/kernel events.
    worker: u32,
    /// Cumulative synchronization-stall seconds.
    stall_secs: GaugeHandle,
    /// Per-upload transfer-time histogram (`hetero-metrics`; disabled
    /// unless built with [`GpuDevice::new_observed`]).
    h2d_hist: HistHandle,
    /// Per-download transfer-time histogram.
    d2h_hist: HistHandle,
}

impl GpuTrace {
    fn disabled() -> Self {
        GpuTrace {
            sink: TraceSink::disabled(),
            worker: 0,
            stall_secs: GaugeHandle::disabled(),
            h2d_hist: HistHandle::disabled(),
            d2h_hist: HistHandle::disabled(),
        }
    }
}

/// Cumulative transfer statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TransferStats {
    /// Host→device bytes moved.
    pub h2d_bytes: u64,
    /// Device→host bytes moved.
    pub d2h_bytes: u64,
    /// Host→device transfer count.
    pub h2d_count: u64,
    /// Device→host transfer count.
    pub d2h_count: u64,
}

/// A software GPU: tracked global memory, explicit transfers, and a
/// calibrated performance model accumulating *virtual* busy time.
///
/// The math inside kernels runs on host cores for real; `virtual_time`
/// answers "how long would this have taken on the modeled V100", which is
/// what the simulation engine advances its clock by.
pub struct GpuDevice {
    mem: DeviceMemory,
    perf: GpuModel,
    busy: Mutex<f64>,
    transfers: Mutex<TransferStats>,
    trace: GpuTrace,
}

impl GpuDevice {
    /// Create a device with the given performance model; memory capacity
    /// comes from the model.
    pub fn new(perf: GpuModel) -> Self {
        GpuDevice {
            mem: DeviceMemory::new(perf.memory),
            perf,
            busy: Mutex::new(0.0),
            transfers: Mutex::new(TransferStats::default()),
            trace: GpuTrace::disabled(),
        }
    }

    /// Create a device whose transfers, kernels, stalls, and memory usage
    /// are observable through `sink`. Events are stamped with `worker`.
    pub fn new_traced(perf: GpuModel, sink: &TraceSink, worker: u32) -> Self {
        Self::new_observed(perf, sink, worker, &MetricsHub::disabled())
    }

    /// Like [`GpuDevice::new_traced`], additionally recording every
    /// transfer's modeled duration into `hub`'s per-worker `H2d`/`D2h`
    /// histograms. With a disabled hub this is exactly `new_traced`.
    pub fn new_observed(perf: GpuModel, sink: &TraceSink, worker: u32, hub: &MetricsHub) -> Self {
        let trace = if sink.enabled() || hub.is_enabled() {
            GpuTrace {
                sink: sink.clone(),
                worker,
                stall_secs: sink.gauge(&format!("gpu.w{worker}.stall_secs")),
                h2d_hist: hub.histogram(Metric::H2d, worker),
                d2h_hist: hub.histogram(Metric::D2h, worker),
            }
        } else {
            GpuTrace::disabled()
        };
        GpuDevice {
            mem: DeviceMemory::with_gauge(
                perf.memory,
                if sink.enabled() {
                    sink.gauge(&format!("gpu.w{worker}.mem_used_bytes"))
                } else {
                    GaugeHandle::disabled()
                },
            ),
            perf,
            busy: Mutex::new(0.0),
            transfers: Mutex::new(TransferStats::default()),
            trace,
        }
    }

    /// A V100-modeled device (the paper's hardware).
    pub fn v100() -> Self {
        Self::new(GpuModel::v100())
    }

    /// A traced V100-modeled device (see [`GpuDevice::new_traced`]).
    pub fn v100_traced(sink: &TraceSink, worker: u32) -> Self {
        Self::new_traced(GpuModel::v100(), sink, worker)
    }

    /// The sink this device reports to (disabled unless built with
    /// [`GpuDevice::new_traced`]).
    pub fn trace_sink(&self) -> &TraceSink {
        &self.trace.sink
    }

    /// Worker id stamped on this device's trace events.
    pub fn trace_worker(&self) -> u32 {
        self.trace.worker
    }

    /// Emit a [`EventKind::KernelLaunched`] marker if tracing is live.
    pub fn note_kernel(&self, name: &'static str) {
        if self.trace.sink.enabled() {
            self.trace.sink.emit(
                self.trace.worker,
                EventKind::KernelLaunched {
                    name: name.to_string(),
                },
            );
        }
    }

    /// The device memory pool.
    pub fn mem(&self) -> &DeviceMemory {
        &self.mem
    }

    /// Force the `n`th allocation attempt on this device to fail with OOM
    /// (see [`DeviceMemory::inject_oom_at`]). Deterministic fault injection
    /// for supervision tests.
    pub fn inject_oom_at(&self, n: u64) {
        self.mem.inject_oom_at(n);
    }

    /// The performance model.
    pub fn perf(&self) -> &GpuModel {
        &self.perf
    }

    /// Copy host data into a fresh device buffer, accounting transfer time.
    pub fn h2d(&self, data: &[f32]) -> Result<BufferId, OomError> {
        let buf = self.mem.alloc(data.len())?;
        self.h2d_into(data, buf);
        Ok(buf)
    }

    /// Copy host data into an existing buffer (sizes must match).
    pub fn h2d_into(&self, data: &[f32], buf: BufferId) {
        let h = self.mem.get(buf);
        let mut w = h.write();
        assert_eq!(w.len(), data.len(), "h2d size mismatch");
        w.copy_from_slice(data);
        drop(w);
        let bytes = 4 * data.len() as u64;
        let mut t = self.transfers.lock();
        t.h2d_bytes += bytes;
        t.h2d_count += 1;
        drop(t);
        let secs = self.perf.transfer_time(bytes);
        *self.busy.lock() += secs;
        self.trace.h2d_hist.record_secs(secs);
        if self.trace.sink.enabled() {
            self.trace.sink.emit(
                self.trace.worker,
                EventKind::H2d {
                    bytes: bytes as usize,
                    secs,
                },
            );
        }
    }

    /// Copy a device buffer back to the host, accounting transfer time.
    pub fn d2h(&self, buf: BufferId) -> Vec<f32> {
        let h = self.mem.get(buf);
        let mut out = vec![0.0; h.read().len()];
        self.d2h_into(buf, &mut out);
        out
    }

    /// Copy a device buffer into an existing host slice (sizes must match),
    /// accounting transfer time. The allocation-free counterpart of
    /// [`d2h`](Self::d2h) used by steady-state training.
    pub fn d2h_into(&self, buf: BufferId, out: &mut [f32]) {
        let h = self.mem.get(buf);
        let r = h.read();
        assert_eq!(r.len(), out.len(), "d2h size mismatch");
        out.copy_from_slice(&r);
        drop(r);
        let bytes = 4 * out.len() as u64;
        let mut t = self.transfers.lock();
        t.d2h_bytes += bytes;
        t.d2h_count += 1;
        drop(t);
        let secs = self.perf.transfer_time(bytes);
        *self.busy.lock() += secs;
        self.trace.d2h_hist.record_secs(secs);
        if self.trace.sink.enabled() {
            self.trace.sink.emit(
                self.trace.worker,
                EventKind::D2h {
                    bytes: bytes as usize,
                    secs,
                },
            );
        }
    }

    /// Account the virtual cost of one training step over `batch` examples
    /// at `flops_per_example`.
    pub fn account_step(&self, flops_per_example: u64, batch: usize) {
        *self.busy.lock() += self.perf.batch_time(flops_per_example, batch);
    }

    /// Add raw virtual seconds (e.g. for synchronization stalls). Stall
    /// time also accumulates on the `gpu.w<id>.stall_secs` gauge when
    /// tracing is attached.
    pub fn account_seconds(&self, secs: f64) {
        assert!(secs >= 0.0 && secs.is_finite());
        *self.busy.lock() += secs;
        self.trace.stall_secs.add(secs);
    }

    /// Total virtual busy seconds accumulated so far.
    pub fn virtual_time(&self) -> f64 {
        *self.busy.lock()
    }

    /// Cumulative transfer statistics.
    pub fn transfer_stats(&self) -> TransferStats {
        *self.transfers.lock()
    }
}

impl std::fmt::Debug for GpuDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuDevice")
            .field("perf", &self.perf.name)
            .field("mem_used", &self.mem.used_bytes())
            .field("virtual_time", &self.virtual_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h2d_d2h_roundtrip() {
        let dev = GpuDevice::v100();
        let data = vec![1.0, 2.0, 3.0];
        let buf = dev.h2d(&data).unwrap();
        assert_eq!(dev.d2h(buf), data);
        let s = dev.transfer_stats();
        assert_eq!(s.h2d_bytes, 12);
        assert_eq!(s.d2h_bytes, 12);
        assert_eq!((s.h2d_count, s.d2h_count), (1, 1));
    }

    #[test]
    fn transfers_accumulate_virtual_time() {
        let dev = GpuDevice::v100();
        assert_eq!(dev.virtual_time(), 0.0);
        let buf = dev.h2d(&vec![0.0; 1 << 20]).unwrap();
        let t1 = dev.virtual_time();
        assert!(t1 > 0.0);
        let _ = dev.d2h(buf);
        assert!(dev.virtual_time() > t1);
    }

    #[test]
    fn account_step_uses_perf_model() {
        let dev = GpuDevice::v100();
        dev.account_step(1_000_000, 1024);
        let expect = dev.perf().batch_time(1_000_000, 1024);
        assert!((dev.virtual_time() - expect).abs() < 1e-12);
    }

    #[test]
    fn traced_device_emits_transfer_events_and_gauges() {
        let sink = hetero_trace::TraceSink::wall(256);
        let dev = GpuDevice::v100_traced(&sink, 2);
        let buf = dev.h2d(&vec![1.0f32; 256]).unwrap();
        let _ = dev.d2h(buf);
        dev.account_seconds(0.25);
        dev.note_kernel("unit_test_kernel");
        let trace = sink.drain();
        let mut h2d = 0;
        let mut d2h = 0;
        let mut kernels = 0;
        for e in trace.events_sorted() {
            assert_eq!(e.worker, 2);
            match e.kind {
                hetero_trace::EventKind::H2d { bytes, secs } => {
                    assert_eq!(bytes, 1024);
                    assert!(secs > 0.0);
                    h2d += 1;
                }
                hetero_trace::EventKind::D2h { bytes, .. } => {
                    assert_eq!(bytes, 1024);
                    d2h += 1;
                }
                hetero_trace::EventKind::KernelLaunched { ref name } => {
                    assert_eq!(name, "unit_test_kernel");
                    kernels += 1;
                }
                ref other => panic!("unexpected event {other:?}"),
            }
        }
        assert_eq!((h2d, d2h, kernels), (1, 1, 1));
        let counters: std::collections::HashMap<String, f64> =
            trace.counters.iter().cloned().collect();
        // Buffer still live: gauge mirrors bytes in use.
        assert_eq!(counters.get("gpu.w2.mem_used_bytes"), Some(&1024.0));
        assert_eq!(counters.get("gpu.w2.stall_secs"), Some(&0.25));
    }

    #[test]
    fn observed_device_fills_transfer_histograms() {
        let sink = hetero_trace::TraceSink::wall(256);
        let hub = MetricsHub::new();
        let dev = GpuDevice::new_observed(GpuModel::v100(), &sink, 1, &hub);
        let buf = dev.h2d(&vec![1.0f32; 1 << 16]).unwrap();
        let mut out = vec![0.0f32; 1 << 16];
        dev.d2h_into(buf, &mut out);
        let snap = hub.snapshot();
        let h2d = snap.series_for(Metric::H2d, 1).unwrap();
        let d2h = snap.series_for(Metric::D2h, 1).unwrap();
        assert_eq!(h2d.count(), 1);
        assert_eq!(d2h.count(), 1);
        // Recorded nanoseconds match the perf model's transfer time.
        let expect_ns = (dev.perf().transfer_time(4 << 16) * 1e9) as u64;
        assert!(h2d.sum().abs_diff(expect_ns) <= 1);
    }

    #[test]
    fn oom_propagates_from_allocator() {
        let mut small = GpuModel::v100();
        small.memory = 1024; // 256 floats
        let dev = GpuDevice::new(small);
        assert!(dev.h2d(&vec![0.0; 200]).is_ok());
        assert!(dev.h2d(&vec![0.0; 200]).is_err());
    }

    #[test]
    #[should_panic(expected = "h2d size mismatch")]
    fn h2d_into_size_mismatch_panics() {
        let dev = GpuDevice::v100();
        let buf = dev.mem().alloc(4).unwrap();
        dev.h2d_into(&[1.0, 2.0], buf);
    }
}
