//! Device kernels: the cuBLAS/cuDNN stand-ins.
//!
//! Each kernel reads/writes [`DeviceMemory`] buffers and performs the math
//! for real via `hetero-tensor`. Input buffers take read locks, the output
//! takes a write lock — aliasing an input as the output would deadlock, as
//! would in-place GEMM on a real GPU without workspace.
//!
//! All kernels run directly on the locked buffer slices through the
//! slice-level `hetero-tensor` entry points, so the software GPU exercises
//! the exact same runtime-dispatched SIMD microkernels as the host workers —
//! no staging copies, no per-call allocation, and bit-consistent activation
//! math across devices.

use hetero_tensor::{gemm, ops};

use crate::alloc::{BufferId, DeviceMemory};

/// `C ← A·Bᵀ` where A is `m×k` and B is `n×k` (forward layer product).
pub fn gemm_nt(
    mem: &DeviceMemory,
    a: BufferId,
    b: BufferId,
    c: BufferId,
    m: usize,
    k: usize,
    n: usize,
) {
    let (ah, bh, ch) = (mem.get(a), mem.get(b), mem.get(c));
    let (ar, br) = (ah.read(), bh.read());
    let mut cw = ch.write();
    assert_eq!(ar.len(), m * k, "A dims");
    assert_eq!(br.len(), n * k, "B dims");
    assert_eq!(cw.len(), m * n, "C dims");
    gemm::par_gemm_nt_slices(1.0, &ar, &br, 0.0, &mut cw, m, k, n);
}

/// `C ← Aᵀ·B` where A is `k×m` and B is `k×n` (weight gradient).
pub fn gemm_tn(
    mem: &DeviceMemory,
    a: BufferId,
    b: BufferId,
    c: BufferId,
    k: usize,
    m: usize,
    n: usize,
) {
    let (ah, bh, ch) = (mem.get(a), mem.get(b), mem.get(c));
    let (ar, br) = (ah.read(), bh.read());
    let mut cw = ch.write();
    assert_eq!(ar.len(), k * m, "A dims");
    assert_eq!(br.len(), k * n, "B dims");
    assert_eq!(cw.len(), m * n, "C dims");
    gemm::par_gemm_tn_slices(1.0, &ar, &br, 0.0, &mut cw, k, m, n);
}

/// `C ← A·B` where A is `m×k` and B is `k×n` (delta backprop).
pub fn gemm_nn(
    mem: &DeviceMemory,
    a: BufferId,
    b: BufferId,
    c: BufferId,
    m: usize,
    k: usize,
    n: usize,
) {
    let (ah, bh, ch) = (mem.get(a), mem.get(b), mem.get(c));
    let (ar, br) = (ah.read(), bh.read());
    let mut cw = ch.write();
    assert_eq!(ar.len(), m * k, "A dims");
    assert_eq!(br.len(), k * n, "B dims");
    assert_eq!(cw.len(), m * n, "C dims");
    gemm::par_gemm_nn_slices(1.0, &ar, &br, 0.0, &mut cw, m, k, n);
}

/// Broadcast-add a bias row vector to every row of an `m×n` buffer.
pub fn add_bias(mem: &DeviceMemory, x: BufferId, bias: BufferId, n: usize) {
    let (xh, bh) = (mem.get(x), mem.get(bias));
    let mut xw = xh.write();
    let br = bh.read();
    assert_eq!(br.len(), n, "bias dims");
    assert_eq!(xw.len() % n.max(1), 0, "matrix dims");
    ops::add_row_broadcast_slice(&mut xw, n, &br);
}

/// Element-wise logistic sigmoid, in place (same dispatched kernel the
/// host workers use, so CPU and GPU activations agree bit-for-bit).
pub fn sigmoid(mem: &DeviceMemory, x: BufferId) {
    let xh = mem.get(x);
    let mut xw = xh.write();
    ops::sigmoid_slice(&mut xw);
}

/// Row-wise numerically-stable softmax over an `m×n` buffer, in place.
pub fn softmax_rows(mem: &DeviceMemory, x: BufferId, n: usize) {
    let xh = mem.get(x);
    let mut xw = xh.write();
    assert_eq!(xw.len() % n.max(1), 0, "matrix dims");
    ops::softmax_rows_slice(&mut xw, n);
}

/// `y ← y + alpha·x` over whole buffers (the SGD update kernel).
pub fn axpy(mem: &DeviceMemory, alpha: f32, x: BufferId, y: BufferId) {
    let (xh, yh) = (mem.get(x), mem.get(y));
    let xr = xh.read();
    let mut yw = yh.write();
    assert_eq!(xr.len(), yw.len(), "axpy dims");
    ops::axpy(alpha, &xr, &mut yw);
}

/// Multiply `delta` in place by the sigmoid derivative computed from the
/// stored activation output `a`: `delta ← delta ⊙ a(1-a)`.
pub fn sigmoid_backward(mem: &DeviceMemory, activation: BufferId, delta: BufferId) {
    let (ah, dh) = (mem.get(activation), mem.get(delta));
    let ar = ah.read();
    let mut dw = dh.write();
    assert_eq!(ar.len(), dw.len(), "dims");
    ops::mul_sigmoid_derivative_slice(&ar, &mut dw);
}

/// Column-sum of an `m×n` buffer into a length-`n` buffer (bias gradient).
pub fn col_sum(mem: &DeviceMemory, x: BufferId, out: BufferId, n: usize) {
    let (xh, oh) = (mem.get(x), mem.get(out));
    let xr = xh.read();
    let mut ow = oh.write();
    assert_eq!(ow.len(), n, "output dims");
    ops::col_sum_slice(&xr, n, &mut ow);
}

/// Scale a buffer in place.
pub fn scale(mem: &DeviceMemory, alpha: f32, x: BufferId) {
    let xh = mem.get(x);
    ops::scale(alpha, &mut xh.write());
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_tensor::Matrix;

    fn mem() -> DeviceMemory {
        DeviceMemory::new(1 << 24)
    }

    fn upload(mem: &DeviceMemory, data: &[f32]) -> BufferId {
        let b = mem.alloc(data.len()).unwrap();
        mem.get(b).write().copy_from_slice(data);
        b
    }

    #[test]
    fn gemm_nt_matches_host() {
        let m = mem();
        let a = upload(&m, &[1.0, 2.0, 3.0, 4.0]); // 2x2
        let b = upload(&m, &[1.0, 0.0, 0.0, 1.0]); // 2x2 identity (as Bᵀ too)
        let c = m.alloc(4).unwrap();
        gemm_nt(&m, a, b, c, 2, 2, 2);
        assert_eq!(&*m.get(c).read(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn gemm_tn_and_nn_match_host() {
        let dm = mem();
        let a_host = Matrix::from_fn(5, 4, |i, j| (i + 2 * j) as f32 * 0.25);
        let b_host = Matrix::from_fn(5, 3, |i, j| (2 * i + j) as f32 * 0.5);
        let a = upload(&dm, a_host.as_slice());
        let b = upload(&dm, b_host.as_slice());
        let c = dm.alloc(12).unwrap();
        gemm_tn(&dm, a, b, c, 5, 4, 3);
        let mut expect = Matrix::zeros(4, 3);
        gemm::gemm_tn(1.0, &a_host, &b_host, 0.0, &mut expect);
        assert_eq!(&*dm.get(c).read(), expect.as_slice());

        // NN: (4x5)·(5x3)
        let at = a_host.transpose();
        let abuf = upload(&dm, at.as_slice());
        let c2 = dm.alloc(12).unwrap();
        gemm_nn(&dm, abuf, b, c2, 4, 5, 3);
        let mut expect2 = Matrix::zeros(4, 3);
        gemm::gemm_nn(1.0, &at, &b_host, 0.0, &mut expect2);
        assert_eq!(&*dm.get(c2).read(), expect2.as_slice());
    }

    #[test]
    fn bias_and_sigmoid() {
        let m = mem();
        let x = upload(&m, &[0.0, 0.0, 0.0, 0.0]);
        let b = upload(&m, &[1.0, -1.0]);
        add_bias(&m, x, b, 2);
        assert_eq!(&*m.get(x).read(), &[1.0, -1.0, 1.0, -1.0]);
        sigmoid(&m, x);
        let r = m.get(x).read().clone();
        assert!((r[0] - 1.0 / (1.0 + (-1.0f32).exp())).abs() < 1e-6);
        assert!((r[0] + r[1] - 1.0).abs() < 1e-6); // σ(1)+σ(-1)=1
    }

    #[test]
    fn softmax_rows_normalizes() {
        let m = mem();
        let x = upload(&m, &[1.0, 2.0, 3.0, 10.0, 10.0, 10.0]);
        softmax_rows(&m, x, 3);
        let r = m.get(x).read().clone();
        assert!((r[0..3].iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!((r[3] - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn axpy_and_scale() {
        let m = mem();
        let x = upload(&m, &[1.0, 2.0]);
        let y = upload(&m, &[10.0, 10.0]);
        axpy(&m, -0.5, x, y);
        assert_eq!(&*m.get(y).read(), &[9.5, 9.0]);
        scale(&m, 2.0, y);
        assert_eq!(&*m.get(y).read(), &[19.0, 18.0]);
    }

    #[test]
    fn sigmoid_backward_applies_derivative() {
        let m = mem();
        let a = upload(&m, &[0.5, 0.9]);
        let d = upload(&m, &[4.0, 10.0]);
        sigmoid_backward(&m, a, d);
        let r = m.get(d).read().clone();
        assert!((r[0] - 1.0).abs() < 1e-6); // 4 * 0.25
        assert!((r[1] - 0.9).abs() < 1e-5); // 10 * 0.09
    }

    #[test]
    fn col_sum_kernel() {
        let m = mem();
        let x = upload(&m, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]); // 3x2
        let o = m.alloc(2).unwrap();
        col_sum(&m, x, o, 2);
        assert_eq!(&*m.get(o).read(), &[9.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "dims")]
    fn dimension_mismatch_panics() {
        let m = mem();
        let a = upload(&m, &[1.0; 4]);
        let b = upload(&m, &[1.0; 4]);
        let c = m.alloc(5).unwrap();
        gemm_nt(&m, a, b, c, 2, 2, 2);
    }
}
