//! Tracked device-memory allocator.
//!
//! Device global memory is a finite resource (16 GB on the V100, Table I)
//! that bounds the GPU batch size (§VI-B: "the GPU memory capacity imposes
//! an upper bound on the size"). This allocator enforces the budget: every
//! buffer is counted, allocation beyond capacity fails with [`OomError`],
//! and a peak-usage watermark supports capacity planning in the benches.

use std::collections::HashMap;
use std::sync::Arc;

use hetero_trace::GaugeHandle;
use parking_lot::{Mutex, RwLock};

/// Opaque handle to a device buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferId(u64);

/// Device allocation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OomError {
    /// Bytes requested by the failing allocation.
    pub requested: u64,
    /// Bytes in use at the time of the request.
    pub used: u64,
    /// Device capacity in bytes.
    pub capacity: u64,
}

impl std::fmt::Display for OomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "device out of memory: requested {} B with {}/{} B in use",
            self.requested, self.used, self.capacity
        )
    }
}

impl std::error::Error for OomError {}

struct Inner {
    buffers: HashMap<u64, Arc<RwLock<Vec<f32>>>>,
    used: u64,
    peak: u64,
    next_id: u64,
    /// Allocation attempts so far (successful or not) — the index space
    /// fault injection targets.
    attempts: u64,
    /// Allocation indices forced to fail with OOM (deterministic fault
    /// injection for supervision tests). Each index fires once.
    forced_oom: Vec<u64>,
}

/// Thread-safe tracked memory pool for one device.
pub struct DeviceMemory {
    capacity: u64,
    inner: Mutex<Inner>,
    /// Live bytes-in-use gauge (disabled unless tracing is attached).
    bytes_gauge: GaugeHandle,
}

impl DeviceMemory {
    /// Pool with `capacity` bytes of global memory.
    pub fn new(capacity: u64) -> Self {
        Self::with_gauge(capacity, GaugeHandle::disabled())
    }

    /// Pool that mirrors its bytes-in-use into `bytes_gauge` on every
    /// allocation and free, so a trace snapshot always sees current usage.
    pub fn with_gauge(capacity: u64, bytes_gauge: GaugeHandle) -> Self {
        DeviceMemory {
            capacity,
            inner: Mutex::new(Inner {
                buffers: HashMap::new(),
                used: 0,
                peak: 0,
                next_id: 1,
                attempts: 0,
                forced_oom: Vec::new(),
            }),
            bytes_gauge,
        }
    }

    /// Force the `n`th allocation attempt (0-based, counted from device
    /// creation, successful or not) to fail with [`OomError`]. Each
    /// injected index fires at most once; already-elapsed indices never
    /// fire. This is the deterministic hook supervision tests use to
    /// exercise OOM paths without sizing real capacities.
    pub fn inject_oom_at(&self, n: u64) {
        self.inner.lock().forced_oom.push(n);
    }

    /// Allocation attempts made so far (successful or not).
    pub fn alloc_attempts(&self) -> u64 {
        self.inner.lock().attempts
    }

    /// Allocate a zero-initialized buffer of `len` f32 elements.
    pub fn alloc(&self, len: usize) -> Result<BufferId, OomError> {
        let bytes = 4 * len as u64;
        let mut inner = self.inner.lock();
        let attempt = inner.attempts;
        inner.attempts += 1;
        if let Some(slot) = inner.forced_oom.iter().position(|&n| n == attempt) {
            inner.forced_oom.swap_remove(slot);
            return Err(OomError {
                requested: bytes,
                used: inner.used,
                capacity: self.capacity,
            });
        }
        if inner.used + bytes > self.capacity {
            return Err(OomError {
                requested: bytes,
                used: inner.used,
                capacity: self.capacity,
            });
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.used += bytes;
        inner.peak = inner.peak.max(inner.used);
        self.bytes_gauge.set(inner.used as f64);
        inner
            .buffers
            .insert(id, Arc::new(RwLock::new(vec![0.0; len])));
        Ok(BufferId(id))
    }

    /// Free a buffer. Freeing an unknown id is an error (double free).
    pub fn free(&self, id: BufferId) -> Result<(), String> {
        let mut inner = self.inner.lock();
        match inner.buffers.remove(&id.0) {
            Some(buf) => {
                inner.used -= 4 * buf.read().len() as u64;
                self.bytes_gauge.set(inner.used as f64);
                Ok(())
            }
            None => Err(format!("free of unknown buffer {:?}", id)),
        }
    }

    /// Shared handle to a buffer's storage.
    ///
    /// # Panics
    /// Panics on an unknown (freed) id — the moral equivalent of a CUDA
    /// invalid-device-pointer fault.
    pub fn get(&self, id: BufferId) -> Arc<RwLock<Vec<f32>>> {
        self.inner
            .lock()
            .buffers
            .get(&id.0)
            .cloned()
            .unwrap_or_else(|| panic!("use of invalid device buffer {id:?}"))
    }

    /// Element count of a buffer.
    pub fn len(&self, id: BufferId) -> usize {
        self.get(id).read().len()
    }

    /// Whether the given buffer is zero-length.
    pub fn is_empty(&self, id: BufferId) -> bool {
        self.len(id) == 0
    }

    /// Bytes currently allocated.
    pub fn used_bytes(&self) -> u64 {
        self.inner.lock().used
    }

    /// High-water mark of allocated bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.inner.lock().peak
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of live buffers.
    pub fn live_buffers(&self) -> usize {
        self.inner.lock().buffers.len()
    }
}

impl std::fmt::Debug for DeviceMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceMemory")
            .field("capacity", &self.capacity)
            .field("used", &self.used_bytes())
            .field("buffers", &self.live_buffers())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_tracks_usage() {
        let mem = DeviceMemory::new(1024);
        let a = mem.alloc(100).unwrap(); // 400 B
        assert_eq!(mem.used_bytes(), 400);
        let b = mem.alloc(100).unwrap(); // 800 B total
        assert_eq!(mem.used_bytes(), 800);
        assert_eq!(mem.peak_bytes(), 800);
        mem.free(a).unwrap();
        assert_eq!(mem.used_bytes(), 400);
        assert_eq!(mem.peak_bytes(), 800); // watermark persists
        mem.free(b).unwrap();
        assert_eq!(mem.live_buffers(), 0);
    }

    #[test]
    fn oom_when_capacity_exceeded() {
        let mem = DeviceMemory::new(1000);
        let _a = mem.alloc(200).unwrap(); // 800 B
        let err = mem.alloc(100).unwrap_err(); // would be 1200 B
        assert_eq!(err.requested, 400);
        assert_eq!(err.used, 800);
        assert_eq!(err.capacity, 1000);
        assert!(err.to_string().contains("out of memory"));
    }

    #[test]
    fn freed_memory_is_reusable() {
        let mem = DeviceMemory::new(800);
        let a = mem.alloc(200).unwrap();
        assert!(mem.alloc(1).is_err());
        mem.free(a).unwrap();
        assert!(mem.alloc(200).is_ok());
    }

    #[test]
    fn double_free_is_detected() {
        let mem = DeviceMemory::new(1024);
        let a = mem.alloc(10).unwrap();
        mem.free(a).unwrap();
        assert!(mem.free(a).is_err());
    }

    #[test]
    #[should_panic(expected = "invalid device buffer")]
    fn use_after_free_panics() {
        let mem = DeviceMemory::new(1024);
        let a = mem.alloc(10).unwrap();
        mem.free(a).unwrap();
        mem.get(a);
    }

    #[test]
    fn buffers_zero_initialized() {
        let mem = DeviceMemory::new(1024);
        let a = mem.alloc(16).unwrap();
        assert!(mem.get(a).read().iter().all(|&v| v == 0.0));
        assert_eq!(mem.len(a), 16);
    }

    #[test]
    fn injected_oom_fires_once_at_target_index() {
        let mem = DeviceMemory::new(1 << 20);
        mem.inject_oom_at(1);
        let a = mem.alloc(8).unwrap(); // attempt 0: fine
        let err = mem.alloc(8).unwrap_err(); // attempt 1: injected
        assert_eq!(err.requested, 32);
        assert!(mem.alloc(8).is_ok()); // attempt 2: injection consumed
        assert_eq!(mem.alloc_attempts(), 3);
        mem.free(a).unwrap();
    }

    #[test]
    fn injected_oom_in_the_past_never_fires() {
        let mem = DeviceMemory::new(1 << 20);
        let _ = mem.alloc(4).unwrap();
        mem.inject_oom_at(0); // attempt 0 already elapsed
        for _ in 0..4 {
            assert!(mem.alloc(4).is_ok());
        }
    }

    #[test]
    fn concurrent_alloc_free() {
        let mem = Arc::new(DeviceMemory::new(1 << 20));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let mem = Arc::clone(&mem);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        let b = mem.alloc(32).unwrap();
                        mem.free(b).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(mem.used_bytes(), 0);
        assert_eq!(mem.live_buffers(), 0);
    }
}
