//! Device-resident MLP replica — the unit a GPU worker trains.
//!
//! §V "GPU Workers": *"the model replica in the GPU worker is always a deep
//! copy of the global model"*, moved through explicit transfers, with
//! kernels invoked for the forward and backward passes and intermediate
//! outputs kept in device memory. [`GpuMlp`] is exactly that object:
//!
//! - [`GpuMlp::upload`] — deep-copy a host model into device buffers;
//! - [`GpuMlp::train_step`] — one SGD step fully on the device (forward,
//!   backward, parameter update), returning the batch loss;
//! - [`GpuMlp::download`] — read the replica back for merging into the
//!   global model.

use hetero_nn::{LossKind, Model, Targets};
use hetero_tensor::Matrix;

use crate::alloc::{BufferId, OomError};
use crate::device::GpuDevice;
use crate::kernels;

/// An MLP whose parameters live in device memory.
pub struct GpuMlp<'d> {
    device: &'d GpuDevice,
    spec: hetero_nn::MlpSpec,
    weights: Vec<BufferId>,
    biases: Vec<BufferId>,
    /// Persistent gradient workspaces (same shapes as the parameters).
    grad_w: Vec<BufferId>,
    grad_b: Vec<BufferId>,
    /// Persistent per-step scratch (batch, activations, deltas, host
    /// staging). Sized on first step and reused while the batch size stays
    /// the same, so steady-state steps perform no device or host
    /// allocations. Cleared wholesale on any step error so an OOM retry at
    /// a smaller batch starts from a clean pool.
    scratch: StepScratch,
}

/// Reusable buffers for [`GpuMlp::train_step`]; `(BufferId, len)` slots are
/// re-allocated only when the required length changes.
struct StepScratch {
    /// Device copy of the input batch.
    x: Option<(BufferId, usize)>,
    /// Per-layer activation buffers.
    acts: Vec<Option<(BufferId, usize)>>,
    /// Per-layer δ buffers (δ for layer l is written while layer l+1's is
    /// still being read, so each layer owns its own buffer).
    deltas: Vec<Option<(BufferId, usize)>>,
    /// Host staging matrix for the output probabilities / output delta.
    delta_host: Matrix,
}

impl Default for StepScratch {
    fn default() -> Self {
        StepScratch {
            x: None,
            acts: Vec::new(),
            deltas: Vec::new(),
            delta_host: Matrix::zeros(0, 0),
        }
    }
}

impl StepScratch {
    /// Return the buffer for `slot`, reusing it when the length matches and
    /// re-allocating otherwise.
    fn ensure(
        dev: &GpuDevice,
        slot: &mut Option<(BufferId, usize)>,
        len: usize,
    ) -> Result<BufferId, OomError> {
        if let Some((buf, have)) = *slot {
            if have == len {
                return Ok(buf);
            }
            let _ = dev.mem().free(buf);
            *slot = None;
        }
        let buf = dev.mem().alloc(len)?;
        *slot = Some((buf, len));
        Ok(buf)
    }

    /// Free every cached device buffer.
    fn clear(&mut self, dev: &GpuDevice) {
        for slot in std::iter::once(&mut self.x)
            .chain(self.acts.iter_mut())
            .chain(self.deltas.iter_mut())
        {
            if let Some((buf, _)) = slot.take() {
                let _ = dev.mem().free(buf);
            }
        }
    }
}

impl<'d> GpuMlp<'d> {
    /// Deep-copy `model` onto the device.
    ///
    /// Allocates parameters plus gradient workspace; fails with OOM if the
    /// model does not fit (a real constraint for the batch-size bounds in
    /// §VI-B).
    pub fn upload(device: &'d GpuDevice, model: &Model) -> Result<Self, OomError> {
        let spec = model.spec().clone();
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        let mut grad_w = Vec::new();
        let mut grad_b = Vec::new();
        // On a mid-upload OOM, free what was already allocated so a failed
        // upload leaves device memory exactly as it found it.
        let mut step = || -> Result<(), OomError> {
            for layer in model.layers() {
                weights.push(device.h2d(layer.w.as_slice())?);
                biases.push(device.h2d(&layer.b)?);
                grad_w.push(device.mem().alloc(layer.w.len())?);
                grad_b.push(device.mem().alloc(layer.b.len())?);
            }
            Ok(())
        };
        if let Err(e) = step() {
            for b in weights.iter().chain(&biases).chain(&grad_w).chain(&grad_b) {
                let _ = device.mem().free(*b);
            }
            return Err(e);
        }
        Ok(GpuMlp {
            device,
            spec,
            weights,
            biases,
            grad_w,
            grad_b,
            scratch: StepScratch::default(),
        })
    }

    /// The network specification.
    pub fn spec(&self) -> &hetero_nn::MlpSpec {
        &self.spec
    }

    /// Read the device replica back to the host.
    pub fn download(&self) -> Model {
        let mut model = Model::zeros_like(&self.spec);
        self.download_into(&mut model);
        model
    }

    /// Read the device replica into an existing host model, reusing its
    /// buffers — the allocation-free counterpart of
    /// [`download`](Self::download) used by steady-state worker loops.
    pub fn download_into(&self, model: &mut Model) {
        assert_eq!(model.spec(), &self.spec, "replica spec mismatch");
        for (layer, (w, b)) in model
            .layers_mut()
            .iter_mut()
            .zip(self.weights.iter().zip(&self.biases))
        {
            self.device.d2h_into(*w, layer.w.as_mut_slice());
            self.device.d2h_into(*b, &mut layer.b);
        }
    }

    /// Overwrite the device replica from a host model (refresh before a new
    /// round of local steps).
    pub fn refresh(&self, model: &Model) {
        assert_eq!(model.spec(), &self.spec, "replica spec mismatch");
        for (layer, (w, b)) in model
            .layers()
            .iter()
            .zip(self.weights.iter().zip(&self.biases))
        {
            self.device.h2d_into(layer.w.as_slice(), *w);
            self.device.h2d_into(&layer.b, *b);
        }
    }

    /// One SGD step over batch `x` on the device; updates the replica in
    /// place and returns the batch loss.
    ///
    /// The batch is transferred H2D; activations and deltas live in
    /// persistent device scratch (never leaving device memory, per §V) that
    /// is reused across steps — a steady-state step at a fixed batch size
    /// performs no device allocations and no host allocations. The loss is
    /// read back from the output probabilities into reused host staging.
    ///
    /// On any error (device OOM) the whole scratch pool is released, so a
    /// retry at a smaller batch size (the coordinator's batch-halving
    /// fallback) starts against an empty pool.
    pub fn train_step(
        &mut self,
        x: &Matrix,
        targets: Targets<'_>,
        eta: f32,
    ) -> Result<f32, OomError> {
        match self.train_step_inner(x, targets, eta) {
            Ok(loss) => Ok(loss),
            Err(e) => {
                self.scratch.clear(self.device);
                Err(e)
            }
        }
    }

    fn train_step_inner(
        &mut self,
        x: &Matrix,
        targets: Targets<'_>,
        eta: f32,
    ) -> Result<f32, OomError> {
        let batch = x.rows();
        assert_eq!(x.cols(), self.spec.input_dim, "batch width");
        assert_eq!(targets.len(), batch, "target count");
        let dev = self.device;
        let dims = self.spec.layer_dims();
        let n_layers = dims.len();
        self.scratch.acts.resize(n_layers, None);
        self.scratch.deltas.resize(n_layers, None);

        // --- Transfer the batch into the (reused) device input buffer.
        let x_buf = StepScratch::ensure(dev, &mut self.scratch.x, batch * self.spec.input_dim)?;
        dev.h2d_into(x.as_slice(), x_buf);

        // --- Forward: activations stay on device.
        dev.note_kernel("forward");
        let mut acts: Vec<BufferId> = Vec::with_capacity(n_layers);
        for (l, &(in_dim, out_dim)) in dims.iter().enumerate() {
            let act = StepScratch::ensure(dev, &mut self.scratch.acts[l], batch * out_dim)?;
            let input = if l == 0 { x_buf } else { acts[l - 1] };
            kernels::gemm_nt(
                dev.mem(),
                input,
                self.weights[l],
                act,
                batch,
                in_dim,
                out_dim,
            );
            kernels::add_bias(dev.mem(), act, self.biases[l], out_dim);
            if l + 1 == n_layers {
                match self.spec.loss {
                    LossKind::SoftmaxCrossEntropy => kernels::softmax_rows(dev.mem(), act, out_dim),
                    LossKind::MultiLabelBce => kernels::sigmoid(dev.mem(), act),
                }
            } else {
                // Paper networks use sigmoid hidden activations.
                kernels::sigmoid(dev.mem(), act);
            }
            acts.push(act);
        }

        // --- Loss + output delta (probabilities come back to the host once,
        //     into the reused staging matrix).
        let classes = self.spec.classes;
        let delta_host = &mut self.scratch.delta_host;
        delta_host.resize(batch, classes);
        dev.d2h_into(acts[n_layers - 1], delta_host.as_mut_slice());
        let batch_loss = hetero_nn::loss(delta_host, targets, self.spec.loss);
        let inv_b = if batch > 0 { 1.0 / batch as f32 } else { 0.0 };
        match targets {
            Targets::Classes(labels) => {
                for (i, &y) in labels.iter().enumerate() {
                    let v = delta_host.get(i, y as usize) - 1.0;
                    delta_host.set(i, y as usize, v);
                }
            }
            Targets::MultiHot(y) => {
                hetero_tensor::ops::sub_assign(delta_host, y);
            }
        }
        hetero_tensor::ops::scale(inv_b, delta_host.as_mut_slice());
        let mut delta =
            StepScratch::ensure(dev, &mut self.scratch.deltas[n_layers - 1], batch * classes)?;
        dev.h2d_into(self.scratch.delta_host.as_slice(), delta);

        // --- Backward + update, layer by layer.
        dev.note_kernel("backward");
        for l in (0..n_layers).rev() {
            let (in_dim, out_dim) = dims[l];
            let input = if l == 0 { x_buf } else { acts[l - 1] };
            // ∇W = δᵀ·input, ∇b = colsum(δ)
            kernels::gemm_tn(
                dev.mem(),
                delta,
                input,
                self.grad_w[l],
                batch,
                out_dim,
                in_dim,
            );
            kernels::col_sum(dev.mem(), delta, self.grad_b[l], out_dim);
            if l > 0 {
                let prev =
                    StepScratch::ensure(dev, &mut self.scratch.deltas[l - 1], batch * in_dim)?;
                kernels::gemm_nn(
                    dev.mem(),
                    delta,
                    self.weights[l],
                    prev,
                    batch,
                    out_dim,
                    in_dim,
                );
                kernels::sigmoid_backward(dev.mem(), acts[l - 1], prev);
                delta = prev;
            }
            // SGD update on device.
            kernels::axpy(dev.mem(), -eta, self.grad_w[l], self.weights[l]);
            kernels::axpy(dev.mem(), -eta, self.grad_b[l], self.biases[l]);
        }

        // Virtual cost of the whole step on the modeled hardware.
        dev.account_step(self.spec.train_flops_per_example(), batch);
        Ok(batch_loss)
    }

    /// Free all device allocations now (dropping has the same effect; this
    /// just makes the release point explicit at call sites).
    pub fn destroy(self) {}
}

impl Drop for GpuMlp<'_> {
    /// Return every parameter and workspace buffer to the device pool, even
    /// when the replica goes away on an unwind path (a quarantined worker
    /// must not strand its memory).
    fn drop(&mut self) {
        self.scratch.clear(self.device);
        for b in self
            .weights
            .drain(..)
            .chain(self.biases.drain(..))
            .chain(self.grad_w.drain(..))
            .chain(self.grad_b.drain(..))
        {
            let _ = self.device.mem().free(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_nn::{InitScheme, MlpSpec};

    fn host_model() -> Model {
        Model::new(MlpSpec::tiny(4, 3), InitScheme::Xavier, 21)
    }

    fn batch() -> (Matrix, Vec<u32>) {
        let x = Matrix::from_fn(6, 4, |i, j| ((i * 4 + j) as f32 * 0.37).sin());
        let y = vec![0, 1, 2, 0, 1, 2];
        (x, y)
    }

    #[test]
    fn upload_download_roundtrip() {
        let dev = GpuDevice::v100();
        let m = host_model();
        let g = GpuMlp::upload(&dev, &m).unwrap();
        assert_eq!(g.download(), m);
        g.destroy();
        assert_eq!(dev.mem().used_bytes(), 0);
    }

    #[test]
    fn train_step_matches_host_sgd() {
        let dev = GpuDevice::v100();
        let mut host = host_model();
        let mut gpu = GpuMlp::upload(&dev, &host).unwrap();
        let (x, y) = batch();

        let gpu_loss = gpu.train_step(&x, Targets::Classes(&y), 0.1).unwrap();
        let (host_loss, grad) =
            hetero_nn::loss_and_gradient(&host, &x, Targets::Classes(&y), false);
        host.apply_gradient(&grad, 0.1);

        assert!(
            (gpu_loss - host_loss).abs() < 1e-5,
            "{gpu_loss} vs {host_loss}"
        );
        let downloaded = gpu.download();
        let (a, b) = (downloaded.flatten(), host.flatten());
        for (u, v) in a.iter().zip(&b) {
            assert!((u - v).abs() < 1e-5, "{u} vs {v}");
        }
        gpu.destroy();
    }

    #[test]
    fn multiple_steps_reduce_loss() {
        let dev = GpuDevice::v100();
        let host = host_model();
        let mut gpu = GpuMlp::upload(&dev, &host).unwrap();
        let (x, y) = batch();
        let first = gpu.train_step(&x, Targets::Classes(&y), 0.5).unwrap();
        let mut last = first;
        for _ in 0..80 {
            last = gpu.train_step(&x, Targets::Classes(&y), 0.5).unwrap();
        }
        assert!(last < first, "loss should fall: {first} -> {last}");
        gpu.destroy();
    }

    #[test]
    fn steady_state_steps_reuse_device_scratch() {
        let dev = GpuDevice::v100();
        let host = host_model();
        let mut gpu = GpuMlp::upload(&dev, &host).unwrap();
        let (x, y) = batch();
        // First step warms the scratch pool; every later step at the same
        // batch size must neither allocate nor free device buffers.
        gpu.train_step(&x, Targets::Classes(&y), 0.1).unwrap();
        let warmed = dev.mem().used_bytes();
        let live = dev.mem().live_buffers();
        for _ in 0..3 {
            gpu.train_step(&x, Targets::Classes(&y), 0.1).unwrap();
            assert_eq!(dev.mem().used_bytes(), warmed, "device scratch grew");
            assert_eq!(dev.mem().live_buffers(), live, "buffer churn");
        }
        gpu.destroy();
        assert_eq!(dev.mem().used_bytes(), 0);
    }

    #[test]
    fn train_step_accounts_virtual_time() {
        let dev = GpuDevice::v100();
        let host = host_model();
        let mut gpu = GpuMlp::upload(&dev, &host).unwrap();
        let t0 = dev.virtual_time();
        let (x, y) = batch();
        gpu.train_step(&x, Targets::Classes(&y), 0.1).unwrap();
        assert!(dev.virtual_time() > t0);
        gpu.destroy();
    }

    #[test]
    fn oom_mid_step_frees_temporaries() {
        let mut perf = hetero_sim::GpuModel::v100();
        // Room for the model + a couple of activations but not a huge batch.
        perf.memory = 40_000;
        let dev = GpuDevice::new(perf);
        let host = host_model();
        let mut gpu = GpuMlp::upload(&dev, &host).unwrap();
        let base = dev.mem().used_bytes();
        let x = Matrix::from_fn(2000, 4, |_, _| 0.5);
        let y: Vec<u32> = vec![0; 2000];
        let r = gpu.train_step(&x, Targets::Classes(&y), 0.1);
        assert!(r.is_err(), "expected OOM");
        assert_eq!(dev.mem().used_bytes(), base, "leak after failed step");
        gpu.destroy();
    }

    #[test]
    fn drop_frees_device_memory() {
        let dev = GpuDevice::v100();
        {
            let _gpu = GpuMlp::upload(&dev, &host_model()).unwrap();
            assert!(dev.mem().used_bytes() > 0);
        }
        assert_eq!(dev.mem().used_bytes(), 0);
        assert_eq!(dev.mem().live_buffers(), 0);
    }

    #[test]
    fn drop_frees_on_unwind() {
        let dev = GpuDevice::v100();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _gpu = GpuMlp::upload(&dev, &host_model()).unwrap();
            panic!("simulated worker death");
        }));
        assert!(r.is_err());
        assert_eq!(dev.mem().used_bytes(), 0, "unwind stranded buffers");
    }

    #[test]
    fn failed_upload_leaves_no_allocations() {
        let dev = GpuDevice::v100();
        // Fail partway through: the first few buffers succeed, then OOM.
        dev.inject_oom_at(3);
        let err = GpuMlp::upload(&dev, &host_model());
        assert!(err.is_err(), "expected injected OOM");
        assert_eq!(dev.mem().used_bytes(), 0, "partial upload leaked");
        assert_eq!(dev.mem().live_buffers(), 0);
    }

    #[test]
    fn refresh_overwrites_replica() {
        let dev = GpuDevice::v100();
        let m1 = host_model();
        let m2 = Model::new(m1.spec().clone(), InitScheme::Constant(0.5), 0);
        let gpu = GpuMlp::upload(&dev, &m1).unwrap();
        gpu.refresh(&m2);
        assert_eq!(gpu.download(), m2);
        gpu.destroy();
    }

    #[test]
    fn multilabel_train_step_runs() {
        let spec = MlpSpec {
            input_dim: 4,
            hidden: vec![8],
            classes: 5,
            activation: hetero_nn::Activation::Sigmoid,
            loss: LossKind::MultiLabelBce,
        };
        let host = Model::new(spec, InitScheme::Xavier, 2);
        let dev = GpuDevice::v100();
        let mut gpu = GpuMlp::upload(&dev, &host).unwrap();
        let x = Matrix::from_fn(3, 4, |i, j| (i as f32 - j as f32) * 0.2);
        let y = Matrix::from_rows(&[
            &[1.0, 0.0, 0.0, 1.0, 0.0],
            &[0.0, 1.0, 0.0, 0.0, 1.0],
            &[1.0, 1.0, 0.0, 0.0, 0.0],
        ]);
        let l = gpu.train_step(&x, Targets::MultiHot(&y), 0.1).unwrap();
        assert!(l.is_finite() && l > 0.0);
        gpu.destroy();
    }
}
